//! Deterministic pseudo-random numbers for the URSA workspace.
//!
//! The workspace must build and test with **zero registry dependencies**
//! (see `tools/check_hermetic.sh`), so this crate replaces `rand` for the
//! workload generators, the benchmark harness and the tests. It is not a
//! cryptographic RNG; it exists to make experiments reproducible.
//!
//! * Seeding expands a single `u64` through **SplitMix64**, so nearby
//!   seeds (0, 1, 2, …) still produce decorrelated states.
//! * The core generator is **xoshiro256++** (Blackman & Vigna), the same
//!   family `rand`'s small RNGs use: 256 bits of state, period 2²⁵⁶−1,
//!   a handful of shifts/rotates per draw.
//! * Bounded draws use Lemire's nearly-divisionless rejection method, so
//!   `gen_range` is unbiased.
//!
//! Streams are stable: the sequence for a given seed is locked by golden
//! tests and must never change, because recorded experiment tables
//! (`EXPERIMENTS.md`, `BENCH_*.json`) depend on the generated programs.
//!
//! # Examples
//!
//! ```
//! use ursa_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let a = rng.u64();
//! let b = rng.gen_range(0..10usize);
//! assert!(b < 10);
//! let mut again = Rng::seed_from_u64(42);
//! assert_eq!(again.u64(), a, "same seed, same stream");
//! ```

/// SplitMix64 step — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256++ generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose 256-bit state is derived from `seed`
    /// via SplitMix64 (the initialization the xoshiro authors
    /// recommend).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Alias for [`Rng::seed_from_u64`].
    pub fn new(seed: u64) -> Rng {
        Rng::seed_from_u64(seed)
    }

    /// The next 64 uniformly random bits (xoshiro256++ step).
    pub fn u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        let s2 = s2 ^ t;
        let s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    pub fn u32(&mut self) -> u32 {
        (self.u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniform draw from `[0, bound)` using Lemire's nearly
    /// divisionless method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        let mut x = self.u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform draw from a half-open range, like `rand`'s `gen_range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut rng = ursa_rng::Rng::seed_from_u64(7);
    /// let x = rng.gen_range(10..20u64);
    /// assert!((10..20).contains(&x));
    /// let i = rng.gen_range(-5..5i64);
    /// assert!((-5..5).contains(&i));
    /// ```
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.bounded_u64(slice.len() as u64) as usize]
    }
}

/// Integer types [`Rng::gen_range`] can sample from a `Range`.
pub trait SampleRange: Sized {
    /// Draws uniformly from `range`. Panics on an empty range.
    fn sample(rng: &mut Rng, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + rng.bounded_u64(span) as $t
            }
        }
    )*};
}
impl_sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                (range.start as $u).wrapping_add(rng.bounded_u64(span) as $u) as $t
            }
        }
    )*};
}
impl_sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact stream for seed 0 — golden values locking the
    /// SplitMix64 seeding and the xoshiro256++ step. If these move,
    /// every recorded experiment table silently desynchronizes.
    #[test]
    fn golden_stream_seed_0() {
        let mut rng = Rng::seed_from_u64(0);
        let got: Vec<u64> = (0..6).map(|_| rng.u64()).collect();
        assert_eq!(
            got,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330,
                9136120204379184874,
                379361710973160858,
            ]
        );
    }

    #[test]
    fn golden_stream_seed_42() {
        let mut rng = Rng::seed_from_u64(42);
        let got: Vec<u64> = (0..4).map(|_| rng.u64()).collect();
        assert_eq!(
            got,
            vec![
                15021278609987233951,
                5881210131331364753,
                18149643915985481100,
                12933668939759105464,
            ]
        );
    }

    #[test]
    fn golden_bounded_and_f64() {
        let mut rng = Rng::seed_from_u64(7);
        let draws: Vec<u64> = (0..8).map(|_| rng.bounded_u64(10)).collect();
        assert_eq!(draws, vec![0, 1, 7, 4, 9, 4, 7, 3]);
        let f = rng.f64();
        assert!((0.0..1.0).contains(&f));
        // Same position in a fresh stream reproduces the value exactly.
        let mut again = Rng::seed_from_u64(7);
        for _ in 0..8 {
            again.u64();
        }
        assert_eq!(again.f64(), f);
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let a = Rng::seed_from_u64(1).u64();
        let b = Rng::seed_from_u64(2).u64();
        assert_ne!(a, b);
        assert_ne!(a ^ b, 0);
        // Hamming distance should be substantial, not a few bits.
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5..17usize);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(-8..-3i64);
            assert!((-8..-3).contains(&y));
            let z = rng.gen_range(0..1u32);
            assert_eq!(z, 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        Rng::seed_from_u64(0).gen_range(5..5usize);
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.bounded_u64(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut v: Vec<u32> = (0..20).collect();
        let mut rng = Rng::seed_from_u64(9);
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        let mut w: Vec<u32> = (0..20).collect();
        Rng::seed_from_u64(9).shuffle(&mut w);
        assert_eq!(v, w, "same seed, same permutation");
        assert_ne!(v, (0..20).collect::<Vec<_>>(), "20 elements never fixed");
    }

    #[test]
    fn choose_covers_all_elements() {
        let items = [1u32, 2, 3, 4];
        let mut rng = Rng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[(*rng.choose(&items) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_distribution_sane() {
        let mut rng = Rng::seed_from_u64(13);
        let mean: f64 = (0..10_000).map(|_| rng.f64()).sum::<f64>() / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }
}
