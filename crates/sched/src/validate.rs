//! Stage invariant checking for the fail-safe pipeline.
//!
//! After each pipeline stage a small set of structural invariants must
//! hold: the dependence DAG stays acyclic and anchored between its
//! entry/exit pseudo nodes, no original operation is lost or duplicated
//! (modulo spill code, which is explicitly synthesized), schedules
//! respect dependences and unit capacities, and the emitted wide words
//! stay within the register file and never read a register before its
//! write commits.
//!
//! The checks are cheap enough for `debug_assertions` builds to run
//! them always; release builds run them when requested via
//! [`crate::PipelineOptions::validate`] or `UrsaConfig::paranoid`.
//! A violation is reported as a typed [`ValidationError`] (wrapped in
//! [`crate::CompileError::Validation`]) — never a panic.

use crate::schedule::Schedule;
use crate::vliw::{SlotOp, VliwProgram};
use std::collections::HashMap;
use std::fmt;
use ursa_ir::ddg::{DependenceDag, NodeKind};
use ursa_ir::value::{Operand, VirtualReg};
use ursa_machine::{Machine, OpKind};

/// The pipeline stage after which a check ran.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// After dependence-DAG construction.
    Ddg,
    /// After URSA's allocation (DAG transformation) phase.
    Allocation,
    /// After list/IPS scheduling.
    Schedule,
    /// After register assignment / code emission.
    Emit,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Ddg => "ddg",
            Stage::Allocation => "allocation",
            Stage::Schedule => "schedule",
            Stage::Emit => "emit",
        };
        f.write_str(s)
    }
}

/// A violated stage invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// The dependence DAG has a cycle.
    CyclicDag {
        /// Stage after which the cycle appeared.
        stage: Stage,
    },
    /// The DAG is not anchored on exactly the entry root and exit leaf.
    Unanchored {
        /// Stage after which anchoring broke.
        stage: Stage,
        /// What exactly is wrong.
        detail: String,
    },
    /// Original operations were lost or duplicated by a stage.
    OpsNotConserved {
        /// Stage after which the count changed.
        stage: Stage,
        /// Operations before the stage (spill code excluded).
        expected: usize,
        /// Operations after the stage (spill code excluded).
        actual: usize,
    },
    /// The schedule violates a dependence, capacity, or coverage rule.
    BadSchedule {
        /// The first violation, as reported by [`Schedule::validate`].
        detail: String,
    },
    /// Emitted code touches a register outside the declared file.
    RegisterOutOfFile {
        /// Issue cycle of the offending operation.
        cycle: u64,
        /// The register index.
        reg: u32,
        /// Registers the code declared.
        file: u32,
    },
    /// Emitted code reads a register before any write to it commits.
    ReadBeforeWrite {
        /// Issue cycle of the reading operation.
        cycle: u64,
        /// The register read.
        reg: u32,
    },
    /// Emitted code issues on a unit that is still busy, or on a unit
    /// index the machine does not have.
    BadUnitPlacement {
        /// Issue cycle of the offending operation.
        cycle: u64,
        /// `class#index` of the unit.
        unit: String,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::CyclicDag { stage } => {
                write!(f, "[{stage}] dependence DAG is cyclic")
            }
            ValidationError::Unanchored { stage, detail } => {
                write!(f, "[{stage}] DAG anchoring broken: {detail}")
            }
            ValidationError::OpsNotConserved {
                stage,
                expected,
                actual,
            } => write!(
                f,
                "[{stage}] operation count changed: {expected} original ops \
                 expected, {actual} present"
            ),
            ValidationError::BadSchedule { detail } => {
                write!(f, "[schedule] {detail}")
            }
            ValidationError::RegisterOutOfFile { cycle, reg, file } => {
                write!(
                    f,
                    "[emit] r{reg} outside the {file}-register file at cycle {cycle}"
                )
            }
            ValidationError::ReadBeforeWrite { cycle, reg } => {
                write!(
                    f,
                    "[emit] r{reg} read at cycle {cycle} before its write commits"
                )
            }
            ValidationError::BadUnitPlacement { cycle, unit } => {
                write!(f, "[emit] unit {unit} misused at cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Counts the *original* (non-synthesized) operations of a DAG: real
/// instructions and branches that came from the program, excluding
/// spill code inserted by transformations and compensation memory
/// operations against compiler-private (`__`-prefixed) areas — those
/// are placed into real blocks by the whole-program driver but are not
/// program operations.
pub fn real_op_count(ddg: &DependenceDag) -> usize {
    ddg.fu_nodes()
        .filter(|&n| match ddg.kind(n) {
            NodeKind::Op { instr, block } => {
                *block != usize::MAX
                    && !instr
                        .mem_read()
                        .or_else(|| instr.mem_write())
                        .is_some_and(|m| is_spill_symbol(ddg.symbol_name(m.base)))
            }
            NodeKind::Branch { .. } => true,
            _ => false,
        })
        .count()
}

/// Checks DAG acyclicity and entry/exit anchoring.
pub fn check_dag(stage: Stage, ddg: &DependenceDag) -> Result<(), ValidationError> {
    if !ddg.dag().is_acyclic() {
        return Err(ValidationError::CyclicDag { stage });
    }
    let roots = ddg.dag().roots();
    if roots != vec![ddg.entry()] {
        return Err(ValidationError::Unanchored {
            stage,
            detail: format!("roots are {roots:?}, expected [{}]", ddg.entry()),
        });
    }
    let leaves = ddg.dag().leaves();
    if leaves != vec![ddg.exit()] {
        return Err(ValidationError::Unanchored {
            stage,
            detail: format!("leaves are {leaves:?}, expected [{}]", ddg.exit()),
        });
    }
    Ok(())
}

/// Checks that a transformed DAG still carries exactly the original
/// operations (spill code excluded).
pub fn check_conservation(
    stage: Stage,
    expected_real_ops: usize,
    ddg: &DependenceDag,
) -> Result<(), ValidationError> {
    let actual = real_op_count(ddg);
    if actual != expected_real_ops {
        return Err(ValidationError::OpsNotConserved {
            stage,
            expected: expected_real_ops,
            actual,
        });
    }
    Ok(())
}

/// Checks a schedule for coverage, dependence and capacity violations.
pub fn check_schedule(
    ddg: &DependenceDag,
    schedule: &Schedule,
    machine: &Machine,
) -> Result<(), ValidationError> {
    schedule
        .validate(ddg, machine)
        .map_err(|detail| ValidationError::BadSchedule { detail })
}

/// The reserved name prefix of compiler-private spill areas.
///
/// The parser rejects user symbols starting with this prefix, so for
/// parsed programs prefix matching in [`is_spill_symbol`] is sound.
/// Programs constructed programmatically (`ProgramBuilder`) can still
/// smuggle colliding symbols in; `ursa-lint` reports those as `U0106
/// spill-symbol-collision` because every such memory operation is
/// silently exempted from the conservation checks here.
pub const SPILL_PREFIX: &str = "__";

/// `true` for symbols naming compiler-private spill areas (`__spill`,
/// `__patch_spill`, `__prepass_spill`, `__boundary`). Memory operations
/// against them are spill or cross-unit compensation code, not program
/// operations.
pub fn is_spill_symbol(name: &str) -> bool {
    name.starts_with(SPILL_PREFIX)
}

/// Checks emitted VLIW code: register-file bounds, dependence-respecting
/// word placement (no read before the producing write commits, no unit
/// double-booking) and conservation of the original operations.
///
/// Bounds are checked against the file the code itself declares
/// (`vliw.num_regs`) — Goodman–Hsu may honestly declare a wider file
/// than the machine's and reports the difference as `reg_overflow`.
pub fn check_words(
    vliw: &VliwProgram,
    machine: &Machine,
    expected_real_ops: usize,
) -> Result<(), ValidationError> {
    let file = vliw.num_regs;
    // Earliest cycle at which each register holds a committed value.
    let mut written_at: HashMap<u32, u64> =
        vliw.live_in.iter().map(|&(phys, _)| (phys, 0)).collect();
    let mut unit_busy: HashMap<(ursa_machine::FuClass, u32), u64> = HashMap::new();
    let mut real_ops = 0usize;

    for (c, word) in vliw.words.iter().enumerate() {
        let cycle = c as u64;
        for op in word {
            let (kind, reads, def): (OpKind, Vec<VirtualReg>, Option<VirtualReg>) = match &op.op {
                SlotOp::Instr(i) => (OpKind::of_instr(i), i.uses(), i.def()),
                SlotOp::Branch { cond, .. } => (
                    OpKind::Branch,
                    match cond {
                        Operand::Reg(r) => vec![*r],
                        _ => Vec::new(),
                    },
                    None,
                ),
            };
            // Is this op spill code?
            let spill = match &op.op {
                SlotOp::Instr(i) => i.mem_read().or_else(|| i.mem_write()).is_some_and(|m| {
                    vliw.symbols
                        .get(m.base.index())
                        .is_some_and(|s| is_spill_symbol(s))
                }),
                SlotOp::Branch { .. } => false,
            };
            if !spill {
                real_ops += 1;
            }
            // Unit placement.
            let (class, index) = op.fu;
            if index >= machine.fu_count(class) {
                return Err(ValidationError::BadUnitPlacement {
                    cycle,
                    unit: format!("{class}#{index} (machine has {})", machine.fu_count(class)),
                });
            }
            if let Some(&until) = unit_busy.get(&op.fu) {
                if until > cycle {
                    return Err(ValidationError::BadUnitPlacement {
                        cycle,
                        unit: format!("{class}#{index} busy until {until}"),
                    });
                }
            }
            unit_busy.insert(op.fu, cycle + machine.occupancy_of(kind));
            // Reads.
            for r in reads {
                if r.0 >= file {
                    return Err(ValidationError::RegisterOutOfFile {
                        cycle,
                        reg: r.0,
                        file,
                    });
                }
                match written_at.get(&r.0) {
                    Some(&ready) if ready <= cycle => {}
                    _ => {
                        return Err(ValidationError::ReadBeforeWrite { cycle, reg: r.0 });
                    }
                }
            }
            // Definition.
            if let Some(d) = def {
                if d.0 >= file {
                    return Err(ValidationError::RegisterOutOfFile {
                        cycle,
                        reg: d.0,
                        file,
                    });
                }
                let commit = cycle + machine.latency_of(kind);
                written_at
                    .entry(d.0)
                    .and_modify(|t| *t = (*t).min(commit))
                    .or_insert(commit);
            }
        }
    }
    if real_ops != expected_real_ops {
        return Err(ValidationError::OpsNotConserved {
            stage: Stage::Emit,
            expected: expected_real_ops,
            actual: real_ops,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::list_schedule;
    use ursa_ir::parser::parse;

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn fig2_ddg() -> DependenceDag {
        DependenceDag::from_entry_block(&parse(FIG2).unwrap())
    }

    #[test]
    fn clean_pipeline_passes_all_checks() {
        let ddg = fig2_ddg();
        let machine = Machine::homogeneous(3, 16);
        check_dag(Stage::Ddg, &ddg).unwrap();
        let real = real_op_count(&ddg);
        assert_eq!(real, 11);
        let s = list_schedule(&ddg, &machine);
        check_schedule(&ddg, &s, &machine).unwrap();
        let vliw = crate::assign::assign_registers(&ddg, &s, &machine).unwrap();
        check_words(&vliw, &machine, real).unwrap();
    }

    #[test]
    fn patched_code_conserves_original_ops() {
        let ddg = fig2_ddg();
        let machine = Machine::homogeneous(3, 3);
        let s = list_schedule(&ddg, &machine);
        let (vliw, stats) = crate::patch::patch_spills(&ddg, &s, &machine);
        assert!(stats.stores > 0, "pressure forces spills");
        check_words(&vliw, &machine, 11).unwrap();
    }

    #[test]
    fn register_out_of_file_detected() {
        let ddg = fig2_ddg();
        let machine = Machine::homogeneous(3, 16);
        let s = list_schedule(&ddg, &machine);
        let mut vliw = crate::assign::assign_registers(&ddg, &s, &machine).unwrap();
        vliw.num_regs = 2; // shrink the declared file under the code
        assert!(matches!(
            check_words(&vliw, &machine, 11),
            Err(ValidationError::RegisterOutOfFile { .. })
        ));
    }

    #[test]
    fn lost_op_detected() {
        let ddg = fig2_ddg();
        let machine = Machine::homogeneous(3, 16);
        let s = list_schedule(&ddg, &machine);
        let mut vliw = crate::assign::assign_registers(&ddg, &s, &machine).unwrap();
        // Drop the last word's ops: conservation must trip (or a read
        // of the dropped value, depending on placement).
        for word in vliw.words.iter_mut().rev() {
            if !word.is_empty() {
                word.clear();
                break;
            }
        }
        assert!(check_words(&vliw, &machine, 11).is_err());
    }

    #[test]
    fn spill_symbols_recognized() {
        assert!(is_spill_symbol("__spill"));
        assert!(is_spill_symbol("__patch_spill"));
        assert!(is_spill_symbol("__prepass_spill"));
        assert!(!is_spill_symbol("a"));
    }
}
