//! Resource assignment, VLIW code generation, and the baseline phase
//! orderings URSA is compared against.
//!
//! The paper's pipeline is *allocation* (`ursa-core`) → *assignment* →
//! *code generation* (§2). This crate provides the last two stages plus
//! the three competing phase orderings from §1:
//!
//! * [`schedule`] — resource-constrained list scheduling.
//! * [`assign`] — linear-scan register binding over a fixed schedule.
//! * [`vliw`] — wide instruction words over physical registers.
//! * [`patch`] — postpass spill patching ("spill code … incorporated
//!   into the existing schedule").
//! * [`prepass`] — register allocation before scheduling (anti
//!   dependences restrict the scheduler).
//! * [`ips`] — Goodman–Hsu-style integrated prepass scheduling, the
//!   DAG-driven related work without a spill mechanism.
//!
//! [`compile`] runs any strategy end-to-end on a trace.
//!
//! # Examples
//!
//! ```
//! use ursa_sched::{compile_entry_block, CompileStrategy};
//! use ursa_ir::parser::parse;
//! use ursa_machine::Machine;
//!
//! let program = parse(
//!     "v0 = load a[0]\n\
//!      v1 = mul v0, 2\n\
//!      v2 = mul v0, 3\n\
//!      v3 = add v1, v2\n\
//!      store a[1], v3\n",
//! ).unwrap();
//! let machine = Machine::homogeneous(2, 3);
//! let ursa = compile_entry_block(&program, &machine, CompileStrategy::Ursa(Default::default()));
//! let post = compile_entry_block(&program, &machine, CompileStrategy::Postpass);
//! assert!(ursa.vliw.op_count() >= 5);
//! assert!(post.vliw.op_count() >= 5);
//! ```

pub mod assign;
pub mod ips;
pub mod patch;
pub mod prepass;
pub mod schedule;
pub mod vliw;

pub use assign::{assign_registers, emit_physical, schedule_pressure, AssignError};
pub use ips::{ips_schedule, IpsStats};
pub use patch::{patch_spills, PatchStats};
pub use prepass::{prepass_allocate, PrepassStats};
pub use schedule::{list_schedule, Schedule, ScheduledOp};
pub use vliw::{MachineOp, SlotOp, VliwProgram};

use ursa_core::{allocate, AllocationOutcome, UrsaConfig};
use ursa_ir::ddg::{DdgOptions, DependenceDag};
use ursa_ir::program::Program;
use ursa_ir::trace::Trace;
use ursa_machine::Machine;

/// A compilation strategy — the phase orderings compared in the
/// evaluation.
#[derive(Clone, Debug)]
pub enum CompileStrategy {
    /// URSA: unified allocation, then assignment (the paper's
    /// contribution).
    Ursa(UrsaConfig),
    /// Schedule for parallelism first, patch spills into the schedule
    /// afterwards.
    Postpass,
    /// Allocate registers on the sequential code first, schedule the
    /// anti-dependence-laden result afterwards.
    Prepass,
    /// Goodman–Hsu integrated prepass scheduling (no spill mechanism).
    GoodmanHsu,
}

impl CompileStrategy {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            CompileStrategy::Ursa(_) => "ursa",
            CompileStrategy::Postpass => "postpass",
            CompileStrategy::Prepass => "prepass",
            CompileStrategy::GoodmanHsu => "goodman-hsu",
        }
    }
}

/// Metrics of one compilation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompileStats {
    /// Final schedule length in cycles (including latency drain).
    pub schedule_length: u64,
    /// Spill stores inserted by any stage.
    pub spill_stores: usize,
    /// Spill reloads inserted by any stage.
    pub spill_loads: usize,
    /// Loads + stores in the final code (including program memory ops).
    pub memory_traffic: usize,
    /// Total operations emitted.
    pub ops: usize,
    /// Registers the generated code actually needs beyond the machine's
    /// file (nonzero only for Goodman–Hsu, which cannot spill).
    pub reg_overflow: u32,
    /// URSA sequence edges added (0 for baselines).
    pub sequence_edges: usize,
    /// Critical path of the (possibly transformed) DAG.
    pub critical_path: u64,
}

/// The result of compiling one trace.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The generated wide-word code.
    pub vliw: VliwProgram,
    /// Metrics for the evaluation tables.
    pub stats: CompileStats,
    /// URSA's allocation report, when the strategy was URSA.
    pub outcome: Option<AllocationOutcome>,
}

/// Compiles `trace` of `program` for `machine` under `strategy`.
pub fn compile(
    program: &Program,
    trace: &Trace,
    machine: &Machine,
    strategy: CompileStrategy,
) -> Compiled {
    match strategy {
        CompileStrategy::Ursa(config) => {
            let ddg = DependenceDag::build(program, trace);
            let cp_before = 0; // filled from outcome below
            let outcome = allocate(ddg, machine, &config);
            let ddg = outcome.ddg.clone();
            let schedule = list_schedule(&ddg, machine);
            let (vliw, patch_stats) = match assign_registers(&ddg, &schedule, machine) {
                Ok(v) => (v, PatchStats::default()),
                // Residual excess: the assignment phase falls back to
                // spill patching (paper §2).
                Err(_) => patch_spills(&ddg, &schedule, machine),
            };
            let _ = cp_before;
            let stats = CompileStats {
                schedule_length: vliw.cycle_count() as u64,
                spill_stores: outcome.spill_count() + patch_stats.stores,
                spill_loads: outcome.spill_count() + patch_stats.loads,
                memory_traffic: vliw.memory_traffic(),
                ops: vliw.op_count(),
                reg_overflow: 0,
                sequence_edges: outcome.sequence_edge_count(),
                critical_path: outcome.critical_path,
            };
            Compiled {
                vliw,
                stats,
                outcome: Some(outcome),
            }
        }
        CompileStrategy::Postpass => {
            let ddg = DependenceDag::build(program, trace);
            let schedule = list_schedule(&ddg, machine);
            let (vliw, patch_stats) = patch_spills(&ddg, &schedule, machine);
            let stats = CompileStats {
                schedule_length: vliw.cycle_count() as u64,
                spill_stores: patch_stats.stores,
                spill_loads: patch_stats.loads,
                memory_traffic: vliw.memory_traffic(),
                ops: vliw.op_count(),
                reg_overflow: 0,
                sequence_edges: 0,
                critical_path: schedule.length(),
            };
            Compiled {
                vliw,
                stats,
                outcome: None,
            }
        }
        CompileStrategy::Prepass => {
            assert_eq!(
                trace.blocks.len(),
                1,
                "the prepass baseline allocates one block at a time"
            );
            let (allocated, pre_stats) = prepass_allocate(program, trace.blocks[0], machine);
            let ddg = DependenceDag::build_with(
                &allocated,
                trace,
                DdgOptions {
                    rename: false,
                    ..DdgOptions::default()
                },
            );
            let schedule = list_schedule(&ddg, machine);
            let vliw = emit_physical(&ddg, &schedule, machine);
            let stats = CompileStats {
                schedule_length: vliw.cycle_count() as u64,
                spill_stores: pre_stats.stores,
                spill_loads: pre_stats.loads,
                memory_traffic: vliw.memory_traffic(),
                ops: vliw.op_count(),
                reg_overflow: 0,
                sequence_edges: 0,
                critical_path: schedule.length(),
            };
            Compiled {
                vliw,
                stats,
                outcome: None,
            }
        }
        CompileStrategy::GoodmanHsu => {
            let ddg = DependenceDag::build(program, trace);
            let (schedule, ips_stats) = ips_schedule(&ddg, machine);
            // The technique has no spills; when it overflowed, the code
            // needs a wider file. Assign with exactly what it needs
            // (widening further if in-flight dead writes demand it).
            let mut file = machine.registers().max(ips_stats.max_live);
            let vliw = loop {
                let widened = if file > machine.registers() {
                    machine.with_registers(file)
                } else {
                    machine.clone()
                };
                match assign_registers(&ddg, &schedule, &widened) {
                    Ok(v) => break v,
                    Err(_) => file += 1,
                }
            };
            let ips_stats = IpsStats {
                max_live: file,
                ..ips_stats
            };
            let stats = CompileStats {
                schedule_length: vliw.cycle_count() as u64,
                spill_stores: 0,
                spill_loads: 0,
                memory_traffic: vliw.memory_traffic(),
                ops: vliw.op_count(),
                reg_overflow: ips_stats.max_live.saturating_sub(machine.registers()),
                sequence_edges: 0,
                critical_path: schedule.length(),
            };
            Compiled {
                vliw,
                stats,
                outcome: None,
            }
        }
    }
}

/// Convenience: compile the entry block as a single-block trace.
pub fn compile_entry_block(
    program: &Program,
    machine: &Machine,
    strategy: CompileStrategy,
) -> Compiled {
    compile(program, &Trace::single(0), machine, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::parser::parse;

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn all_strategies() -> Vec<CompileStrategy> {
        vec![
            CompileStrategy::Ursa(UrsaConfig::default()),
            CompileStrategy::Postpass,
            CompileStrategy::Prepass,
            CompileStrategy::GoodmanHsu,
        ]
    }

    #[test]
    fn every_strategy_compiles_fig2() {
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(3, 4);
        for strategy in all_strategies() {
            let name = strategy.name();
            let c = compile_entry_block(&p, &machine, strategy);
            assert!(c.vliw.op_count() >= 11, "{name} lost operations");
            assert!(c.stats.schedule_length > 0, "{name}");
        }
    }

    #[test]
    fn ursa_outcome_present_only_for_ursa() {
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(3, 4);
        let u = compile_entry_block(&p, &machine, CompileStrategy::Ursa(UrsaConfig::default()));
        assert!(u.outcome.is_some());
        let b = compile_entry_block(&p, &machine, CompileStrategy::Postpass);
        assert!(b.outcome.is_none());
    }

    #[test]
    fn ursa_respects_register_file_without_overflow() {
        let p = parse(FIG2).unwrap();
        for regs in [3u32, 4, 5] {
            let machine = Machine::homogeneous(4, regs);
            let c = compile_entry_block(&p, &machine, CompileStrategy::Ursa(UrsaConfig::default()));
            assert_eq!(c.stats.reg_overflow, 0);
            for word in &c.vliw.words {
                for op in word {
                    if let SlotOp::Instr(i) = &op.op {
                        for r in i.uses().into_iter().chain(i.def()) {
                            assert!(r.0 < regs, "{r} outside {regs}-register file");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn goodman_hsu_reports_overflow_on_tight_files() {
        let p = parse(FIG2).unwrap();
        // Width floor of Fig. 2 is 3 concurrent values on the critical
        // antichain; at 3 registers GH may or may not overflow, but its
        // emitted code always declares what it truly needs.
        let machine = Machine::homogeneous(8, 3);
        let c = compile_entry_block(&p, &machine, CompileStrategy::GoodmanHsu);
        assert_eq!(c.vliw.num_regs, machine.registers() + c.stats.reg_overflow);
    }

    #[test]
    fn postpass_spills_more_than_ursa_under_pressure() {
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(4, 4);
        let u = compile_entry_block(&p, &machine, CompileStrategy::Ursa(UrsaConfig::default()));
        let b = compile_entry_block(&p, &machine, CompileStrategy::Postpass);
        // URSA sequences instead of spilling where possible (§5).
        assert!(
            u.stats.memory_traffic <= b.stats.memory_traffic,
            "ursa {} vs postpass {}",
            u.stats.memory_traffic,
            b.stats.memory_traffic
        );
    }
}
