//! Resource assignment, VLIW code generation, and the baseline phase
//! orderings URSA is compared against.
//!
//! The paper's pipeline is *allocation* (`ursa-core`) → *assignment* →
//! *code generation* (§2). This crate provides the last two stages plus
//! the three competing phase orderings from §1:
//!
//! * [`schedule`] — resource-constrained list scheduling.
//! * [`assign`] — linear-scan register binding over a fixed schedule.
//! * [`vliw`] — wide instruction words over physical registers.
//! * [`patch`] — postpass spill patching ("spill code … incorporated
//!   into the existing schedule").
//! * [`prepass`] — register allocation before scheduling (anti
//!   dependences restrict the scheduler).
//! * [`ips`] — Goodman–Hsu-style integrated prepass scheduling, the
//!   DAG-driven related work without a spill mechanism.
//! * [`error`] / [`validate`] — the typed failure taxonomy and the stage
//!   invariant checks of the fail-safe pipeline.
//!
//! [`try_compile`] runs any strategy end-to-end on a trace, degrading
//! down a fallback ladder instead of failing when URSA's heuristics run
//! out of budget; [`compile`] is the panicking wrapper.
//!
//! # Examples
//!
//! ```
//! use ursa_sched::{compile_entry_block, try_compile, CompileStrategy};
//! use ursa_ir::parser::parse;
//! use ursa_ir::Trace;
//! use ursa_machine::Machine;
//!
//! let program = parse(
//!     "v0 = load a[0]\n\
//!      v1 = mul v0, 2\n\
//!      v2 = mul v0, 3\n\
//!      v3 = add v1, v2\n\
//!      store a[1], v3\n",
//! ).unwrap();
//! let machine = Machine::homogeneous(2, 3);
//! let ursa = compile_entry_block(&program, &machine, CompileStrategy::Ursa(Default::default()));
//! let post = compile_entry_block(&program, &machine, CompileStrategy::Postpass);
//! assert!(ursa.vliw.op_count() >= 5);
//! assert!(post.vliw.op_count() >= 5);
//! // The fallible pipeline returns typed errors instead of panicking:
//! let err = try_compile(&program, &Trace::single(7), &machine, CompileStrategy::Postpass);
//! assert!(err.is_err());
//! ```

pub mod assign;
pub mod error;
pub mod ips;
pub mod patch;
pub mod prepass;
pub mod program;
pub mod schedule;
pub mod validate;
pub mod vliw;

pub use assign::{assign_registers, emit_physical, schedule_pressure, AssignError};
pub use error::CompileError;
pub use ips::{ips_schedule, try_ips_schedule, IpsStats};
pub use patch::{patch_spills, try_patch_spills, PatchStats};
pub use prepass::{prepass_allocate, try_prepass_allocate, PrepassStats};
pub use program::{
    compensate, compile_program, try_compile_program, units_for_strategy, CompiledUnit,
    ProgramSchedule, UnitSummary, BOUNDARY_SYMBOL,
};
pub use schedule::{list_schedule, try_list_schedule, Schedule, ScheduledOp};
pub use validate::{is_spill_symbol, Stage, ValidationError, SPILL_PREFIX};
pub use vliw::{MachineOp, SlotOp, VliwProgram};

use std::time::Duration;
use ursa_core::fault::{self, FaultKind, FaultSite};
use ursa_core::{allocate_budgeted, AllocationOutcome, BudgetCause, CompileBudget};
use ursa_core::{Strategy, UrsaConfig};
use ursa_ir::ddg::{DdgOptions, DependenceDag};
use ursa_ir::program::Program;
use ursa_ir::trace::Trace;
use ursa_machine::Machine;

/// A compilation strategy — the phase orderings compared in the
/// evaluation.
#[derive(Clone, Debug)]
pub enum CompileStrategy {
    /// URSA: unified allocation, then assignment (the paper's
    /// contribution).
    Ursa(UrsaConfig),
    /// Schedule for parallelism first, patch spills into the schedule
    /// afterwards.
    Postpass,
    /// Allocate registers on the sequential code first, schedule the
    /// anti-dependence-laden result afterwards.
    Prepass,
    /// Goodman–Hsu integrated prepass scheduling (no spill mechanism).
    GoodmanHsu,
}

impl CompileStrategy {
    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            CompileStrategy::Ursa(_) => "ursa",
            CompileStrategy::Postpass => "postpass",
            CompileStrategy::Prepass => "prepass",
            CompileStrategy::GoodmanHsu => "goodman-hsu",
        }
    }
}

/// How diagnostics from the static lint layer (`ursa-lint`) are
/// treated for a compilation.
///
/// The scheduler only *records* the level — interpreting it would
/// require depending on the linter, which itself depends on this
/// crate. `ursa-lint`'s pipeline wrapper reads the field and runs the
/// translation validator and lint passes accordingly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum LintLevel {
    /// Skip linting entirely.
    #[default]
    Allow,
    /// Report all diagnostics; only validator errors fail the
    /// compilation.
    Warn,
    /// Report all diagnostics; lint warnings fail the compilation too.
    Deny,
}

impl LintLevel {
    /// Parses a level name as accepted by `--lint[=allow|warn|deny]`.
    pub fn parse(name: &str) -> Option<LintLevel> {
        match name {
            "allow" => Some(LintLevel::Allow),
            "warn" => Some(LintLevel::Warn),
            "deny" => Some(LintLevel::Deny),
            _ => None,
        }
    }
}

impl std::fmt::Display for LintLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LintLevel::Allow => "allow",
            LintLevel::Warn => "warn",
            LintLevel::Deny => "deny",
        })
    }
}

/// Pipeline-level options of [`try_compile_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineOptions {
    /// Run the stage invariant checks ([`validate`]) even in release
    /// builds. Debug builds always run them.
    pub validate: bool,
    /// Disable the degradation ladder: an URSA allocation that exhausts
    /// its budget or leaves residual excess becomes
    /// [`CompileError::BudgetExhausted`] (or
    /// [`CompileError::DeadlineExceeded`] for a [`CompileBudget`])
    /// instead of retrying down the fallback rungs.
    pub no_fallback: bool,
    /// How `ursa-lint` treats diagnostics for this compilation (pure
    /// data here; see [`LintLevel`]).
    pub lint: LintLevel,
    /// Run the schedule-quality analysis against the lower-bound
    /// certificates (`ursa-lint` `U03xx` family), with this many cycles
    /// of slack above the schedule-length bound before `U0301` fires.
    /// `None` disables the analysis (pure data here, like `lint`).
    pub bounds: Option<u64>,
    /// Wall-clock budget for the whole compilation (one
    /// [`CompileBudget`] shared by every ladder rung). `None` means no
    /// deadline.
    pub deadline: Option<Duration>,
    /// Cooperative work-step cap for the whole compilation. `None`
    /// means no cap.
    pub max_steps: Option<u64>,
    /// Catch panics at the trace boundary and convert them into
    /// [`CompileError::Internal`] with stage attribution, instead of
    /// unwinding through the caller.
    pub isolate: bool,
    /// Dependence-construction options for every DAG the pipeline
    /// builds. The whole-program driver sets
    /// [`DdgOptions::materialize_final_branch`] so unit code carries its
    /// final conditional branch.
    pub ddg: DdgOptions,
}

/// One rung of the degradation ladder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FallbackRung {
    /// An URSA allocation rung with the given discipline.
    Allocation(Strategy),
    /// The terminal rung: postpass spill patching of the last
    /// transformed DAG (always applicable, paper §4.3).
    PostpassPatch,
}

impl std::fmt::Display for FallbackRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FallbackRung::Allocation(Strategy::Integrated) => "integrated",
            FallbackRung::Allocation(Strategy::Phased) => "phased",
            FallbackRung::Allocation(Strategy::PhasedFuFirst) => "phased-fu-first",
            FallbackRung::Allocation(Strategy::SpillOnly) => "spill-only",
            FallbackRung::PostpassPatch => "postpass-patch",
        };
        f.write_str(s)
    }
}

/// Why a rung was abandoned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RungFailure {
    /// The allocation loop hit its iteration budget.
    IterationLimit {
        /// The budget that was exhausted.
        iterations: usize,
    },
    /// The transformations converged but left excess requirements.
    ResidualExcess {
        /// The remaining total excess.
        excess: u32,
    },
    /// Allocation claimed success but register assignment still
    /// overflowed (the `Kill()` heuristic under-measured, paper §2).
    AssignOverflow {
        /// The overflowing cycle.
        cycle: u64,
    },
    /// The shared [`CompileBudget`] exhausted during this rung; the
    /// ladder demotes straight to the terminal rung carrying the
    /// best-so-far DAG (retrying cheaper allocation rungs cannot
    /// un-exhaust a sticky budget).
    Budget {
        /// Which budget dimension ran out.
        cause: BudgetCause,
    },
}

impl std::fmt::Display for RungFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RungFailure::IterationLimit { iterations } => {
                write!(f, "iteration limit ({iterations}) hit")
            }
            RungFailure::ResidualExcess { excess } => {
                write!(f, "residual excess {excess}")
            }
            RungFailure::AssignOverflow { cycle } => {
                write!(f, "assignment overflowed at cycle {cycle}")
            }
            RungFailure::Budget { cause } => {
                write!(f, "compile budget exhausted ({cause})")
            }
        }
    }
}

/// Which rung of the degradation ladder produced the code, and which
/// rungs were tried and abandoned on the way down.
#[derive(Clone, Debug)]
pub struct FallbackReport {
    /// Abandoned rungs, in the order they were tried.
    pub attempts: Vec<(FallbackRung, RungFailure)>,
    /// The rung that produced the final code.
    pub rung: FallbackRung,
}

impl FallbackReport {
    /// `true` when the configured strategy did not produce the code
    /// itself.
    pub fn degraded(&self) -> bool {
        !self.attempts.is_empty()
    }
}

impl std::fmt::Display for FallbackReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (rung, why) in &self.attempts {
            write!(f, "{rung} failed ({why}); ")?;
        }
        write!(f, "code from {} rung", self.rung)
    }
}

/// Metrics of one compilation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompileStats {
    /// Final schedule length in cycles (including latency drain).
    pub schedule_length: u64,
    /// Spill stores inserted by any stage.
    pub spill_stores: usize,
    /// Spill reloads inserted by any stage.
    pub spill_loads: usize,
    /// Loads + stores in the final code (including program memory ops).
    pub memory_traffic: usize,
    /// Total operations emitted.
    pub ops: usize,
    /// Registers the generated code actually needs beyond the machine's
    /// file (nonzero only for Goodman–Hsu, which cannot spill).
    pub reg_overflow: u32,
    /// URSA sequence edges added (0 for baselines).
    pub sequence_edges: usize,
    /// Critical path of the (possibly transformed) DAG.
    pub critical_path: u64,
}

/// The result of compiling one trace.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The generated wide-word code.
    pub vliw: VliwProgram,
    /// Metrics for the evaluation tables.
    pub stats: CompileStats,
    /// URSA's allocation report, when the strategy was URSA.
    pub outcome: Option<AllocationOutcome>,
    /// Degradation-ladder report, when the strategy was URSA.
    pub fallback: Option<FallbackReport>,
}

/// Compiles `trace` of `program` for `machine` under `strategy`,
/// panicking on any [`try_compile`] error.
pub fn compile(
    program: &Program,
    trace: &Trace,
    machine: &Machine,
    strategy: CompileStrategy,
) -> Compiled {
    try_compile(program, trace, machine, strategy).unwrap_or_else(|e| panic!("compile: {e}"))
}

/// Compiles `trace` of `program` for `machine` under `strategy` with
/// default [`PipelineOptions`] (degradation ladder on, release-build
/// invariant checks off).
///
/// # Errors
///
/// See [`CompileError`]. With the ladder enabled (the default), URSA
/// strategies fail only when even postpass spill patching cannot fit
/// the machine (e.g. too few registers for a single instruction).
pub fn try_compile(
    program: &Program,
    trace: &Trace,
    machine: &Machine,
    strategy: CompileStrategy,
) -> Result<Compiled, CompileError> {
    try_compile_with(
        program,
        trace,
        machine,
        strategy,
        &PipelineOptions::default(),
    )
}

/// [`try_compile`] with explicit [`PipelineOptions`].
///
/// With [`PipelineOptions::isolate`] set, any panic below this frame is
/// caught at the trace boundary and converted into
/// [`CompileError::Internal`] attributed to the stage marker current
/// when the panic unwound.
pub fn try_compile_with(
    program: &Program,
    trace: &Trace,
    machine: &Machine,
    strategy: CompileStrategy,
    opts: &PipelineOptions,
) -> Result<Compiled, CompileError> {
    fault::set_stage("setup");
    if opts.isolate {
        // UnwindSafe audit: the closure borrows `program`, `trace`, and
        // `machine` immutably and owns every value it mutates; a panic
        // drops all partial products with the unwound stack, so no
        // caller-visible state can be observed torn. The only shared
        // state is the fault/stage thread-local, which is exactly what
        // the recovery path reads.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            try_compile_inner(program, trace, machine, strategy, opts)
        })) {
            Ok(result) => result,
            Err(_) => Err(CompileError::Internal {
                stage: fault::current_stage(),
            }),
        }
    } else {
        try_compile_inner(program, trace, machine, strategy, opts)
    }
}

fn try_compile_inner(
    program: &Program,
    trace: &Trace,
    machine: &Machine,
    strategy: CompileStrategy,
    opts: &PipelineOptions,
) -> Result<Compiled, CompileError> {
    if trace.blocks.is_empty() {
        return Err(CompileError::UnsupportedTrace {
            strategy: strategy.name(),
            blocks: 0,
        });
    }
    for &b in &trace.blocks {
        if b >= program.blocks.len() {
            return Err(CompileError::TraceOutOfRange {
                block: b,
                blocks: program.blocks.len(),
            });
        }
    }
    let checking = opts.validate || cfg!(debug_assertions);
    match strategy {
        CompileStrategy::Ursa(config) => compile_ursa(program, trace, machine, config, opts),
        CompileStrategy::Postpass => {
            let ddg = DependenceDag::build_with(program, trace, opts.ddg);
            let real_ops = validate::real_op_count(&ddg);
            if checking {
                validate::check_dag(Stage::Ddg, &ddg)?;
            }
            fault::set_stage("schedule");
            let schedule = try_list_schedule(&ddg, machine)?;
            if checking {
                validate::check_schedule(&ddg, &schedule, machine)?;
            }
            fault::set_stage("patch");
            let (vliw, patch_stats) = try_patch_spills(&ddg, &schedule, machine)?;
            if checking {
                validate::check_words(&vliw, machine, real_ops)?;
            }
            let stats = CompileStats {
                schedule_length: vliw.cycle_count() as u64,
                spill_stores: patch_stats.stores,
                spill_loads: patch_stats.loads,
                memory_traffic: vliw.memory_traffic(),
                ops: vliw.op_count(),
                reg_overflow: 0,
                sequence_edges: 0,
                critical_path: schedule.length(),
            };
            Ok(Compiled {
                vliw,
                stats,
                outcome: None,
                fallback: None,
            })
        }
        CompileStrategy::Prepass => {
            if trace.blocks.len() != 1 {
                return Err(CompileError::UnsupportedTrace {
                    strategy: "prepass",
                    blocks: trace.blocks.len(),
                });
            }
            fault::set_stage("allocation");
            let (allocated, pre_stats) = try_prepass_allocate(program, trace.blocks[0], machine)?;
            let ddg = DependenceDag::build_with(
                &allocated,
                trace,
                DdgOptions {
                    rename: false,
                    ..opts.ddg
                },
            );
            if checking {
                validate::check_dag(Stage::Ddg, &ddg)?;
            }
            fault::set_stage("schedule");
            let schedule = try_list_schedule(&ddg, machine)?;
            if checking {
                validate::check_schedule(&ddg, &schedule, machine)?;
            }
            fault::set_stage("assign");
            let vliw = emit_physical(&ddg, &schedule, machine);
            if checking {
                let expected =
                    validate::real_op_count(&DependenceDag::build_with(program, trace, opts.ddg));
                validate::check_words(&vliw, machine, expected)?;
            }
            let stats = CompileStats {
                schedule_length: vliw.cycle_count() as u64,
                spill_stores: pre_stats.stores,
                spill_loads: pre_stats.loads,
                memory_traffic: vliw.memory_traffic(),
                ops: vliw.op_count(),
                reg_overflow: 0,
                sequence_edges: 0,
                critical_path: schedule.length(),
            };
            Ok(Compiled {
                vliw,
                stats,
                outcome: None,
                fallback: None,
            })
        }
        CompileStrategy::GoodmanHsu => {
            let ddg = DependenceDag::build_with(program, trace, opts.ddg);
            let real_ops = validate::real_op_count(&ddg);
            if checking {
                validate::check_dag(Stage::Ddg, &ddg)?;
            }
            fault::set_stage("schedule");
            let (schedule, ips_stats) = try_ips_schedule(&ddg, machine)?;
            if checking {
                validate::check_schedule(&ddg, &schedule, machine)?;
            }
            // The technique has no spills; when it overflowed, the code
            // needs a wider file. Assign with exactly what it needs
            // (widening further if in-flight dead writes demand it),
            // within a hard cap — widening past it would mean the
            // widening loop itself is broken, not the input.
            fault::set_stage("assign");
            let start = machine.registers().max(ips_stats.max_live);
            let cap = machine.registers() as u64 + ips_stats.max_live as u64 + schedule.length();
            let (vliw, file) = widen_and_assign(&ddg, &schedule, machine, start, cap)?;
            if checking {
                validate::check_words(&vliw, machine, real_ops)?;
            }
            let ips_stats = IpsStats {
                max_live: file,
                ..ips_stats
            };
            let stats = CompileStats {
                schedule_length: vliw.cycle_count() as u64,
                spill_stores: 0,
                spill_loads: 0,
                memory_traffic: vliw.memory_traffic(),
                ops: vliw.op_count(),
                reg_overflow: ips_stats.max_live.saturating_sub(machine.registers()),
                sequence_edges: 0,
                critical_path: schedule.length(),
            };
            Ok(Compiled {
                vliw,
                stats,
                outcome: None,
                fallback: None,
            })
        }
    }
}

/// The allocation rungs tried for a configured discipline, most capable
/// first. Spill-only is always last among allocation rungs because
/// spilling is the one transformation that is always applicable (§4.3).
fn ladder_for(configured: Strategy) -> Vec<Strategy> {
    match configured {
        Strategy::Integrated => vec![Strategy::Integrated, Strategy::Phased, Strategy::SpillOnly],
        Strategy::Phased => vec![Strategy::Phased, Strategy::SpillOnly],
        Strategy::PhasedFuFirst => vec![
            Strategy::PhasedFuFirst,
            Strategy::Phased,
            Strategy::SpillOnly,
        ],
        Strategy::SpillOnly => vec![Strategy::SpillOnly],
    }
}

fn compile_ursa(
    program: &Program,
    trace: &Trace,
    machine: &Machine,
    config: UrsaConfig,
    opts: &PipelineOptions,
) -> Result<Compiled, CompileError> {
    let checking = opts.validate || config.paranoid || cfg!(debug_assertions);
    let ddg0 = DependenceDag::build_with(program, trace, opts.ddg);
    if checking {
        validate::check_dag(Stage::Ddg, &ddg0)?;
    }
    let real_ops = validate::real_op_count(&ddg0);

    let rungs = if opts.no_fallback {
        vec![config.strategy]
    } else {
        ladder_for(config.strategy)
    };
    // ONE budget for the whole ladder: a rung that burns the wall-clock
    // allowance must not hand the next rung a fresh deadline.
    let budget = CompileBudget::new(opts.deadline, opts.max_steps, None);
    let mut attempts: Vec<(FallbackRung, RungFailure)> = Vec::new();
    let mut last_outcome: Option<AllocationOutcome> = None;
    for rung_strategy in rungs {
        let rung_config = UrsaConfig {
            strategy: rung_strategy,
            ..config
        };
        fault::set_stage("allocation");
        let outcome = allocate_budgeted(ddg0.clone(), machine, &rung_config, &budget);
        if checking {
            validate::check_dag(Stage::Allocation, &outcome.ddg)?;
            validate::check_conservation(Stage::Allocation, real_ops, &outcome.ddg)?;
        }
        let rung = FallbackRung::Allocation(rung_strategy);
        if outcome.budget_exhausted && (outcome.residual_excess > 0 || outcome.hit_iteration_limit)
        {
            // The budget is sticky; cheaper allocation rungs would stop
            // at their first checkpoint. Demote straight to the terminal
            // rung carrying this rung's best-so-far DAG (anytime
            // semantics).
            attempts.push((
                rung,
                RungFailure::Budget {
                    cause: budget.cause().unwrap_or(BudgetCause::Steps),
                },
            ));
            last_outcome = Some(outcome);
            break;
        }
        if outcome.hit_iteration_limit {
            attempts.push((
                rung,
                RungFailure::IterationLimit {
                    iterations: rung_config.max_iterations,
                },
            ));
            last_outcome = Some(outcome);
            continue;
        }
        if outcome.residual_excess > 0 {
            attempts.push((
                rung,
                RungFailure::ResidualExcess {
                    excess: outcome.residual_excess,
                },
            ));
            last_outcome = Some(outcome);
            continue;
        }
        fault::set_stage("schedule");
        let schedule = try_list_schedule(&outcome.ddg, machine)?;
        if checking {
            validate::check_schedule(&outcome.ddg, &schedule, machine)?;
        }
        fault::set_stage("assign");
        match assign_registers(&outcome.ddg, &schedule, machine) {
            Ok(vliw) => {
                if checking {
                    validate::check_words(&vliw, machine, real_ops)?;
                }
                return Ok(finish_ursa(
                    vliw,
                    PatchStats::default(),
                    outcome,
                    FallbackReport { attempts, rung },
                ));
            }
            Err(e) => {
                attempts.push((rung, RungFailure::AssignOverflow { cycle: e.cycle }));
                last_outcome = Some(outcome);
            }
        }
    }
    let outcome = last_outcome.expect("at least one allocation rung ran");
    if opts.no_fallback {
        if let Some(cause) = budget.cause() {
            return Err(CompileError::DeadlineExceeded {
                cause,
                steps: budget.steps(),
            });
        }
        return Err(CompileError::BudgetExhausted {
            iterations: config.max_iterations,
            residual_excess: outcome.residual_excess,
        });
    }
    // Terminal rung: postpass spill patching of the most-transformed DAG
    // (paper §2 makes the assignment phase responsible for residual
    // excess; §4.3 spilling is always applicable). It runs unmetered:
    // the epilogue is bounded work, and an exhausted budget must still
    // yield code, never a hang or a hard failure.
    fault::set_stage("schedule");
    let schedule = try_list_schedule(&outcome.ddg, machine)?;
    if checking {
        validate::check_schedule(&outcome.ddg, &schedule, machine)?;
    }
    fault::set_stage("patch");
    let (vliw, patch_stats) = try_patch_spills(&outcome.ddg, &schedule, machine)?;
    if checking {
        validate::check_words(&vliw, machine, real_ops)?;
    }
    Ok(finish_ursa(
        vliw,
        patch_stats,
        outcome,
        FallbackReport {
            attempts,
            rung: FallbackRung::PostpassPatch,
        },
    ))
}

fn finish_ursa(
    vliw: VliwProgram,
    patch_stats: PatchStats,
    outcome: AllocationOutcome,
    fallback: FallbackReport,
) -> Compiled {
    let stats = CompileStats {
        schedule_length: vliw.cycle_count() as u64,
        spill_stores: outcome.spill_count() + patch_stats.stores,
        spill_loads: outcome.spill_count() + patch_stats.loads,
        memory_traffic: vliw.memory_traffic(),
        ops: vliw.op_count(),
        reg_overflow: 0,
        sequence_edges: outcome.sequence_edge_count(),
        critical_path: outcome.critical_path,
    };
    Compiled {
        vliw,
        stats,
        outcome: Some(outcome),
        fallback: Some(fallback),
    }
}

/// Widens the register file from `start` until assignment succeeds,
/// refusing past `cap` (the Goodman–Hsu technique has no spill
/// mechanism, so the file must grow to what the code truly needs).
fn widen_and_assign(
    ddg: &DependenceDag,
    schedule: &Schedule,
    machine: &Machine,
    start: u32,
    mut cap: u64,
) -> Result<(VliwProgram, u32), CompileError> {
    if let Some(plan) = fault::trip(FaultSite::Widen) {
        match plan.kind {
            FaultKind::Panic => fault::trip_panic(FaultSite::Widen),
            // Collapse the widening cap: any widening attempt now hits
            // it and surfaces as a typed RegisterOverflow.
            _ => cap = 0,
        }
    }
    let mut file = start;
    loop {
        let widened = if file > machine.registers() {
            machine.with_registers(file)
        } else {
            machine.clone()
        };
        match assign_registers(ddg, schedule, &widened) {
            Ok(v) => return Ok((v, file)),
            Err(_) => {
                file += 1;
                if file as u64 > cap {
                    return Err(CompileError::RegisterOverflow {
                        needed: file,
                        available: machine.registers(),
                    });
                }
            }
        }
    }
}

/// Convenience: compile the entry block as a single-block trace.
pub fn compile_entry_block(
    program: &Program,
    machine: &Machine,
    strategy: CompileStrategy,
) -> Compiled {
    compile(program, &Trace::entry(), machine, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::parser::parse;

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn all_strategies() -> Vec<CompileStrategy> {
        vec![
            CompileStrategy::Ursa(UrsaConfig::default()),
            CompileStrategy::Postpass,
            CompileStrategy::Prepass,
            CompileStrategy::GoodmanHsu,
        ]
    }

    #[test]
    fn every_strategy_compiles_fig2() {
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(3, 4);
        for strategy in all_strategies() {
            let name = strategy.name();
            let c = compile_entry_block(&p, &machine, strategy);
            assert!(c.vliw.op_count() >= 11, "{name} lost operations");
            assert!(c.stats.schedule_length > 0, "{name}");
        }
    }

    #[test]
    fn ursa_outcome_present_only_for_ursa() {
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(3, 4);
        let u = compile_entry_block(&p, &machine, CompileStrategy::Ursa(UrsaConfig::default()));
        assert!(u.outcome.is_some());
        assert!(u.fallback.is_some());
        let b = compile_entry_block(&p, &machine, CompileStrategy::Postpass);
        assert!(b.outcome.is_none());
        assert!(b.fallback.is_none());
    }

    #[test]
    fn ursa_respects_register_file_without_overflow() {
        let p = parse(FIG2).unwrap();
        for regs in [3u32, 4, 5] {
            let machine = Machine::homogeneous(4, regs);
            let c = compile_entry_block(&p, &machine, CompileStrategy::Ursa(UrsaConfig::default()));
            assert_eq!(c.stats.reg_overflow, 0);
            for word in &c.vliw.words {
                for op in word {
                    if let SlotOp::Instr(i) = &op.op {
                        for r in i.uses().into_iter().chain(i.def()) {
                            assert!(r.0 < regs, "{r} outside {regs}-register file");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn goodman_hsu_reports_overflow_on_tight_files() {
        let p = parse(FIG2).unwrap();
        // Width floor of Fig. 2 is 3 concurrent values on the critical
        // antichain; at 3 registers GH may or may not overflow, but its
        // emitted code always declares what it truly needs.
        let machine = Machine::homogeneous(8, 3);
        let c = compile_entry_block(&p, &machine, CompileStrategy::GoodmanHsu);
        assert_eq!(c.vliw.num_regs, machine.registers() + c.stats.reg_overflow);
    }

    #[test]
    fn goodman_hsu_widening_cap_is_honest() {
        // With an artificially tiny cap the widening loop must return a
        // typed overflow, not loop or panic.
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(8, 2);
        let ddg = DependenceDag::from_entry_block(&p);
        let (schedule, _) = ips_schedule(&ddg, &machine);
        let err = widen_and_assign(&ddg, &schedule, &machine, machine.registers(), 2).unwrap_err();
        assert!(matches!(
            err,
            CompileError::RegisterOverflow { available: 2, .. }
        ));
    }

    #[test]
    fn postpass_spills_more_than_ursa_under_pressure() {
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(4, 4);
        let u = compile_entry_block(&p, &machine, CompileStrategy::Ursa(UrsaConfig::default()));
        let b = compile_entry_block(&p, &machine, CompileStrategy::Postpass);
        // URSA sequences instead of spilling where possible (§5).
        assert!(
            u.stats.memory_traffic <= b.stats.memory_traffic,
            "ursa {} vs postpass {}",
            u.stats.memory_traffic,
            b.stats.memory_traffic
        );
    }

    #[test]
    fn clean_compile_reports_top_rung() {
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(3, 16);
        let c = compile_entry_block(&p, &machine, CompileStrategy::Ursa(UrsaConfig::default()));
        let report = c.fallback.expect("ursa reports fallback");
        assert!(!report.degraded());
        assert_eq!(report.rung, FallbackRung::Allocation(Strategy::Integrated));
    }

    #[test]
    fn budget_demotion_is_recorded_and_code_still_emitted() {
        // A one-step cap exhausts during the first allocation rung; the
        // ladder must demote straight to the terminal rung, record the
        // Budget failure, and still emit all the code (anytime
        // semantics — a budget stop is never a hard failure).
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(3, 4);
        let opts = PipelineOptions {
            max_steps: Some(1),
            ..Default::default()
        };
        let c = try_compile_with(
            &p,
            &Trace::single(0),
            &machine,
            CompileStrategy::Ursa(UrsaConfig::default()),
            &opts,
        )
        .expect("budget exhaustion must degrade, not fail");
        assert!(c.vliw.op_count() >= 11, "operations were lost");
        let report = c.fallback.expect("ursa reports fallback");
        assert!(report.degraded());
        assert_eq!(report.rung, FallbackRung::PostpassPatch);
        assert!(
            report.attempts.iter().any(|(_, why)| matches!(
                why,
                RungFailure::Budget {
                    cause: ursa_core::BudgetCause::Steps
                }
            )),
            "no Budget rung failure recorded: {report}"
        );
        // Exactly one allocation rung was attempted: a sticky budget
        // makes retrying cheaper allocation rungs pointless.
        assert_eq!(report.attempts.len(), 1, "{report}");
    }

    #[test]
    fn no_fallback_budget_is_a_typed_deadline_error() {
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(3, 4);
        let opts = PipelineOptions {
            no_fallback: true,
            max_steps: Some(1),
            ..Default::default()
        };
        let err = try_compile_with(
            &p,
            &Trace::single(0),
            &machine,
            CompileStrategy::Ursa(UrsaConfig::default()),
            &opts,
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                CompileError::DeadlineExceeded {
                    cause: ursa_core::BudgetCause::Steps,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn injected_panic_is_isolated_to_a_typed_internal_error() {
        use ursa_core::FaultPlan;
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(3, 4);
        fault::arm(FaultPlan {
            site: FaultSite::Driver,
            kind: FaultKind::Panic,
            payload: 0,
        });
        let opts = PipelineOptions {
            isolate: true,
            ..Default::default()
        };
        let result = try_compile_with(
            &p,
            &Trace::single(0),
            &machine,
            CompileStrategy::Ursa(UrsaConfig::default()),
            &opts,
        );
        let _ = fault::disarm();
        let err = result.unwrap_err();
        assert!(
            matches!(
                err,
                CompileError::Internal {
                    stage: "allocation"
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn deadline_bounds_a_1024_op_fu_pressure_compile() {
        use std::time::Instant;
        use ursa_workloads::random::{random_block, RandomShape};
        // Two universal FUs against a ~64-wide DAG force round after
        // round of fu_seq; the register file is generous so FU
        // sequentialization is the only pressured transform. The
        // deadline must stop the reduce loop at a checkpoint and the
        // terminal rung must still emit every operation, well inside
        // the 2 s acceptance bound.
        let p = random_block(
            11,
            RandomShape {
                ops: 1024,
                seeds: 8,
                window: 16,
                store_pct: 10,
            },
        );
        let machine = Machine::homogeneous(2, 1 << 14);
        let opts = PipelineOptions {
            deadline: Some(Duration::from_millis(100)),
            ..Default::default()
        };
        let start = Instant::now();
        let c = try_compile_with(
            &p,
            &Trace::single(0),
            &machine,
            CompileStrategy::Ursa(UrsaConfig::default()),
            &opts,
        )
        .expect("a deadline stop must degrade, not fail");
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(2),
            "compile took {elapsed:?} under a 100 ms deadline"
        );
        assert!(c.vliw.op_count() >= 1024, "operations were lost");
    }

    #[test]
    fn empty_trace_is_a_typed_error() {
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(3, 4);
        let err = try_compile(
            &p,
            &Trace { blocks: vec![] },
            &machine,
            CompileStrategy::Postpass,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CompileError::UnsupportedTrace { blocks: 0, .. }
        ));
    }
}
