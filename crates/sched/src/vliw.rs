//! VLIW object code: wide instruction words over physical registers.

use std::fmt;
use ursa_ir::instr::Instr;
use ursa_ir::value::Operand;
use ursa_machine::FuClass;

/// What one slot of a VLIW word executes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SlotOp {
    /// A regular instruction; all registers are physical (index below
    /// the machine's register count).
    Instr(Instr),
    /// An on-trace conditional branch: execution leaves the trace when
    /// `(cond != 0) == exit_on_true`.
    Branch {
        /// Condition operand (physical register or immediate).
        cond: Operand,
        /// Polarity of the exit: `true` means a nonzero condition
        /// leaves the trace, `false` means a zero condition does.
        exit_on_true: bool,
    },
}

/// One operation bound to a functional unit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MachineOp {
    /// The operation.
    pub op: SlotOp,
    /// Functional-unit class and index executing it.
    pub fu: (FuClass, u32),
}

/// A compiled trace: one wide word per cycle.
#[derive(Clone, Debug, Default)]
pub struct VliwProgram {
    /// `words[c]` = operations issued at cycle `c` (possibly empty).
    pub words: Vec<Vec<MachineOp>>,
    /// Symbol names (indexed by `SymbolId`), including any spill area.
    pub symbols: Vec<String>,
    /// Number of physical registers the code may touch.
    pub num_regs: u32,
    /// Live-in values: `(physical register, original virtual register)`
    /// pairs the caller must initialize before execution.
    pub live_in: Vec<(u32, ursa_ir::value::VirtualReg)>,
}

impl VliwProgram {
    /// Number of cycles (words), including latency drain at the end.
    pub fn cycle_count(&self) -> usize {
        self.words.len()
    }

    /// Total operations across all words.
    pub fn op_count(&self) -> usize {
        self.words.iter().map(Vec::len).sum()
    }

    /// Number of memory operations (loads + stores) — the paper's
    /// motivation metric for register allocation quality.
    pub fn memory_traffic(&self) -> usize {
        self.words
            .iter()
            .flatten()
            .filter(|op| {
                matches!(
                    &op.op,
                    SlotOp::Instr(Instr::Load { .. }) | SlotOp::Instr(Instr::Store { .. })
                )
            })
            .count()
    }

    /// Utilization: operations per cycle, over the issued width.
    pub fn ops_per_cycle(&self) -> f64 {
        if self.words.is_empty() {
            return 0.0;
        }
        self.op_count() as f64 / self.words.len() as f64
    }
}

impl fmt::Display for VliwProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (c, word) in self.words.iter().enumerate() {
            write!(f, "{c:4}: ")?;
            if word.is_empty() {
                writeln!(f, "nop")?;
                continue;
            }
            for (i, op) in word.iter().enumerate() {
                if i > 0 {
                    write!(f, " || ")?;
                }
                match &op.op {
                    SlotOp::Instr(instr) => write!(f, "{instr}")?,
                    SlotOp::Branch { cond, exit_on_true } => {
                        let mnem = if *exit_on_true { "br.nz" } else { "br.z" };
                        write!(f, "{mnem} {cond}")?
                    }
                }
                write!(f, " @{}{}", op.fu.0, op.fu.1)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::value::VirtualReg;

    fn sample() -> VliwProgram {
        VliwProgram {
            words: vec![
                vec![MachineOp {
                    op: SlotOp::Instr(Instr::Const {
                        dst: VirtualReg(0),
                        value: 1,
                    }),
                    fu: (FuClass::Universal, 0),
                }],
                vec![],
                vec![MachineOp {
                    op: SlotOp::Instr(Instr::Store {
                        mem: ursa_ir::value::MemRef::new(ursa_ir::value::SymbolId(0), 0i64),
                        src: Operand::Reg(VirtualReg(0)),
                    }),
                    fu: (FuClass::Universal, 1),
                }],
            ],
            symbols: vec!["a".into()],
            num_regs: 4,
            live_in: Vec::new(),
        }
    }

    #[test]
    fn counters() {
        let p = sample();
        assert_eq!(p.cycle_count(), 3);
        assert_eq!(p.op_count(), 2);
        assert_eq!(p.memory_traffic(), 1);
        assert!((p.ops_per_cycle() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn display_shows_nops_and_slots() {
        let text = sample().to_string();
        assert!(text.contains("nop"));
        assert!(text.contains("||") || text.contains("@universal"));
        assert!(text.contains("store"));
    }

    #[test]
    fn empty_program() {
        let p = VliwProgram::default();
        assert_eq!(p.cycle_count(), 0);
        assert_eq!(p.ops_per_cycle(), 0.0);
    }
}
