//! Spill patching of a fixed schedule — the *postpass* discipline.
//!
//! "If instruction scheduling is performed before register allocation
//! then any spill code that is introduced must be incorporated into the
//! existing schedule" (paper §1). This module does exactly that: it
//! replays a schedule produced without register constraints, and
//! whenever the register file overflows it weaves stores and reloads
//! into the instruction stream, stretching the schedule. The same
//! machinery serves as URSA's emergency fallback for residual excess
//! (paper §2 assigns leftover overflows to the assignment phase).

use crate::error::CompileError;
use crate::schedule::{node_class, node_latency, Schedule};
use crate::vliw::{MachineOp, SlotOp, VliwProgram};
use std::collections::{BTreeSet, HashMap};
use ursa_graph::dag::NodeId;
use ursa_ir::ddg::{DependenceDag, NodeKind};
use ursa_ir::instr::Instr;
use ursa_ir::value::{MemRef, Operand, SymbolId, VirtualReg};
use ursa_machine::{FuClass, Machine, OpKind};

/// Spill activity of a patch run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PatchStats {
    /// Stores inserted.
    pub stores: usize,
    /// Reloads inserted.
    pub loads: usize,
}

/// Word-by-word emitter with per-unit busy tracking (non-pipelined).
struct Emitter<'m> {
    machine: &'m Machine,
    words: Vec<Vec<MachineOp>>,
    unit_busy: HashMap<FuClass, Vec<u64>>,
    end: u64,
}

impl<'m> Emitter<'m> {
    fn new(machine: &'m Machine) -> Self {
        Emitter {
            machine,
            words: Vec::new(),
            unit_busy: machine
                .fu_classes()
                .iter()
                .map(|&(c, k)| (c, vec![0u64; k as usize]))
                .collect(),
            end: 0,
        }
    }

    /// Issues `op` at the earliest cycle ≥ `earliest` with a free unit
    /// of `class`; returns the issue cycle. The unit stays occupied for
    /// `occ` cycles; the schedule drains until `t + lat`.
    fn issue(
        &mut self,
        earliest: u64,
        class: FuClass,
        lat: u64,
        occ: u64,
        op: SlotOp,
    ) -> Result<u64, CompileError> {
        let units = self
            .unit_busy
            .get_mut(&class)
            .filter(|u| !u.is_empty())
            .ok_or(CompileError::MissingUnit { class })?;
        let (idx, t) = units
            .iter()
            .enumerate()
            .map(|(i, &busy)| (i, busy.max(earliest)))
            .min_by_key(|&(i, t)| (t, i))
            .expect("class has at least one unit");
        units[idx] = t + occ;
        while self.words.len() <= t as usize {
            self.words.push(Vec::new());
        }
        self.words[t as usize].push(MachineOp {
            op,
            fu: (class, idx as u32),
        });
        self.end = self.end.max(t + lat);
        Ok(t)
    }
}

/// Per-value location during patching.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Loc {
    Reg(u32),
    Mem,
}

/// Replays `schedule`, assigning physical registers on the fly and
/// inserting spill code wherever the file overflows; panics on any
/// [`try_patch_spills`] error.
///
/// # Panics
///
/// Panics if the machine has fewer registers than the widest single
/// instruction needs (operands of one op must be simultaneously
/// resident — 3 registers always suffice for three-address code), or if
/// more live-in values exist than registers.
pub fn patch_spills(
    ddg: &DependenceDag,
    schedule: &Schedule,
    machine: &Machine,
) -> (VliwProgram, PatchStats) {
    try_patch_spills(ddg, schedule, machine).unwrap_or_else(|e| panic!("patch_spills: {e}"))
}

/// Replays `schedule`, assigning physical registers on the fly and
/// inserting spill code wherever the file overflows. This is the
/// always-applicable last rung of the degradation ladder (paper §4.3):
/// it only fails on machines that cannot execute the program at all.
///
/// # Errors
///
/// [`CompileError::RegisterOverflow`] when more live-in values exist
/// than registers, [`CompileError::FileTooSmall`] when the file cannot
/// hold the operands of a single instruction, and
/// [`CompileError::MissingUnit`] when the machine lacks a needed unit
/// class (including memory units for the spill code itself).
pub fn try_patch_spills(
    ddg: &DependenceDag,
    schedule: &Schedule,
    machine: &Machine,
) -> Result<(VliwProgram, PatchStats), CompileError> {
    let regs = machine.registers();
    let exit = ddg.exit();
    let mut stats = PatchStats::default();

    // Extend the symbol table with the patch spill area.
    let mut symbols = ddg.symbols().to_vec();
    let spill_sym = SymbolId(symbols.len() as u32);
    symbols.push("__patch_spill".to_string());
    let mut next_slot: i64 = 0;

    // Remaining reader counts and ordered reader positions per value.
    let ordered: Vec<NodeId> = {
        let mut v: Vec<NodeId> = schedule.ops().iter().map(|o| o.node).collect();
        v.sort_by_key(|&n| (schedule.start_of(n).expect("scheduled"), n));
        v
    };
    let position: HashMap<NodeId, usize> =
        ordered.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut remaining_reads: HashMap<VirtualReg, usize> = HashMap::new();
    let mut reader_positions: HashMap<VirtualReg, Vec<usize>> = HashMap::new();
    for v in ddg.value_nodes() {
        let reg = ddg.value_def(v).expect("value node");
        let mut positions: Vec<usize> = Vec::new();
        let mut reads = 0usize;
        for &u in ddg.uses_of(v) {
            if u == exit {
                continue;
            }
            let Some(&pos) = position.get(&u) else {
                continue;
            };
            // An instruction may read the same value several times
            // (e.g. `mul v0, v0`); each read is consumed separately and
            // contributes one position entry so next-use indexing by
            // remaining count stays aligned.
            let occurrences = match ddg.kind(u) {
                NodeKind::Op { instr, .. } => instr.uses().iter().filter(|&&r| r == reg).count(),
                _ => 1,
            };
            for _ in 0..occurrences {
                positions.push(pos);
            }
            reads += occurrences;
        }
        positions.sort_unstable();
        remaining_reads.insert(reg, reads);
        reader_positions.insert(reg, positions);
    }

    let mut emitter = Emitter::new(machine);
    let mut loc: HashMap<VirtualReg, Loc> = HashMap::new();
    let mut slot_of: HashMap<VirtualReg, i64> = HashMap::new();
    let mut owner: HashMap<u32, VirtualReg> = HashMap::new();
    let mut free: BTreeSet<u32> = (0..regs).collect();
    let mut avail: HashMap<VirtualReg, u64> = HashMap::new();
    let mut mem_avail: HashMap<VirtualReg, u64> = HashMap::new();
    let mut live_out_regs: Vec<(u32, VirtualReg)> = Vec::new();
    let mut live_in: Vec<(u32, VirtualReg)> = Vec::new();
    let live_out_set: BTreeSet<VirtualReg> = ddg
        .value_nodes()
        .filter(|&v| ddg.is_live_out(v))
        .map(|v| ddg.value_def(v).expect("value node"))
        .collect();

    // Live-in values occupy registers from the start.
    let live_in_count = ddg
        .value_nodes()
        .filter(|&v| matches!(ddg.kind(v), NodeKind::LiveIn { .. }))
        .count();
    if live_in_count > regs as usize {
        return Err(CompileError::RegisterOverflow {
            needed: live_in_count as u32,
            available: regs,
        });
    }
    for v in ddg.value_nodes() {
        if let NodeKind::LiveIn { reg } = ddg.kind(v) {
            let phys = *free.iter().next().expect("live-in count checked above");
            free.remove(&phys);
            owner.insert(phys, *reg);
            loc.insert(*reg, Loc::Reg(phys));
            avail.insert(*reg, 0);
            live_in.push((phys, *reg));
        }
    }

    let mut last_issue: u64 = 0;
    // End cycle (issue + latency) of the latest branch issued so far;
    // stores and later branches may not issue before it.
    let mut last_branch_end: u64 = 0;
    // Registers of dead definitions, reusable once the write commits.
    let mut deferred_frees: Vec<(u64, u32)> = Vec::new();
    // Memory commit times: a load must not issue before the last store
    // to its cell has committed (the machine model commits stores after
    // their latency; loads observe committed memory only). Keyed by
    // `(symbol, Some(constant index))`, with `None` standing for any
    // store through a register index. Matters when the DAG itself
    // contains spill stores and reloads (allocation-transformed DAGs):
    // replay re-times every op, so the schedule's original spacing
    // cannot be relied on.
    let mut mem_commit: HashMap<(SymbolId, Option<i64>), u64> = HashMap::new();

    // Helper closures become explicit functions to appease the borrow
    // checker; state is threaded through a macro-free struct instead.
    for (idx, &node) in ordered.iter().enumerate() {
        let class = node_class(ddg, machine, node).expect("scheduled ops are real");
        let lat = node_latency(ddg, machine, node);
        let (mut instr, is_branch_cond) = match ddg.kind(node) {
            NodeKind::Op { instr, .. } => (Some(instr.clone()), None),
            NodeKind::Branch {
                cond, exit_on_true, ..
            } => (None, Some((*cond, *exit_on_true))),
            other => unreachable!("{other:?} in schedule"),
        };
        let reads: Vec<VirtualReg> = match (&instr, is_branch_cond) {
            (Some(i), _) => i.uses(),
            (None, Some((Operand::Reg(r), _))) => vec![r],
            _ => Vec::new(),
        };

        // 1. Reload any spilled operand.
        let mut earliest = last_issue;
        let mut floor = last_issue;
        for &r in &reads {
            if loc.get(&r) == Some(&Loc::Mem) {
                // Need a register for the reload.
                let phys = take_register(
                    &mut floor,
                    &mut deferred_frees,
                    &mut free,
                    &mut owner,
                    &mut loc,
                    &mut slot_of,
                    &mut avail,
                    &mut mem_avail,
                    &mut emitter,
                    &mut stats,
                    &remaining_reads,
                    &reader_positions,
                    &live_out_set,
                    spill_sym,
                    &mut next_slot,
                    idx,
                    &reads,
                    last_issue,
                )?;
                let slot = slot_of[&r];
                let ready = mem_avail
                    .get(&r)
                    .copied()
                    .unwrap_or(0)
                    .max(last_issue)
                    .max(floor);
                let t = emitter.issue(
                    ready,
                    machine.class_of(OpKind::Load),
                    machine.latency_of(OpKind::Load),
                    machine.occupancy_of(OpKind::Load),
                    SlotOp::Instr(Instr::Load {
                        dst: VirtualReg(phys),
                        mem: MemRef::new(spill_sym, slot),
                    }),
                )?;
                stats.loads += 1;
                avail.insert(r, t + machine.latency_of(OpKind::Load));
                loc.insert(r, Loc::Reg(phys));
                owner.insert(phys, r);
            }
        }
        // 2. Operand availability and binding snapshot (before any
        //    operand register is recycled).
        for &r in &reads {
            earliest = earliest.max(avail.get(&r).copied().unwrap_or(0));
        }
        // Ops with observable effects must resolve every earlier
        // branch first: a firing branch cancels later words, but an op
        // sharing the branch's word still executes — a store there
        // would land on the wrong path. Branches themselves are spaced
        // the same way so exit ordinals stay in word-major trace order.
        if is_branch_cond.is_some() || instr.as_ref().and_then(Instr::mem_write).is_some() {
            earliest = earliest.max(last_branch_end);
        }
        if let Some(m) = instr.as_ref().and_then(Instr::mem_read) {
            let ready = match m.index {
                Operand::Imm(k) => mem_commit
                    .get(&(m.base, Some(k)))
                    .copied()
                    .unwrap_or(0)
                    .max(mem_commit.get(&(m.base, None)).copied().unwrap_or(0)),
                // Unknown index: wait for every store to the symbol.
                Operand::Reg(_) => mem_commit
                    .iter()
                    .filter(|&(&(s, _), _)| s == m.base)
                    .map(|(_, &t)| t)
                    .max()
                    .unwrap_or(0),
            };
            earliest = earliest.max(ready);
        }
        let mut binding: HashMap<VirtualReg, u32> = reads
            .iter()
            .map(|&r| match loc[&r] {
                Loc::Reg(p) => (r, p),
                Loc::Mem => unreachable!("operand {r} was reloaded"),
            })
            .collect();
        // 3. Operands dying at this instruction release their registers
        //    now — reads happen at issue, the definition writes only
        //    after the latency, so same-cycle reuse is safe.
        let mut distinct_reads: Vec<VirtualReg> = reads.clone();
        distinct_reads.sort_unstable();
        distinct_reads.dedup();
        for &r in &distinct_reads {
            let occurrences = reads.iter().filter(|&&x| x == r).count();
            let remaining = remaining_reads.get_mut(&r).expect("tracked value");
            *remaining -= occurrences;
            if *remaining == 0 && !live_out_set.contains(&r) {
                if let Some(Loc::Reg(p)) = loc.get(&r) {
                    owner.remove(p);
                    free.insert(*p);
                }
                loc.remove(&r);
            }
        }
        // 4. A register for the definition (surviving operands of this
        //    instruction are protected from eviction).
        let def = instr.as_ref().and_then(Instr::def);
        let def_phys = match def {
            Some(_) => Some(take_register(
                &mut floor,
                &mut deferred_frees,
                &mut free,
                &mut owner,
                &mut loc,
                &mut slot_of,
                &mut avail,
                &mut mem_avail,
                &mut emitter,
                &mut stats,
                &remaining_reads,
                &reader_positions,
                &live_out_set,
                spill_sym,
                &mut next_slot,
                idx,
                &reads,
                last_issue,
            )?),
            None => None,
        };
        if let (Some(d), Some(p)) = (def, def_phys) {
            binding.insert(d, p);
        }
        let slot_op = match (&mut instr, is_branch_cond) {
            (Some(i), _) => {
                i.map_registers(|r| VirtualReg(binding[&r]));
                SlotOp::Instr(i.clone())
            }
            (None, Some((cond, exit_on_true))) => SlotOp::Branch {
                cond: match cond {
                    Operand::Reg(r) => Operand::Reg(VirtualReg(binding[&r])),
                    imm => imm,
                },
                exit_on_true,
            },
            _ => unreachable!(),
        };
        let occ = crate::schedule::node_occupancy(ddg, machine, node);
        let t = emitter.issue(earliest.max(floor), class, lat, occ, slot_op)?;
        last_issue = t;
        if is_branch_cond.is_some() {
            last_branch_end = last_branch_end.max(t + lat);
        }
        if let Some(m) = instr.as_ref().and_then(Instr::mem_write) {
            let key = match m.index {
                Operand::Imm(k) => (m.base, Some(k)),
                Operand::Reg(_) => (m.base, None),
            };
            let commit = mem_commit.entry(key).or_insert(0);
            *commit = (*commit).max(t + lat);
        }

        // 5. The definition becomes live.
        if let (Some(d), Some(p)) = (def, def_phys) {
            loc.insert(d, Loc::Reg(p));
            owner.insert(p, d);
            avail.insert(d, t + lat);
            if live_out_set.contains(&d) {
                live_out_regs.push((p, d));
            }
            // Dead definitions release their register once their write
            // has committed (freeing at issue would let the next owner's
            // value be clobbered by the in-flight write).
            if remaining_reads.get(&d) == Some(&0) && !live_out_set.contains(&d) {
                owner.remove(&p);
                deferred_frees.push((t + lat, p));
                loc.remove(&d);
            }
        }
        // Reclaim dead-definition registers whose writes have committed
        // by now: any future op issues at > last_issue is not guaranteed,
        // so only reclaim strictly-past commits.
        deferred_frees.retain(|&(usable_at, p)| {
            if usable_at <= last_issue {
                free.insert(p);
                false
            } else {
                true
            }
        });
    }

    // Elide dead spill stores. A live-out value is never freed, so it
    // can be chosen as an eviction victim after its last read — the
    // emitted store then feeds no reload. The spill area is
    // compiler-private memory, so an unreloaded store is unobservable.
    let reloaded: BTreeSet<i64> = emitter
        .words
        .iter()
        .flatten()
        .filter_map(|op| match &op.op {
            SlotOp::Instr(Instr::Load { mem, .. }) if mem.base == spill_sym => match mem.index {
                Operand::Imm(slot) => Some(slot),
                Operand::Reg(_) => None,
            },
            _ => None,
        })
        .collect();
    for word in &mut emitter.words {
        word.retain(|op| {
            let keep = match &op.op {
                SlotOp::Instr(Instr::Store { mem, .. }) if mem.base == spill_sym => {
                    match mem.index {
                        Operand::Imm(slot) => reloaded.contains(&slot),
                        Operand::Reg(_) => true,
                    }
                }
                _ => true,
            };
            if !keep {
                stats.stores -= 1;
            }
            keep
        });
    }

    // Pad to the drain point.
    while (emitter.words.len() as u64) < emitter.end {
        emitter.words.push(Vec::new());
    }
    Ok((
        VliwProgram {
            words: emitter.words,
            symbols,
            num_regs: regs,
            live_in,
        },
        stats,
    ))
}

/// Obtains a free physical register, spilling the bound value with the
/// farthest next use if necessary. Values needed by the current
/// instruction (`current_reads`) are never victimized.
#[allow(clippy::too_many_arguments)]
fn take_register(
    floor: &mut u64,
    deferred_frees: &mut Vec<(u64, u32)>,
    free: &mut BTreeSet<u32>,
    owner: &mut HashMap<u32, VirtualReg>,
    loc: &mut HashMap<VirtualReg, Loc>,
    slot_of: &mut HashMap<VirtualReg, i64>,
    avail: &mut HashMap<VirtualReg, u64>,
    mem_avail: &mut HashMap<VirtualReg, u64>,
    emitter: &mut Emitter<'_>,
    stats: &mut PatchStats,
    remaining_reads: &HashMap<VirtualReg, usize>,
    reader_positions: &HashMap<VirtualReg, Vec<usize>>,
    live_out_set: &BTreeSet<VirtualReg>,
    spill_sym: SymbolId,
    next_slot: &mut i64,
    current_idx: usize,
    current_reads: &[VirtualReg],
    last_issue: u64,
) -> Result<u32, CompileError> {
    if let Some(&p) = free.iter().next() {
        free.remove(&p);
        return Ok(p);
    }
    // Reclaim a dead definition's register whose write has committed.
    if let Some(pos) = deferred_frees
        .iter()
        .position(|&(usable_at, _)| usable_at <= last_issue)
    {
        return Ok(deferred_frees.swap_remove(pos).1);
    }
    // Victim: farthest next use (live-out counts as infinitely far only
    // after every other candidate).
    let Some(victim_reg) = owner
        .iter()
        .filter(|&(_, v)| !current_reads.contains(v))
        .max_by_key(|&(p, v)| {
            let next = reader_positions
                .get(v)
                .map(|ps| {
                    let done = ps.len() - remaining_reads.get(v).copied().unwrap_or(0);
                    ps.get(done).copied().unwrap_or(usize::MAX)
                })
                .unwrap_or(usize::MAX);
            let _ = current_idx;
            (next, live_out_set.contains(v), std::cmp::Reverse(*p))
        })
        .map(|(&p, _)| p)
    else {
        // Every owned register is an operand; fall back to a register
        // in limbo (dead write still in flight) and make the consumer
        // wait for the commit.
        let Some((usable_at, p)) = deferred_frees
            .iter()
            .copied()
            .min_by_key(|&(usable_at, p)| (usable_at, p))
        else {
            return Err(CompileError::FileTooSmall {
                stage: "spill patching",
                registers: emitter.machine.registers(),
            });
        };
        deferred_frees.retain(|&(_, q)| q != p);
        *floor = (*floor).max(usable_at);
        return Ok(p);
    };
    let victim_val = owner.remove(&victim_reg).expect("owned");

    // Clean values (already in their slot) skip the store.
    if let std::collections::hash_map::Entry::Vacant(entry) = slot_of.entry(victim_val) {
        let slot = *next_slot;
        *next_slot += 1;
        entry.insert(slot);
        let ready = avail.get(&victim_val).copied().unwrap_or(0).max(last_issue);
        let machine = emitter.machine;
        let t = emitter.issue(
            ready,
            machine.class_of(OpKind::Store),
            machine.latency_of(OpKind::Store),
            machine.occupancy_of(OpKind::Store),
            SlotOp::Instr(Instr::Store {
                mem: MemRef::new(spill_sym, slot),
                src: Operand::Reg(VirtualReg(victim_reg)),
            }),
        )?;
        stats.stores += 1;
        mem_avail.insert(victim_val, t + machine.latency_of(OpKind::Store));
        // The store reads the evicted register at cycle `t`; whoever
        // takes the register next must not commit a write there before
        // that read. Any op issues with latency >= 1, so issuing at or
        // after `t` is sufficient.
        *floor = (*floor).max(t);
    }
    loc.insert(victim_val, Loc::Mem);
    Ok(victim_reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::list_schedule;
    use ursa_ir::parser::parse;

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn ddg_of(src: &str) -> DependenceDag {
        DependenceDag::from_entry_block(&parse(src).unwrap())
    }

    #[test]
    fn no_spills_with_ample_registers() {
        let ddg = ddg_of(FIG2);
        let machine = Machine::homogeneous(4, 16);
        let s = list_schedule(&ddg, &machine);
        let (prog, stats) = patch_spills(&ddg, &s, &machine);
        assert_eq!(stats.stores + stats.loads, 0);
        assert_eq!(prog.op_count(), 11);
    }

    #[test]
    fn tight_registers_force_spills_and_stretch() {
        let ddg = ddg_of(FIG2);
        let machine = Machine::homogeneous(4, 3);
        let s = list_schedule(&ddg, &machine);
        let unconstrained_len = s.length();
        let (prog, stats) = patch_spills(&ddg, &s, &machine);
        assert!(stats.stores > 0, "pressure 5 with 3 regs must spill");
        assert!(stats.loads >= stats.stores);
        assert_eq!(prog.op_count(), 11 + stats.stores + stats.loads);
        assert!(
            prog.cycle_count() as u64 > unconstrained_len,
            "spill code stretches the postpass schedule"
        );
        // All registers physical.
        for word in &prog.words {
            for op in word {
                if let SlotOp::Instr(i) = &op.op {
                    for r in i.uses().into_iter().chain(i.def()) {
                        assert!(r.0 < 3, "register {r} out of file");
                    }
                }
            }
        }
    }

    #[test]
    fn spill_area_symbol_is_added() {
        let ddg = ddg_of(FIG2);
        let machine = Machine::homogeneous(4, 3);
        let s = list_schedule(&ddg, &machine);
        let (prog, _) = patch_spills(&ddg, &s, &machine);
        assert!(prog.symbols.iter().any(|s| s == "__patch_spill"));
    }

    #[test]
    fn clean_values_reload_without_second_store() {
        // One value used twice with huge pressure in between: the second
        // eviction of the same value must not emit a second store.
        let src = "\
            v0 = load a[0]\n\
            v1 = load a[1]\n\
            v2 = load a[2]\n\
            v3 = add v0, v1\n\
            v4 = add v3, v2\n\
            v5 = add v4, v0\n\
            store b[0], v5\n";
        let ddg = ddg_of(src);
        let machine = Machine::homogeneous(2, 2);
        let s = list_schedule(&ddg, &machine);
        let (_, stats) = patch_spills(&ddg, &s, &machine);
        assert!(stats.loads >= stats.stores, "reload-only evictions happen");
    }

    #[test]
    fn three_registers_always_suffice() {
        // Three-address code needs at most two operands + one result
        // simultaneously resident, so the patcher succeeds with 3.
        let ddg = ddg_of(FIG2);
        let machine = Machine::homogeneous(2, 3);
        let s = list_schedule(&ddg, &machine);
        let (prog, stats) = patch_spills(&ddg, &s, &machine);
        assert!(stats.stores > 0);
        assert_eq!(prog.op_count(), 11 + stats.stores + stats.loads);
    }

    #[test]
    fn reload_waits_for_store_commit() {
        // A load from a cell must not issue before the store to that
        // cell has committed (stores commit after their latency). The
        // replay re-times ops, so this spacing must be re-derived — it
        // is what keeps allocation-inserted spill/reload pairs correct
        // when a transformed DAG reaches the patch rung.
        use ursa_machine::{LatencyModel, MachineBuilder};
        let src = "\
            v0 = const 7\n\
            store a[0], v0\n\
            v1 = load a[0]\n\
            v2 = add v1, 1\n\
            store b[0], v2\n";
        let ddg = ddg_of(src);
        let machine = MachineBuilder::new("slow-store")
            .fu(FuClass::Universal, 4)
            .registers(8)
            .latencies(LatencyModel {
                store: 4,
                ..LatencyModel::unit()
            })
            .build();
        let s = list_schedule(&ddg, &machine);
        let (prog, _) = patch_spills(&ddg, &s, &machine);
        let a = prog.symbols.iter().position(|s| s == "a").unwrap() as u32;
        let mut store_cycle = None;
        let mut load_cycle = None;
        for (cycle, word) in prog.words.iter().enumerate() {
            for op in word {
                if let SlotOp::Instr(i) = &op.op {
                    if let Some(m) = i.mem_write() {
                        if m.base == SymbolId(a) {
                            store_cycle = Some(cycle as u64);
                        }
                    }
                    if let Some(m) = i.mem_read() {
                        if m.base == SymbolId(a) {
                            load_cycle = Some(cycle as u64);
                        }
                    }
                }
            }
        }
        let (ts, tl) = (store_cycle.unwrap(), load_cycle.unwrap());
        assert!(
            tl >= ts + 4,
            "load at {tl} observes the store at {ts} before its commit at {}",
            ts + 4
        );
    }

    #[test]
    fn dead_spill_stores_are_elided() {
        // A live-out value is never freed, so after its last in-trace
        // read it can become an eviction victim — which used to emit a
        // store to a spill cell nothing reloads. Those stores are
        // unobservable (the spill area is compiler-private) and must
        // not survive to the emitted words.
        use ursa_ir::Trace;
        let src = "\
            block entry:\n\
            v0 = const 0\n\
            jmp head\n\
            block head @ 24:\n\
            v1 = load a[v0]\n\
            v2 = mul v1, 3\n\
            store b[v0], v2\n\
            v0 = add v0, 1\n\
            v3 = cmplt v0, 24\n\
            br v3, head, done\n\
            block done:\n\
            ret\n";
        let program = parse(src).unwrap();
        let ddg = DependenceDag::build(&program, &Trace::single(1));
        let machine = Machine::homogeneous(2, 3);
        let s = list_schedule(&ddg, &machine);
        let (prog, stats) = patch_spills(&ddg, &s, &machine);
        let spill = prog
            .symbols
            .iter()
            .position(|s| s == "__patch_spill")
            .map(|i| SymbolId(i as u32))
            .expect("tight file spills");
        let mut stored = BTreeSet::new();
        let mut loaded = BTreeSet::new();
        let mut stores = 0usize;
        let mut loads = 0usize;
        for word in &prog.words {
            for op in word {
                let SlotOp::Instr(i) = &op.op else { continue };
                if let Some(m) = i.mem_write() {
                    if m.base == spill {
                        if let Operand::Imm(slot) = m.index {
                            stored.insert(slot);
                        }
                        stores += 1;
                    }
                }
                if let Some(m) = i.mem_read() {
                    if m.base == spill {
                        if let Operand::Imm(slot) = m.index {
                            loaded.insert(slot);
                        }
                        loads += 1;
                    }
                }
            }
        }
        assert!(
            stored.is_subset(&loaded),
            "unreloaded spill store survived: {stored:?} vs {loaded:?}"
        );
        // Stats track the emitted words, not the pre-elision count.
        assert_eq!(stats.stores, stores);
        assert_eq!(stats.loads, loads);
    }

    #[test]
    fn two_registers_work_when_operands_die() {
        // A pure accumulation chain kills one operand at each step.
        let ddg = ddg_of(
            "v0 = const 1\nv1 = add v0, 1\nv2 = add v1, 1\nv3 = add v2, 1\nstore a[0], v3\n",
        );
        let machine = Machine::homogeneous(1, 2);
        let s = list_schedule(&ddg, &machine);
        let (prog, stats) = patch_spills(&ddg, &s, &machine);
        assert_eq!(stats.stores + stats.loads, 0);
        assert_eq!(prog.op_count(), 5);
    }
}
