//! The typed failure taxonomy of the compilation pipeline.
//!
//! Every way the pipeline can refuse to produce code is a variant of
//! [`CompileError`]; [`crate::try_compile`] returns it instead of
//! panicking. The panicking entry points ([`crate::compile`] and
//! friends) are thin wrappers kept for callers that treat a failed
//! compilation as a caller bug.

use crate::validate::ValidationError;
use std::fmt;
use ursa_core::BudgetCause;
use ursa_machine::FuClass;

/// Why a compilation was refused.
#[derive(Clone, Debug)]
pub enum CompileError {
    /// The program text failed to parse.
    Parse(ursa_ir::parser::ParseError),
    /// The machine description was malformed or degenerate (e.g. zero
    /// registers or zero functional units).
    Machine(ursa_machine::ParseError),
    /// The trace names a block the program does not have.
    TraceOutOfRange {
        /// The offending block index.
        block: usize,
        /// The number of blocks in the program.
        blocks: usize,
    },
    /// The trace has a shape the strategy cannot compile (e.g. the
    /// prepass baseline allocates one block at a time, or the trace is
    /// empty). Multi-block *programs* are not compiled through a single
    /// trace at all: route them through the whole-program driver
    /// ([`crate::compile_program`], `ursac --whole-program`), which
    /// splits the CFG into single-entry units first.
    UnsupportedTrace {
        /// The strategy that refused.
        strategy: &'static str,
        /// Number of blocks in the offending trace.
        blocks: usize,
    },
    /// The program needs a functional-unit class the machine does not
    /// provide.
    MissingUnit {
        /// The class with no units.
        class: FuClass,
    },
    /// The allocation loop exhausted its iteration budget (or left
    /// residual excess) and no fallback rung was allowed or succeeded.
    BudgetExhausted {
        /// The iteration budget that was exhausted.
        iterations: usize,
        /// Excess requirement the transformations could not remove.
        residual_excess: u32,
    },
    /// The code needs more registers than available and the strategy has
    /// no (further) spill mechanism.
    RegisterOverflow {
        /// Registers the code would need.
        needed: u32,
        /// Registers the machine provides.
        available: u32,
    },
    /// The register file is too small for even a single instruction's
    /// operands to be simultaneously resident.
    FileTooSmall {
        /// The stage that gave up.
        stage: &'static str,
        /// Registers the machine provides.
        registers: u32,
    },
    /// A scheduler failed to make progress within its safety bound.
    SchedulerStalled {
        /// The scheduler that stalled.
        scheduler: &'static str,
        /// The cycle at which the bound tripped.
        cycle: u64,
    },
    /// A stage invariant check failed (see [`crate::validate`]).
    Validation(ValidationError),
    /// The [`ursa_core::CompileBudget`] exhausted (wall-clock deadline,
    /// work-step cap, or memory estimate) and the degradation ladder was
    /// disabled, so no cheaper rung could absorb the partial result.
    DeadlineExceeded {
        /// Which budget dimension ran out.
        cause: BudgetCause,
        /// Work units charged before exhaustion.
        steps: u64,
    },
    /// A pipeline stage panicked. The panic was caught at the trace
    /// boundary (fault isolation) and converted into this typed error
    /// instead of unwinding through the caller.
    Internal {
        /// The stage marker current when the panic unwound (see
        /// `ursa_core::fault::set_stage`).
        stage: &'static str,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Machine(e) => write!(f, "{e}"),
            CompileError::TraceOutOfRange { block, blocks } => {
                write!(f, "trace block {block} out of range ({blocks} blocks)")
            }
            CompileError::UnsupportedTrace { strategy, blocks } => {
                write!(
                    f,
                    "{strategy} cannot compile a {blocks}-block trace; use the \
                     whole-program driver (`ursac --whole-program` / \
                     `compile_program`) to split a CFG into per-trace units"
                )
            }
            CompileError::MissingUnit { class } => {
                write!(
                    f,
                    "machine has no {class} unit for an operation that needs one"
                )
            }
            CompileError::BudgetExhausted {
                iterations,
                residual_excess,
            } => write!(
                f,
                "allocation budget of {iterations} iterations exhausted \
                 with residual excess {residual_excess} and no usable fallback"
            ),
            CompileError::RegisterOverflow { needed, available } => write!(
                f,
                "code needs {needed} registers, machine has {available} and \
                 the strategy cannot spill"
            ),
            CompileError::FileTooSmall { stage, registers } => write!(
                f,
                "{stage}: a {registers}-register file cannot hold one \
                 instruction's operands"
            ),
            CompileError::SchedulerStalled { scheduler, cycle } => {
                write!(f, "{scheduler} failed to make progress by cycle {cycle}")
            }
            CompileError::Validation(e) => write!(f, "invariant violated: {e}"),
            CompileError::DeadlineExceeded { cause, steps } => write!(
                f,
                "compile budget exhausted ({cause}) after {steps} work units \
                 and the degradation ladder is disabled"
            ),
            CompileError::Internal { stage } => write!(
                f,
                "internal error: the {stage} stage panicked (isolated at \
                 the trace boundary)"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ursa_ir::parser::ParseError> for CompileError {
    fn from(e: ursa_ir::parser::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<ursa_machine::ParseError> for CompileError {
    fn from(e: ursa_machine::ParseError) -> Self {
        CompileError::Machine(e)
    }
}

impl From<ValidationError> for CompileError {
    fn from(e: ValidationError) -> Self {
        CompileError::Validation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{Stage, ValidationError};

    #[test]
    fn messages_are_informative() {
        let e = CompileError::UnsupportedTrace {
            strategy: "prepass",
            blocks: 2,
        };
        assert!(e.to_string().contains("prepass"));
        assert!(e.to_string().contains("2-block"));
        let e = CompileError::BudgetExhausted {
            iterations: 4,
            residual_excess: 3,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('3'));
        let e = CompileError::RegisterOverflow {
            needed: 9,
            available: 4,
        };
        assert!(e.to_string().contains('9'));
        let e = CompileError::from(ValidationError::CyclicDag { stage: Stage::Ddg });
        assert!(e.to_string().contains("invariant"));
    }

    #[test]
    fn budget_and_isolation_messages_are_informative() {
        let e = CompileError::DeadlineExceeded {
            cause: BudgetCause::Deadline,
            steps: 4096,
        };
        let s = e.to_string();
        assert!(s.contains("budget exhausted"), "{s}");
        assert!(s.contains("4096"), "{s}");
        assert!(s.contains(&BudgetCause::Deadline.to_string()), "{s}");
        let e = CompileError::DeadlineExceeded {
            cause: BudgetCause::Steps,
            steps: 7,
        };
        assert!(e.to_string().contains(&BudgetCause::Steps.to_string()));
        let e = CompileError::Internal { stage: "schedule" };
        let s = e.to_string();
        assert!(s.contains("internal error"), "{s}");
        assert!(s.contains("schedule"), "{s}");
        assert!(s.contains("panicked"), "{s}");
    }
}
