//! The *prepass* baseline: register allocation **before** scheduling.
//!
//! "If register allocation is performed before instruction scheduling,
//! additional dependences due to the reuse of registers are introduced,
//! further restricting the scheduler" (paper §1). This module commits a
//! straight-line block to the machine's physical registers with a
//! classic linear scan (farthest-next-use eviction), producing code
//! whose register reuse then shows up as anti/output dependences in the
//! dependence DAG (built with renaming disabled) and shackles the list
//! scheduler.

use crate::error::CompileError;
use std::collections::{BTreeSet, HashMap};
use ursa_ir::instr::{Instr, Terminator};
use ursa_ir::program::{BasicBlock, Program};
use ursa_ir::trace::liveness;
use ursa_ir::value::{MemRef, Operand, SymbolId, VirtualReg};
use ursa_machine::Machine;

/// Spill activity of the prepass allocator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PrepassStats {
    /// Stores inserted.
    pub stores: usize,
    /// Reloads inserted.
    pub loads: usize,
}

/// Where a value currently lives during the scan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Loc {
    Reg(u32),
    Mem(i64),
}

/// Mutable allocator state shared by the scan and the eviction helper.
struct ScanState {
    free: BTreeSet<u32>,
    owner: HashMap<u32, VirtualReg>,
    loc: HashMap<VirtualReg, Loc>,
    slot_of: HashMap<VirtualReg, i64>,
    next_slot: i64,
    out: Vec<Instr>,
    stats: PrepassStats,
    spill_sym: SymbolId,
    regs: u32,
}

impl ScanState {
    /// Obtains a free register, evicting the bound value with the
    /// farthest next use (never one of `protected`).
    fn grab(
        &mut self,
        protected: &[VirtualReg],
        next_use: impl Fn(VirtualReg) -> usize,
    ) -> Result<u32, CompileError> {
        if let Some(&p) = self.free.iter().next() {
            self.free.remove(&p);
            return Ok(p);
        }
        let Some((&victim_reg, &victim_val)) = self
            .owner
            .iter()
            .filter(|&(_, v)| !protected.contains(v))
            .max_by_key(|&(p, v)| (next_use(*v), std::cmp::Reverse(*p)))
        else {
            return Err(CompileError::FileTooSmall {
                stage: "prepass allocation",
                registers: self.regs,
            });
        };
        self.owner.remove(&victim_reg);
        let slot = match self.slot_of.get(&victim_val) {
            Some(&s) => s, // clean: already in its slot
            None => {
                let s = self.next_slot;
                self.next_slot += 1;
                self.slot_of.insert(victim_val, s);
                self.out.push(Instr::Store {
                    mem: MemRef::new(self.spill_sym, s),
                    src: ursa_ir::value::Operand::Reg(VirtualReg(victim_reg)),
                });
                self.stats.stores += 1;
                s
            }
        };
        self.loc.insert(victim_val, Loc::Mem(slot));
        Ok(victim_reg)
    }
}

/// Rewrites block `block` of `program` onto the machine's physical
/// register file, inserting spill code where needed. Returns the new
/// program (same shape, block rewritten, spill symbol appended) and the
/// spill statistics.
///
/// # Panics
///
/// Panics on any [`try_prepass_allocate`] error: fewer than 3 registers
/// (three-address instructions need up to two operands and a result
/// resident) or a live-in set exceeding the file.
pub fn prepass_allocate(
    program: &Program,
    block: usize,
    machine: &Machine,
) -> (Program, PrepassStats) {
    try_prepass_allocate(program, block, machine)
        .unwrap_or_else(|e| panic!("prepass_allocate: {e}"))
}

/// Fallible [`prepass_allocate`]: rewrites block `block` of `program`
/// onto the machine's physical register file.
///
/// # Errors
///
/// [`CompileError::FileTooSmall`] when the machine has fewer than 3
/// registers, [`CompileError::RegisterOverflow`] when the block's
/// live-in set exceeds the file.
pub fn try_prepass_allocate(
    program: &Program,
    block: usize,
    machine: &Machine,
) -> Result<(Program, PrepassStats), CompileError> {
    let regs = machine.registers();
    if regs < 3 {
        return Err(CompileError::FileTooSmall {
            stage: "prepass allocation",
            registers: regs,
        });
    }
    let lv = liveness(program);
    let instrs = &program.blocks[block].instrs;

    let mut symbols = program.symbols.clone();
    let spill_sym = SymbolId(symbols.len() as u32);
    symbols.push("__prepass_spill".to_string());

    // Next-use positions per original register.
    let use_positions: HashMap<VirtualReg, Vec<usize>> = {
        let mut m: HashMap<VirtualReg, Vec<usize>> = HashMap::new();
        for (i, instr) in instrs.iter().enumerate() {
            for u in instr.uses() {
                m.entry(u).or_default().push(i);
            }
        }
        for u in program.blocks[block].term.uses() {
            m.entry(u).or_default().push(instrs.len());
        }
        m
    };
    let next_use = |r: VirtualReg, after: usize| -> usize {
        use_positions
            .get(&r)
            .and_then(|ps| ps.iter().copied().find(|&p| p >= after))
            .unwrap_or(usize::MAX)
    };

    let mut st = ScanState {
        free: (0..regs).collect(),
        owner: HashMap::new(),
        loc: HashMap::new(),
        slot_of: HashMap::new(),
        next_slot: 0,
        out: Vec::new(),
        stats: PrepassStats::default(),
        spill_sym,
        regs,
    };

    // Live-in registers are assumed resident on entry.
    let live_in: Vec<VirtualReg> = lv.live_in[block]
        .iter()
        .map(|i| VirtualReg(i as u32))
        .collect();
    if live_in.len() > regs as usize {
        return Err(CompileError::RegisterOverflow {
            needed: live_in.len() as u32,
            available: regs,
        });
    }
    for (k, &r) in live_in.iter().enumerate() {
        let phys = k as u32;
        st.free.remove(&phys);
        st.owner.insert(phys, r);
        st.loc.insert(r, Loc::Reg(phys));
    }

    for (i, instr) in instrs.iter().enumerate() {
        let reads = instr.uses();
        // Reload spilled operands.
        for &r in &reads {
            if let Some(Loc::Mem(slot)) = st.loc.get(&r).copied() {
                let phys = st.grab(&reads, |v| next_use(v, i))?;
                st.out.push(Instr::Load {
                    dst: VirtualReg(phys),
                    mem: MemRef::new(spill_sym, slot),
                });
                st.stats.loads += 1;
                st.loc.insert(r, Loc::Reg(phys));
                st.owner.insert(phys, r);
            }
        }
        // Snapshot bindings for rewriting.
        let binding: HashMap<VirtualReg, u32> = reads
            .iter()
            .map(|&r| match st.loc[&r] {
                Loc::Reg(p) => (r, p),
                Loc::Mem(_) => unreachable!("operand reloaded above"),
            })
            .collect();
        // Free operands with no further use (and not live-out).
        let mut dying: Vec<VirtualReg> = reads.clone();
        dying.sort_unstable();
        dying.dedup();
        for r in dying {
            if next_use(r, i + 1) == usize::MAX && !lv.live_out_of(block, r) {
                if let Some(Loc::Reg(p)) = st.loc.get(&r).copied() {
                    st.owner.remove(&p);
                    st.free.insert(p);
                }
                st.loc.remove(&r);
            }
        }
        // Allocate the definition.
        let def = instr.def();
        let def_phys = match def {
            Some(_) => Some(st.grab(&reads, |v| next_use(v, i + 1))?),
            None => None,
        };
        // Rewrite the uses through the pre-instruction bindings, then
        // place the def. The two must be kept apart: a self-redefinition
        // (`v0 = add v0, 1`) reads the *old* home of `v0`, which need
        // not be the register the new definition lands in.
        let mut rewritten = instr.clone();
        rewritten.map_registers(|r| VirtualReg(binding.get(&r).copied().unwrap_or(r.0)));
        if let Some(p) = def_phys {
            rewritten.replace_def(VirtualReg(p));
        }
        st.out.push(rewritten);
        if let (Some(d), Some(p)) = (def, def_phys) {
            // A redefinition invalidates any stale spill slot.
            st.slot_of.remove(&d);
            st.loc.insert(d, Loc::Reg(p));
            st.owner.insert(p, d);
        }
    }

    // Rewrite the terminator through the final bindings: a branch
    // condition must name a physical register, reloading the value
    // first if the scan left it in its spill slot.
    let mut term = program.blocks[block].term.clone();
    if let Terminator::Branch { cond, .. } = &mut term {
        if let Operand::Reg(orig) = *cond {
            if let Some(Loc::Mem(slot)) = st.loc.get(&orig).copied() {
                let phys = st.grab(&[], |v| next_use(v, instrs.len()))?;
                st.out.push(Instr::Load {
                    dst: VirtualReg(phys),
                    mem: MemRef::new(spill_sym, slot),
                });
                st.stats.loads += 1;
                st.loc.insert(orig, Loc::Reg(phys));
                st.owner.insert(phys, orig);
            }
            match st.loc.get(&orig).copied() {
                Some(Loc::Reg(p)) => *cond = Operand::Reg(VirtualReg(p)),
                _ => unreachable!("branch condition {orig} has no location"),
            }
        }
    }

    let mut new_program = program.clone();
    new_program.symbols = symbols;
    new_program.blocks[block] = BasicBlock {
        label: program.blocks[block].label.clone(),
        instrs: st.out,
        term,
        weight: program.blocks[block].weight,
    };
    new_program.num_vregs = new_program.num_vregs.max(regs);
    let stats = st.stats;
    Ok((new_program, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::parser::parse;

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    #[test]
    fn ample_registers_need_no_spills() {
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(4, 16);
        let (q, stats) = prepass_allocate(&p, 0, &machine);
        assert_eq!(stats.stores + stats.loads, 0);
        assert_eq!(q.blocks[0].instrs.len(), 11);
        // All registers below the file size.
        for i in &q.blocks[0].instrs {
            for r in i.uses().into_iter().chain(i.def()) {
                assert!(r.0 < 16);
            }
        }
        assert!(q.validate().is_ok());
    }

    #[test]
    fn tight_registers_spill() {
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(4, 3);
        let (q, stats) = prepass_allocate(&p, 0, &machine);
        // Sequential pressure of Fig. 2 is above 3: spills appear.
        assert!(stats.stores > 0);
        assert!(stats.loads > 0);
        assert_eq!(q.blocks[0].instrs.len(), 11 + stats.stores + stats.loads);
        for i in &q.blocks[0].instrs {
            for r in i.uses().into_iter().chain(i.def()) {
                assert!(r.0 < 3, "register {r} outside the 3-register file");
            }
        }
        assert!(q.symbols.iter().any(|s| s == "__prepass_spill"));
    }

    #[test]
    fn register_reuse_serializes_the_dag() {
        use ursa_graph::reach::Reachability;
        use ursa_ir::ddg::{DdgOptions, DependenceDag};
        use ursa_ir::trace::Trace;
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(4, 4);
        let (q, _) = prepass_allocate(&p, 0, &machine);
        let renamed = DependenceDag::from_entry_block(&q);
        let committed = DependenceDag::build_with(
            &q,
            &Trace::single(0),
            DdgOptions {
                rename: false,
                ..DdgOptions::default()
            },
        );
        // Anti dependences can only remove parallelism.
        let rr = Reachability::of(renamed.dag());
        let rc = Reachability::of(committed.dag());
        let count_independent = |r: &Reachability, n: usize| {
            let mut c = 0;
            for i in 0..n {
                for j in i + 1..n {
                    if r.independent(
                        ursa_graph::dag::NodeId::from(i),
                        ursa_graph::dag::NodeId::from(j),
                    ) {
                        c += 1;
                    }
                }
            }
            c
        };
        let n = renamed.dag().node_count().min(committed.dag().node_count());
        assert!(count_independent(&rc, n) <= count_independent(&rr, n));
    }

    #[test]
    fn too_small_file_rejected() {
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(4, 2);
        assert!(matches!(
            try_prepass_allocate(&p, 0, &machine),
            Err(CompileError::FileTooSmall { registers: 2, .. })
        ));
    }

    #[test]
    fn self_redefinition_reads_the_old_home() {
        // `v0 = add v0, 1` redefines the register it reads. The use must
        // be rewritten through v0's binding *before* the instruction,
        // not the register the new definition lands in.
        let src = "\
            v0 = load a[0]\n\
            v1 = load a[1]\n\
            v0 = add v0, 1\n\
            store b[0], v0\n\
            store b[1], v1\n";
        let p = parse(src).unwrap();
        let machine = Machine::homogeneous(4, 16);
        let (q, stats) = prepass_allocate(&p, 0, &machine);
        assert_eq!(stats.stores + stats.loads, 0);
        let instrs = &q.blocks[0].instrs;
        let v0_home = instrs[0].def().unwrap();
        assert_eq!(
            instrs[2].uses(),
            vec![v0_home],
            "the add must read the register the first load defined"
        );
    }

    #[test]
    fn clean_value_not_stored_twice() {
        // v0 evicted, reloaded, evicted again: one store only.
        let src = "\
            v0 = load a[0]\n\
            v1 = load a[1]\n\
            v2 = load a[2]\n\
            v3 = load a[3]\n\
            v4 = add v1, v2\n\
            v5 = add v4, v3\n\
            v6 = add v5, v0\n\
            store b[0], v6\n";
        let p = parse(src).unwrap();
        let machine = Machine::homogeneous(4, 3);
        let (_, stats) = prepass_allocate(&p, 0, &machine);
        assert!(stats.loads >= stats.stores);
    }
}
