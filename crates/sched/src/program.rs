//! Whole-program compilation: lifting the per-trace pipeline to full
//! control-flow graphs.
//!
//! The paper compiles one trace at a time; real programs are CFGs. The
//! driver here partitions the CFG into *units* (single-entry trace
//! segments, [`ursa_ir::trace::select_units`]), rewrites the program so
//! every value crossing a unit boundary travels through a compiler-owned
//! memory area (`__boundary`, one slot per virtual register), then runs
//! the existing per-trace pipeline over each unit unchanged — budget,
//! fault isolation, degradation ladder and all.
//!
//! # The boundary handoff contract
//!
//! [`compensate`] establishes the invariant that the whole-program
//! simulator and the lint layer both rely on:
//!
//! * every unit head block begins with `vR = load __boundary[R]` for
//!   each register `R` live into the head, so no unit ever expects a
//!   value to arrive in a register (per-unit code has an empty
//!   `live_in` table);
//! * every block ends (before its terminator) with
//!   `store __boundary[R], vR` for each register live into any
//!   successor that is *not* the next block of the same unit, so every
//!   off-unit edge sees its live values committed to the boundary area.
//!
//! Stores are pinned below the previous branch and above the block's own
//! branch by the DAG builder's `Control` edges, and the runtime drains
//! every issued store even when a branch exits the trace mid-word —
//! together this guarantees an exiting path always observes its
//! compensation stores, while stores of *later* blocks (wrong-path
//! stores) cannot issue before an earlier branch fires.
//!
//! The `__boundary` symbol is appended after the program's own symbols,
//! so semantic equivalence checks over the original symbol range ignore
//! it, and its `__` prefix exempts its traffic from operation
//! conservation like any other spill area.

use crate::error::CompileError;
use crate::{try_compile_with, CompileStrategy, Compiled, PipelineOptions};
use std::collections::BTreeSet;
use ursa_ir::instr::{Instr, Terminator};
use ursa_ir::program::Program;
use ursa_ir::trace::{liveness, select_units, Trace};
use ursa_ir::value::{MemRef, Operand, SymbolId, VirtualReg};
use ursa_machine::Machine;

/// Name of the compiler-owned cross-unit handoff area. Slot `R` of the
/// area carries the value of virtual register `R` across unit
/// boundaries.
pub const BOUNDARY_SYMBOL: &str = "__boundary";

/// One compiled unit plus the control map the runtime needs to stitch
/// units together.
#[derive(Clone, Debug)]
pub struct CompiledUnit {
    /// The blocks this unit covers, in execution order.
    pub trace: Trace,
    /// The unit's code, straight from the per-trace pipeline.
    pub compiled: Compiled,
    /// `exits[k]` is the CFG block targeted by the unit's `k`-th
    /// conditional branch in trace order (the ordinal
    /// `ursa_vm::wide::VliwResult::exit_branch` reports).
    pub exits: Vec<usize>,
    /// Block control transfers to when no branch fires; `None` means
    /// the program returns.
    pub fallthrough: Option<usize>,
}

impl CompiledUnit {
    /// The CFG block heading this unit.
    pub fn head(&self) -> usize {
        self.trace.blocks[0]
    }

    /// Every CFG block control can transfer to when leaving this unit
    /// (branch targets first, then the fallthrough). These are the
    /// blocks whose liveness judges the unit's boundary stores.
    pub fn successor_blocks(&self) -> impl Iterator<Item = usize> + '_ {
        self.exits.iter().copied().chain(self.fallthrough)
    }
}

/// The per-unit numbers the schedule-quality analyzer reads: one row
/// per unit, cheap to collect and stable to print.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UnitSummary {
    /// The unit's head block.
    pub head: usize,
    /// Blocks covered by the unit's trace.
    pub blocks: usize,
    /// Achieved schedule length in cycles (including latency drain).
    pub schedule_length: u64,
    /// Spill stores emitted in the unit.
    pub spill_stores: usize,
    /// Spill reloads emitted in the unit.
    pub spill_loads: usize,
    /// Total operations emitted in the unit.
    pub ops: usize,
}

/// A whole program compiled unit-by-unit.
#[derive(Clone, Debug)]
pub struct ProgramSchedule {
    /// Compiled units; `units[0]` is not necessarily the entry.
    pub units: Vec<CompiledUnit>,
    /// The compensated program the units were compiled from (the
    /// original plus boundary loads/stores and the `__boundary`
    /// symbol).
    pub compensated: Program,
    /// The handoff symbol (always the last symbol of `compensated`).
    pub boundary_sym: SymbolId,
}

impl ProgramSchedule {
    /// Index of the unit whose head is `block`, if any. Every CFG edge
    /// that leaves a unit targets a unit head by construction.
    pub fn unit_for_block(&self, block: usize) -> Option<usize> {
        self.units
            .iter()
            .position(|u| u.trace.blocks.first() == Some(&block))
    }

    /// The unit containing the program entry (block 0).
    pub fn entry_unit(&self) -> usize {
        self.unit_for_block(0)
            .expect("block 0 is always a unit head")
    }

    /// Total operations emitted across all units.
    pub fn op_count(&self) -> usize {
        self.units.iter().map(|u| u.compiled.stats.ops).sum()
    }

    /// Sum of the per-unit schedule lengths (a static size measure, not
    /// a runtime cycle count — loops re-run units).
    pub fn schedule_length(&self) -> u64 {
        self.units
            .iter()
            .map(|u| u.compiled.stats.schedule_length)
            .sum()
    }

    /// Total spill operations (stores + loads) across all units.
    pub fn spill_ops(&self) -> usize {
        self.units
            .iter()
            .map(|u| u.compiled.stats.spill_stores + u.compiled.stats.spill_loads)
            .sum()
    }

    /// Total memory traffic across all units (includes boundary
    /// handoff traffic).
    pub fn memory_traffic(&self) -> usize {
        self.units
            .iter()
            .map(|u| u.compiled.stats.memory_traffic)
            .sum()
    }

    /// One [`UnitSummary`] row per unit, in unit order.
    pub fn unit_summaries(&self) -> Vec<UnitSummary> {
        self.units
            .iter()
            .map(|u| UnitSummary {
                head: u.head(),
                blocks: u.trace.blocks.len(),
                schedule_length: u.compiled.stats.schedule_length,
                spill_stores: u.compiled.stats.spill_stores,
                spill_loads: u.compiled.stats.spill_loads,
                ops: u.compiled.stats.ops,
            })
            .collect()
    }
}

/// Rewrites `program` so every value crossing a unit boundary travels
/// through the `__boundary` memory area: loads at each unit head for the
/// head's live-in registers, stores at the end of each block for every
/// register live into an off-unit successor. Returns the rewritten
/// program and the boundary symbol.
///
/// Liveness is computed on the *original* program: the compensation ops
/// themselves must not perturb what counts as live across an edge.
pub fn compensate(program: &Program, units: &[Trace]) -> (Program, SymbolId) {
    let mut comp = program.clone();
    let boundary = SymbolId(comp.symbols.len() as u32);
    comp.symbols.push(BOUNDARY_SYMBOL.to_string());
    let lv = liveness(program);
    for unit in units {
        let head = unit.blocks[0];
        let mut prefix: Vec<Instr> = lv.live_in[head]
            .iter()
            .map(|r| Instr::Load {
                dst: VirtualReg(r as u32),
                mem: MemRef::new(boundary, r as i64),
            })
            .collect();
        prefix.append(&mut comp.blocks[head].instrs);
        comp.blocks[head].instrs = prefix;
        for (i, &b) in unit.blocks.iter().enumerate() {
            let internal_next = unit.blocks.get(i + 1).copied();
            // Union of live-ins over every successor the unit does not
            // fall through to internally; BTreeSet for deterministic
            // emission order.
            let mut outs: BTreeSet<usize> = BTreeSet::new();
            for t in program.successors(b) {
                if Some(t) == internal_next {
                    continue;
                }
                outs.extend(lv.live_in[t].iter());
            }
            for r in outs {
                comp.blocks[b].instrs.push(Instr::Store {
                    mem: MemRef::new(boundary, r as i64),
                    src: Operand::Reg(VirtualReg(r as u32)),
                });
            }
        }
    }
    (comp, boundary)
}

/// The unit partition a strategy compiles: prepass allocates one block
/// at a time (its allocator is block-local), every other strategy takes
/// the multi-block units of [`select_units`].
pub fn units_for_strategy(program: &Program, strategy: &CompileStrategy) -> Vec<Trace> {
    match strategy {
        CompileStrategy::Prepass => (0..program.blocks.len()).map(Trace::single).collect(),
        _ => select_units(program),
    }
}

/// Maps a unit's conditional branches (in trace order, the order their
/// ordinals are reported by the simulator) to CFG exit targets, and
/// finds the fall-through block.
///
/// Mirrors the DAG builder exactly: a branch becomes a node iff its two
/// targets differ (a `br c, X, X` is a jump and gets no node); the
/// trace-final branch falls through to `then_block` and exits to
/// `else_block`.
fn trace_exits(program: &Program, trace: &Trace) -> (Vec<usize>, Option<usize>) {
    let mut exits = Vec::new();
    let mut fallthrough = None;
    for (i, &b) in trace.blocks.iter().enumerate() {
        let internal_next = trace.blocks.get(i + 1).copied();
        match program.blocks[b].term {
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } if then_block != else_block => match internal_next {
                Some(next) => {
                    exits.push(if next == then_block {
                        else_block
                    } else {
                        then_block
                    });
                }
                None => {
                    exits.push(else_block);
                    fallthrough = Some(then_block);
                }
            },
            Terminator::Branch { then_block, .. } => {
                // Both targets equal: effectively a jump, no branch node.
                if internal_next.is_none() {
                    fallthrough = Some(then_block);
                }
            }
            Terminator::Jump(target) => {
                if internal_next.is_none() {
                    fallthrough = Some(target);
                }
            }
            Terminator::Ret => {}
        }
    }
    (exits, fallthrough)
}

/// Compiles a whole program: unit selection, boundary compensation,
/// then the per-trace pipeline over each unit (each unit gets the full
/// degradation ladder, budget metering, and fault isolation of
/// [`try_compile_with`]).
///
/// # Errors
///
/// The first unit that fails aborts the compilation with its
/// [`CompileError`] — partial programs are not runnable.
pub fn try_compile_program(
    program: &Program,
    machine: &Machine,
    strategy: CompileStrategy,
    opts: &PipelineOptions,
) -> Result<ProgramSchedule, CompileError> {
    if program.blocks.is_empty() {
        return Err(CompileError::UnsupportedTrace {
            strategy: strategy.name(),
            blocks: 0,
        });
    }
    let units = units_for_strategy(program, &strategy);
    let (compensated, boundary_sym) = compensate(program, &units);
    // Units need their final conditional branch in the code so the
    // runtime can pick the successor.
    let mut unit_opts = *opts;
    unit_opts.ddg.materialize_final_branch = true;
    let mut out = Vec::with_capacity(units.len());
    for trace in units {
        let compiled =
            try_compile_with(&compensated, &trace, machine, strategy.clone(), &unit_opts)?;
        let (exits, fallthrough) = trace_exits(&compensated, &trace);
        out.push(CompiledUnit {
            trace,
            compiled,
            exits,
            fallthrough,
        });
    }
    Ok(ProgramSchedule {
        units: out,
        compensated,
        boundary_sym,
    })
}

/// [`try_compile_program`] with default options, panicking on error.
pub fn compile_program(
    program: &Program,
    machine: &Machine,
    strategy: CompileStrategy,
) -> ProgramSchedule {
    try_compile_program(program, machine, strategy, &PipelineOptions::default())
        .unwrap_or_else(|e| panic!("compile_program: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::parser::parse;

    fn diamond() -> Program {
        parse(
            "block entry:\n\
             v0 = load a[0]\n\
             br v0, hot, cold\n\
             block hot @ 0.8:\n\
             v1 = add v0, 1\n\
             jmp out\n\
             block cold @ 0.2:\n\
             v1 = sub v0, 1\n\
             jmp out\n\
             block out:\n\
             store a[0], v1\n\
             ret\n",
        )
        .unwrap()
    }

    #[test]
    fn compensate_adds_boundary_symbol_last() {
        let p = diamond();
        let units = select_units(&p);
        let (comp, sym) = compensate(&p, &units);
        assert_eq!(sym.0 as usize, p.symbols.len());
        assert_eq!(comp.symbols.last().unwrap(), BOUNDARY_SYMBOL);
        assert_eq!(comp.num_vregs, p.num_vregs);
        comp.validate().expect("compensated program stays valid");
    }

    #[test]
    fn every_off_unit_edge_has_its_live_values_stored() {
        let p = diamond();
        let units = select_units(&p);
        let (comp, sym) = compensate(&p, &units);
        let lv = liveness(&p);
        for unit in &units {
            for (i, &b) in unit.blocks.iter().enumerate() {
                let internal_next = unit.blocks.get(i + 1).copied();
                for t in p.successors(b) {
                    if Some(t) == internal_next {
                        continue;
                    }
                    for r in lv.live_in[t].iter() {
                        let stored = comp.blocks[b].instrs.iter().any(|ins| {
                            matches!(
                                ins,
                                Instr::Store { mem, src: Operand::Reg(v) }
                                    if mem.base == sym
                                        && mem.index == Operand::Imm(r as i64)
                                        && v.index() == r
                            )
                        });
                        assert!(
                            stored,
                            "block {b} misses boundary store of v{r} for edge to {t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unit_heads_load_their_live_ins_first() {
        let p = diamond();
        let units = select_units(&p);
        let (comp, sym) = compensate(&p, &units);
        let lv = liveness(&p);
        for unit in &units {
            let head = unit.blocks[0];
            let expect = lv.live_in[head].iter().count();
            let got = comp.blocks[head]
                .instrs
                .iter()
                .take_while(|ins| matches!(ins, Instr::Load { mem, .. } if mem.base == sym))
                .count();
            assert_eq!(got, expect, "head {head} boundary prologue");
        }
    }

    #[test]
    fn exit_map_matches_branch_polarity() {
        let p = diamond();
        // Unit [entry, hot]: entry's branch exits to cold (off-trace),
        // hot falls through to out.
        let trace = Trace { blocks: vec![0, 1] };
        let (exits, fallthrough) = trace_exits(&p, &trace);
        assert_eq!(exits, vec![2]);
        assert_eq!(fallthrough, Some(3));
        // Single-block unit over entry: final branch exits to the zero
        // target (cold), falls through to the nonzero target (hot).
        let (exits, fallthrough) = trace_exits(&p, &Trace::single(0));
        assert_eq!(exits, vec![2]);
        assert_eq!(fallthrough, Some(1));
        // The return block neither exits nor falls through.
        let (exits, fallthrough) = trace_exits(&p, &Trace::single(3));
        assert!(exits.is_empty());
        assert_eq!(fallthrough, None);
    }

    #[test]
    fn degenerate_branch_is_a_fallthrough_not_an_exit() {
        let p = parse(
            "block a:\n\
             v0 = const 1\n\
             br v0, b, b\n\
             block b:\n\
             ret\n",
        )
        .unwrap();
        let (exits, fallthrough) = trace_exits(&p, &Trace::single(0));
        assert!(exits.is_empty(), "br c, X, X must not produce an exit");
        assert_eq!(fallthrough, Some(1));
    }
}
