//! Register assignment over a fixed schedule.
//!
//! URSA's assignment phase runs after allocation has bounded the
//! worst-case requirements, so a simple linear scan over the concrete
//! schedule suffices: every value gets a physical register at its
//! definition's issue cycle and releases it when its last reader has
//! issued. If the heuristics missed a region (paper §2: "the assignment
//! phase is also responsible for handling any excessive requirements
//! that were not identified"), assignment reports the overflow and the
//! pipeline falls back to a register-constrained emitter.

use crate::schedule::Schedule;
use crate::vliw::{MachineOp, SlotOp, VliwProgram};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use ursa_graph::dag::NodeId;
use ursa_ir::ddg::{DependenceDag, NodeKind};
use ursa_ir::value::VirtualReg;
use ursa_machine::Machine;

/// Assignment failure: more values live at `cycle` than the machine has
/// registers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AssignError {
    /// The cycle at which the register file overflowed.
    pub cycle: u64,
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "register pressure exceeds the file at cycle {}",
            self.cycle
        )
    }
}

impl std::error::Error for AssignError {}

/// Binds every value of the scheduled DAG to a physical register and
/// emits the VLIW words.
///
/// # Errors
///
/// [`AssignError`] if at some cycle more values are simultaneously live
/// than the machine provides registers — possible when URSA's
/// allocation phase left residual excess, or when the `Kill()`
/// heuristic under-measured a value with several independent maximal
/// uses (the paper's §2 makes the assignment phase "responsible for
/// handling any excessive requirements that were not identified by
/// URSA's heuristics"; the pipeline then falls back to the spill
/// patcher).
pub fn assign_registers(
    ddg: &DependenceDag,
    schedule: &Schedule,
    machine: &Machine,
) -> Result<VliwProgram, AssignError> {
    let regs = machine.registers();
    let exit = ddg.exit();

    // Live range of every value: (def issue cycle, last reader issue
    // cycle, live-out?).
    struct Range {
        node: NodeId,
        def_cycle: u64,
        last_use: u64,
        live_out: bool,
    }
    let mut ranges: Vec<Range> = Vec::new();
    for v in ddg.value_nodes() {
        let def_cycle = match ddg.kind(v) {
            NodeKind::LiveIn { .. } => 0,
            _ => schedule.start_of(v).expect("value nodes are scheduled"),
        };
        // A register stays busy at least until its own write commits —
        // otherwise a dead definition's in-flight write could clobber
        // the next owner's value.
        let mut last_use = def_cycle + crate::schedule::node_latency(ddg, machine, v);
        for &u in ddg.uses_of(v) {
            if u == exit {
                continue;
            }
            if let Some(c) = schedule.start_of(u) {
                last_use = last_use.max(c);
            }
        }
        ranges.push(Range {
            node: v,
            def_cycle,
            last_use,
            live_out: ddg.is_live_out(v),
        });
    }
    // Allocate in def order; frees processed before allocations at each
    // cycle (a register read at issue may be redefined the same cycle —
    // the new value arrives only after the operation's latency).
    ranges.sort_by_key(|r| (r.def_cycle, r.node));
    let mut free: BTreeSet<u32> = (0..regs).collect();
    let mut expiries: Vec<(u64, u32)> = Vec::new(); // (last_use, reg)
    let mut binding: HashMap<VirtualReg, u32> = HashMap::new();
    let mut live_in: Vec<(u32, VirtualReg)> = Vec::new();

    for r in &ranges {
        // Release registers whose value died strictly before or at this
        // cycle.
        expiries.retain(|&(last, reg)| {
            if last <= r.def_cycle {
                free.insert(reg);
                false
            } else {
                true
            }
        });
        let Some(&phys) = free.iter().next() else {
            return Err(AssignError { cycle: r.def_cycle });
        };
        free.remove(&phys);
        let vreg = ddg.value_def(r.node).expect("value node");
        binding.insert(vreg, phys);
        if matches!(ddg.kind(r.node), NodeKind::LiveIn { .. }) {
            live_in.push((phys, vreg));
        }
        if !r.live_out {
            expiries.push((r.last_use, phys));
        }
    }

    // Emit the words with registers rewritten.
    let mut words: Vec<Vec<MachineOp>> = vec![Vec::new(); schedule.length() as usize];
    for op in schedule.ops() {
        let slot = match ddg.kind(op.node) {
            NodeKind::Op { instr, .. } => {
                let mut instr = instr.clone();
                instr.map_registers(|r| {
                    VirtualReg(*binding.get(&r).unwrap_or_else(|| {
                        panic!("register {r} of {} has no binding", ddg.describe(op.node))
                    }))
                });
                SlotOp::Instr(instr)
            }
            NodeKind::Branch {
                cond, exit_on_true, ..
            } => {
                let cond = match cond {
                    ursa_ir::value::Operand::Reg(r) => {
                        ursa_ir::value::Operand::Reg(VirtualReg(binding[r]))
                    }
                    imm => *imm,
                };
                SlotOp::Branch {
                    cond,
                    exit_on_true: *exit_on_true,
                }
            }
            other => unreachable!("pseudo node {other:?} in schedule"),
        };
        words[op.cycle as usize].push(MachineOp {
            op: slot,
            fu: op.fu,
        });
    }

    Ok(VliwProgram {
        words,
        symbols: ddg.symbols().to_vec(),
        num_regs: regs,
        live_in,
    })
}

/// Emits VLIW words for a schedule whose instructions already reference
/// physical registers (the prepass pipeline: the register allocator ran
/// before scheduling, so no mapping is needed here).
pub fn emit_physical(ddg: &DependenceDag, schedule: &Schedule, machine: &Machine) -> VliwProgram {
    let mut words: Vec<Vec<MachineOp>> = vec![Vec::new(); schedule.length() as usize];
    let mut live_in = Vec::new();
    for v in ddg.value_nodes() {
        if let NodeKind::LiveIn { reg } = ddg.kind(v) {
            live_in.push((reg.0, *reg));
        }
    }
    for op in schedule.ops() {
        let slot = match ddg.kind(op.node) {
            NodeKind::Op { instr, .. } => SlotOp::Instr(instr.clone()),
            NodeKind::Branch {
                cond, exit_on_true, ..
            } => SlotOp::Branch {
                cond: *cond,
                exit_on_true: *exit_on_true,
            },
            other => unreachable!("pseudo node {other:?} in schedule"),
        };
        words[op.cycle as usize].push(MachineOp {
            op: slot,
            fu: op.fu,
        });
    }
    VliwProgram {
        words,
        symbols: ddg.symbols().to_vec(),
        num_regs: machine.registers(),
        live_in,
    }
}

/// The maximum number of simultaneously live values under `schedule` —
/// the concrete pressure the assignment must fit. Useful for tests and
/// for checking URSA's worst-case bound against a real schedule.
pub fn schedule_pressure(ddg: &DependenceDag, schedule: &Schedule, machine: &Machine) -> u32 {
    let exit = ddg.exit();
    let mut events: Vec<(u64, i32)> = Vec::new();
    for v in ddg.value_nodes() {
        let def_cycle = match ddg.kind(v) {
            NodeKind::LiveIn { .. } => 0,
            _ => match schedule.start_of(v) {
                Some(c) => c,
                None => continue,
            },
        };
        // Matches the assignment rule: busy at least until the write
        // commits (relevant for dead definitions).
        let mut last_use = def_cycle + crate::schedule::node_latency(ddg, machine, v);
        for &u in ddg.uses_of(v) {
            if u == exit {
                continue;
            }
            if let Some(c) = schedule.start_of(u) {
                last_use = last_use.max(c);
            }
        }
        if ddg.is_live_out(v) {
            last_use = schedule.length();
        }
        events.push((def_cycle, 1));
        events.push((last_use, -1));
    }
    // Deaths before births at the same cycle (read-before-write reuse).
    events.sort_by_key(|&(c, d)| (c, d));
    let mut live = 0i32;
    let mut max = 0i32;
    for (_, d) in events {
        live += d;
        max = max.max(live);
    }
    max as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::list_schedule;
    use ursa_ir::parser::parse;

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn ddg_of(src: &str) -> DependenceDag {
        DependenceDag::from_entry_block(&parse(src).unwrap())
    }

    #[test]
    fn assignment_succeeds_with_ample_registers() {
        let ddg = ddg_of(FIG2);
        let machine = Machine::homogeneous(4, 16);
        let s = list_schedule(&ddg, &machine);
        let prog = assign_registers(&ddg, &s, &machine).unwrap();
        assert_eq!(prog.op_count(), 11);
        assert_eq!(prog.num_regs, 16);
        // Every register index is physical.
        for word in &prog.words {
            for op in word {
                if let SlotOp::Instr(i) = &op.op {
                    for r in i.uses().into_iter().chain(i.def()) {
                        assert!(r.0 < 16);
                    }
                }
            }
        }
    }

    #[test]
    fn assignment_fails_under_pressure() {
        let ddg = ddg_of(FIG2);
        let machine = Machine::homogeneous(8, 2);
        let s = list_schedule(&ddg, &machine);
        assert!(assign_registers(&ddg, &s, &machine).is_err());
    }

    #[test]
    fn pressure_matches_assignment_boundary() {
        let ddg = ddg_of(FIG2);
        let machine = Machine::homogeneous(4, 16);
        let s = list_schedule(&ddg, &machine);
        let p = schedule_pressure(&ddg, &s, &machine);
        // Assignment with exactly `p` registers succeeds…
        let just_enough = Machine::homogeneous(4, p);
        assert!(assign_registers(&ddg, &s, &just_enough).is_ok());
        // …and with one fewer fails.
        if p > 1 {
            let too_few = Machine::homogeneous(4, p - 1);
            assert!(assign_registers(&ddg, &s, &too_few).is_err());
        }
    }

    #[test]
    fn registers_are_reused_after_death() {
        // Long chain: two registers suffice (value + next value).
        let ddg = ddg_of(
            "v0 = const 1\nv1 = add v0, 1\nv2 = add v1, 1\nv3 = add v2, 1\nstore a[0], v3\n",
        );
        let machine = Machine::homogeneous(1, 2);
        let s = list_schedule(&ddg, &machine);
        let prog = assign_registers(&ddg, &s, &machine).unwrap();
        assert!(prog.op_count() == 5);
    }

    #[test]
    fn live_in_values_get_registers() {
        let ddg = ddg_of("v5 = add v0, 1\nstore a[0], v5\n");
        let machine = Machine::homogeneous(2, 4);
        let s = list_schedule(&ddg, &machine);
        let prog = assign_registers(&ddg, &s, &machine).unwrap();
        assert_eq!(prog.live_in.len(), 1);
        let (_, orig) = prog.live_in[0];
        assert_eq!(orig, VirtualReg(0));
    }

    #[test]
    fn ursa_bound_dominates_concrete_pressure() {
        // The worst-case measurement must be an upper bound for the
        // pressure of any concrete schedule.
        use ursa_core::{measure, AllocCtx, MeasureOptions, ResourceKind};
        let ddg = ddg_of(FIG2);
        let machine = Machine::homogeneous(4, 16);
        let s = list_schedule(&ddg, &machine);
        let concrete = schedule_pressure(&ddg, &s, &machine);
        let mut ctx = AllocCtx::new(ddg, &machine);
        let m = measure(&mut ctx, MeasureOptions::default());
        let bound = m.of(ResourceKind::Registers).unwrap().requirement.required;
        assert!(
            concrete <= bound,
            "schedule uses {concrete}, worst case is {bound}"
        );
    }
}
