//! Goodman–Hsu-style integrated prepass scheduling [GoH88].
//!
//! The DAG-driven technique the paper cites as closest related work:
//! a list scheduler that watches the number of available registers
//! (AVLREG) and switches between *code scheduling for parallelism*
//! (CSP) and *code scheduling to reduce register pressure* (CSR,
//! preferring instructions that free registers) as the file fills.
//! Crucially — and this is the limitation URSA's authors point out —
//! it "does not have a mechanism for inserting spill code": when even
//! the most frugal instruction cannot be issued within the register
//! budget, this implementation force-issues it and records an
//! *overflow event* (the generated code then needs more registers than
//! the machine has).

use crate::error::CompileError;
use crate::schedule::{node_class, node_latency, node_occupancy, Schedule, ScheduledOp};
use std::collections::{HashMap, HashSet};
use ursa_graph::dag::NodeId;
use ursa_graph::order::Levels;
use ursa_ir::ddg::DependenceDag;
use ursa_machine::{FuClass, Machine};

/// Register behavior of a Goodman–Hsu run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IpsStats {
    /// The maximum number of simultaneously live values.
    pub max_live: u32,
    /// Times an instruction was issued despite exceeding the register
    /// budget (the technique has no spill mechanism).
    pub overflow_events: u32,
}

/// When AVLREG drops to this bound or below, the scheduler switches
/// from CSP to CSR priorities (Goodman & Hsu's threshold).
const CSR_THRESHOLD: u32 = 2;

/// Schedules `ddg` with register-pressure-aware list scheduling,
/// panicking on any [`try_ips_schedule`] error.
pub fn ips_schedule(ddg: &DependenceDag, machine: &Machine) -> (Schedule, IpsStats) {
    try_ips_schedule(ddg, machine).unwrap_or_else(|e| panic!("ips_schedule: {e}"))
}

/// Schedules `ddg` with register-pressure-aware list scheduling.
///
/// # Errors
///
/// [`CompileError::MissingUnit`] when an operation's class has no unit
/// on the machine; [`CompileError::SchedulerStalled`] when the safety
/// bound on scheduling cycles trips.
pub fn try_ips_schedule(
    ddg: &DependenceDag,
    machine: &Machine,
) -> Result<(Schedule, IpsStats), CompileError> {
    let regs = machine.registers();
    // Refuse early when the machine cannot execute some operation at
    // all — without this the budget loop would stall on it forever.
    for v in ddg.fu_nodes() {
        if let Some(class) = node_class(ddg, machine, v) {
            if machine.fu_count(class) == 0 {
                return Err(CompileError::MissingUnit { class });
            }
        }
    }
    let weights: Vec<u64> = ddg
        .dag()
        .nodes()
        .map(|n| node_latency(ddg, machine, n))
        .collect();
    let levels = Levels::weighted(ddg.dag(), &weights);

    let n = ddg.dag().node_count();
    let exit = ddg.exit();
    let mut remaining_preds: Vec<usize> = ddg
        .dag()
        .nodes()
        .map(|v| {
            let mut seen = HashSet::new();
            ddg.dag().preds(v).filter(|p| seen.insert(*p)).count()
        })
        .collect();
    // Remaining reader counts per producing node.
    let mut remaining_reads: HashMap<NodeId, usize> = ddg
        .value_nodes()
        .map(|v| (v, ddg.uses_of(v).iter().filter(|&&u| u != exit).count()))
        .collect();
    let live_out: HashSet<NodeId> = ddg.value_nodes().filter(|&v| ddg.is_live_out(v)).collect();

    let mut ready: Vec<NodeId> = Vec::new();
    let mut earliest: Vec<u64> = vec![0; n];
    let mut pending = 0usize;
    for v in ddg.dag().nodes() {
        if remaining_preds[v.index()] == 0 {
            ready.push(v);
        }
        pending += 1;
    }

    let mut ops: Vec<ScheduledOp> = Vec::new();
    let mut start: HashMap<NodeId, u64> = HashMap::new();
    let mut unit_free: HashMap<FuClass, Vec<u64>> = machine
        .fu_classes()
        .iter()
        .map(|&(c, k)| (c, vec![0u64; k as usize]))
        .collect();

    // Live value tracking: producer node -> live?
    let mut live: u32 = ddg
        .value_nodes()
        .filter(|&v| matches!(ddg.kind(v), ursa_ir::ddg::NodeKind::LiveIn { .. }))
        .count() as u32;
    let mut stats = IpsStats {
        max_live: live,
        overflow_events: 0,
    };
    let mut in_flight: Vec<u64> = Vec::new(); // finish times of issued ops

    let mut cycle: u64 = 0;
    while pending > 0 {
        // Settle pseudo nodes.
        let mut progressed = true;
        while progressed {
            progressed = false;
            let mut i = 0;
            while i < ready.len() {
                let v = ready[i];
                if node_class(ddg, machine, v).is_none() && earliest[v.index()] <= cycle {
                    ready.swap_remove(i);
                    pending -= 1;
                    progressed = true;
                    release(
                        ddg,
                        v,
                        cycle,
                        &mut remaining_preds,
                        &mut earliest,
                        &mut ready,
                    );
                } else {
                    i += 1;
                }
            }
        }

        let mut issued_this_cycle = false;
        loop {
            // Candidate metrics.
            let mut candidates: Vec<(NodeId, i64, u64)> = Vec::new(); // (node, delta, alap)
            for &v in &ready {
                if node_class(ddg, machine, v).is_none() || earliest[v.index()] > cycle {
                    continue;
                }
                let defines = i64::from(ddg.value_def(v).is_some());
                let dying = dying_operands(ddg, v, &remaining_reads, &live_out) as i64;
                candidates.push((v, defines - dying, levels.alap(v)));
            }
            if candidates.is_empty() {
                break;
            }
            let avlreg = regs.saturating_sub(live);
            // CSP: longest path first. CSR: register-freeing first.
            if avlreg > CSR_THRESHOLD {
                candidates.sort_by_key(|&(v, _, alap)| (alap, v));
            } else {
                candidates.sort_by_key(|&(v, delta, alap)| (delta, alap, v));
            }
            // Issue the best candidate that fits the budget and a unit.
            let mut issued = None;
            let mut fits_budget_exists = false;
            for &(v, delta, _) in &candidates {
                let live_after = (live as i64 + delta).max(0) as u32;
                if live_after <= regs {
                    fits_budget_exists = true;
                    if let Some(fu) = try_issue(ddg, machine, v, cycle, &mut unit_free) {
                        issued = Some((v, delta, fu, false));
                        break;
                    }
                }
            }
            // Deadlock: nothing fits the budget, nothing in flight will
            // free a register, and no candidate was issued this cycle.
            if issued.is_none()
                && !fits_budget_exists
                && !issued_this_cycle
                && in_flight.iter().all(|&f| f <= cycle)
            {
                for &(v, delta, _) in &candidates {
                    if let Some(fu) = try_issue(ddg, machine, v, cycle, &mut unit_free) {
                        issued = Some((v, delta, fu, true));
                        break;
                    }
                }
            }
            let Some((v, delta, fu, overflowed)) = issued else {
                break;
            };
            if overflowed {
                stats.overflow_events += 1;
            }
            let lat = node_latency(ddg, machine, v);
            ops.push(ScheduledOp { node: v, cycle, fu });
            start.insert(v, cycle);
            in_flight.push(cycle + lat);
            let pos = ready.iter().position(|&r| r == v).expect("ready");
            ready.swap_remove(pos);
            pending -= 1;
            issued_this_cycle = true;
            // Update liveness.
            consume_operands(ddg, v, &mut remaining_reads, &live_out, &mut live);
            if ddg.value_def(v).is_some() {
                live += 1;
                // Dead definitions don't stay live.
                if remaining_reads.get(&v) == Some(&0) && !live_out.contains(&v) {
                    live -= 1;
                }
            }
            let _ = delta;
            stats.max_live = stats.max_live.max(live);
            release(
                ddg,
                v,
                cycle + lat,
                &mut remaining_preds,
                &mut earliest,
                &mut ready,
            );
        }
        cycle += 1;
        if cycle > (n as u64 + 2) * (levels.critical_path().max(1) + 1) {
            return Err(CompileError::SchedulerStalled {
                scheduler: "IPS scheduler",
                cycle,
            });
        }
    }

    let length = ops
        .iter()
        .map(|op| op.cycle + node_latency(ddg, machine, op.node))
        .max()
        .unwrap_or(0);
    ops.sort_by_key(|op| (op.cycle, op.fu.0 as u32, op.fu.1));
    Ok((Schedule::from_parts(ops, start, length), stats))
}

fn try_issue(
    ddg: &DependenceDag,
    machine: &Machine,
    v: NodeId,
    cycle: u64,
    unit_free: &mut HashMap<FuClass, Vec<u64>>,
) -> Option<(FuClass, u32)> {
    let class = node_class(ddg, machine, v).expect("real op");
    let occ = node_occupancy(ddg, machine, v);
    let units = unit_free.get_mut(&class)?;
    let idx = units.iter().position(|&f| f <= cycle)?;
    units[idx] = cycle + occ;
    Some((class, idx as u32))
}

fn dying_operands(
    ddg: &DependenceDag,
    v: NodeId,
    remaining_reads: &HashMap<NodeId, usize>,
    live_out: &HashSet<NodeId>,
) -> usize {
    let mut producers: Vec<NodeId> = ddg
        .dag()
        .preds(v)
        .filter(|&p| ddg.value_def(p).is_some() && ddg.uses_of(p).contains(&v))
        .collect();
    producers.sort_unstable();
    producers.dedup();
    producers
        .into_iter()
        .filter(|p| {
            !live_out.contains(p)
                && remaining_reads.get(p).is_some_and(|&r| {
                    // This op is the only remaining reader.
                    r == 1
                })
        })
        .count()
}

fn consume_operands(
    ddg: &DependenceDag,
    v: NodeId,
    remaining_reads: &mut HashMap<NodeId, usize>,
    live_out: &HashSet<NodeId>,
    live: &mut u32,
) {
    let mut producers: Vec<NodeId> = ddg
        .dag()
        .preds(v)
        .filter(|&p| ddg.value_def(p).is_some() && ddg.uses_of(p).contains(&v))
        .collect();
    producers.sort_unstable();
    producers.dedup();
    for p in producers {
        if let Some(r) = remaining_reads.get_mut(&p) {
            *r -= 1;
            if *r == 0 && !live_out.contains(&p) {
                *live = live.saturating_sub(1);
            }
        }
    }
}

fn release(
    ddg: &DependenceDag,
    v: NodeId,
    avail: u64,
    remaining_preds: &mut [usize],
    earliest: &mut [u64],
    ready: &mut Vec<NodeId>,
) {
    let mut seen = HashSet::new();
    for s in ddg.dag().succs(v) {
        if !seen.insert(s) {
            continue;
        }
        earliest[s.index()] = earliest[s.index()].max(avail);
        remaining_preds[s.index()] -= 1;
        if remaining_preds[s.index()] == 0 {
            ready.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::list_schedule;
    use ursa_ir::parser::parse;

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn ddg_of(src: &str) -> DependenceDag {
        DependenceDag::from_entry_block(&parse(src).unwrap())
    }

    #[test]
    fn matches_list_schedule_when_registers_ample() {
        let ddg = ddg_of(FIG2);
        let machine = Machine::homogeneous(8, 16);
        let (s, stats) = ips_schedule(&ddg, &machine);
        s.validate(&ddg, &machine).unwrap();
        assert_eq!(stats.overflow_events, 0);
        let plain = list_schedule(&ddg, &machine);
        assert_eq!(
            s.length(),
            plain.length(),
            "CSP mode = plain list scheduling"
        );
    }

    #[test]
    fn pressure_mode_trades_length_for_registers() {
        let ddg = ddg_of(FIG2);
        let wide = Machine::homogeneous(8, 16);
        let tight = Machine::homogeneous(8, 4);
        let (s_wide, st_wide) = ips_schedule(&ddg, &wide);
        let (s_tight, st_tight) = ips_schedule(&ddg, &tight);
        s_tight.validate(&ddg, &tight).unwrap();
        assert!(st_tight.max_live <= st_wide.max_live.max(4) + st_tight.overflow_events);
        assert!(s_tight.length() >= s_wide.length());
    }

    #[test]
    fn respects_budget_or_reports_overflow() {
        let ddg = ddg_of(FIG2);
        for regs in [3u32, 4, 5, 8] {
            let machine = Machine::homogeneous(4, regs);
            let (s, stats) = ips_schedule(&ddg, &machine);
            s.validate(&ddg, &machine).unwrap();
            if stats.overflow_events == 0 {
                assert!(
                    stats.max_live <= regs,
                    "no overflow reported but max_live {} > {regs}",
                    stats.max_live
                );
            }
        }
    }

    #[test]
    fn schedules_every_op_exactly_once() {
        let ddg = ddg_of(FIG2);
        let machine = Machine::homogeneous(2, 4);
        let (s, _) = ips_schedule(&ddg, &machine);
        assert_eq!(s.op_count(), 11);
        s.validate(&ddg, &machine).unwrap();
    }
}
