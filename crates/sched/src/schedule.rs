//! Resource-constrained list scheduling.
//!
//! After URSA's allocation phase the DAG is guaranteed to fit the
//! machine, and any greedy schedule will do; this module provides the
//! cycle-by-cycle list scheduler used by the assignment phase and by
//! the baseline phase orderings. Priority is the classic critical-path
//! distance to the exit. Functional units are non-pipelined: a unit
//! stays busy for the instruction's full latency (paper §3.2 model).

use crate::error::CompileError;
use std::collections::HashMap;
use ursa_graph::dag::NodeId;
use ursa_graph::order::Levels;
use ursa_ir::ddg::{DependenceDag, NodeKind};
use ursa_machine::{FuClass, Machine, OpKind};

/// One scheduled instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScheduledOp {
    /// The DAG node.
    pub node: NodeId,
    /// Issue cycle.
    pub cycle: u64,
    /// Functional-unit class and index within the class.
    pub fu: (FuClass, u32),
}

/// A complete schedule of a dependence DAG.
#[derive(Clone, Debug)]
pub struct Schedule {
    ops: Vec<ScheduledOp>,
    start: HashMap<NodeId, u64>,
    length: u64,
}

impl Schedule {
    /// Assembles a schedule from raw parts (used by alternative
    /// scheduler implementations in this crate).
    pub(crate) fn from_parts(
        ops: Vec<ScheduledOp>,
        start: HashMap<NodeId, u64>,
        length: u64,
    ) -> Self {
        Schedule { ops, start, length }
    }

    /// The scheduled operations, ordered by cycle then unit.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// Issue cycle of `node`, if it was scheduled (pseudo nodes are not).
    pub fn start_of(&self, node: NodeId) -> Option<u64> {
        self.start.get(&node).copied()
    }

    /// Total schedule length in cycles.
    pub fn length(&self) -> u64 {
        self.length
    }

    /// Number of instructions scheduled.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Validates the schedule against the DAG and machine: every FU
    /// node scheduled exactly once, dependences respected with
    /// latencies, and no functional unit oversubscribed. Returns the
    /// first violation found.
    pub fn validate(&self, ddg: &DependenceDag, machine: &Machine) -> Result<(), String> {
        // Coverage.
        for n in ddg.fu_nodes() {
            if !self.start.contains_key(&n) {
                return Err(format!("node {n} ({}) not scheduled", ddg.describe(n)));
            }
        }
        // Dependences: a successor may not issue before its predecessor
        // finishes.
        for n in ddg.fu_nodes() {
            let start = self.start[&n];
            for p in ddg.dag().preds(n) {
                if let Some(pstart) = self.start.get(&p) {
                    let plat = node_latency(ddg, machine, p);
                    if start < pstart + plat {
                        return Err(format!(
                            "{n} issues at {start}, before {p} finishes at {}",
                            pstart + plat
                        ));
                    }
                }
            }
        }
        // FU capacity: busy intervals (full latency when non-pipelined,
        // one cycle when pipelined) must not overlap per (class, index),
        // and indices must be within the class count.
        let mut busy: HashMap<(FuClass, u32), Vec<(u64, u64)>> = HashMap::new();
        for op in &self.ops {
            let (class, index) = op.fu;
            if index >= machine.fu_count(class) {
                return Err(format!(
                    "{} uses {class} unit {index}, machine has {}",
                    op.node,
                    machine.fu_count(class)
                ));
            }
            let lat = node_occupancy(ddg, machine, op.node);
            let iv = (op.cycle, op.cycle + lat);
            let list = busy.entry(op.fu).or_default();
            for &(s, e) in list.iter() {
                if iv.0 < e && s < iv.1 {
                    return Err(format!(
                        "unit {class}#{index} double-booked at cycles {:?} and {iv:?}",
                        (s, e)
                    ));
                }
            }
            list.push(iv);
        }
        Ok(())
    }
}

/// Latency of a node under `machine` (0 for pseudo nodes).
pub fn node_latency(ddg: &DependenceDag, machine: &Machine, n: NodeId) -> u64 {
    match ddg.kind(n) {
        NodeKind::Op { instr, .. } => machine.instr_latency(instr),
        NodeKind::Branch { .. } => machine.latency_of(OpKind::Branch),
        NodeKind::Entry | NodeKind::Exit | NodeKind::LiveIn { .. } => 0,
    }
}

/// Cycles a node occupies its functional unit (1 on pipelined
/// machines, the full latency otherwise; 0 for pseudo nodes).
pub fn node_occupancy(ddg: &DependenceDag, machine: &Machine, n: NodeId) -> u64 {
    match ddg.kind(n) {
        NodeKind::Op { instr, .. } => machine.instr_occupancy(instr),
        NodeKind::Branch { .. } => machine.occupancy_of(OpKind::Branch),
        NodeKind::Entry | NodeKind::Exit | NodeKind::LiveIn { .. } => 0,
    }
}

/// The functional-unit class a node needs, if any.
pub fn node_class(ddg: &DependenceDag, machine: &Machine, n: NodeId) -> Option<FuClass> {
    match ddg.kind(n) {
        NodeKind::Op { instr, .. } => Some(machine.instr_class(instr)),
        NodeKind::Branch { .. } => Some(machine.class_of(OpKind::Branch)),
        _ => None,
    }
}

/// List-schedules `ddg` on `machine`, panicking on any
/// [`try_list_schedule`] error.
///
/// # Panics
///
/// Panics if the DAG is cyclic, if the machine lacks a needed unit
/// class, or if the scheduler trips its progress bound.
pub fn list_schedule(ddg: &DependenceDag, machine: &Machine) -> Schedule {
    try_list_schedule(ddg, machine).unwrap_or_else(|e| panic!("list_schedule: {e}"))
}

/// List-schedules `ddg` on `machine`, honoring dependences, latencies
/// and functional-unit counts (registers are *not* constrained here —
/// URSA guarantees them, and the postpass baseline deliberately ignores
/// them at this stage).
///
/// # Errors
///
/// [`CompileError::MissingUnit`] when an operation's class has no unit
/// on the machine; [`CompileError::SchedulerStalled`] when the safety
/// bound on scheduling cycles trips (a correct scheduler stays well
/// within it).
pub fn try_list_schedule(ddg: &DependenceDag, machine: &Machine) -> Result<Schedule, CompileError> {
    if let Some(plan) = ursa_core::fault::trip(ursa_core::FaultSite::Schedule) {
        match plan.kind {
            ursa_core::FaultKind::Panic => {
                ursa_core::fault::trip_panic(ursa_core::FaultSite::Schedule)
            }
            // The scheduler has no cooperative meter; any other injected
            // fault surfaces as the stage's typed no-progress error.
            _ => {
                return Err(CompileError::SchedulerStalled {
                    scheduler: "list (injected fault)",
                    cycle: 0,
                })
            }
        }
    }
    let weights: Vec<u64> = ddg
        .dag()
        .nodes()
        .map(|n| node_latency(ddg, machine, n))
        .collect();
    let levels = Levels::weighted(ddg.dag(), &weights);
    let critical = levels.critical_path();

    let n = ddg.dag().node_count();
    // finish[v] = cycle at which v's result is available.
    let mut finish: Vec<Option<u64>> = vec![None; n];
    let mut remaining_preds: Vec<usize> = ddg
        .dag()
        .nodes()
        .map(|v| {
            let mut seen = std::collections::HashSet::new();
            ddg.dag().preds(v).filter(|p| seen.insert(*p)).count()
        })
        .collect();

    // Pseudo nodes complete immediately once their predecessors do.
    let mut ready: Vec<NodeId> = Vec::new();
    let mut pending = 0usize;
    for v in ddg.dag().nodes() {
        if remaining_preds[v.index()] == 0 {
            ready.push(v);
        }
        pending += 1;
    }

    let mut ops = Vec::new();
    let mut start = HashMap::new();
    // Busy-until per concrete unit.
    let mut unit_free: HashMap<FuClass, Vec<u64>> = machine
        .fu_classes()
        .iter()
        .map(|&(c, k)| (c, vec![0u64; k as usize]))
        .collect();

    let mut cycle: u64 = 0;
    // earliest[v]: data-ready cycle (max pred finish).
    let mut earliest: Vec<u64> = vec![0; n];

    while pending > 0 {
        // Settle pseudo nodes that are ready at or before this cycle.
        let mut progressed = true;
        while progressed {
            progressed = false;
            let mut i = 0;
            while i < ready.len() {
                let v = ready[i];
                let is_pseudo = node_class(ddg, machine, v).is_none();
                if is_pseudo && earliest[v.index()] <= cycle {
                    ready.swap_remove(i);
                    finish[v.index()] = Some(cycle);
                    pending -= 1;
                    progressed = true;
                    release_succs(
                        ddg,
                        v,
                        cycle,
                        &mut remaining_preds,
                        &mut earliest,
                        &mut ready,
                    );
                } else {
                    i += 1;
                }
            }
        }
        // Issue real ops: highest priority (longest path to exit) first.
        let mut issuable: Vec<NodeId> = ready
            .iter()
            .copied()
            .filter(|&v| node_class(ddg, machine, v).is_some() && earliest[v.index()] <= cycle)
            .collect();
        issuable.sort_by_key(|&v| {
            // Max priority = min alap; tie on node id for determinism.
            (levels.alap(v), v)
        });
        let mut issued_any = false;
        for v in issuable {
            let class = node_class(ddg, machine, v).expect("real op");
            let lat = node_latency(ddg, machine, v);
            let Some(units) = unit_free.get_mut(&class) else {
                return Err(CompileError::MissingUnit { class });
            };
            let Some(idx) = units.iter().position(|&f| f <= cycle) else {
                continue; // all units of this class busy this cycle
            };
            units[idx] = cycle + node_occupancy(ddg, machine, v);
            ops.push(ScheduledOp {
                node: v,
                cycle,
                fu: (class, idx as u32),
            });
            start.insert(v, cycle);
            finish[v.index()] = Some(cycle + lat);
            let pos = ready.iter().position(|&r| r == v).expect("was ready");
            ready.swap_remove(pos);
            pending -= 1;
            issued_any = true;
            release_succs(
                ddg,
                v,
                cycle + lat,
                &mut remaining_preds,
                &mut earliest,
                &mut ready,
            );
        }
        let _ = issued_any;
        cycle += 1;
        // Safety valve: a correct scheduler always terminates well within
        // this bound.
        if cycle > critical + (ddg.dag().node_count() as u64 + 2) * (critical.max(1) + 1) {
            return Err(CompileError::SchedulerStalled {
                scheduler: "list scheduler",
                cycle,
            });
        }
    }

    let length = ops
        .iter()
        .map(|op| op.cycle + node_latency(ddg, machine, op.node))
        .max()
        .unwrap_or(0);
    ops.sort_by_key(|op| (op.cycle, op.fu.0 as u32, op.fu.1));
    Ok(Schedule { ops, start, length })
}

fn release_succs(
    ddg: &DependenceDag,
    v: NodeId,
    avail: u64,
    remaining_preds: &mut [usize],
    earliest: &mut [u64],
    ready: &mut Vec<NodeId>,
) {
    let mut seen = std::collections::HashSet::new();
    for s in ddg.dag().succs(v) {
        if !seen.insert(s) {
            continue;
        }
        earliest[s.index()] = earliest[s.index()].max(avail);
        remaining_preds[s.index()] -= 1;
        if remaining_preds[s.index()] == 0 {
            ready.push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::parser::parse;

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn ddg_of(src: &str) -> DependenceDag {
        DependenceDag::from_entry_block(&parse(src).unwrap())
    }

    #[test]
    fn figure2_unbounded_schedule_hits_critical_path() {
        let ddg = ddg_of(FIG2);
        let machine = Machine::homogeneous(8, 32);
        let s = list_schedule(&ddg, &machine);
        assert_eq!(s.length(), 5, "A;B|C|D;E|F|G|H;I|J;K");
        s.validate(&ddg, &machine).unwrap();
        assert_eq!(s.op_count(), 11);
    }

    #[test]
    fn one_fu_schedule_is_sequential() {
        let ddg = ddg_of(FIG2);
        let machine = Machine::homogeneous(1, 32);
        let s = list_schedule(&ddg, &machine);
        assert_eq!(s.length(), 11, "one op per cycle");
        s.validate(&ddg, &machine).unwrap();
    }

    #[test]
    fn width_respects_fu_count() {
        let ddg = ddg_of(FIG2);
        let machine = Machine::homogeneous(2, 32);
        let s = list_schedule(&ddg, &machine);
        s.validate(&ddg, &machine).unwrap();
        for c in 0..s.length() {
            let per_cycle = s.ops().iter().filter(|o| o.cycle == c).count();
            assert!(per_cycle <= 2, "cycle {c} issues {per_cycle}");
        }
        assert!(s.length() >= 6, "11 ops / 2 units rounds up to 6");
    }

    #[test]
    fn latencies_delay_dependents() {
        let ddg = ddg_of("v0 = load a[0]\nv1 = mul v0, 2\nstore b[0], v1\n");
        let machine = Machine::classic_vliw();
        let s = list_schedule(&ddg, &machine);
        s.validate(&ddg, &machine).unwrap();
        // load (2 cycles) -> mul (3) -> store (1).
        assert_eq!(s.length(), 6);
    }

    #[test]
    fn sequence_edges_constrain_schedule() {
        use ursa_graph::dag::NodeId;
        let mut ddg = ddg_of("v0 = const 1\nv1 = const 2\nstore a[0], v0\nstore a[1], v1\n");
        let machine = Machine::homogeneous(4, 32);
        let before = list_schedule(&ddg, &machine);
        assert_eq!(before.length(), 2);
        // Force the two consts apart.
        ddg.add_sequence_edge(NodeId(2), NodeId(3));
        let after = list_schedule(&ddg, &machine);
        after.validate(&ddg, &machine).unwrap();
        assert!(after.start_of(NodeId(3)).unwrap() >= 1);
    }

    #[test]
    fn classed_machine_routes_to_units() {
        let ddg = ddg_of(FIG2);
        let machine = Machine::classic_vliw();
        let s = list_schedule(&ddg, &machine);
        s.validate(&ddg, &machine).unwrap();
        // The four muls must run on the two mul units.
        let mul_ops: Vec<_> = s.ops().iter().filter(|o| o.fu.0 == FuClass::Mul).collect();
        assert_eq!(mul_ops.len(), 4);
        assert!(mul_ops.iter().all(|o| o.fu.1 < 2));
    }

    #[test]
    fn validate_catches_missing_node() {
        let ddg = ddg_of(FIG2);
        let machine = Machine::homogeneous(4, 32);
        let mut s = list_schedule(&ddg, &machine);
        s.ops.pop();
        let victim = s.ops.last().map(|o| o.node).unwrap();
        let _ = victim;
        // Remove a node from the start map to simulate a hole.
        let some_node = ddg.fu_nodes().next().unwrap();
        s.start.remove(&some_node);
        assert!(s.validate(&ddg, &machine).is_err());
    }

    #[test]
    fn empty_block_schedules_empty() {
        let ddg = ddg_of("# nothing\n");
        let machine = Machine::homogeneous(2, 4);
        let s = list_schedule(&ddg, &machine);
        assert_eq!(s.op_count(), 0);
        assert_eq!(s.length(), 0);
    }
}
