//! The two verification oracles agree: the differential interpreter
//! (dynamic, one input) and the translation validator (static, all
//! inputs) both accept pipeline-produced code, and a miscompile the
//! dynamic oracle can observe is also rejected statically.

use std::collections::HashMap;
use ursa_ir::ddg::DependenceDag;
use ursa_ir::instr::Instr;
use ursa_ir::Trace;
use ursa_lint::{validate_translation, Code, Severity};
use ursa_machine::Machine;
use ursa_sched::vliw::SlotOp;
use ursa_sched::{try_compile, CompileStrategy};
use ursa_vm::equiv::{check_equivalence, seeded_memory};
use ursa_workloads::paper::figure2_block;

#[test]
fn both_oracles_accept_clean_code_and_static_rejects_a_clobber() {
    // Tight machine: the compile spills, exercising both oracles on the
    // full spill machinery.
    let program = figure2_block();
    let trace = Trace::single(0);
    let machine = Machine::homogeneous(2, 3);
    let compiled = try_compile(
        &program,
        &trace,
        &machine,
        CompileStrategy::Ursa(ursa_core::UrsaConfig::default()),
    )
    .expect("figure 2 compiles");
    let ddg = match &compiled.outcome {
        Some(o) => o.ddg.clone(),
        None => DependenceDag::build(&program, &trace),
    };

    // Clean code: both oracles accept.
    let static_errors = validate_translation(&ddg, &compiled.vliw, &machine)
        .diagnostics
        .into_iter()
        .filter(|d| d.severity() == Severity::Error)
        .collect::<Vec<_>>();
    assert!(static_errors.is_empty(), "{static_errors:?}");
    let memory = seeded_memory(&program, 64, 1);
    check_equivalence(&program, &compiled.vliw, &machine, &memory, &HashMap::new())
        .expect("dynamic oracle accepts clean code");

    // Corrupt: redirect some op's destination onto another live
    // register until the static oracle reports the clobber. (Candidate
    // search — the first redirect may hit a dead value.)
    for wc in 0..compiled.vliw.words.len() {
        for ws in 0..compiled.vliw.words[wc].len() {
            for target in 0..machine.registers() {
                let mut corrupted = compiled.vliw.clone();
                let SlotOp::Instr(i) = &mut corrupted.words[wc][ws].op else {
                    continue;
                };
                let Some(dst) = i.def() else { continue };
                if dst.0 == target {
                    continue;
                }
                *i = match i.clone() {
                    Instr::Const { value, .. } => Instr::Const {
                        dst: ursa_ir::value::VirtualReg(target),
                        value,
                    },
                    Instr::Bin { op, a, b, .. } => Instr::Bin {
                        op,
                        dst: ursa_ir::value::VirtualReg(target),
                        a,
                        b,
                    },
                    Instr::Un { op, a, .. } => Instr::Un {
                        op,
                        dst: ursa_ir::value::VirtualReg(target),
                        a,
                    },
                    Instr::Load { mem, .. } => Instr::Load {
                        dst: ursa_ir::value::VirtualReg(target),
                        mem,
                    },
                    store @ Instr::Store { .. } => store,
                };
                let diags = validate_translation(&ddg, &corrupted, &machine).diagnostics;
                if diags.iter().any(|d| d.code == Code::ClobberedLiveRegister) {
                    return;
                }
            }
        }
    }
    panic!("no destination redirect was rejected as a clobber");
}
