//! Reference interpreter for sequential three-address programs.

use crate::memory::Memory;
use std::collections::HashMap;
use std::fmt;
use ursa_ir::instr::{Instr, Terminator};
use ursa_ir::program::Program;
use ursa_ir::value::{Operand, VirtualReg};

/// Execution faults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Integer division or remainder by zero.
    DivideByZero,
    /// The step budget ran out (runaway loop).
    StepLimit(usize),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::DivideByZero => write!(f, "integer division by zero"),
            ExecError::StepLimit(n) => write!(f, "exceeded step limit of {n} instructions"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Outcome of a sequential run.
#[derive(Clone, Debug)]
pub struct SeqResult {
    /// Final memory.
    pub memory: Memory,
    /// Final register file (original virtual registers).
    pub registers: HashMap<VirtualReg, i64>,
    /// Instructions executed (terminators excluded).
    pub instrs_executed: usize,
    /// Block indices visited, in order.
    pub path: Vec<usize>,
}

/// Interprets `program` from its entry block.
///
/// `initial` seeds the memory; `reg_inputs` preloads registers (values
/// live into the entry block). Registers default to zero.
///
/// # Errors
///
/// [`ExecError::DivideByZero`] on a zero divisor;
/// [`ExecError::StepLimit`] after `max_steps` instructions.
pub fn run_sequential(
    program: &Program,
    initial: &Memory,
    reg_inputs: &HashMap<VirtualReg, i64>,
    max_steps: usize,
) -> Result<SeqResult, ExecError> {
    let mut memory = initial.clone();
    let mut registers: HashMap<VirtualReg, i64> = reg_inputs.clone();
    let mut steps = 0usize;
    let mut block = 0usize;
    let mut path = vec![block];

    let read = |registers: &HashMap<VirtualReg, i64>, o: Operand| -> i64 {
        match o {
            Operand::Reg(r) => registers.get(&r).copied().unwrap_or(0),
            Operand::Imm(v) => v,
        }
    };

    loop {
        for instr in &program.blocks[block].instrs {
            steps += 1;
            if steps > max_steps {
                return Err(ExecError::StepLimit(max_steps));
            }
            match instr {
                Instr::Const { dst, value } => {
                    registers.insert(*dst, *value);
                }
                Instr::Bin { op, dst, a, b } => {
                    let r = op
                        .eval(read(&registers, *a), read(&registers, *b))
                        .ok_or(ExecError::DivideByZero)?;
                    registers.insert(*dst, r);
                }
                Instr::Un { op, dst, a } => {
                    registers.insert(*dst, op.eval(read(&registers, *a)));
                }
                Instr::Load { dst, mem } => {
                    let idx = read(&registers, mem.index);
                    registers.insert(*dst, memory.load(mem.base, idx));
                }
                Instr::Store { mem, src } => {
                    let idx = read(&registers, mem.index);
                    memory.store(mem.base, idx, read(&registers, *src));
                }
            }
        }
        match &program.blocks[block].term {
            Terminator::Ret => break,
            Terminator::Jump(t) => block = *t,
            Terminator::Branch {
                cond,
                then_block,
                else_block,
            } => {
                block = if read(&registers, *cond) != 0 {
                    *then_block
                } else {
                    *else_block
                };
            }
        }
        path.push(block);
        if path.len() > max_steps {
            return Err(ExecError::StepLimit(max_steps));
        }
    }
    Ok(SeqResult {
        memory,
        registers,
        instrs_executed: steps,
        path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::parser::parse;
    use ursa_ir::value::SymbolId;

    #[test]
    fn straight_line_arithmetic() {
        let p = parse(
            "v0 = const 6\n\
             v1 = const 7\n\
             v2 = mul v0, v1\n\
             store out[0], v2\n",
        )
        .unwrap();
        let r = run_sequential(&p, &Memory::new(), &HashMap::new(), 100).unwrap();
        assert_eq!(r.memory.load(SymbolId(0), 0), 42);
        assert_eq!(r.instrs_executed, 4);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let p = parse("v0 = load a[3]\nv1 = add v0, 1\nstore a[3], v1\n").unwrap();
        let mut m = Memory::new();
        m.store(SymbolId(0), 3, 10);
        let r = run_sequential(&p, &m, &HashMap::new(), 100).unwrap();
        assert_eq!(r.memory.load(SymbolId(0), 3), 11);
    }

    #[test]
    fn branches_follow_condition() {
        let p = parse(
            "block entry:\n\
             v0 = load a[0]\n\
             br v0, hot, cold\n\
             block hot:\n\
             store b[0], 1\n\
             ret\n\
             block cold:\n\
             store b[0], 2\n\
             ret\n",
        )
        .unwrap();
        let mut taken = Memory::new();
        taken.store(SymbolId(0), 0, 5);
        let r = run_sequential(&p, &taken, &HashMap::new(), 100).unwrap();
        assert_eq!(r.memory.load(SymbolId(1), 0), 1);
        assert_eq!(r.path, vec![0, 1]);

        let r2 = run_sequential(&p, &Memory::new(), &HashMap::new(), 100).unwrap();
        assert_eq!(r2.memory.load(SymbolId(1), 0), 2);
        assert_eq!(r2.path, vec![0, 2]);
    }

    #[test]
    fn loop_executes_and_terminates() {
        // Count down from 3: body runs 3 times.
        let p = parse(
            "block entry:\n\
             v0 = const 3\n\
             jmp head\n\
             block head:\n\
             v1 = load s[0]\n\
             v2 = add v1, v0\n\
             store s[0], v2\n\
             v0 = sub v0, 1\n\
             v3 = cmplt 0, v0\n\
             br v3, head, done\n\
             block done:\n\
             ret\n",
        )
        .unwrap();
        let r = run_sequential(&p, &Memory::new(), &HashMap::new(), 1000).unwrap();
        assert_eq!(r.memory.load(SymbolId(0), 0), 3 + 2 + 1);
    }

    #[test]
    fn divide_by_zero_faults() {
        let p = parse("v0 = const 0\nv1 = div 1, v0\nstore a[0], v1\n").unwrap();
        assert_eq!(
            run_sequential(&p, &Memory::new(), &HashMap::new(), 100).err(),
            Some(ExecError::DivideByZero)
        );
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let p = parse(
            "block spin:\n\
             v0 = const 1\n\
             br v0, spin, out\n\
             block out:\n\
             ret\n",
        )
        .unwrap();
        assert!(matches!(
            run_sequential(&p, &Memory::new(), &HashMap::new(), 50),
            Err(ExecError::StepLimit(50))
        ));
    }

    #[test]
    fn register_inputs_preload() {
        let p = parse("v1 = add v0, 1\nstore a[0], v1\n").unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(VirtualReg(0), 9);
        let r = run_sequential(&p, &Memory::new(), &inputs, 100).unwrap();
        assert_eq!(r.memory.load(SymbolId(0), 0), 10);
    }

    fn _assert_error_impls() {
        fn is_error<T: std::error::Error + Send + Sync>() {}
        is_error::<ExecError>();
    }
}
