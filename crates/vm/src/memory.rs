//! The simulated memory: sparse, symbol-indexed cells.

use std::collections::HashMap;
use ursa_ir::value::SymbolId;

/// Sparse memory: each `(symbol, index)` cell holds an `i64`;
/// uninitialized cells read zero.
///
/// # Examples
///
/// ```
/// use ursa_vm::memory::Memory;
/// use ursa_ir::value::SymbolId;
///
/// let mut m = Memory::new();
/// assert_eq!(m.load(SymbolId(0), 3), 0);
/// m.store(SymbolId(0), 3, 42);
/// assert_eq!(m.load(SymbolId(0), 3), 42);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Memory {
    cells: HashMap<(SymbolId, i64), i64>,
}

impl Memory {
    /// An empty (all-zero) memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Reads a cell (0 if never written).
    pub fn load(&self, sym: SymbolId, index: i64) -> i64 {
        self.cells.get(&(sym, index)).copied().unwrap_or(0)
    }

    /// Writes a cell.
    pub fn store(&mut self, sym: SymbolId, index: i64, value: i64) {
        self.cells.insert((sym, index), value);
    }

    /// Number of cells ever written.
    pub fn written_cells(&self) -> usize {
        self.cells.len()
    }

    /// Iterates over written cells.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, i64, i64)> + '_ {
        self.cells.iter().map(|(&(s, i), &v)| (s, i, v))
    }

    /// Compares the contents of two memories, restricted to symbols with
    /// id below `symbol_bound` (spill areas appended by the compiler are
    /// excluded that way). Returns the first differing cell.
    pub fn diff_below(
        &self,
        other: &Memory,
        symbol_bound: u32,
    ) -> Option<(SymbolId, i64, i64, i64)> {
        let keys = self
            .cells
            .keys()
            .chain(other.cells.keys())
            .filter(|(s, _)| s.0 < symbol_bound);
        let mut keys: Vec<_> = keys.collect();
        keys.sort();
        keys.dedup();
        for &&(s, i) in &keys {
            let a = self.load(s, i);
            let b = other.load(s, i);
            if a != b {
                return Some((s, i, a, b));
            }
        }
        None
    }

    /// Fills cells `0..len` of `sym` with deterministic pseudo-random
    /// values derived from `seed` — workload initialization for
    /// equivalence tests.
    pub fn fill_pattern(&mut self, sym: SymbolId, len: i64, seed: u64) {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        for i in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Keep magnitudes small so products stay far from overflow.
            self.store(sym, i, (state % 2048) as i64 - 1024);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default_and_round_trip() {
        let mut m = Memory::new();
        assert_eq!(m.load(SymbolId(1), -5), 0);
        m.store(SymbolId(1), -5, 7);
        assert_eq!(m.load(SymbolId(1), -5), 7);
        assert_eq!(m.written_cells(), 1);
    }

    #[test]
    fn diff_respects_symbol_bound() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.store(SymbolId(0), 0, 1);
        b.store(SymbolId(0), 0, 1);
        // Differ only in the spill area (symbol 5).
        a.store(SymbolId(5), 0, 99);
        assert_eq!(a.diff_below(&b, 5), None);
        assert!(a.diff_below(&b, 6).is_some());
    }

    #[test]
    fn diff_reports_first_mismatch() {
        let mut a = Memory::new();
        let b = Memory::new();
        a.store(SymbolId(0), 2, 9);
        let (s, i, va, vb) = a.diff_below(&b, 1).unwrap();
        assert_eq!((s, i, va, vb), (SymbolId(0), 2, 9, 0));
    }

    #[test]
    fn fill_pattern_is_deterministic_and_bounded() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.fill_pattern(SymbolId(0), 16, 42);
        b.fill_pattern(SymbolId(0), 16, 42);
        assert_eq!(a, b);
        for (_, _, v) in a.iter() {
            assert!((-1024..1024).contains(&v));
        }
        let mut c = Memory::new();
        c.fill_pattern(SymbolId(0), 16, 43);
        assert_ne!(a, c, "different seeds differ");
    }
}
