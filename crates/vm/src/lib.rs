//! VLIW simulator and semantic-equivalence checking for URSA.
//!
//! The 1993 paper's prototype targeted a Sun workstation and never
//! reports execution; this crate substitutes a small, cycle-accurate
//! simulator so every compilation strategy can be *validated* (the
//! generated wide words compute what the sequential program computes)
//! and *measured* (cycles, operations, memory traffic):
//!
//! * [`memory`] — sparse symbol-indexed memory.
//! * [`seq`] — reference interpreter for sequential programs.
//! * [`wide`] — wide-word simulation with non-pipelined latencies and
//!   structural validation (unit conflicts, register bounds).
//! * [`equiv`] — end-to-end equivalence checking.
//! * [`program`] — whole-program execution over a
//!   [`ursa_sched::program::ProgramSchedule`]: units are run one at a
//!   time and stitched through branch exit tables and the `__boundary`
//!   hand-off area.
//!
//! # Examples
//!
//! ```
//! use std::collections::HashMap;
//! use ursa_ir::parser::parse;
//! use ursa_machine::Machine;
//! use ursa_sched::{compile_entry_block, CompileStrategy};
//! use ursa_vm::equiv::{check_equivalence, seeded_memory};
//!
//! let program = parse(
//!     "v0 = load a[0]\n\
//!      v1 = mul v0, v0\n\
//!      store b[0], v1\n",
//! ).unwrap();
//! let machine = Machine::homogeneous(2, 3);
//! let compiled = compile_entry_block(&program, &machine, CompileStrategy::Postpass);
//! let memory = seeded_memory(&program, 4, 7);
//! check_equivalence(&program, &compiled.vliw, &machine, &memory, &HashMap::new()).unwrap();
//! ```

pub mod equiv;
pub mod memory;
pub mod program;
pub mod seq;
pub mod verify;
pub mod wide;

pub use equiv::{check_equivalence, seeded_memory, EquivalenceError};
pub use memory::Memory;
pub use program::{
    check_program_equivalence, run_program, ProgramEquivalenceError, ProgramFault, ProgramRunResult,
};
pub use seq::{run_sequential, ExecError, SeqResult};
pub use verify::{verify, VerifyError};
pub use wide::{run_vliw, VliwFault, VliwResult};
