//! Static verification of VLIW programs.
//!
//! The simulator ([`crate::wide`]) checks dynamic behavior; this module
//! checks *structure without executing*: every register read must be
//! preceded by a committed write (or a declared live-in), no two writes
//! to one register may commit at the same cycle, and no functional unit
//! may be oversubscribed. It catches the same class of compiler bugs as
//! the simulator but points at the defect rather than at a wrong final
//! value — both bugs found during this reproduction's development would
//! have been caught here.

use std::collections::HashMap;
use std::fmt;
use ursa_ir::value::{Operand, VirtualReg};
use ursa_machine::{Machine, OpKind};
use ursa_sched::vliw::{SlotOp, VliwProgram};

/// A structural defect in a VLIW program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// An operand register is read before any write to it commits.
    ReadBeforeWrite {
        /// Issue cycle of the reading operation.
        cycle: u64,
        /// The register read.
        reg: u32,
    },
    /// Two writes to the same register commit at the same cycle — the
    /// final contents would depend on unspecified commit order.
    WriteCollision {
        /// The commit cycle.
        cycle: u64,
        /// The register written twice.
        reg: u32,
    },
    /// A functional unit is issued a second operation while busy.
    UnitOversubscribed {
        /// Issue cycle of the conflicting operation.
        cycle: u64,
        /// `class#index` of the unit.
        unit: String,
    },
    /// A register index is outside the program's declared file.
    RegisterOutOfRange {
        /// Issue cycle of the offending operation.
        cycle: u64,
        /// The register index.
        reg: u32,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::ReadBeforeWrite { cycle, reg } => {
                write!(f, "r{reg} read at cycle {cycle} before any write commits")
            }
            VerifyError::WriteCollision { cycle, reg } => {
                write!(f, "two writes to r{reg} commit at cycle {cycle}")
            }
            VerifyError::UnitOversubscribed { cycle, unit } => {
                write!(f, "unit {unit} issued while busy at cycle {cycle}")
            }
            VerifyError::RegisterOutOfRange { cycle, reg } => {
                write!(f, "r{reg} out of range at cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Statically verifies `vliw` against `machine`. Returns every defect
/// found (empty = verified).
pub fn verify(vliw: &VliwProgram, machine: &Machine) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    // Earliest cycle at which each register holds a committed value.
    let mut written_at: HashMap<u32, u64> =
        vliw.live_in.iter().map(|&(phys, _)| (phys, 0)).collect();
    // Commit times per register, to detect collisions.
    let mut commits: HashMap<(u32, u64), u64> = HashMap::new();
    let mut unit_busy: HashMap<(ursa_machine::FuClass, u32), u64> = HashMap::new();

    let check_read = |reg: VirtualReg,
                      cycle: u64,
                      written_at: &HashMap<u32, u64>,
                      errors: &mut Vec<VerifyError>| {
        if reg.0 >= vliw.num_regs {
            errors.push(VerifyError::RegisterOutOfRange { cycle, reg: reg.0 });
            return;
        }
        match written_at.get(&reg.0) {
            Some(&ready) if ready <= cycle => {}
            _ => errors.push(VerifyError::ReadBeforeWrite { cycle, reg: reg.0 }),
        }
    };

    for (c, word) in vliw.words.iter().enumerate() {
        let cycle = c as u64;
        for op in word {
            // Unit occupancy.
            let (kind, reads, def): (OpKind, Vec<VirtualReg>, Option<VirtualReg>) = match &op.op {
                SlotOp::Instr(i) => (OpKind::of_instr(i), i.uses(), i.def()),
                SlotOp::Branch { cond, .. } => (
                    OpKind::Branch,
                    match cond {
                        Operand::Reg(r) => vec![*r],
                        _ => Vec::new(),
                    },
                    None,
                ),
            };
            if let Some(&until) = unit_busy.get(&op.fu) {
                if until > cycle {
                    errors.push(VerifyError::UnitOversubscribed {
                        cycle,
                        unit: format!("{}#{}", op.fu.0, op.fu.1),
                    });
                }
            }
            unit_busy.insert(op.fu, cycle + machine.occupancy_of(kind));

            for r in reads {
                check_read(r, cycle, &written_at, &mut errors);
            }
            if let Some(d) = def {
                if d.0 >= vliw.num_regs {
                    errors.push(VerifyError::RegisterOutOfRange { cycle, reg: d.0 });
                    continue;
                }
                let commit = cycle + machine.latency_of(kind);
                if commits.insert((d.0, commit), cycle).is_some() {
                    errors.push(VerifyError::WriteCollision {
                        cycle: commit,
                        reg: d.0,
                    });
                }
                // The value is readable from its commit cycle onward;
                // keep the earliest availability monotone per register.
                written_at
                    .entry(d.0)
                    .and_modify(|t| *t = (*t).min(commit))
                    .or_insert(commit);
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::parser::parse;
    use ursa_sched::{compile_entry_block, CompileStrategy};

    fn compiled(src: &str, fus: u32, regs: u32) -> (VliwProgram, Machine) {
        let p = parse(src).unwrap();
        let machine = Machine::homogeneous(fus, regs);
        let c = compile_entry_block(&p, &machine, CompileStrategy::Postpass);
        (c.vliw, machine)
    }

    #[test]
    fn compiled_programs_verify_clean() {
        let (vliw, machine) = compiled(
            "v0 = load a[0]\nv1 = mul v0, 2\nv2 = mul v0, 3\nv3 = add v1, v2\nstore b[0], v3\n",
            2,
            3,
        );
        assert_eq!(verify(&vliw, &machine), Vec::new());
    }

    #[test]
    fn whole_suite_verifies_clean() {
        for kernel in ursa_workloads::kernel_suite() {
            for strategy in [
                CompileStrategy::Ursa(Default::default()),
                CompileStrategy::Postpass,
                CompileStrategy::Prepass,
            ] {
                let name = strategy.name();
                let machine = Machine::homogeneous(4, 6);
                let c = compile_entry_block(&kernel.program, &machine, strategy);
                let errs = verify(&c.vliw, &machine);
                assert!(errs.is_empty(), "{} via {name}: {errs:?}", kernel.name);
            }
        }
    }

    #[test]
    fn read_before_write_detected() {
        use ursa_ir::instr::{BinOp, Instr};
        use ursa_machine::FuClass;
        use ursa_sched::vliw::MachineOp;
        let vliw = VliwProgram {
            words: vec![vec![MachineOp {
                op: SlotOp::Instr(Instr::Bin {
                    op: BinOp::Add,
                    dst: VirtualReg(0),
                    a: Operand::Reg(VirtualReg(1)),
                    b: Operand::Imm(1),
                }),
                fu: (FuClass::Universal, 0),
            }]],
            symbols: vec![],
            num_regs: 2,
            live_in: vec![],
        };
        let machine = Machine::homogeneous(1, 2);
        let errs = verify(&vliw, &machine);
        assert!(matches!(
            errs[..],
            [VerifyError::ReadBeforeWrite { reg: 1, .. }]
        ));
    }

    #[test]
    fn live_in_registers_are_readable() {
        use ursa_ir::instr::{BinOp, Instr};
        use ursa_machine::FuClass;
        use ursa_sched::vliw::MachineOp;
        let vliw = VliwProgram {
            words: vec![vec![MachineOp {
                op: SlotOp::Instr(Instr::Bin {
                    op: BinOp::Add,
                    dst: VirtualReg(0),
                    a: Operand::Reg(VirtualReg(1)),
                    b: Operand::Imm(1),
                }),
                fu: (FuClass::Universal, 0),
            }]],
            symbols: vec![],
            num_regs: 2,
            live_in: vec![(1, VirtualReg(9))],
        };
        let machine = Machine::homogeneous(1, 2);
        assert!(verify(&vliw, &machine).is_empty());
    }

    #[test]
    fn write_collision_detected() {
        use ursa_ir::instr::Instr;
        use ursa_machine::FuClass;
        use ursa_sched::vliw::MachineOp;
        let konst = |dst: u32, fu: u32| MachineOp {
            op: SlotOp::Instr(Instr::Const {
                dst: VirtualReg(dst),
                value: 1,
            }),
            fu: (FuClass::Universal, fu),
        };
        let vliw = VliwProgram {
            words: vec![vec![konst(0, 0), konst(0, 1)]],
            symbols: vec![],
            num_regs: 2,
            live_in: vec![],
        };
        let machine = Machine::homogeneous(2, 2);
        let errs = verify(&vliw, &machine);
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::WriteCollision { reg: 0, .. })));
    }

    #[test]
    fn oversubscription_detected() {
        use ursa_ir::instr::Instr;
        use ursa_machine::FuClass;
        use ursa_sched::vliw::MachineOp;
        let konst = |dst: u32| MachineOp {
            op: SlotOp::Instr(Instr::Const {
                dst: VirtualReg(dst),
                value: 1,
            }),
            fu: (FuClass::Universal, 0),
        };
        let vliw = VliwProgram {
            words: vec![vec![konst(0), konst(1)]],
            symbols: vec![],
            num_regs: 2,
            live_in: vec![],
        };
        let machine = Machine::homogeneous(1, 2);
        let errs = verify(&vliw, &machine);
        assert!(errs
            .iter()
            .any(|e| matches!(e, VerifyError::UnitOversubscribed { .. })));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = VerifyError::ReadBeforeWrite { cycle: 3, reg: 7 };
        assert!(e.to_string().contains("r7"));
        assert!(e.to_string().contains("cycle 3"));
    }
}
