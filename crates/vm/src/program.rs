//! Whole-program execution: stitching compiled units together.
//!
//! A [`ProgramSchedule`] is a set of per-unit VLIW programs plus a
//! control map. Execution starts at the unit containing block 0 and
//! repeatedly runs one unit to completion: if a branch fired, its
//! ordinal indexes the unit's exit table; otherwise control falls
//! through. Either way the next block is a unit head (a guarantee of
//! unit selection), and all values cross the boundary through the
//! `__boundary` memory area — no registers survive a unit switch.

use crate::memory::Memory;
use crate::seq::run_sequential;
use crate::wide::run_vliw;
use std::collections::HashMap;
use std::fmt;
use ursa_ir::program::Program;
use ursa_ir::value::{SymbolId, VirtualReg};
use ursa_machine::Machine;
use ursa_sched::program::ProgramSchedule;

/// Why a whole-program run stopped abnormally.
#[derive(Clone, Debug)]
pub enum ProgramFault {
    /// A unit's VLIW simulation faulted.
    Unit {
        /// Head block of the faulting unit.
        block: usize,
        /// The underlying fault.
        fault: crate::wide::VliwFault,
    },
    /// Control reached a block that heads no unit — a broken control
    /// map (should be impossible for driver-built schedules).
    NotAUnitHead {
        /// The orphaned block.
        block: usize,
    },
    /// A unit reported a branch ordinal outside its exit table.
    BadExitOrdinal {
        /// Head block of the unit.
        block: usize,
        /// The out-of-range ordinal.
        ordinal: usize,
    },
    /// The run exceeded its unit-iteration allowance (a runaway loop).
    UnitRunLimit {
        /// The allowance that was exhausted.
        limit: usize,
    },
}

impl fmt::Display for ProgramFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramFault::Unit { block, fault } => {
                write!(f, "unit at block {block} faulted: {fault}")
            }
            ProgramFault::NotAUnitHead { block } => {
                write!(f, "control reached block {block}, which heads no unit")
            }
            ProgramFault::BadExitOrdinal { block, ordinal } => {
                write!(
                    f,
                    "unit at block {block} reported exit ordinal {ordinal} outside its exit table"
                )
            }
            ProgramFault::UnitRunLimit { limit } => {
                write!(f, "exceeded {limit} unit runs (runaway loop?)")
            }
        }
    }
}

impl std::error::Error for ProgramFault {}

/// The result of a whole-program run.
#[derive(Clone, Debug)]
pub struct ProgramRunResult {
    /// Final memory (including the `__boundary` scratch area).
    pub memory: Memory,
    /// Total cycles across all unit runs.
    pub cycles: u64,
    /// Total operations executed across all unit runs.
    pub ops_executed: usize,
    /// How many unit executions the run took.
    pub unit_runs: usize,
    /// Head block of each unit executed, in order.
    pub block_path: Vec<usize>,
}

/// Runs `sched` from block 0 until a unit returns (no exit fired and no
/// fall-through), bounding the run at `max_unit_runs` unit executions.
///
/// Register inputs are delivered the same way the compiled code expects
/// all cross-unit values: through the `__boundary` area (slot `R` holds
/// register `R`).
///
/// # Errors
///
/// See [`ProgramFault`].
pub fn run_program(
    sched: &ProgramSchedule,
    machine: &Machine,
    initial: &Memory,
    reg_inputs: &HashMap<VirtualReg, i64>,
    max_unit_runs: usize,
) -> Result<ProgramRunResult, ProgramFault> {
    let mut memory = initial.clone();
    for (&r, &v) in reg_inputs {
        memory.store(sched.boundary_sym, r.0 as i64, v);
    }
    let mut cycles = 0u64;
    let mut ops_executed = 0usize;
    let mut block_path = Vec::new();
    let mut unit_runs = 0usize;
    let mut block = 0usize;
    loop {
        if unit_runs >= max_unit_runs {
            return Err(ProgramFault::UnitRunLimit {
                limit: max_unit_runs,
            });
        }
        unit_runs += 1;
        block_path.push(block);
        let ui = sched
            .unit_for_block(block)
            .ok_or(ProgramFault::NotAUnitHead { block })?;
        let unit = &sched.units[ui];
        let vliw = &unit.compiled.vliw;
        // Goodman–Hsu units may declare a wider file than the machine.
        let exec_machine = if vliw.num_regs > machine.registers() {
            machine.with_registers(vliw.num_regs)
        } else {
            machine.clone()
        };
        let result = run_vliw(vliw, &exec_machine, &memory, &HashMap::new())
            .map_err(|fault| ProgramFault::Unit { block, fault })?;
        cycles += result.cycles;
        ops_executed += result.ops_executed;
        memory = result.memory;
        block = match result.exit_branch {
            Some(k) => *unit
                .exits
                .get(k)
                .ok_or(ProgramFault::BadExitOrdinal { block, ordinal: k })?,
            None => match unit.fallthrough {
                Some(t) => t,
                None => break,
            },
        };
    }
    Ok(ProgramRunResult {
        memory,
        cycles,
        ops_executed,
        unit_runs,
        block_path,
    })
}

/// Why a whole-program equivalence check failed.
#[derive(Clone, Debug)]
pub enum ProgramEquivalenceError {
    /// The sequential reference interpreter faulted.
    Reference(crate::seq::ExecError),
    /// The compiled program faulted.
    Program(ProgramFault),
    /// Final memories differ on the original program's symbols.
    MemoryMismatch {
        /// Symbol of the differing cell.
        symbol: SymbolId,
        /// Index of the differing cell.
        index: i64,
        /// Value the reference computed.
        expected: i64,
        /// Value the compiled program computed.
        actual: i64,
    },
}

impl fmt::Display for ProgramEquivalenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramEquivalenceError::Reference(e) => write!(f, "reference faulted: {e}"),
            ProgramEquivalenceError::Program(e) => write!(f, "compiled program faulted: {e}"),
            ProgramEquivalenceError::MemoryMismatch {
                symbol,
                index,
                expected,
                actual,
            } => write!(
                f,
                "memory mismatch at {symbol:?}[{index}]: reference {expected}, program {actual}"
            ),
        }
    }
}

impl std::error::Error for ProgramEquivalenceError {}

/// Runs the sequential reference over the *original* program and the
/// compiled [`ProgramSchedule`], comparing final memories over the
/// original symbol range (the `__boundary` area and any spill areas are
/// compiler scratch and excluded).
///
/// # Errors
///
/// See [`ProgramEquivalenceError`].
pub fn check_program_equivalence(
    program: &Program,
    sched: &ProgramSchedule,
    machine: &Machine,
    initial: &Memory,
    reg_inputs: &HashMap<VirtualReg, i64>,
) -> Result<(), ProgramEquivalenceError> {
    let reference = run_sequential(program, initial, reg_inputs, 1_000_000)
        .map_err(ProgramEquivalenceError::Reference)?;
    let wide = run_program(sched, machine, initial, reg_inputs, 100_000)
        .map_err(ProgramEquivalenceError::Program)?;
    let bound = program.symbols.len() as u32;
    if let Some((symbol, index, expected, actual)) =
        reference.memory.diff_below(&wide.memory, bound)
    {
        return Err(ProgramEquivalenceError::MemoryMismatch {
            symbol,
            index,
            expected,
            actual,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::seeded_memory;
    use ursa_ir::parser::parse;
    use ursa_sched::program::try_compile_program;
    use ursa_sched::{CompileStrategy, PipelineOptions};

    const DIAMOND: &str = "\
        block entry:\n\
        v0 = load a[0]\n\
        br v0, hot, cold\n\
        block hot @ 0.8:\n\
        v1 = add v0, 1\n\
        jmp out\n\
        block cold @ 0.2:\n\
        v1 = sub v0, 1\n\
        jmp out\n\
        block out:\n\
        store b[0], v1\n\
        ret\n";

    const LOOP: &str = "\
        block entry:\n\
        v0 = const 0\n\
        jmp head\n\
        block head @ 8:\n\
        v1 = load a[v0]\n\
        v2 = mul v1, 3\n\
        store b[v0], v2\n\
        v0 = add v0, 1\n\
        v3 = cmplt v0, 8\n\
        br v3, head, done\n\
        block done:\n\
        ret\n";

    fn strategies() -> Vec<CompileStrategy> {
        vec![
            CompileStrategy::Ursa(Default::default()),
            CompileStrategy::Postpass,
            CompileStrategy::Prepass,
            CompileStrategy::GoodmanHsu,
        ]
    }

    #[test]
    fn diamond_takes_both_arms_correctly() {
        let p = parse(DIAMOND).unwrap();
        let machine = Machine::homogeneous(2, 4);
        for strategy in strategies() {
            let name = strategy.name();
            let sched = try_compile_program(&p, &machine, strategy, &PipelineOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            for a0 in [0i64, 7] {
                let mut memory = Memory::new();
                memory.store(SymbolId(0), 0, a0);
                let r = run_program(&sched, &machine, &memory, &HashMap::new(), 100)
                    .unwrap_or_else(|e| panic!("{name} (a0={a0}): {e}"));
                let expect = if a0 != 0 { a0 + 1 } else { a0 - 1 };
                assert_eq!(
                    r.memory.load(SymbolId(1), 0),
                    expect,
                    "{name} with a[0]={a0}"
                );
            }
        }
    }

    #[test]
    fn loop_runs_to_completion_on_every_strategy() {
        let p = parse(LOOP).unwrap();
        let machine = Machine::homogeneous(2, 4);
        for strategy in strategies() {
            let name = strategy.name();
            let sched = try_compile_program(&p, &machine, strategy, &PipelineOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let memory = seeded_memory(&p, 8, 3);
            check_program_equivalence(&p, &sched, &machine, &memory, &HashMap::new())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn runaway_loop_is_a_typed_fault() {
        let p = parse(
            "block spin:\n\
             v0 = const 1\n\
             br v0, spin, spin2\n\
             block spin2:\n\
             v1 = const 1\n\
             br v1, spin, spin2\n",
        )
        .unwrap();
        let machine = Machine::homogeneous(2, 4);
        let sched = try_compile_program(
            &p,
            &machine,
            CompileStrategy::Postpass,
            &PipelineOptions::default(),
        )
        .unwrap();
        let err = run_program(&sched, &machine, &Memory::new(), &HashMap::new(), 16).unwrap_err();
        assert!(matches!(err, ProgramFault::UnitRunLimit { limit: 16 }));
        assert!(err.to_string().contains("16"));
    }

    #[test]
    fn register_inputs_arrive_through_the_boundary() {
        // v9 is read before any definition: the sequential interpreter
        // takes it from reg_inputs, the compiled program from the
        // boundary area seeded by run_program.
        let p = parse(
            "block entry:\n\
             v0 = add v9, 1\n\
             store b[0], v0\n\
             ret\n",
        )
        .unwrap();
        let machine = Machine::homogeneous(2, 4);
        let sched = try_compile_program(
            &p,
            &machine,
            CompileStrategy::Postpass,
            &PipelineOptions::default(),
        )
        .unwrap();
        let inputs: HashMap<VirtualReg, i64> = [(VirtualReg(9), 41)].into_iter().collect();
        check_program_equivalence(&p, &sched, &machine, &Memory::new(), &inputs).unwrap();
    }
}
