//! Cycle-accurate simulation of VLIW wide words.
//!
//! Semantics match the compiler's model: operands are read at issue,
//! results (register or memory) commit after the operation's latency,
//! and every functional unit is non-pipelined. The simulator doubles as
//! a validator: it rejects words that oversubscribe a unit or read a
//! register whose pending write has not committed *if* that write was
//! scheduled by a program-order-earlier op — catching scheduler bugs
//! that a pure state comparison could miss.

use crate::memory::Memory;
use crate::seq::ExecError;
use std::collections::HashMap;
use std::fmt;
use ursa_ir::instr::Instr;
use ursa_ir::value::{Operand, VirtualReg};
use ursa_machine::{Machine, OpKind};
use ursa_sched::vliw::{SlotOp, VliwProgram};

/// Structural violations detected while simulating.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VliwFault {
    /// Two ops in flight on the same functional unit.
    UnitConflict {
        /// Cycle of the violation.
        cycle: u64,
        /// The oversubscribed unit.
        unit: String,
    },
    /// An op referenced a register outside the declared file.
    RegisterOutOfRange {
        /// Cycle of the violation.
        cycle: u64,
        /// The offending register.
        reg: u32,
    },
    /// Runtime fault (divide by zero).
    Exec(ExecError),
}

impl fmt::Display for VliwFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VliwFault::UnitConflict { cycle, unit } => {
                write!(f, "functional unit {unit} double-booked at cycle {cycle}")
            }
            VliwFault::RegisterOutOfRange { cycle, reg } => {
                write!(f, "register r{reg} out of range at cycle {cycle}")
            }
            VliwFault::Exec(e) => write!(f, "execution fault: {e}"),
        }
    }
}

impl std::error::Error for VliwFault {}

/// Outcome of a wide-word run.
#[derive(Clone, Debug)]
pub struct VliwResult {
    /// Final memory (after draining all in-flight writes).
    pub memory: Memory,
    /// Cycles simulated, including the drain of trailing latencies.
    pub cycles: u64,
    /// Operations executed.
    pub ops_executed: usize,
    /// `Some(cycle)` if a branch slot left the trace.
    pub exited_trace_at: Option<u64>,
    /// Ordinal (in execution order) of the branch slot that left the
    /// trace, if any. The whole-program driver maps this to the exit
    /// target: branch `k` of a trace corresponds to the `k`-th
    /// conditional branch in trace order.
    pub exit_branch: Option<usize>,
}

/// Simulates `vliw` on `machine`.
///
/// `initial` seeds memory; `reg_inputs` provides the values of the
/// program's declared live-in registers (by *original* register, mapped
/// through [`VliwProgram::live_in`]).
///
/// # Errors
///
/// Any [`VliwFault`] aborts the run.
pub fn run_vliw(
    vliw: &VliwProgram,
    machine: &Machine,
    initial: &Memory,
    reg_inputs: &HashMap<VirtualReg, i64>,
) -> Result<VliwResult, VliwFault> {
    let mut memory = initial.clone();
    let mut regs: Vec<i64> = vec![0; vliw.num_regs as usize];
    for &(phys, orig) in &vliw.live_in {
        regs[phys as usize] = reg_inputs.get(&orig).copied().unwrap_or(0);
    }

    // Pending register and memory writes: (due_cycle, target, value).
    let mut reg_writes: Vec<(u64, u32, i64)> = Vec::new();
    let mut mem_writes: Vec<(u64, ursa_ir::value::SymbolId, i64, i64)> = Vec::new();
    // Busy-until per (class, index).
    let mut busy: HashMap<(ursa_machine::FuClass, u32), u64> = HashMap::new();

    let mut ops_executed = 0usize;
    let mut exited_trace_at = None;
    let mut exit_branch = None;
    let mut branch_ordinal = 0usize;

    let read = |regs: &Vec<i64>, o: Operand, cycle: u64| -> Result<i64, VliwFault> {
        match o {
            Operand::Reg(r) => regs
                .get(r.index())
                .copied()
                .ok_or(VliwFault::RegisterOutOfRange { cycle, reg: r.0 }),
            Operand::Imm(v) => Ok(v),
        }
    };

    for (c, word) in vliw.words.iter().enumerate() {
        let cycle = c as u64;
        // Commit writes due by now.
        reg_writes.retain(|&(due, r, v)| {
            if due <= cycle {
                regs[r as usize] = v;
                false
            } else {
                true
            }
        });
        mem_writes.retain(|&(due, s, i, v)| {
            if due <= cycle {
                memory.store(s, i, v);
                false
            } else {
                true
            }
        });
        if exited_trace_at.is_some() {
            break;
        }
        for op in word {
            // Unit conflict check.
            if let Some(&until) = busy.get(&op.fu) {
                if until > cycle {
                    return Err(VliwFault::UnitConflict {
                        cycle,
                        unit: format!("{}#{}", op.fu.0, op.fu.1),
                    });
                }
            }
            let (lat, occ) = match &op.op {
                SlotOp::Instr(i) => {
                    let k = OpKind::of_instr(i);
                    (machine.latency_of(k), machine.occupancy_of(k))
                }
                SlotOp::Branch { .. } => (
                    machine.latency_of(OpKind::Branch),
                    machine.occupancy_of(OpKind::Branch),
                ),
            };
            busy.insert(op.fu, cycle + occ);
            ops_executed += 1;
            match &op.op {
                SlotOp::Instr(instr) => match instr {
                    Instr::Const { dst, value } => {
                        check_reg(*dst, vliw.num_regs, cycle)?;
                        reg_writes.push((cycle + lat, dst.0, *value));
                    }
                    Instr::Bin { op: bop, dst, a, b } => {
                        check_reg(*dst, vliw.num_regs, cycle)?;
                        let r = bop
                            .eval(read(&regs, *a, cycle)?, read(&regs, *b, cycle)?)
                            .ok_or(VliwFault::Exec(ExecError::DivideByZero))?;
                        reg_writes.push((cycle + lat, dst.0, r));
                    }
                    Instr::Un { op: uop, dst, a } => {
                        check_reg(*dst, vliw.num_regs, cycle)?;
                        reg_writes.push((cycle + lat, dst.0, uop.eval(read(&regs, *a, cycle)?)));
                    }
                    Instr::Load { dst, mem } => {
                        check_reg(*dst, vliw.num_regs, cycle)?;
                        let idx = read(&regs, mem.index, cycle)?;
                        // Loads observe committed memory only.
                        let v = memory.load(mem.base, idx);
                        reg_writes.push((cycle + lat, dst.0, v));
                    }
                    Instr::Store { mem, src } => {
                        let idx = read(&regs, mem.index, cycle)?;
                        let v = read(&regs, *src, cycle)?;
                        mem_writes.push((cycle + lat, mem.base, idx, v));
                    }
                },
                SlotOp::Branch { cond, exit_on_true } => {
                    let taken = (read(&regs, *cond, cycle)? != 0) == *exit_on_true;
                    // The first firing branch wins; later branches in
                    // the same word are wrong-path and ignored.
                    if taken && exited_trace_at.is_none() {
                        exited_trace_at = Some(cycle);
                        exit_branch = Some(branch_ordinal);
                    }
                    branch_ordinal += 1;
                }
            }
        }
    }
    // Drain in-flight writes.
    for (_, r, v) in reg_writes {
        regs[r as usize] = v;
    }
    for (_, s, i, v) in mem_writes {
        memory.store(s, i, v);
    }
    let drain = busy.values().copied().max().unwrap_or(0);
    Ok(VliwResult {
        memory,
        cycles: drain.max(vliw.words.len() as u64),
        ops_executed,
        exited_trace_at,
        exit_branch,
    })
}

fn check_reg(r: VirtualReg, bound: u32, cycle: u64) -> Result<(), VliwFault> {
    if r.0 < bound {
        Ok(())
    } else {
        Err(VliwFault::RegisterOutOfRange { cycle, reg: r.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::parser::parse;
    use ursa_ir::value::SymbolId;
    use ursa_sched::{compile_entry_block, CompileStrategy};

    #[test]
    fn executes_compiled_arithmetic() {
        let p = parse(
            "v0 = const 6\n\
             v1 = const 7\n\
             v2 = mul v0, v1\n\
             store out[0], v2\n",
        )
        .unwrap();
        let machine = Machine::homogeneous(2, 4);
        let c = compile_entry_block(&p, &machine, CompileStrategy::Postpass);
        let r = run_vliw(&c.vliw, &machine, &Memory::new(), &HashMap::new()).unwrap();
        assert_eq!(r.memory.load(SymbolId(0), 0), 42);
        assert_eq!(r.ops_executed, 4);
    }

    #[test]
    fn latency_respected_with_classic_machine() {
        let p = parse("v0 = load a[0]\nv1 = mul v0, 3\nstore a[1], v1\n").unwrap();
        let machine = Machine::classic_vliw();
        let mut m = Memory::new();
        m.store(SymbolId(0), 0, 5);
        let c = compile_entry_block(&p, &machine, CompileStrategy::Postpass);
        let r = run_vliw(&c.vliw, &machine, &m, &HashMap::new()).unwrap();
        assert_eq!(r.memory.load(SymbolId(0), 1), 15);
        assert!(r.cycles >= 6, "2 + 3 + 1 cycles of latency");
    }

    #[test]
    fn unit_conflict_detected() {
        use ursa_ir::instr::Instr;
        use ursa_machine::FuClass;
        use ursa_sched::vliw::MachineOp;
        // Two 1-cycle ops on the same unit in one word.
        let op = |dst: u32| MachineOp {
            op: SlotOp::Instr(Instr::Const {
                dst: VirtualReg(dst),
                value: 1,
            }),
            fu: (FuClass::Universal, 0),
        };
        let vliw = VliwProgram {
            words: vec![vec![op(0), op(1)]],
            symbols: vec![],
            num_regs: 4,
            live_in: vec![],
        };
        let machine = Machine::homogeneous(2, 4);
        assert!(matches!(
            run_vliw(&vliw, &machine, &Memory::new(), &HashMap::new()),
            Err(VliwFault::UnitConflict { .. })
        ));
    }

    #[test]
    fn register_out_of_range_detected() {
        use ursa_ir::instr::Instr;
        use ursa_machine::FuClass;
        use ursa_sched::vliw::MachineOp;
        let vliw = VliwProgram {
            words: vec![vec![MachineOp {
                op: SlotOp::Instr(Instr::Const {
                    dst: VirtualReg(9),
                    value: 1,
                }),
                fu: (FuClass::Universal, 0),
            }]],
            symbols: vec![],
            num_regs: 2,
            live_in: vec![],
        };
        let machine = Machine::homogeneous(1, 2);
        assert!(matches!(
            run_vliw(&vliw, &machine, &Memory::new(), &HashMap::new()),
            Err(VliwFault::RegisterOutOfRange { reg: 9, .. })
        ));
    }

    #[test]
    fn live_in_registers_initialized() {
        let p = parse("v1 = add v0, 1\nstore a[0], v1\n").unwrap();
        let machine = Machine::homogeneous(2, 4);
        let c = compile_entry_block(&p, &machine, CompileStrategy::Postpass);
        let mut inputs = HashMap::new();
        inputs.insert(VirtualReg(0), 41);
        let r = run_vliw(&c.vliw, &machine, &Memory::new(), &inputs).unwrap();
        assert_eq!(r.memory.load(SymbolId(0), 0), 42);
    }

    #[test]
    fn divide_by_zero_surfaces() {
        let p = parse("v0 = const 0\nv1 = div 5, v0\nstore a[0], v1\n").unwrap();
        let machine = Machine::homogeneous(2, 4);
        let c = compile_entry_block(&p, &machine, CompileStrategy::Postpass);
        assert!(matches!(
            run_vliw(&c.vliw, &machine, &Memory::new(), &HashMap::new()),
            Err(VliwFault::Exec(ExecError::DivideByZero))
        ));
    }
}
