//! Semantic equivalence checking: compiled VLIW code vs. the sequential
//! reference interpreter.
//!
//! Every compilation strategy — URSA and the baselines alike — must
//! preserve the program's memory behavior. The checker runs both
//! machines from identical initial state and compares the final memory
//! over the *original* program's symbols (compiler-appended spill areas
//! are scratch space and excluded).

use crate::memory::Memory;
use crate::seq::run_sequential;
use crate::wide::run_vliw;
use std::collections::HashMap;
use std::fmt;
use ursa_ir::program::Program;
use ursa_ir::value::{SymbolId, VirtualReg};
use ursa_machine::Machine;
use ursa_sched::vliw::VliwProgram;

/// Why the two executions disagreed.
#[derive(Clone, Debug)]
pub enum EquivalenceError {
    /// The reference interpreter faulted.
    Reference(crate::seq::ExecError),
    /// The VLIW simulation faulted.
    Vliw(crate::wide::VliwFault),
    /// Final memories differ.
    MemoryMismatch {
        /// Symbol of the differing cell.
        symbol: SymbolId,
        /// Index of the differing cell.
        index: i64,
        /// Value the reference computed.
        expected: i64,
        /// Value the VLIW code computed.
        actual: i64,
    },
}

impl fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivalenceError::Reference(e) => write!(f, "reference faulted: {e}"),
            EquivalenceError::Vliw(e) => write!(f, "vliw faulted: {e}"),
            EquivalenceError::MemoryMismatch {
                symbol,
                index,
                expected,
                actual,
            } => write!(
                f,
                "memory mismatch at {symbol:?}[{index}]: reference {expected}, vliw {actual}"
            ),
        }
    }
}

impl std::error::Error for EquivalenceError {}

/// Runs both machines and compares final memories.
///
/// # Errors
///
/// See [`EquivalenceError`]. A run where the reference faults (e.g.
/// divide by zero) is *not* an equivalence failure if inputs provoke
/// it identically in both; such programs should be checked with inputs
/// that avoid the fault.
pub fn check_equivalence(
    program: &Program,
    vliw: &VliwProgram,
    machine: &Machine,
    initial: &Memory,
    reg_inputs: &HashMap<VirtualReg, i64>,
) -> Result<(), EquivalenceError> {
    let reference = run_sequential(program, initial, reg_inputs, 1_000_000)
        .map_err(EquivalenceError::Reference)?;
    let wide = run_vliw(vliw, machine, initial, reg_inputs).map_err(EquivalenceError::Vliw)?;
    let bound = program.symbols.len() as u32;
    if let Some((symbol, index, expected, actual)) =
        reference.memory.diff_below(&wide.memory, bound)
    {
        return Err(EquivalenceError::MemoryMismatch {
            symbol,
            index,
            expected,
            actual,
        });
    }
    Ok(())
}

/// Builds a deterministic test memory covering every symbol of
/// `program` with `len` cells each.
pub fn seeded_memory(program: &Program, len: i64, seed: u64) -> Memory {
    let mut m = Memory::new();
    for (i, _) in program.symbols.iter().enumerate() {
        m.fill_pattern(SymbolId(i as u32), len, seed.wrapping_add(i as u64));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_core::UrsaConfig;
    use ursa_ir::parser::parse;
    use ursa_sched::{compile_entry_block, CompileStrategy};

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    // v8 = v4 / v5 can divide by zero for unlucky inputs; use a fixed
    // memory that avoids it.
    fn fig2_memory() -> Memory {
        let mut m = Memory::new();
        m.store(SymbolId(0), 0, 7);
        m
    }

    #[test]
    fn all_strategies_preserve_semantics_on_fig2() {
        let p = parse(FIG2).unwrap();
        for regs in [3u32, 4, 6, 16] {
            let machine = Machine::homogeneous(3, regs);
            for strategy in [
                CompileStrategy::Ursa(UrsaConfig::default()),
                CompileStrategy::Postpass,
                CompileStrategy::Prepass,
                CompileStrategy::GoodmanHsu,
            ] {
                let name = strategy.name();
                let c = compile_entry_block(&p, &machine, strategy);
                // Goodman–Hsu may need a wider file than the machine has.
                let exec_machine = if c.vliw.num_regs > machine.registers() {
                    machine.with_registers(c.vliw.num_regs)
                } else {
                    machine.clone()
                };
                check_equivalence(&p, &c.vliw, &exec_machine, &fig2_memory(), &HashMap::new())
                    .unwrap_or_else(|e| panic!("{name} with {regs} regs: {e}"));
            }
        }
    }

    #[test]
    fn fig2_stores_nothing_but_is_still_checked() {
        // FIG2 has no stores: equivalence trivially holds, but the run
        // must not fault.
        let p = parse(FIG2).unwrap();
        let machine = Machine::homogeneous(2, 5);
        let c = compile_entry_block(&p, &machine, CompileStrategy::Postpass);
        check_equivalence(&p, &c.vliw, &machine, &fig2_memory(), &HashMap::new()).unwrap();
    }

    #[test]
    fn stores_are_compared() {
        let src = "\
            v0 = load a[0]\n\
            v1 = load a[1]\n\
            v2 = mul v0, v1\n\
            v3 = add v0, v1\n\
            v4 = sub v2, v3\n\
            store b[0], v2\n\
            store b[1], v3\n\
            store b[2], v4\n";
        let p = parse(src).unwrap();
        let m = seeded_memory(&p, 4, 99);
        for strategy in [
            CompileStrategy::Ursa(UrsaConfig::default()),
            CompileStrategy::Postpass,
            CompileStrategy::Prepass,
        ] {
            let machine = Machine::homogeneous(2, 3);
            let c = compile_entry_block(&p, &machine, strategy);
            check_equivalence(&p, &c.vliw, &machine, &m, &HashMap::new()).unwrap();
        }
    }

    #[test]
    fn mismatch_is_reported() {
        let p = parse("store a[0], 5\n").unwrap();
        let machine = Machine::homogeneous(1, 3);
        let mut c = compile_entry_block(&p, &machine, CompileStrategy::Postpass);
        // Corrupt the generated code.
        c.vliw.words.clear();
        let err =
            check_equivalence(&p, &c.vliw, &machine, &Memory::new(), &HashMap::new()).unwrap_err();
        assert!(matches!(err, EquivalenceError::MemoryMismatch { .. }));
        assert!(err.to_string().contains("memory mismatch"));
    }

    #[test]
    fn seeded_memory_covers_all_symbols() {
        let p = parse("v0 = load a[0]\nstore b[0], v0\n").unwrap();
        let m = seeded_memory(&p, 8, 1);
        assert_eq!(m.written_cells(), 16);
    }
}
