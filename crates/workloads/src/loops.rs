//! Loop-shaped workloads for the software-pipelining extension (paper
//! §6): each kernel is a genuine counted loop (entry block, self-loop
//! body, exit block) whose body can be unrolled with
//! [`ursa_ir::unroll::unroll_self_loop`] and then fed to URSA as a
//! straight-line trace.

use ursa_ir::parser::parse;
use ursa_ir::program::Program;

/// A named loop workload.
#[derive(Clone, Debug)]
pub struct LoopKernel {
    /// Short identifier used in tables.
    pub name: String,
    /// The program: block 0 = entry, block 1 = self-loop body, block 2 = exit.
    pub program: Program,
    /// Iterations the loop executes (choose unroll factors dividing it).
    pub trip_count: i64,
}

/// `b[i] = 3*a[i]` over `n` elements.
pub fn scale_loop(n: i64) -> LoopKernel {
    assert!(n >= 1);
    let program = parse(&format!(
        "block entry:\n\
         v0 = const 0\n\
         jmp head\n\
         block head @ {n}:\n\
         v1 = load a[v0]\n\
         v2 = mul v1, 3\n\
         store b[v0], v2\n\
         v0 = add v0, 1\n\
         v3 = cmplt v0, {n}\n\
         br v3, head, done\n\
         block done:\n\
         ret\n"
    ))
    .expect("scale loop parses");
    LoopKernel {
        name: format!("scale{n}"),
        program,
        trip_count: n,
    }
}

/// `y[i] = y[i] + 7*x[i]` (daxpy-like) over `n` elements.
pub fn daxpy_loop(n: i64) -> LoopKernel {
    assert!(n >= 1);
    let program = parse(&format!(
        "block entry:\n\
         v0 = const 0\n\
         jmp head\n\
         block head @ {n}:\n\
         v1 = load x[v0]\n\
         v2 = mul v1, 7\n\
         v3 = load y[v0]\n\
         v4 = add v3, v2\n\
         store y[v0], v4\n\
         v0 = add v0, 1\n\
         v5 = cmplt v0, {n}\n\
         br v5, head, done\n\
         block done:\n\
         ret\n"
    ))
    .expect("daxpy loop parses");
    LoopKernel {
        name: format!("daxpy{n}"),
        program,
        trip_count: n,
    }
}

/// The paper-era Livermore hydro fragment as a real loop:
/// `x[k] = q + y[k] * (r * z[k+10] + t * z[k+11])`.
pub fn hydro_loop(n: i64) -> LoopKernel {
    assert!(n >= 1);
    let program = parse(&format!(
        "block entry:\n\
         v0 = const 0\n\
         v1 = const 17\n\
         v2 = const 3\n\
         v3 = const 5\n\
         jmp head\n\
         block head @ {n}:\n\
         v4 = add v0, 10\n\
         v5 = add v0, 11\n\
         v6 = load z[v4]\n\
         v7 = load z[v5]\n\
         v8 = mul v2, v6\n\
         v9 = mul v3, v7\n\
         v10 = add v8, v9\n\
         v11 = load y[v0]\n\
         v12 = mul v11, v10\n\
         v13 = add v1, v12\n\
         store x[v0], v13\n\
         v0 = add v0, 1\n\
         v14 = cmplt v0, {n}\n\
         br v14, head, done\n\
         block done:\n\
         ret\n"
    ))
    .expect("hydro loop parses");
    LoopKernel {
        name: format!("hydro-loop{n}"),
        program,
        trip_count: n,
    }
}

/// Sum reduction `s += a[i]` over `n` elements, result stored once after
/// the loop — a loop-carried dependence that unrolling alone cannot
/// parallelize (the accumulator chains across copies).
pub fn sum_loop(n: i64) -> LoopKernel {
    assert!(n >= 1);
    let program = parse(&format!(
        "block entry:\n\
         v0 = const 0\n\
         v1 = const 0\n\
         jmp head\n\
         block head @ {n}:\n\
         v2 = load a[v0]\n\
         v1 = add v1, v2\n\
         v0 = add v0, 1\n\
         v3 = cmplt v0, {n}\n\
         br v3, head, done\n\
         block done:\n\
         store s[0], v1\n\
         ret\n"
    ))
    .expect("sum loop parses");
    LoopKernel {
        name: format!("sum{n}"),
        program,
        trip_count: n,
    }
}

/// All loop kernels with a common trip count of 24 (divisible by the
/// usual unroll factors 1, 2, 3, 4, 6, 8, 12).
pub fn loop_suite() -> Vec<LoopKernel> {
    vec![scale_loop(24), daxpy_loop(24), hydro_loop(24), sum_loop(24)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use ursa_ir::unroll::{find_self_loop, unroll_self_loop};
    use ursa_ir::value::SymbolId;
    use ursa_vm::equiv::seeded_memory;
    use ursa_vm::seq::run_sequential;

    #[test]
    fn suite_loops_execute_and_have_self_loops() {
        for k in loop_suite() {
            assert_eq!(find_self_loop(&k.program), Some(1), "{}", k.name);
            let m = seeded_memory(&k.program, 64, 5);
            let r = run_sequential(&k.program, &m, &HashMap::new(), 100_000)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            // One path entry per trip plus entry/exit blocks.
            assert_eq!(r.path.len() as i64, k.trip_count + 2, "{}", k.name);
        }
    }

    #[test]
    fn unrolling_preserves_semantics_for_dividing_factors() {
        for k in loop_suite() {
            let m = seeded_memory(&k.program, 64, 9);
            let reference = run_sequential(&k.program, &m, &HashMap::new(), 100_000).unwrap();
            for factor in [2usize, 3, 4, 6] {
                assert_eq!(k.trip_count % factor as i64, 0);
                let u = unroll_self_loop(&k.program, 1, factor).unwrap();
                let got = run_sequential(&u, &m, &HashMap::new(), 100_000)
                    .unwrap_or_else(|e| panic!("{} x{factor}: {e}", k.name));
                assert_eq!(
                    reference.memory, got.memory,
                    "{} unrolled by {factor} diverged",
                    k.name
                );
                assert_eq!(
                    got.path.len() as i64,
                    k.trip_count / factor as i64 + 2,
                    "{} x{factor} trip count",
                    k.name
                );
            }
        }
    }

    #[test]
    fn sum_loop_totals_inputs() {
        use ursa_vm::memory::Memory;
        let k = sum_loop(4);
        let mut m = Memory::new();
        for i in 0..4 {
            m.store(SymbolId(0), i, i + 1);
        }
        let r = run_sequential(&k.program, &m, &HashMap::new(), 10_000).unwrap();
        assert_eq!(r.memory.load(SymbolId(1), 0), 10);
    }
}
