//! The kernel suite: straight-line numeric kernels of the kind the
//! paper's VLIW target is built for — unrolled inner loops with
//! abundant instruction-level parallelism and realistic register
//! pressure. Division is avoided everywhere so every kernel executes
//! fault-free on arbitrary inputs.

use ursa_ir::instr::{BinOp, UnOp};
use ursa_ir::program::{Program, ProgramBuilder};
use ursa_ir::value::VirtualReg;

/// A named workload.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Short identifier used in tables.
    pub name: String,
    /// The straight-line program (single entry block).
    pub program: Program,
}

impl Kernel {
    fn new(name: impl Into<String>, program: Program) -> Self {
        Kernel {
            name: name.into(),
            program,
        }
    }
}

/// Fully unrolled `n × n` integer matrix multiply: `c = a · b`.
/// `n = 3` gives 27 multiplies and 18 adds over 18 loads.
pub fn matmul(n: i64) -> Kernel {
    assert!(n >= 1);
    let mut b = ProgramBuilder::new();
    let (a, bm, c) = (b.symbol("a"), b.symbol("b"), b.symbol("c"));
    // Load both matrices.
    let mut av = Vec::new();
    let mut bv = Vec::new();
    for i in 0..n * n {
        av.push(b.load(a, i));
    }
    for i in 0..n * n {
        bv.push(b.load(bm, i));
    }
    for i in 0..n {
        for j in 0..n {
            let mut acc: Option<VirtualReg> = None;
            for k in 0..n {
                let prod = b.bin(
                    BinOp::Mul,
                    av[(i * n + k) as usize],
                    bv[(k * n + j) as usize],
                );
                acc = Some(match acc {
                    None => prod,
                    Some(s) => b.bin(BinOp::Add, s, prod),
                });
            }
            b.store(c, i * n + j, acc.expect("n >= 1"));
        }
    }
    Kernel::new(format!("matmul{n}"), b.finish())
}

/// Radix-2 butterfly network over `2^log_n` real points (add/sub
/// pairs with twiddle-style odd multiplies) — the FFT-shaped dataflow.
pub fn butterfly(log_n: u32) -> Kernel {
    assert!((1..=5).contains(&log_n));
    let n = 1usize << log_n;
    let mut b = ProgramBuilder::new();
    let (x, y) = (b.symbol("x"), b.symbol("y"));
    let mut v: Vec<VirtualReg> = (0..n).map(|i| b.load(x, i as i64)).collect();
    for stage in 0..log_n {
        let half = 1usize << stage;
        let mut next = v.clone();
        let mut i = 0;
        while i < n {
            for j in 0..half {
                let lo = i + j;
                let hi = i + j + half;
                let t = b.bin(BinOp::Mul, v[hi], (stage as i64) * 2 + 3);
                next[lo] = b.bin(BinOp::Add, v[lo], t);
                next[hi] = b.bin(BinOp::Sub, v[lo], t);
            }
            i += 2 * half;
        }
        v = next;
    }
    for (i, &r) in v.iter().enumerate() {
        b.store(y, i as i64, r);
    }
    Kernel::new(format!("butterfly{n}"), b.finish())
}

/// Horner evaluation of a degree-`d` polynomial — a pure sequential
/// chain, the minimal-parallelism extreme.
pub fn horner(d: i64) -> Kernel {
    assert!(d >= 1);
    let mut b = ProgramBuilder::new();
    let (coef, out) = (b.symbol("coef"), b.symbol("out"));
    let x = b.load(coef, d + 1); // x stored after the coefficients
    let mut acc = b.load(coef, 0);
    for i in 1..=d {
        let c = b.load(coef, i);
        let m = b.bin(BinOp::Mul, acc, x);
        acc = b.bin(BinOp::Add, m, c);
    }
    b.store(out, 0, acc);
    Kernel::new(format!("horner{d}"), b.finish())
}

/// Estrin-style parallel evaluation of the same polynomial — the
/// high-parallelism, high-pressure dual of [`horner`]. Degree must be
/// `2^k - 1`.
pub fn estrin(log_terms: u32) -> Kernel {
    assert!((1..=5).contains(&log_terms));
    let terms = 1usize << log_terms;
    let mut b = ProgramBuilder::new();
    let (coef, out) = (b.symbol("coef"), b.symbol("out"));
    let x = b.load(coef, terms as i64 + 1);
    let mut level: Vec<VirtualReg> = (0..terms).map(|i| b.load(coef, i as i64)).collect();
    let mut xpow = x;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            let hi = b.bin(BinOp::Mul, pair[1], xpow);
            next.push(b.bin(BinOp::Add, pair[0], hi));
        }
        level = next;
        if level.len() > 1 {
            xpow = b.bin(BinOp::Mul, xpow, xpow);
        }
    }
    b.store(out, 0, level[0]);
    Kernel::new(format!("estrin{terms}"), b.finish())
}

/// 1-D three-point stencil over `n` interior elements, fully unrolled:
/// `y[i] = 3*x[i-1] + 5*x[i] + 7*x[i+1]`.
pub fn stencil3(n: i64) -> Kernel {
    assert!(n >= 1);
    let mut b = ProgramBuilder::new();
    let (x, y) = (b.symbol("x"), b.symbol("y"));
    let loads: Vec<VirtualReg> = (0..n + 2).map(|i| b.load(x, i)).collect();
    for i in 0..n {
        let l = b.bin(BinOp::Mul, loads[i as usize], 3i64);
        let m = b.bin(BinOp::Mul, loads[i as usize + 1], 5i64);
        let r = b.bin(BinOp::Mul, loads[i as usize + 2], 7i64);
        let s1 = b.bin(BinOp::Add, l, m);
        let s2 = b.bin(BinOp::Add, s1, r);
        b.store(y, i, s2);
    }
    Kernel::new(format!("stencil{n}"), b.finish())
}

/// Livermore loop 1 (hydro fragment) unrolled `n` times:
/// `x[k] = q + y[k] * (r * z[k+10] + t * z[k+11])`.
pub fn hydro(n: i64) -> Kernel {
    assert!(n >= 1);
    let mut b = ProgramBuilder::new();
    let (xs, ys, zs) = (b.symbol("x"), b.symbol("y"), b.symbol("z"));
    let q = b.constant(17);
    let r = b.constant(3);
    let t = b.constant(5);
    for k in 0..n {
        let z10 = b.load(zs, k + 10);
        let z11 = b.load(zs, k + 11);
        let rz = b.bin(BinOp::Mul, r, z10);
        let tz = b.bin(BinOp::Mul, t, z11);
        let sum = b.bin(BinOp::Add, rz, tz);
        let yk = b.load(ys, k);
        let prod = b.bin(BinOp::Mul, yk, sum);
        let res = b.bin(BinOp::Add, q, prod);
        b.store(xs, k, res);
    }
    Kernel::new(format!("hydro{n}"), b.finish())
}

/// An 8-point DCT-like transform: every output is a signed
/// combination of all 8 inputs with distinct weights (64 multiplies,
/// 56 adds — dense pressure).
pub fn dct8() -> Kernel {
    let mut b = ProgramBuilder::new();
    let (x, y) = (b.symbol("x"), b.symbol("y"));
    let inputs: Vec<VirtualReg> = (0..8).map(|i| b.load(x, i)).collect();
    for u in 0..8i64 {
        let mut acc: Option<VirtualReg> = None;
        for (k, &inp) in inputs.iter().enumerate() {
            // Integer stand-ins for cos((2k+1)uπ/16), scaled.
            let w = ((u + 1) * (2 * k as i64 + 1) * 7) % 13 - 6;
            let term = b.bin(BinOp::Mul, inp, w);
            acc = Some(match acc {
                None => term,
                Some(s) => b.bin(BinOp::Add, s, term),
            });
        }
        b.store(y, u, acc.expect("8 inputs"));
    }
    Kernel::new("dct8", b.finish())
}

/// Tree reduction of `n` loads (maximum parallelism up front, then a
/// log-depth funnel).
pub fn reduction(n: usize) -> Kernel {
    assert!(n >= 2);
    let mut b = ProgramBuilder::new();
    let (x, out) = (b.symbol("x"), b.symbol("out"));
    let mut level: Vec<VirtualReg> = (0..n).map(|i| b.load(x, i as i64)).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.chunks(2);
        for pair in &mut it {
            next.push(if pair.len() == 2 {
                b.bin(BinOp::Add, pair[0], pair[1])
            } else {
                b.un(UnOp::Copy, pair[0])
            });
        }
        level = next;
    }
    b.store(out, 0, level[0]);
    Kernel::new(format!("reduce{n}"), b.finish())
}

/// The standard evaluation suite used by the experiment harness: a mix
/// of wide (pressure-heavy) and narrow (latency-bound) kernels plus
/// the paper's own example.
pub fn kernel_suite() -> Vec<Kernel> {
    vec![
        Kernel::new("fig2", crate::paper::figure2_block()),
        matmul(3),
        butterfly(3),
        horner(12),
        estrin(4),
        stencil3(8),
        hydro(6),
        dct8(),
        reduction(16),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use ursa_vm::equiv::seeded_memory;
    use ursa_vm::seq::run_sequential;

    #[test]
    fn suite_programs_are_valid_and_executable() {
        for k in kernel_suite() {
            assert!(k.program.validate().is_ok(), "{}", k.name);
            assert!(k.program.instr_count() >= 10, "{} too small", k.name);
            let m = seeded_memory(&k.program, 64, 7);
            run_sequential(&k.program, &m, &HashMap::new(), 100_000)
                .unwrap_or_else(|e| panic!("{} faulted: {e}", k.name));
        }
    }

    #[test]
    fn matmul_computes_identity_product() {
        use ursa_ir::value::SymbolId;
        use ursa_vm::memory::Memory;
        let k = matmul(2);
        let mut m = Memory::new();
        // a = identity, b = [[1,2],[3,4]].
        m.store(SymbolId(0), 0, 1);
        m.store(SymbolId(0), 3, 1);
        for (i, v) in [1i64, 2, 3, 4].into_iter().enumerate() {
            m.store(SymbolId(1), i as i64, v);
        }
        let r = run_sequential(&k.program, &m, &HashMap::new(), 10_000).unwrap();
        for (i, v) in [1i64, 2, 3, 4].into_iter().enumerate() {
            assert_eq!(r.memory.load(SymbolId(2), i as i64), v);
        }
    }

    #[test]
    fn horner_matches_estrin() {
        use ursa_ir::value::SymbolId;
        use ursa_vm::memory::Memory;
        // Same polynomial: degree 15 (16 terms), x and coefficients
        // identical in both layouts.
        let h = horner(15);
        let e = estrin(4);
        let mut m = Memory::new();
        for i in 0..16 {
            m.store(SymbolId(0), i, (i % 5) - 2);
        }
        m.store(SymbolId(0), 16, 2); // horner's x at coef[d+1] = 16
        m.store(SymbolId(0), 17, 2); // estrin's x at coef[terms+1] = 17
        let rh = run_sequential(&h.program, &m, &HashMap::new(), 10_000).unwrap();
        let re = run_sequential(&e.program, &m, &HashMap::new(), 10_000).unwrap();
        // Horner computes sum coef[d-i]*x^i with coef[0] as the leading
        // term; Estrin computes sum coef[i]*x^i. Evaluate both against
        // a direct sum to make the intent explicit.
        let x = 2i64;
        let coef: Vec<i64> = (0..16).map(|i| (i % 5) - 2).collect();
        let direct_estrin: i64 = coef
            .iter()
            .enumerate()
            .map(|(i, &c)| c * x.pow(i as u32))
            .sum();
        let direct_horner: i64 = coef
            .iter()
            .enumerate()
            .map(|(i, &c)| c * x.pow((15 - i) as u32))
            .sum();
        assert_eq!(re.memory.load(SymbolId(1), 0), direct_estrin);
        assert_eq!(rh.memory.load(SymbolId(1), 0), direct_horner);
    }

    #[test]
    fn reduction_sums_inputs() {
        use ursa_ir::value::SymbolId;
        use ursa_vm::memory::Memory;
        let k = reduction(10);
        let mut m = Memory::new();
        for i in 0..10 {
            m.store(SymbolId(0), i, i + 1);
        }
        let r = run_sequential(&k.program, &m, &HashMap::new(), 10_000).unwrap();
        assert_eq!(r.memory.load(SymbolId(1), 0), 55);
    }

    #[test]
    fn stencil_weights_applied() {
        use ursa_ir::value::SymbolId;
        use ursa_vm::memory::Memory;
        let k = stencil3(1);
        let mut m = Memory::new();
        m.store(SymbolId(0), 0, 1);
        m.store(SymbolId(0), 1, 1);
        m.store(SymbolId(0), 2, 1);
        let r = run_sequential(&k.program, &m, &HashMap::new(), 10_000).unwrap();
        assert_eq!(r.memory.load(SymbolId(1), 0), 3 + 5 + 7);
    }

    #[test]
    fn kernels_have_distinct_names() {
        let mut names: Vec<String> = kernel_suite().into_iter().map(|k| k.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
