//! The paper's worked example (Figure 2).
//!
//! ```text
//! A: load v        B: w = v * 2     C: x = v * 3     D: y = v + 5
//! E: t1 = w + x    F: t2 = w * x    G: t3 = y * 2    H: t4 = y / 3
//! I: t5 = t1 / t2  J: t6 = t3 + t4  K: z = t5 + t6
//! ```
//!
//! Properties the paper derives (and our tests reproduce): the minimal
//! chain decomposition has 4 chains, so 4 functional units suffice for
//! any schedule; the register requirement is 5 (B, C, E, G, H alive
//! simultaneously); with 3 FUs the excessive chain set is
//! `{B,E},{C,F},{G},{H}`.

use ursa_graph::dag::NodeId;
use ursa_ir::parser::parse;
use ursa_ir::program::Program;

/// Textual source of the Figure 2 basic block. `v` is read from
/// `a[0]`; intermediate names map as `v0=v, v1=w, v2=x, v3=y, v4=t1,
/// v5=t2, v6=t3, v7=t4, v8=t5, v9=t6, v10=z`.
pub const FIGURE2_SOURCE: &str = "\
v0 = load a[0]
v1 = mul v0, 2
v2 = mul v0, 3
v3 = add v0, 5
v4 = add v1, v2
v5 = mul v1, v2
v6 = mul v3, 2
v7 = div v3, 3
v8 = div v4, v5
v9 = add v6, v7
v10 = add v8, v9
";

/// Parses the Figure 2 block.
///
/// # Examples
///
/// ```
/// let p = ursa_workloads::paper::figure2_block();
/// assert_eq!(p.instr_count(), 11);
/// ```
pub fn figure2_block() -> Program {
    parse(FIGURE2_SOURCE).expect("the paper example parses")
}

/// The paper's letter for a node of the Figure 2 dependence DAG
/// (entry = 0, exit = 1, A..K = 2..12); spill nodes added later are
/// shown as `n<id>`.
pub fn figure2_letter(n: NodeId) -> String {
    match n.0 {
        0 => "entry".to_string(),
        1 => "exit".to_string(),
        2..=12 => ((b'A' + (n.0 - 2) as u8) as char).to_string(),
        other => format!("n{other}"),
    }
}

/// The paper's stated measurements for Figure 2.
pub mod expected {
    /// Maximum functional units any schedule can use.
    pub const FU_REQUIREMENT: u32 = 4;
    /// Maximum registers any schedule can need.
    pub const REG_REQUIREMENT: u32 = 5;
    /// Critical path length with unit latencies.
    pub const CRITICAL_PATH: u64 = 5;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_shape() {
        let p = figure2_block();
        assert_eq!(p.blocks.len(), 1);
        assert_eq!(p.instr_count(), 11);
        assert_eq!(p.num_vregs, 11);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn letters() {
        assert_eq!(figure2_letter(NodeId(2)), "A");
        assert_eq!(figure2_letter(NodeId(12)), "K");
        assert_eq!(figure2_letter(NodeId(0)), "entry");
        assert_eq!(figure2_letter(NodeId(13)), "n13");
    }

    #[test]
    fn executes_without_fault() {
        use std::collections::HashMap;
        use ursa_vm::memory::Memory;
        use ursa_vm::seq::run_sequential;
        let p = figure2_block();
        let mut m = Memory::new();
        m.store(ursa_ir::value::SymbolId(0), 0, 7);
        let r = run_sequential(&p, &m, &HashMap::new(), 100).unwrap();
        // v = 7: w = 14, x = 21, y = 12, t1 = 35, t2 = 294, t3 = 24,
        // t4 = 4, t5 = 0, t6 = 28, z = 28.
        assert_eq!(r.registers[&ursa_ir::value::VirtualReg(10)], 28);
    }
}
