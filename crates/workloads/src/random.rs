//! Random program generators for stress tests, property tests and the
//! compile-time scaling experiment (T4).

use ursa_ir::instr::{BinOp, Instr, Terminator};
use ursa_ir::program::{Program, ProgramBuilder};
use ursa_ir::value::{Operand, SymbolId, VirtualReg};
use ursa_rng::Rng;

/// Shape parameters for [`random_block`].
#[derive(Clone, Copy, Debug)]
pub struct RandomShape {
    /// Number of arithmetic operations.
    pub ops: usize,
    /// How many initial loads seed the value pool.
    pub seeds: usize,
    /// Each op draws operands uniformly from the most recent `window`
    /// values — small windows make chains, large windows make width.
    pub window: usize,
    /// Probability (percent) that a result is stored to memory.
    pub store_pct: u32,
}

impl Default for RandomShape {
    fn default() -> Self {
        RandomShape {
            ops: 64,
            seeds: 8,
            window: 16,
            store_pct: 20,
        }
    }
}

/// Division-free binary operators used by the generator (every random
/// program executes fault-free).
const SAFE_OPS: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Min,
    BinOp::Max,
];

/// Generates a deterministic random straight-line block.
///
/// # Examples
///
/// ```
/// use ursa_workloads::random::{random_block, RandomShape};
///
/// let p = random_block(42, RandomShape::default());
/// let q = random_block(42, RandomShape::default());
/// assert_eq!(p, q, "same seed, same program");
/// assert!(p.instr_count() >= 64);
/// ```
pub fn random_block(seed: u64, shape: RandomShape) -> Program {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();
    let (input, output) = (b.symbol("in"), b.symbol("out"));
    let mut pool: Vec<VirtualReg> = Vec::new();
    for i in 0..shape.seeds.max(1) {
        pool.push(b.load(input, i as i64));
    }
    let mut stores = 0i64;
    for _ in 0..shape.ops {
        let w = shape.window.max(1).min(pool.len());
        let lo = pool.len() - w;
        let a = pool[rng.gen_range(lo..pool.len())];
        let c = pool[rng.gen_range(lo..pool.len())];
        let op = SAFE_OPS[rng.gen_range(0..SAFE_OPS.len())];
        let r = b.bin(op, a, c);
        if rng.gen_range(0..100) < shape.store_pct {
            b.store(output, stores, r);
            stores += 1;
        }
        pool.push(r);
    }
    // Always produce at least one observable result.
    let last = *pool.last().expect("nonempty pool");
    b.store(output, stores, last);
    b.finish()
}

/// Shape parameters for [`random_cfg`].
#[derive(Clone, Copy, Debug)]
pub struct CfgShape {
    /// Number of diamond/loop regions chained between entry and exit.
    pub regions: usize,
    /// Arithmetic operations emitted per block.
    pub block_ops: usize,
    /// Probability (percent) that a region is a counted loop instead of
    /// a diamond.
    pub loop_pct: u32,
    /// Probability (percent) that a diamond's cold arm side-exits the
    /// program instead of rejoining.
    pub exit_pct: u32,
}

impl Default for CfgShape {
    fn default() -> Self {
        CfgShape {
            regions: 3,
            block_ops: 5,
            loop_pct: 35,
            exit_pct: 25,
        }
    }
}

/// Emits `ops` random arithmetic instructions into the current block,
/// drawing operands from the tail of `pool` and appending each result.
/// Callers that must not leak conditionally-defined values truncate the
/// pool back afterwards.
fn emit_ops(
    b: &mut ProgramBuilder,
    rng: &mut Rng,
    pool: &mut Vec<VirtualReg>,
    ops: usize,
    output: SymbolId,
    stores: &mut i64,
) {
    for _ in 0..ops {
        let w = pool.len().min(8);
        let lo = pool.len() - w;
        let a = pool[rng.gen_range(lo..pool.len())];
        let c = pool[rng.gen_range(lo..pool.len())];
        let op = SAFE_OPS[rng.gen_range(0..SAFE_OPS.len())];
        let r = b.bin(op, a, c);
        if rng.gen_range(0..100) < 20 {
            b.store(output, *stores, r);
            *stores += 1;
        }
        pool.push(r);
    }
}

/// Generates a deterministic random multi-block CFG: a chain of diamond
/// and counted-loop regions between an entry and a shared exit block,
/// with optional side exits out of diamond cold arms.
///
/// Every program terminates (loops are counted, 2–4 trips), executes
/// fault-free (division-free operators), and carries values across
/// block boundaries: region blocks consume results from earlier
/// regions, loop bodies redefine their induction counter, and diamond
/// arms both define the same merge register so joins stay well-defined
/// on either path.
///
/// # Examples
///
/// ```
/// use ursa_workloads::random::{random_cfg, CfgShape};
///
/// let p = random_cfg(42, CfgShape::default());
/// let q = random_cfg(42, CfgShape::default());
/// assert_eq!(p, q, "same seed, same program");
/// assert!(p.blocks.len() > 1, "multi-block by construction");
/// ```
pub fn random_cfg(seed: u64, shape: CfgShape) -> Program {
    let mut rng = Rng::seed_from_u64(seed ^ 0x4347_4643);
    let mut b = ProgramBuilder::new();
    let (input, output) = (b.symbol("in"), b.symbol("out"));
    // Entry loads dominate every block, so the exit block may use them
    // no matter which side exit reached it.
    let seeds: Vec<VirtualReg> = (0..4).map(|i| b.load(input, i as i64)).collect();
    let mut pool = seeds.clone();
    let mut stores = 0i64;
    let exit = b.add_block("exit");
    for r in 0..shape.regions.max(1) {
        if rng.gen_range(0..100) < shape.loop_pct {
            // Counted loop: `pre -> head -> head* -> seg`. The counter
            // is initialised before the loop and redefined in the body,
            // and body values stay in the pool — the body runs at least
            // once, so they are defined on every path out.
            let ctr = b.constant(0);
            let head = b.add_block(format!("loop{r}"));
            let next = b.add_block(format!("seg{r}"));
            b.terminate(Terminator::Jump(head));
            b.switch_to(head);
            b.set_weight(head, 8.0);
            emit_ops(
                &mut b,
                &mut rng,
                &mut pool,
                shape.block_ops,
                output,
                &mut stores,
            );
            b.emit(Instr::Bin {
                op: BinOp::Add,
                dst: ctr,
                a: Operand::Reg(ctr),
                b: Operand::Imm(1),
            });
            let trips = 2 + rng.gen_range(0..3) as i64;
            let again = b.bin(BinOp::CmpLt, ctr, trips);
            b.terminate(Terminator::Branch {
                cond: Operand::Reg(again),
                then_block: head,
                else_block: next,
            });
            b.switch_to(next);
        } else {
            // Diamond: both arms define the same merge register, so the
            // join (and everything after it) sees one well-defined
            // value whichever way the data-dependent branch went.
            // Arm-local temporaries are truncated out of the pool.
            let x = pool[rng.gen_range(0..pool.len())];
            let y = pool[rng.gen_range(0..pool.len())];
            let cond = b.bin(BinOp::CmpLt, x, y);
            let merged = b.fresh_reg();
            let then_b = b.add_block(format!("then{r}"));
            let else_b = b.add_block(format!("else{r}"));
            let join = b.add_block(format!("join{r}"));
            b.terminate(Terminator::Branch {
                cond: Operand::Reg(cond),
                then_block: then_b,
                else_block: else_b,
            });
            let base = pool.len();
            for (arm, weight) in [(then_b, 4.0), (else_b, 1.0)] {
                b.switch_to(arm);
                b.set_weight(arm, weight);
                emit_ops(
                    &mut b,
                    &mut rng,
                    &mut pool,
                    shape.block_ops,
                    output,
                    &mut stores,
                );
                let a = pool[rng.gen_range(0..pool.len())];
                let c = pool[rng.gen_range(0..pool.len())];
                let op = SAFE_OPS[rng.gen_range(0..SAFE_OPS.len())];
                b.emit(Instr::Bin {
                    op,
                    dst: merged,
                    a: Operand::Reg(a),
                    b: Operand::Reg(c),
                });
                pool.truncate(base);
                if arm == else_b && rng.gen_range(0..100) < shape.exit_pct {
                    b.store(output, stores, merged);
                    stores += 1;
                    b.terminate(Terminator::Jump(exit));
                } else {
                    b.terminate(Terminator::Jump(join));
                }
            }
            b.switch_to(join);
            pool.push(merged);
        }
    }
    // Tail of the hot path: one observable result, then the shared exit.
    let last = *pool.last().expect("nonempty pool");
    b.store(output, stores, last);
    stores += 1;
    b.terminate(Terminator::Jump(exit));
    b.switch_to(exit);
    let s = b.bin(BinOp::Xor, seeds[0], seeds[1]);
    b.store(output, stores, s);
    b.terminate(Terminator::Ret);
    b.finish()
}

/// A random full binary expression tree of the given depth: `2^depth`
/// leaf loads funneled into one store. Width = number of leaves.
pub fn expression_tree(seed: u64, depth: u32) -> Program {
    assert!((1..=8).contains(&depth));
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();
    let (input, output) = (b.symbol("in"), b.symbol("out"));
    let mut level: Vec<VirtualReg> = (0..(1usize << depth))
        .map(|i| b.load(input, i as i64))
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            let op = SAFE_OPS[rng.gen_range(0..SAFE_OPS.len())];
            next.push(b.bin(op, pair[0], pair[1]));
        }
        level = next;
    }
    b.store(output, 0, level[0]);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use ursa_vm::equiv::seeded_memory;
    use ursa_vm::seq::run_sequential;

    #[test]
    fn deterministic_per_seed() {
        let a = random_block(1, RandomShape::default());
        let b = random_block(1, RandomShape::default());
        let c = random_block(2, RandomShape::default());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_blocks_execute_fault_free() {
        for seed in 0..10 {
            let p = random_block(seed, RandomShape::default());
            let m = seeded_memory(&p, 64, seed);
            run_sequential(&p, &m, &HashMap::new(), 100_000)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn shape_controls_size() {
        let small = random_block(
            3,
            RandomShape {
                ops: 10,
                seeds: 2,
                window: 4,
                store_pct: 0,
            },
        );
        // 2 loads + 10 ops + final store.
        assert_eq!(small.instr_count(), 13);
        let large = random_block(
            3,
            RandomShape {
                ops: 200,
                ..RandomShape::default()
            },
        );
        assert!(large.instr_count() > 200);
    }

    #[test]
    fn narrow_window_reduces_parallelism() {
        use ursa_graph::reach::Reachability;
        use ursa_ir::ddg::DependenceDag;
        let chainy = random_block(
            5,
            RandomShape {
                ops: 40,
                seeds: 1,
                window: 1,
                store_pct: 0,
            },
        );
        let wide = random_block(
            5,
            RandomShape {
                ops: 40,
                seeds: 16,
                window: 40,
                store_pct: 0,
            },
        );
        let count_pairs = |p: &ursa_ir::program::Program| {
            let d = DependenceDag::from_entry_block(p);
            let r = Reachability::of(d.dag());
            let n = d.dag().node_count();
            let mut c = 0;
            for i in 0..n {
                for j in i + 1..n {
                    if r.independent(
                        ursa_graph::dag::NodeId::from(i),
                        ursa_graph::dag::NodeId::from(j),
                    ) {
                        c += 1;
                    }
                }
            }
            c
        };
        assert!(count_pairs(&chainy) < count_pairs(&wide));
    }

    #[test]
    fn random_cfgs_are_deterministic_and_multi_block() {
        let a = random_cfg(9, CfgShape::default());
        let b = random_cfg(9, CfgShape::default());
        let c = random_cfg(10, CfgShape::default());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.blocks.len() > 1);
    }

    #[test]
    fn random_cfgs_execute_fault_free_and_terminate() {
        let mut saw_loop = false;
        let mut saw_diamond = false;
        let mut saw_side_exit = false;
        for seed in 0..40 {
            let p = random_cfg(seed, CfgShape::default());
            p.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            saw_loop |= p.blocks.iter().any(|b| b.label.starts_with("loop"));
            saw_diamond |= p.blocks.iter().any(|b| b.label.starts_with("join"));
            let exit = p.blocks.iter().position(|b| b.label == "exit").unwrap();
            saw_side_exit |= p
                .blocks
                .iter()
                .filter(|b| b.term.successors().contains(&exit))
                .count()
                > 1;
            let m = seeded_memory(&p, 64, seed);
            run_sequential(&p, &m, &HashMap::new(), 100_000)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
        assert!(saw_loop, "no seed in 0..40 produced a counted loop");
        assert!(saw_diamond, "no seed in 0..40 produced a diamond");
        assert!(saw_side_exit, "no seed in 0..40 produced a side exit");
    }

    #[test]
    fn cfg_shape_controls_structure() {
        let all_loops = random_cfg(
            4,
            CfgShape {
                regions: 2,
                loop_pct: 100,
                ..CfgShape::default()
            },
        );
        assert_eq!(
            all_loops
                .blocks
                .iter()
                .filter(|b| b.label.starts_with("loop"))
                .count(),
            2
        );
        let all_diamonds = random_cfg(
            4,
            CfgShape {
                regions: 2,
                loop_pct: 0,
                exit_pct: 0,
                ..CfgShape::default()
            },
        );
        // entry + exit + 2 regions * (then/else/join).
        assert_eq!(all_diamonds.blocks.len(), 8);
    }

    #[test]
    fn expression_tree_shape() {
        let p = expression_tree(7, 4);
        // 16 loads + 15 inner nodes + 1 store.
        assert_eq!(p.instr_count(), 32);
        let m = seeded_memory(&p, 16, 3);
        run_sequential(&p, &m, &HashMap::new(), 10_000).unwrap();
    }
}
