//! Random program generators for stress tests, property tests and the
//! compile-time scaling experiment (T4).

use ursa_ir::instr::BinOp;
use ursa_ir::program::{Program, ProgramBuilder};
use ursa_ir::value::VirtualReg;
use ursa_rng::Rng;

/// Shape parameters for [`random_block`].
#[derive(Clone, Copy, Debug)]
pub struct RandomShape {
    /// Number of arithmetic operations.
    pub ops: usize,
    /// How many initial loads seed the value pool.
    pub seeds: usize,
    /// Each op draws operands uniformly from the most recent `window`
    /// values — small windows make chains, large windows make width.
    pub window: usize,
    /// Probability (percent) that a result is stored to memory.
    pub store_pct: u32,
}

impl Default for RandomShape {
    fn default() -> Self {
        RandomShape {
            ops: 64,
            seeds: 8,
            window: 16,
            store_pct: 20,
        }
    }
}

/// Division-free binary operators used by the generator (every random
/// program executes fault-free).
const SAFE_OPS: [BinOp; 8] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Min,
    BinOp::Max,
];

/// Generates a deterministic random straight-line block.
///
/// # Examples
///
/// ```
/// use ursa_workloads::random::{random_block, RandomShape};
///
/// let p = random_block(42, RandomShape::default());
/// let q = random_block(42, RandomShape::default());
/// assert_eq!(p, q, "same seed, same program");
/// assert!(p.instr_count() >= 64);
/// ```
pub fn random_block(seed: u64, shape: RandomShape) -> Program {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();
    let (input, output) = (b.symbol("in"), b.symbol("out"));
    let mut pool: Vec<VirtualReg> = Vec::new();
    for i in 0..shape.seeds.max(1) {
        pool.push(b.load(input, i as i64));
    }
    let mut stores = 0i64;
    for _ in 0..shape.ops {
        let w = shape.window.max(1).min(pool.len());
        let lo = pool.len() - w;
        let a = pool[rng.gen_range(lo..pool.len())];
        let c = pool[rng.gen_range(lo..pool.len())];
        let op = SAFE_OPS[rng.gen_range(0..SAFE_OPS.len())];
        let r = b.bin(op, a, c);
        if rng.gen_range(0..100) < shape.store_pct {
            b.store(output, stores, r);
            stores += 1;
        }
        pool.push(r);
    }
    // Always produce at least one observable result.
    let last = *pool.last().expect("nonempty pool");
    b.store(output, stores, last);
    b.finish()
}

/// A random full binary expression tree of the given depth: `2^depth`
/// leaf loads funneled into one store. Width = number of leaves.
pub fn expression_tree(seed: u64, depth: u32) -> Program {
    assert!((1..=8).contains(&depth));
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();
    let (input, output) = (b.symbol("in"), b.symbol("out"));
    let mut level: Vec<VirtualReg> = (0..(1usize << depth))
        .map(|i| b.load(input, i as i64))
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            let op = SAFE_OPS[rng.gen_range(0..SAFE_OPS.len())];
            next.push(b.bin(op, pair[0], pair[1]));
        }
        level = next;
    }
    b.store(output, 0, level[0]);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use ursa_vm::equiv::seeded_memory;
    use ursa_vm::seq::run_sequential;

    #[test]
    fn deterministic_per_seed() {
        let a = random_block(1, RandomShape::default());
        let b = random_block(1, RandomShape::default());
        let c = random_block(2, RandomShape::default());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_blocks_execute_fault_free() {
        for seed in 0..10 {
            let p = random_block(seed, RandomShape::default());
            let m = seeded_memory(&p, 64, seed);
            run_sequential(&p, &m, &HashMap::new(), 100_000)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn shape_controls_size() {
        let small = random_block(
            3,
            RandomShape {
                ops: 10,
                seeds: 2,
                window: 4,
                store_pct: 0,
            },
        );
        // 2 loads + 10 ops + final store.
        assert_eq!(small.instr_count(), 13);
        let large = random_block(
            3,
            RandomShape {
                ops: 200,
                ..RandomShape::default()
            },
        );
        assert!(large.instr_count() > 200);
    }

    #[test]
    fn narrow_window_reduces_parallelism() {
        use ursa_graph::reach::Reachability;
        use ursa_ir::ddg::DependenceDag;
        let chainy = random_block(
            5,
            RandomShape {
                ops: 40,
                seeds: 1,
                window: 1,
                store_pct: 0,
            },
        );
        let wide = random_block(
            5,
            RandomShape {
                ops: 40,
                seeds: 16,
                window: 40,
                store_pct: 0,
            },
        );
        let count_pairs = |p: &ursa_ir::program::Program| {
            let d = DependenceDag::from_entry_block(p);
            let r = Reachability::of(d.dag());
            let n = d.dag().node_count();
            let mut c = 0;
            for i in 0..n {
                for j in i + 1..n {
                    if r.independent(
                        ursa_graph::dag::NodeId::from(i),
                        ursa_graph::dag::NodeId::from(j),
                    ) {
                        c += 1;
                    }
                }
            }
            c
        };
        assert!(count_pairs(&chainy) < count_pairs(&wide));
    }

    #[test]
    fn expression_tree_shape() {
        let p = expression_tree(7, 4);
        // 16 loads + 15 inner nodes + 1 store.
        assert_eq!(p.instr_count(), 32);
        let m = seeded_memory(&p, 16, 3);
        run_sequential(&p, &m, &HashMap::new(), 10_000).unwrap();
    }
}
