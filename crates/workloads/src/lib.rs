//! Workload generators for the URSA evaluation.
//!
//! The 1993 paper carries no benchmark suite (its prototype was still
//! being built, §6); this crate supplies the workloads the constructed
//! evaluation runs on:
//!
//! * [`paper`] — the Figure 2 worked example, with the paper's expected
//!   measurements.
//! * [`kernels`] — unrolled numeric kernels (matrix multiply, butterfly
//!   networks, polynomial evaluation both Horner and Estrin, stencils,
//!   Livermore hydro fragment, a DCT-like transform, tree reductions).
//! * [`random`] — seeded random straight-line blocks and expression
//!   trees for property tests and compile-time scaling.
//!
//! Every generated program is division-free (except the paper example)
//! so it executes fault-free on arbitrary memory contents.

pub mod kernels;
pub mod loops;
pub mod paper;
pub mod random;

pub use kernels::{kernel_suite, Kernel};
pub use loops::{loop_suite, LoopKernel};
pub use paper::figure2_block;
pub use random::{expression_tree, random_block, RandomShape};
