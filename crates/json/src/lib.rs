//! A minimal, dependency-free JSON layer for the URSA workspace.
//!
//! The workspace builds hermetically (no registry dependencies — see
//! `tools/check_hermetic.sh`), so this crate stands in for `serde_json`
//! wherever URSA persists structured data: machine descriptions
//! (`ursa-machine`) and benchmark/experiment tables (`ursa-bench`).
//!
//! It is deliberately small: a [`Value`] tree, a recursive-descent
//! [`parse`] with precise error positions, and compact/pretty writers.
//! There is no derive machinery — the handful of types that need JSON
//! write explicit `to_json`/`from_json` conversions, which also keeps
//! their wire formats honest and reviewable.
//!
//! # Examples
//!
//! ```
//! use ursa_json::{parse, Value};
//!
//! let v = parse(r#"{"name":"vliw4r16","fus":[["Universal",4]],"regs":16}"#).unwrap();
//! assert_eq!(v.get("name").and_then(Value::as_str), Some("vliw4r16"));
//! assert_eq!(v.get("regs").and_then(Value::as_u64), Some(16));
//! let round = parse(&v.to_string()).unwrap();
//! assert_eq!(v, round);
//! ```

use std::fmt;

/// A JSON document.
///
/// Numbers distinguish integers from floats so machine descriptions
/// round-trip exactly; object member order is preserved (insertion
/// order), which keeps written output stable across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (anything without `.`, `e`, `E` that fits `i64`;
    /// `u64` values above `i64::MAX` are preserved via [`Value::Uint`]).
    Int(i64),
    /// An integer in `(i64::MAX, u64::MAX]`.
    Uint(u64),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered `(key, value)` members.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a member of an object (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::Uint(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::Uint(u) => Some(u),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Uint(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an `Object`.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline-free
    /// layout, like `serde_json::to_string_pretty`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(0));
        out
    }

    /// Builds an object value from `(key, value)` pairs.
    pub fn object(members: impl IntoIterator<Item = (impl Into<String>, Value)>) -> Value {
        Value::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array value.
    pub fn array(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Array(items.into_iter().collect())
    }
}

impl fmt::Display for Value {
    /// Compact serialization (no whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None);
        f.write_str(&out)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}
impl From<u64> for Value {
    fn from(u: u64) -> Value {
        match i64::try_from(u) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::Uint(u),
        }
    }
}
impl From<u32> for Value {
    fn from(u: u32) -> Value {
        Value::Int(i64::from(u))
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    fn from(u: usize) -> Value {
        Value::from(u as u64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// `indent: None` → compact; `Some(level)` → pretty at that depth.
fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Uint(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep floats re-parseable as floats.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                // JSON has no NaN/inf; mirror serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    push_indent(out, level + 1);
                    write_value(out, item, Some(level + 1));
                } else {
                    write_value(out, item, None);
                }
            }
            if let Some(level) = indent {
                push_indent(out, level);
            }
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    push_indent(out, level + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    write_value(out, item, Some(level + 1));
                } else {
                    write_escaped(out, k);
                    out.push(':');
                    write_value(out, item, None);
                }
            }
            if let Some(level) = indent {
                push_indent(out, level);
            }
            out.push('}');
        }
    }
}

/// A parse failure, with the byte offset and 1-based line of the
/// offending input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for Error {}

/// Maximum nesting depth accepted by [`parse`] — recursion guard.
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns an [`Error`] with position information for malformed input.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        Error {
            message: message.to_owned(),
            offset: self.pos,
            line,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let v = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            code = code * 16 + v;
            self.pos += 1;
        }
        Ok(code)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("expected digit"));
        }
        let mut is_float = false;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Uint(u));
            }
            // Integer too large for 64 bits: fall through to f64.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("3.5").unwrap(), Value::Float(3.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::Uint(u64::MAX)
        );
    }

    #[test]
    fn parses_structures_preserving_order() {
        let v = parse(r#"  {"b": [1, 2, {"c": null}], "a": true}  "#).unwrap();
        let members = v.as_object().unwrap();
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(v.get("a"), Some(&Value::Bool(true)));
        let b = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b[2].get("c"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Value::Str("a\"b\\c\nd\te\u{8}\u{c}\r – π \u{1}".into());
        let text = original.to_string();
        assert_eq!(parse(&text).unwrap(), original);
        // Explicit escape forms parse too.
        assert_eq!(
            parse(r#""\u0041\u00e9\ud83d\ude00\/""#).unwrap(),
            Value::Str("Aé😀/".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01x",
            "\"\\q\"",
            "\"",
            "tru",
            "[1] garbage",
            "{\"a\":1,}",
            "nan",
            "--1",
            "1.",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn error_reports_line() {
        let e = parse("{\n\"a\": 1,\n!\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn depth_guard_trips() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn pretty_output_is_stable_and_reparses() {
        let v = Value::object([
            ("name", Value::from("m")),
            (
                "fus",
                Value::array([Value::array([Value::from("Alu"), Value::from(4u32)])]),
            ),
            ("empty", Value::Array(vec![])),
            ("pipelined", Value::from(false)),
        ]);
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"name\": \"m\""));
        assert!(pretty.contains("\"empty\": []"));
        assert_eq!(parse(&pretty).unwrap(), v);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn floats_reparse_as_floats() {
        let v = Value::Float(2.0);
        assert_eq!(v.to_string(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Value::Float(2.0));
        assert_eq!(Value::Float(0.25).to_string(), "0.25");
    }

    #[test]
    fn accessor_conversions() {
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert_eq!(Value::Int(7).as_u64(), Some(7));
        assert_eq!(Value::Uint(u64::MAX).as_i64(), None);
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Bool(true).as_i64(), None);
        assert_eq!(Value::from(5u64), Value::Int(5));
        assert_eq!(Value::from(u64::MAX), Value::Uint(u64::MAX));
    }
}
