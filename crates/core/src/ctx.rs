//! The allocation context: a dependence DAG plus the derived analyses
//! URSA's measurement and transformations consult.

use crate::resource::ResourceKind;
use std::sync::Arc;
use ursa_graph::dag::NodeId;
use ursa_graph::hammock::{HammockAnalysis, HammockCache};
use ursa_graph::order::Levels;
use ursa_graph::reach::Reachability;
use ursa_ir::ddg::{DependenceDag, NodeKind, SpillPair};
use ursa_machine::{Machine, OpKind};

/// A dependence DAG bundled with its reachability closure, hammock
/// structure and longest-path levels, kept consistent across
/// transformations.
///
/// Sequence-edge insertion updates reachability incrementally and
/// recomputes levels; hammock structure is recomputed lazily since only
/// measurement consults it. Spill insertion (new nodes) refreshes
/// everything.
///
/// Hammock analyses are memoized in a [`HammockCache`] keyed by the
/// DAG's structural fingerprint. The cache is *shared across clones* of
/// the context (the reduce loop clones the context for every tentative
/// transformation), so a trial whose edit leaves the graph structure
/// unchanged — or whose edit is reverted — reuses the base analysis
/// instead of redoing the O(N²·pairs) hammock scan.
#[derive(Clone)]
pub struct AllocCtx<'m> {
    machine: &'m Machine,
    ddg: DependenceDag,
    reach: Reachability,
    levels: Levels,
    hammocks: Option<Arc<HammockAnalysis>>,
    hammock_cache: HammockCache,
}

impl<'m> AllocCtx<'m> {
    /// Wraps a freshly built DAG.
    ///
    /// # Panics
    ///
    /// Panics if the DAG is cyclic (dependence DAGs never are).
    pub fn new(ddg: DependenceDag, machine: &'m Machine) -> Self {
        let reach = Reachability::of(ddg.dag());
        let levels = Self::compute_levels(&ddg, machine);
        AllocCtx {
            machine,
            ddg,
            reach,
            levels,
            hammocks: None,
            hammock_cache: HammockCache::new(),
        }
    }

    fn compute_levels(ddg: &DependenceDag, machine: &Machine) -> Levels {
        let weights: Vec<u64> = ddg
            .dag()
            .nodes()
            .map(|n| Self::latency_static(ddg, machine, n))
            .collect();
        Levels::weighted(ddg.dag(), &weights)
    }

    fn latency_static(ddg: &DependenceDag, machine: &Machine, n: NodeId) -> u64 {
        match ddg.kind(n) {
            NodeKind::Op { instr, .. } => machine.instr_latency(instr),
            NodeKind::Branch { .. } => machine.latency_of(OpKind::Branch),
            NodeKind::Entry | NodeKind::Exit | NodeKind::LiveIn { .. } => 0,
        }
    }

    /// The target machine.
    pub fn machine(&self) -> &'m Machine {
        self.machine
    }

    /// The dependence DAG.
    pub fn ddg(&self) -> &DependenceDag {
        &self.ddg
    }

    /// Consumes the context, returning the (transformed) DAG.
    pub fn into_ddg(self) -> DependenceDag {
        self.ddg
    }

    /// The materialized reachability relation.
    pub fn reach(&self) -> &Reachability {
        &self.reach
    }

    /// Longest-path levels under the machine's latencies.
    pub fn levels(&self) -> &Levels {
        &self.levels
    }

    /// The hammock structure (served from the shared fingerprint-keyed
    /// cache; recomputed only for structures never seen before).
    pub fn hammocks(&mut self) -> &HammockAnalysis {
        if self.hammocks.is_none() {
            self.hammocks = Some(
                self.hammock_cache
                    .analyze(self.ddg.dag())
                    .expect("dependence DAGs have a single root and leaf"),
            );
        }
        self.hammocks.as_deref().expect("just computed")
    }

    /// The hammock structure if it is currently materialized (use
    /// [`AllocCtx::hammocks`] to force computation).
    pub fn hammocks_ref(&self) -> Option<&HammockAnalysis> {
        self.hammocks.as_deref()
    }

    /// The current hammock handle without forcing computation (the
    /// transaction layer snapshots this so rollback can restore the
    /// analysis without re-running it).
    pub(crate) fn hammocks_handle(&self) -> Option<Arc<HammockAnalysis>> {
        self.hammocks.clone()
    }

    /// Restores a previously captured hammock handle (rollback path).
    pub(crate) fn set_hammocks(&mut self, h: Option<Arc<HammockAnalysis>>) {
        self.hammocks = h;
    }

    /// Installs an analysis derived elsewhere (the incremental engine's
    /// delta application) as the current handle *and* memoizes it under
    /// the DAG's present fingerprint, so both this context and every
    /// clone sharing the cache hit it instead of re-analyzing.
    pub(crate) fn install_hammocks(&mut self, h: Arc<HammockAnalysis>) {
        self.hammock_cache
            .insert(self.ddg.dag().fingerprint(), Arc::clone(&h));
        self.hammocks = Some(h);
    }

    /// Restores previously captured levels (rollback path).
    pub(crate) fn set_levels(&mut self, levels: Levels) {
        self.levels = levels;
    }

    /// Direct mutable access to the reachability relation for the
    /// transaction layer's logged insert / undo cycle.
    pub(crate) fn reach_mut(&mut self) -> &mut Reachability {
        &mut self.reach
    }

    /// Direct mutable access to the DAG for the transaction layer
    /// (sequence-edge removal on rollback).
    pub(crate) fn ddg_mut(&mut self) -> &mut DependenceDag {
        &mut self.ddg
    }

    /// Recomputes levels after the transaction layer touched the DAG
    /// without going through [`AllocCtx::add_sequence_edge`].
    pub(crate) fn recompute_levels(&mut self) {
        self.levels = Self::compute_levels(&self.ddg, self.machine);
    }

    /// Invalidates the materialized hammock handle (the cache itself is
    /// untouched, so re-materializing a known structure stays cheap).
    pub(crate) fn invalidate_hammocks(&mut self) {
        self.hammocks = None;
    }

    /// Latency of node `n` on this machine (0 for pseudo nodes).
    pub fn latency(&self, n: NodeId) -> u64 {
        Self::latency_static(&self.ddg, self.machine, n)
    }

    /// Critical-path length of the current DAG in cycles.
    pub fn critical_path(&self) -> u64 {
        self.levels.critical_path()
    }

    /// The nodes competing for `resource`: instructions routed to that
    /// functional-unit class, or every value-producing node for
    /// registers.
    pub fn resource_nodes(&self, resource: ResourceKind) -> Vec<NodeId> {
        match resource {
            ResourceKind::Fu(class) => self
                .ddg
                .fu_nodes()
                .filter(|&n| self.fu_class_of(n) == Some(class))
                .collect(),
            ResourceKind::Registers => self.ddg.value_nodes().collect(),
        }
    }

    /// The functional-unit class of node `n`, if it occupies one.
    pub fn fu_class_of(&self, n: NodeId) -> Option<ursa_machine::FuClass> {
        match self.ddg.kind(n) {
            NodeKind::Op { instr, .. } => Some(self.machine.instr_class(instr)),
            NodeKind::Branch { .. } => Some(self.machine.class_of(OpKind::Branch)),
            _ => None,
        }
    }

    /// `true` if adding `from → to` would create a cycle.
    pub fn would_cycle(&self, from: NodeId, to: NodeId) -> bool {
        self.reach.would_cycle(from, to)
    }

    /// Adds a URSA sequence edge, updating the analyses. Returns `false`
    /// (and changes nothing) if the edge is already implied by the
    /// current partial order.
    ///
    /// # Panics
    ///
    /// Panics if the edge would create a cycle; check
    /// [`AllocCtx::would_cycle`] first.
    pub fn add_sequence_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        assert!(
            !self.would_cycle(from, to),
            "sequence edge {from} -> {to} would create a cycle"
        );
        if self.reach.reaches(from, to) {
            // Already ordered; adding the edge would not remove any
            // schedule from consideration.
            return false;
        }
        self.ddg.add_sequence_edge(from, to);
        self.reach.add_edge(from, to);
        self.levels = Self::compute_levels(&self.ddg, self.machine);
        self.hammocks = None;
        true
    }

    /// Like [`AllocCtx::add_sequence_edge`], but returns the exact set of
    /// newly established reachability pairs (`None` if the edge was
    /// already implied). FU sequentialization feeds the delta straight
    /// into its persistent comparability matcher instead of rescanning
    /// all node pairs per round.
    ///
    /// # Panics
    ///
    /// Panics if the edge would create a cycle.
    pub(crate) fn add_sequence_edge_delta(
        &mut self,
        from: NodeId,
        to: NodeId,
    ) -> Option<ursa_graph::reach::ReachDelta> {
        assert!(
            !self.would_cycle(from, to),
            "sequence edge {from} -> {to} would create a cycle"
        );
        if self.reach.reaches(from, to) {
            return None;
        }
        self.ddg.add_sequence_edge(from, to);
        let delta = self.reach.add_edge_logged(from, to);
        self.levels = Self::compute_levels(&self.ddg, self.machine);
        self.hammocks = None;
        Some(delta)
    }

    /// Inserts spill code (see [`DependenceDag::insert_spill`]) and
    /// refreshes every analysis.
    pub fn insert_spill(&mut self, value_node: NodeId, reload_uses: &[NodeId]) -> SpillPair {
        let pair = self.ddg.insert_spill(value_node, reload_uses);
        self.refresh();
        pair
    }

    /// Recomputes all analyses from the DAG (used after node-creating
    /// mutations).
    pub fn refresh(&mut self) {
        self.reach = Reachability::of(self.ddg.dag());
        self.levels = Self::compute_levels(&self.ddg, self.machine);
        self.hammocks = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::parser::parse;

    fn ctx_of(src: &str, machine: &Machine) -> AllocCtx<'static> {
        // Leak the machine for test convenience.
        let p = parse(src).unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let m: &'static Machine = Box::leak(Box::new(machine.clone()));
        AllocCtx::new(ddg, m)
    }

    #[test]
    fn latencies_respect_machine() {
        let m = Machine::classic_vliw();
        let ctx = ctx_of("v0 = load a[0]\nv1 = mul v0, 2\nstore a[0], v1\n", &m);
        let load = ctx.ddg().dag().node(2);
        let mul = ctx.ddg().dag().node(3);
        assert_eq!(ctx.latency(load), 2);
        assert_eq!(ctx.latency(mul), 3);
        assert_eq!(ctx.latency(ctx.ddg().entry()), 0);
        // load(2) + mul(3) + store(1) on a chain.
        assert_eq!(ctx.critical_path(), 6);
    }

    #[test]
    fn resource_nodes_split_by_class() {
        let m = Machine::classic_vliw();
        let ctx = ctx_of(
            "v0 = load a[0]\nv1 = mul v0, 2\nv2 = add v1, 1\nstore a[0], v2\n",
            &m,
        );
        use ursa_machine::FuClass;
        assert_eq!(ctx.resource_nodes(ResourceKind::Fu(FuClass::Mem)).len(), 2);
        assert_eq!(ctx.resource_nodes(ResourceKind::Fu(FuClass::Mul)).len(), 1);
        assert_eq!(ctx.resource_nodes(ResourceKind::Fu(FuClass::Alu)).len(), 1);
        // Producers: load, mul, add (store produces nothing).
        assert_eq!(ctx.resource_nodes(ResourceKind::Registers).len(), 3);
    }

    #[test]
    fn homogeneous_machine_lumps_all_fus() {
        let m = Machine::homogeneous(4, 8);
        let ctx = ctx_of("v0 = load a[0]\nv1 = mul v0, 2\nstore a[0], v1\n", &m);
        use ursa_machine::FuClass;
        assert_eq!(
            ctx.resource_nodes(ResourceKind::Fu(FuClass::Universal))
                .len(),
            3
        );
    }

    #[test]
    fn sequence_edge_updates_analyses() {
        let m = Machine::homogeneous(4, 8);
        let mut ctx = ctx_of(
            "v0 = const 1\nv1 = const 2\nstore a[0], v0\nstore a[1], v1\n",
            &m,
        );
        let c1 = ctx.ddg().dag().node(2);
        let c2 = ctx.ddg().dag().node(3);
        assert!(ctx.reach().independent(c1, c2));
        let cp_before = ctx.critical_path();
        assert!(ctx.add_sequence_edge(c1, c2));
        assert!(ctx.reach().reaches(c1, c2));
        assert!(ctx.critical_path() >= cp_before);
        // Implied edges are rejected as no-ops.
        assert!(!ctx.add_sequence_edge(c1, c2));
    }

    #[test]
    #[should_panic(expected = "would create a cycle")]
    fn cyclic_sequence_edge_panics() {
        let m = Machine::homogeneous(4, 8);
        let mut ctx = ctx_of("v0 = const 1\nv1 = add v0, 1\nstore a[0], v1\n", &m);
        let c = ctx.ddg().dag().node(2);
        let a = ctx.ddg().dag().node(3);
        ctx.add_sequence_edge(a, c);
    }

    #[test]
    fn spill_refreshes_analyses() {
        let m = Machine::homogeneous(4, 8);
        let mut ctx = ctx_of(
            "v0 = const 1\nv1 = add v0, 2\nv2 = mul v0, 3\nstore a[0], v1\nstore a[1], v2\n",
            &m,
        );
        let def = ctx.ddg().dag().node(2);
        let mul = ctx.ddg().dag().node(4);
        let n_before = ctx.ddg().dag().node_count();
        let pair = ctx.insert_spill(def, &[mul]);
        assert_eq!(ctx.ddg().dag().node_count(), n_before + 2);
        assert!(ctx.reach().reaches(def, pair.store));
        assert!(ctx.reach().reaches(pair.store, mul));
    }

    #[test]
    fn hammocks_available_and_lazy() {
        let m = Machine::homogeneous(4, 8);
        let mut ctx = ctx_of("v0 = const 1\nv1 = add v0, 1\nstore a[0], v1\n", &m);
        let entry = ctx.ddg().entry();
        let exit = ctx.ddg().exit();
        let h = ctx.hammocks();
        assert_eq!(h.root(), entry);
        assert_eq!(h.leaf(), exit);
    }
}
