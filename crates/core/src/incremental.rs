//! Incremental re-measurement for the reduce loop (paper §5).
//!
//! The reduce loop's discipline is *tentatively apply → re-measure →
//! revert*, and a tentative transformation only ever adds a handful of
//! sequence edges. Rebuilding the `CanReuse` adjacency and re-running a
//! from-scratch maximum matching for every probe is what makes
//! allocation cost grow ≈N³·³ (EXPERIMENTS.md T4). This module keeps
//! all of that state alive across probes and updates it by deltas:
//!
//! * **Reachability** — [`CtxTxn`] inserts sequence edges through
//!   [`Reachability::add_edge_logged`], which records exactly the pairs
//!   that became reachable; rollback unsets those pairs. Reachability
//!   under edge insertion is monotone, so the undo is exact.
//! * **Reuse DAGs and matchings** — [`IncrementalEngine`] holds one
//!   [`IncrementalMatcher`] per machine resource, primed against the
//!   base context. A probe journals row edits (new `CanReuse` pairs
//!   from the reachability delta; wholesale row resets where the
//!   `Kill()` selection changed), re-augments from the free vertices
//!   only, and reverts the journal afterwards.
//! * **Hammocks** — the context's hammock analysis is memoized by DAG
//!   fingerprint (see `ursa_graph::hammock::HammockCache`); a rolled
//!   back probe restores the fingerprint, so the base analysis is never
//!   recomputed between probes.
//!
//! The register `CanReuse` relation is *not* monotone under edge
//! insertion: `CanReuse(a, b) ⇔ b = Kill(a) ∨ Kill(a) ≤ b`, and adding
//! edges can move `Kill(a)` (a use that was maximal may become an
//! ancestor of another use). The engine therefore re-derives kills per
//! probe through a maintained [`KillSelector`] — only producers whose
//! maximal-use set intersects the reachability delta can change, so the
//! common local probe is O(delta) — and resets exactly the matcher rows
//! whose killer moved; rows with an unchanged killer can only *gain*
//! pairs, which the reachability delta enumerates.
//!
//! Everything here is scoring-exact: every maximum matching of a
//! relation has the same cardinality, so the incremental requirement
//! counts equal the from-scratch counts bit for bit, and the reduce
//! loop makes identical decisions with the engine on or off. The
//! differential [`IncrementalEngine::probe`] check (`ParanoidMeasure`,
//! enabled by `UrsaConfig::paranoid_measure`) asserts exactly that on
//! every probe.

use crate::ctx::AllocCtx;
use crate::kill::{select_kills, KillMap, KillMode, KillSelector};
use crate::measure::{summary_fast, MeasurementSummary};
use crate::resource::{Requirement, ResourceKind};
use ursa_graph::bitset::BitSet;
use ursa_graph::dag::NodeId;
use ursa_graph::matching::{IncrementalMatcher, Matching};
use ursa_graph::meter::{Unmetered, WorkMeter};
use ursa_graph::order::Levels;
use ursa_graph::reach::ReachDelta;

/// A revertible batch of sequence-edge insertions on an [`AllocCtx`].
///
/// `CtxTxn` mirrors [`AllocCtx::add_sequence_edge`] but journals every
/// effect so [`CtxTxn::rollback`] restores the context exactly: the DAG
/// edge is removed (restoring the structural fingerprint), the
/// reachability delta is unset, and the levels and hammock handle
/// captured at [`CtxTxn::begin`] are put back. Levels are *not*
/// recomputed per insertion — call [`AllocCtx::recompute_levels`]
/// (via the engine) once after the batch when critical-path scoring is
/// needed.
pub struct CtxTxn {
    journal: Vec<((NodeId, NodeId), ReachDelta)>,
    saved_levels: Levels,
    saved_hammocks: Option<std::sync::Arc<ursa_graph::hammock::HammockAnalysis>>,
}

impl CtxTxn {
    /// Opens a transaction, snapshotting what rollback must restore.
    pub fn begin(ctx: &AllocCtx<'_>) -> Self {
        CtxTxn {
            journal: Vec::new(),
            saved_levels: ctx.levels().clone(),
            saved_hammocks: ctx.hammocks_handle(),
        }
    }

    /// Adds a sequence edge under the transaction. Returns `false` (and
    /// journals nothing) if the edge is already implied.
    ///
    /// # Panics
    ///
    /// Panics if the edge would create a cycle.
    pub fn add_sequence_edge(&mut self, ctx: &mut AllocCtx<'_>, from: NodeId, to: NodeId) -> bool {
        assert!(
            !ctx.would_cycle(from, to),
            "sequence edge {from} -> {to} would create a cycle"
        );
        if ctx.reach().reaches(from, to) {
            return false;
        }
        ctx.ddg_mut().add_sequence_edge(from, to);
        let delta = ctx.reach_mut().add_edge_logged(from, to);
        ctx.invalidate_hammocks();
        self.journal.push(((from, to), delta));
        true
    }

    /// The reachability deltas of the edges inserted so far, in
    /// insertion order.
    pub fn deltas(&self) -> impl Iterator<Item = &ReachDelta> {
        self.journal.iter().map(|(_, d)| d)
    }

    /// Number of edges actually inserted (implied edges not counted).
    pub fn len(&self) -> usize {
        self.journal.len()
    }

    /// `true` if no edge was inserted.
    pub fn is_empty(&self) -> bool {
        self.journal.is_empty()
    }

    /// Consumes the transaction keeping every inserted edge. The caller
    /// must have recomputed levels already; the hammock handle stays
    /// invalidated and is re-resolved (through the memo cache) by the
    /// next full measurement.
    pub fn commit(self) {}

    /// Undoes every insertion in LIFO order and restores the captured
    /// levels and hammock handle.
    pub fn rollback(self, ctx: &mut AllocCtx<'_>) {
        for ((from, to), delta) in self.journal.into_iter().rev() {
            let removed = ctx.ddg_mut().remove_sequence_edge(from, to);
            debug_assert!(removed, "journaled edge {from} -> {to} must exist");
            ctx.reach_mut().undo(&delta);
        }
        ctx.set_levels(self.saved_levels);
        ctx.set_hammocks(self.saved_hammocks);
    }
}

/// What one probe measured: the same shape the scratch path's
/// `summary_fast` + `critical_path()` pair produces.
#[derive(Clone, Debug)]
pub struct ProbeResult {
    /// Per-resource requirement counts after the tentative edges.
    pub summary: MeasurementSummary,
    /// Critical path after the tentative edges (cycles).
    pub critical_path: u64,
}

/// How to revert one matcher row edit (journaled first-touch only).
enum RowUndo {
    /// The row was replaced wholesale; restore this exact row.
    Full(Vec<usize>),
    /// The row only received appends; truncate back to this length.
    Len(usize),
}

/// The journal for one resource's matcher across one probe.
struct StateUndo {
    snapshot: Matching,
    journal: Vec<(usize, RowUndo)>,
}

/// Incremental measurement state for one machine resource.
struct ResState {
    resource: ResourceKind,
    capacity: u32,
    /// The competing nodes, in `AllocCtx::resource_nodes` order; row
    /// `i` of the matcher is `nodes[i]` on both sides.
    nodes: Vec<NodeId>,
    /// Dense DAG-node-index → matcher row, `None` for non-members.
    row_of: Vec<Option<usize>>,
    /// Registers only: DAG node index of a killer → the rows whose
    /// *base* kill it is (used to route reachability-delta gains).
    killed_by: Vec<Vec<usize>>,
    matcher: IncrementalMatcher,
}

impl ResState {
    fn build(ctx: &AllocCtx<'_>, kills: &KillMap, resource: ResourceKind) -> ResState {
        let nodes = ctx.resource_nodes(resource);
        let k = nodes.len();
        let n = ctx.ddg().dag().node_count();
        let mut row_of = vec![None; n];
        for (i, &a) in nodes.iter().enumerate() {
            row_of[a.index()] = Some(i);
        }
        let mut matcher = IncrementalMatcher::new(k, k);
        for (i, &a) in nodes.iter().enumerate() {
            for (j, &b) in nodes.iter().enumerate() {
                let related = i != j
                    && match resource {
                        ResourceKind::Fu(_) => crate::measure::can_reuse_fu(ctx, a, b),
                        ResourceKind::Registers => crate::measure::can_reuse_reg(ctx, kills, a, b),
                    };
                if related {
                    matcher.add_edge(i, j);
                }
            }
        }
        matcher.maximize();
        let mut killed_by = vec![Vec::new(); n];
        if resource == ResourceKind::Registers {
            for (i, &a) in nodes.iter().enumerate() {
                if let Some(killer) = kills.kill_of(a) {
                    killed_by[killer.index()].push(i);
                }
            }
        }
        ResState {
            resource,
            capacity: resource.capacity(ctx.machine()),
            nodes,
            row_of,
            killed_by,
            matcher,
        }
    }

    /// The current requirement: nodes minus matched pairs (Dilworth).
    fn required(&self) -> u32 {
        (self.nodes.len() - self.matcher.matching().len()) as u32
    }

    /// Recomputes the full `CanReuse` row of `nodes[i]` for registers
    /// under `kills` (used when the killer moved).
    fn reg_row(&self, ctx: &AllocCtx<'_>, kills: &KillMap, i: usize) -> Vec<usize> {
        let a = self.nodes[i];
        let mut row = Vec::new();
        if let Some(k) = kills.kill_of(a) {
            for (j, &b) in self.nodes.iter().enumerate() {
                if j != i && (b == k || ctx.reach().reaches(k, b)) {
                    row.push(j);
                }
            }
        }
        row
    }

    /// Applies a probe's edits to the matcher and re-augments; returns
    /// the journal needed to revert.
    fn apply<'d>(
        &mut self,
        ctx: &AllocCtx<'_>,
        base_kills: &KillMap,
        new_kills: &KillMap,
        deltas: impl Iterator<Item = &'d ReachDelta>,
        meter: &dyn WorkMeter,
    ) -> StateUndo {
        let k = self.nodes.len();
        let snapshot = self.matcher.matching().clone();
        let mut journal: Vec<(usize, RowUndo)> = Vec::new();
        // Rows already reset wholesale (skip delta routing for them).
        let mut reset = BitSet::new(k);
        // Rows with a Len journal entry already (first touch only).
        let mut len_logged = BitSet::new(k);

        if self.resource == ResourceKind::Registers {
            for (i, &a) in self.nodes.iter().enumerate() {
                if base_kills.kill_of(a) != new_kills.kill_of(a) {
                    let row = self.reg_row(ctx, new_kills, i);
                    let old = self.matcher.set_row(i, row);
                    journal.push((i, RowUndo::Full(old)));
                    reset.insert(i);
                }
            }
        }
        for delta in deltas {
            for (s, d) in delta.pairs() {
                match self.resource {
                    ResourceKind::Registers => {
                        // `s` newly reaches `d`: every row whose (still
                        // current) killer is `s` gains reuse of `d`.
                        let Some(j) = self.row_of[d.index()] else {
                            continue;
                        };
                        for &i in &self.killed_by[s.index()] {
                            if i == j || reset.contains(i) {
                                continue;
                            }
                            let old_len = self.matcher.row(i).len();
                            if self.matcher.add_edge(i, j) && len_logged.insert(i) {
                                journal.push((i, RowUndo::Len(old_len)));
                            }
                        }
                    }
                    ResourceKind::Fu(_) => {
                        // FU CanReuse *is* reachability restricted to
                        // the class: the delta pairs are the new edges.
                        let (Some(i), Some(j)) = (self.row_of[s.index()], self.row_of[d.index()])
                        else {
                            continue;
                        };
                        let old_len = self.matcher.row(i).len();
                        if self.matcher.add_edge(i, j) && len_logged.insert(i) {
                            journal.push((i, RowUndo::Len(old_len)));
                        }
                    }
                }
            }
        }
        self.matcher.maximize_metered(meter);
        StateUndo { snapshot, journal }
    }

    /// Re-derives the `killed_by` routing map after the base kill map
    /// changed (on adoption; probes never touch it).
    fn rebase_kills(&mut self, kills: &KillMap) {
        if self.resource != ResourceKind::Registers {
            return;
        }
        for rows in &mut self.killed_by {
            rows.clear();
        }
        for (i, &a) in self.nodes.iter().enumerate() {
            if let Some(k) = kills.kill_of(a) {
                self.killed_by[k.index()].push(i);
            }
        }
    }

    /// Reverts [`ResState::apply`] exactly.
    fn rollback(&mut self, undo: StateUndo) {
        for (i, edit) in undo.journal.into_iter().rev() {
            match edit {
                RowUndo::Full(row) => {
                    self.matcher.set_row(i, row);
                }
                RowUndo::Len(len) => self.matcher.truncate_row(i, len),
            }
        }
        self.matcher.restore_matching(undo.snapshot);
    }
}

/// Incremental re-measurement across the reduce loop's probes.
///
/// Primed against a base [`AllocCtx`]; [`IncrementalEngine::probe`]
/// answers "what would the requirements and critical path be if these
/// sequence edges were added?" without rebuilding anything, and leaves
/// both the context and the engine exactly as it found them. After the
/// loop *adopts* a step the base context changes, so the engine is
/// rebuilt from the adopted context (one scratch pass per adopted
/// round, versus one per probed candidate before).
pub struct IncrementalEngine {
    kill_mode: KillMode,
    paranoid: bool,
    selector: KillSelector,
    states: Vec<ResState>,
}

impl IncrementalEngine {
    /// Primes the engine against `ctx`. `kills` must be the kill map of
    /// `ctx` under `kill_mode` (the driver reuses the one from the last
    /// full measurement).
    pub fn new(
        ctx: &AllocCtx<'_>,
        kills: &KillMap,
        kill_mode: KillMode,
        paranoid: bool,
    ) -> IncrementalEngine {
        let states = ResourceKind::all_for(ctx.machine())
            .into_iter()
            .map(|r| ResState::build(ctx, kills, r))
            .collect();
        IncrementalEngine {
            kill_mode,
            paranoid,
            selector: KillSelector::prime(ctx, kills.clone(), kill_mode),
            states,
        }
    }

    /// Measures `ctx` as if `edges` were added, then reverts everything.
    ///
    /// The result is exactly what the scratch path (`summary_fast` on a
    /// clone with the edges applied, plus its critical path) would
    /// produce; with `paranoid` set that equality is asserted on the
    /// spot.
    ///
    /// # Panics
    ///
    /// Panics if an edge would create a cycle, or (in paranoid mode) if
    /// the incremental and from-scratch measurements disagree.
    pub fn probe(&mut self, ctx: &mut AllocCtx<'_>, edges: &[(NodeId, NodeId)]) -> ProbeResult {
        self.probe_metered(ctx, edges, &Unmetered)
    }

    /// [`IncrementalEngine::probe`] with a cooperative [`WorkMeter`].
    /// When the meter exhausts mid-probe, the re-augmentation may stop
    /// below the maximum matching, so the reported requirements are
    /// *over*-estimates (conservative: never under-books a resource);
    /// the `ParanoidMeasure` equality is only asserted while the meter
    /// is live, since an early-stopped probe legitimately diverges from
    /// scratch.
    pub fn probe_metered(
        &mut self,
        ctx: &mut AllocCtx<'_>,
        edges: &[(NodeId, NodeId)],
        meter: &dyn WorkMeter,
    ) -> ProbeResult {
        let mut txn = CtxTxn::begin(ctx);
        for &(from, to) in edges {
            txn.add_sequence_edge(ctx, from, to);
        }
        ctx.recompute_levels();
        // Delta-driven kill selection: `None` means the probed edges
        // cannot have moved any killer, so the base map is reused.
        let probed_kills = self.selector.probe_metered(ctx, txn.deltas(), meter);

        let mut requirements = Vec::with_capacity(self.states.len());
        let mut undos = Vec::with_capacity(self.states.len());
        {
            let base_kills = self.selector.kills();
            let new_kills = probed_kills.as_ref().unwrap_or(base_kills);
            for state in &mut self.states {
                let undo = state.apply(ctx, base_kills, new_kills, txn.deltas(), meter);
                requirements.push(Requirement {
                    resource: state.resource,
                    capacity: state.capacity,
                    required: state.required(),
                });
                undos.push(undo);
            }
        }
        let summary = MeasurementSummary { requirements };
        let critical_path = ctx.critical_path();

        // charge(0) consumes nothing but reports whether the meter is
        // already exhausted.
        if self.paranoid && meter.charge(0) {
            let scratch_kills = select_kills(ctx, self.kill_mode);
            assert_eq!(
                *probed_kills
                    .as_ref()
                    .unwrap_or_else(|| self.selector.kills()),
                scratch_kills,
                "ParanoidMeasure: incremental kill selection disagrees with scratch \
                 after adding {edges:?} (incremental left, scratch right)"
            );
            let scratch = summary_fast(ctx, self.kill_mode);
            assert_eq!(
                summary, scratch,
                "ParanoidMeasure: incremental and from-scratch measurements disagree \
                 after adding {edges:?} (incremental left, scratch right)"
            );
        }

        for (state, undo) in self.states.iter_mut().zip(undos).rev() {
            state.rollback(undo);
        }
        txn.rollback(ctx);
        ProbeResult {
            summary,
            critical_path,
        }
    }

    /// Adopts `edges` into `ctx` *and* into the engine: the same delta
    /// application a probe performs, kept instead of rolled back, so an
    /// adopted spill-free step costs one delta pass rather than a
    /// scratch engine rebuild. The context ends up byte-identical to
    /// applying the edges through [`AllocCtx::add_sequence_edge`]
    /// (implied edges are skipped by the same test), and the engine's
    /// matchers end up row-identical to a fresh build against the new
    /// base.
    ///
    /// # Panics
    ///
    /// Panics if an edge would create a cycle, or (in paranoid mode) if
    /// the committed state disagrees with a from-scratch measurement.
    pub fn commit(&mut self, ctx: &mut AllocCtx<'_>, edges: &[(NodeId, NodeId)]) {
        let mut txn = CtxTxn::begin(ctx);
        for &(from, to) in edges {
            txn.add_sequence_edge(ctx, from, to);
        }
        ctx.recompute_levels();
        // Adoption is never budget-stopped: the committed engine state
        // must stay scoring-exact against the new base.
        let probed_kills = self.selector.probe_metered(ctx, txn.deltas(), &Unmetered);
        {
            let base_kills = self.selector.kills();
            let new_kills = probed_kills.as_ref().unwrap_or(base_kills);
            for state in &mut self.states {
                let _ = state.apply(ctx, base_kills, new_kills, txn.deltas(), &Unmetered);
                if probed_kills.is_some() {
                    state.rebase_kills(new_kills);
                }
            }
        }
        self.selector.advance(ctx, probed_kills);
        // Hammock delta: the adopted edges only disturb their upstream /
        // downstream cones, so the base analysis (captured at `begin`,
        // before the insertions invalidated the handle) is patched
        // instead of re-analyzed, and installed in the memo cache so the
        // adopted round's measurement — and every trial clone of this
        // context — hits it without a fresh whole-DAG analysis.
        let base_hammocks = txn.saved_hammocks.clone();
        let inserted: Vec<(NodeId, NodeId)> = txn.journal.iter().map(|(e, _)| *e).collect();
        txn.commit();
        if let (Some(base), false) = (base_hammocks, inserted.is_empty()) {
            let updated = std::sync::Arc::new(
                base.apply_edges(ctx.ddg().dag(), &inserted)
                    .expect("anchored DAG stays single-root/leaf and acyclic under adoption"),
            );
            if self.paranoid {
                let fresh = ursa_graph::hammock::HammockAnalysis::analyze(ctx.ddg().dag())
                    .expect("anchored DAG analyzes");
                assert_eq!(
                    *updated, fresh,
                    "ParanoidMeasure: hammock delta disagrees with a fresh analysis \
                     after adopting {edges:?} (delta left, fresh right)"
                );
            }
            ctx.install_hammocks(updated);
        }
        if self.paranoid {
            assert_eq!(
                *self.selector.kills(),
                select_kills(ctx, self.kill_mode),
                "ParanoidMeasure: committed kill selection disagrees with scratch \
                 after adopting {edges:?} (incremental left, scratch right)"
            );
            let scratch = summary_fast(ctx, self.kill_mode);
            assert_eq!(
                self.base_summary(),
                scratch,
                "ParanoidMeasure: committed engine state disagrees with a from-scratch \
                 measurement after adopting {edges:?} (incremental left, scratch right)"
            );
        }
    }

    /// The kill map of the current base context, as maintained by
    /// adoption commits (equals `select_kills` on the base context).
    pub fn base_kills(&self) -> &KillMap {
        self.selector.kills()
    }

    /// The requirement counts of the base context itself (no edges), as
    /// currently held by the matchers.
    pub fn base_summary(&self) -> MeasurementSummary {
        MeasurementSummary {
            requirements: self
                .states
                .iter()
                .map(|s| Requirement {
                    resource: s.resource,
                    capacity: s.capacity,
                    required: s.required(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::summary_fast;
    use ursa_ir::ddg::DependenceDag;
    use ursa_ir::parser::parse;
    use ursa_machine::Machine;

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn ctx_of(src: &str, machine: Machine) -> AllocCtx<'static> {
        let p = parse(src).unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let m: &'static Machine = Box::leak(Box::new(machine));
        AllocCtx::new(ddg, m)
    }

    /// Every independent node pair is a candidate probe edge; each one
    /// must measure exactly like the scratch path and leave the context
    /// untouched.
    #[test]
    fn single_edge_probes_match_scratch_everywhere() {
        for machine in [
            Machine::homogeneous(2, 3),
            Machine::homogeneous(8, 16),
            Machine::classic_vliw(),
        ] {
            let mut ctx = ctx_of(FIG2, machine);
            let kills = select_kills(&ctx, KillMode::MinCover);
            let mut engine = IncrementalEngine::new(&ctx, &kills, KillMode::MinCover, true);
            let base_fp = ctx.ddg().dag().fingerprint();
            let base_summary = summary_fast(&ctx, KillMode::MinCover);
            let nodes: Vec<NodeId> = ctx.ddg().dag().nodes().collect();
            for &a in &nodes {
                for &b in &nodes {
                    if a == b || !ctx.reach().independent(a, b) {
                        continue;
                    }
                    // probe() runs its own ParanoidMeasure cross-check.
                    let _ = engine.probe(&mut ctx, &[(a, b)]);
                    assert_eq!(ctx.ddg().dag().fingerprint(), base_fp, "rollback exact");
                }
            }
            assert_eq!(summary_fast(&ctx, KillMode::MinCover), base_summary);
            assert_eq!(engine.base_summary(), base_summary);
        }
    }

    #[test]
    fn multi_edge_probe_and_repeat_probes_are_exact() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(2, 3));
        let kills = select_kills(&ctx, KillMode::MinCover);
        let mut engine = IncrementalEngine::new(&ctx, &kills, KillMode::MinCover, true);
        // Find three pairwise-addable edges between independent nodes.
        let nodes: Vec<NodeId> = ctx.ddg().dag().nodes().collect();
        let mut edges = Vec::new();
        'outer: for &a in &nodes {
            for &b in &nodes {
                if ctx.reach().independent(a, b) && !edges.contains(&(a, b)) {
                    edges.push((a, b));
                    if edges.len() == 3 {
                        break 'outer;
                    }
                }
            }
        }
        assert_eq!(edges.len(), 3);
        // Repeat probes (revert-after-revert) with the same and
        // different batches; paranoid mode checks each against scratch.
        let first = engine.probe(&mut ctx, &edges);
        let again = engine.probe(&mut ctx, &edges);
        assert_eq!(first.summary, again.summary);
        assert_eq!(first.critical_path, again.critical_path);
        let _ = engine.probe(&mut ctx, &edges[..1]);
        let third = engine.probe(&mut ctx, &edges);
        assert_eq!(first.summary, third.summary);
    }

    #[test]
    fn txn_rollback_restores_levels_and_reach() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(4, 8));
        let cp = ctx.critical_path();
        let fp = ctx.ddg().dag().fingerprint();
        let nodes: Vec<NodeId> = ctx.ddg().dag().nodes().collect();
        let (a, b) = nodes
            .iter()
            .flat_map(|&a| nodes.iter().map(move |&b| (a, b)))
            .find(|&(a, b)| ctx.reach().independent(a, b))
            .expect("fig2 has independent pairs");
        let mut txn = CtxTxn::begin(&ctx);
        assert!(txn.add_sequence_edge(&mut ctx, a, b));
        assert!(ctx.reach().reaches(a, b));
        ctx.recompute_levels();
        txn.rollback(&mut ctx);
        assert!(!ctx.reach().reaches(a, b));
        assert_eq!(ctx.critical_path(), cp);
        assert_eq!(ctx.ddg().dag().fingerprint(), fp);
    }

    #[test]
    fn implied_edges_probe_as_noops() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(2, 3));
        let kills = select_kills(&ctx, KillMode::MinCover);
        let mut engine = IncrementalEngine::new(&ctx, &kills, KillMode::MinCover, true);
        let base = summary_fast(&ctx, KillMode::MinCover);
        // v0 -> v1 is a data edge; probing it must change nothing.
        let a = ctx.ddg().dag().node(2);
        let b = ctx.ddg().dag().node(3);
        assert!(ctx.reach().reaches(a, b));
        let probe = engine.probe(&mut ctx, &[(a, b)]);
        assert_eq!(probe.summary, base);
    }
}
