//! The top-level URSA algorithm (paper Figure 1 and §5).
//!
//! ```text
//! Algorithm URSA(Trace):
//!   Construct the dependence DAG from Trace
//!   Measure the requirements for both functional units and registers
//!   While there are regions with excess requirements do
//!     Reduce requirements by applying transformations to the DAG
//!     Update the measurements
//!   Assign registers and functional units     (ursa-sched)
//!   Generate code                             (ursa-sched)
//! ```
//!
//! Two application disciplines are provided (§5): **integrated** — every
//! applicable transformation is tentatively applied, the transformed
//! DAG is re-measured, and the candidate that best reduces all excess
//! requirements while minimizing the critical path wins; and **phased**
//! — both register transformations run in a first phase and functional
//! unit sequentialization in a second, the ordering §5's interaction
//! analysis recommends.

use crate::budget::CompileBudget;
use crate::ctx::AllocCtx;
use crate::excess::find_excessive;
use crate::fault::{self, FaultKind, FaultSite};
use crate::incremental::IncrementalEngine;
use crate::kill::KillMode;
use crate::measure::{
    measure_adopted_metered, measure_metered, summary_fast_metered, MeasureOptions,
    MeasurementSummary,
};
use crate::resource::ResourceKind;
use crate::transform::{
    fu_seq::sequentialize_fus_metered, reg_seq::sequentialize_registers_metered,
    spill::spill_registers_metered,
};
use std::fmt;
use ursa_graph::meter::WorkMeter;
use ursa_ir::ddg::DependenceDag;
use ursa_machine::Machine;

/// Largest register excess at which spill scoring is skipped whenever
/// register sequencing already reduced the excess this round (the
/// "lazy spill" fast path). Small excesses are the measurement-bound
/// regime where sequencing closes the gap by itself; past this bound
/// every spill candidate is scored so high-pressure allocations keep
/// the paper's full §5 comparison.
const LAZY_SPILL_MAX_EXCESS: u32 = 8;

/// How transformations are scheduled across resources (§5).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// Tentatively apply every candidate each round and keep the best.
    #[default]
    Integrated,
    /// Registers first (both register transformations), then functional
    /// units — the phase order recommended by §5.
    Phased,
    /// Functional units first, then registers — the ordering §5 argues
    /// *against*; provided for the ablation.
    PhasedFuFirst,
    /// Spilling only (§4.3). The least clever discipline, but the one
    /// that is *always applicable*: every excessive value can be pushed
    /// to memory, so it is the last allocation rung of the degradation
    /// ladder in `ursa-sched`.
    SpillOnly,
}

/// Configuration of the allocation phase.
#[derive(Clone, Copy, Debug)]
pub struct UrsaConfig {
    /// Transformation scheduling discipline.
    pub strategy: Strategy,
    /// Kill-function selection for register measurement.
    pub kill_mode: KillMode,
    /// Use a plain maximum matching instead of the hammock-prioritized
    /// one (ablation T7).
    pub plain_matching: bool,
    /// Safety valve on reduction rounds.
    pub max_iterations: usize,
    /// Run the stage invariant checks even in release builds. The
    /// checks themselves live in `ursa-sched::validate`; this flag only
    /// requests them.
    pub paranoid: bool,
    /// Score tentative spill-free candidates with the delta-propagating
    /// [`IncrementalEngine`] instead of cloning the context and
    /// re-measuring from scratch. Decision-neutral: every maximum
    /// matching of a relation has the same cardinality, so the loop
    /// adopts identical steps either way (the integration tests assert
    /// byte-identical outcomes on all paper kernels).
    pub incremental: bool,
    /// `ParanoidMeasure`: differentially check every incremental probe
    /// against a from-scratch measurement and panic on any
    /// disagreement. Costs the full scratch measurement per probe, so
    /// it is for CI stress slices and debugging, not production runs.
    pub paranoid_measure: bool,
}

impl Default for UrsaConfig {
    fn default() -> Self {
        UrsaConfig {
            strategy: Strategy::Integrated,
            kill_mode: KillMode::MinCover,
            plain_matching: false,
            max_iterations: 256,
            paranoid: false,
            incremental: true,
            paranoid_measure: false,
        }
    }
}

impl UrsaConfig {
    fn measure_options(&self) -> MeasureOptions {
        MeasureOptions {
            kill_mode: self.kill_mode,
            plain_matching: self.plain_matching,
        }
    }
}

/// Which transformation a step applied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepKind {
    /// §4.1 functional-unit sequentialization.
    FuSequentialization,
    /// §4.2 register sequentialization.
    RegisterSequentialization,
    /// §4.3 spilling.
    Spill,
}

impl fmt::Display for StepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StepKind::FuSequentialization => "fu-seq",
            StepKind::RegisterSequentialization => "reg-seq",
            StepKind::Spill => "spill",
        };
        f.write_str(s)
    }
}

/// One applied reduction step.
#[derive(Clone, Debug)]
pub struct Step {
    /// The transformation applied.
    pub kind: StepKind,
    /// The resource whose excessive set drove the step.
    pub resource: ResourceKind,
    /// Sequence edges the step added.
    pub edges_added: usize,
    /// Values the step spilled.
    pub spills: usize,
    /// Total excess across resources before/after the step.
    pub excess_before: u32,
    /// Total excess after the step.
    pub excess_after: u32,
    /// Critical path after the step (cycles).
    pub critical_path_after: u64,
}

/// The result of the allocation phase.
#[derive(Clone, Debug)]
pub struct AllocationOutcome {
    /// The transformed DAG, ready for assignment.
    pub ddg: DependenceDag,
    /// Requirements measured before any transformation.
    pub initial_measurement: MeasurementSummary,
    /// Requirements after the final transformation.
    pub final_measurement: MeasurementSummary,
    /// The steps applied, in order.
    pub steps: Vec<Step>,
    /// Excess the heuristics could not remove (the assignment phase is
    /// responsible for it, paper §2). Zero on success.
    pub residual_excess: u32,
    /// Critical path of the transformed DAG (cycles).
    pub critical_path: u64,
    /// `true` if `max_iterations` stopped the loop early.
    pub hit_iteration_limit: bool,
    /// `true` if the [`CompileBudget`] exhausted during the run: the
    /// outcome is the best-so-far state (anytime semantics), possibly
    /// with residual excess the assignment phase must absorb.
    pub budget_exhausted: bool,
}

impl AllocationOutcome {
    /// Total values spilled.
    pub fn spill_count(&self) -> usize {
        self.steps.iter().map(|s| s.spills).sum()
    }

    /// Total sequence edges added.
    pub fn sequence_edge_count(&self) -> usize {
        self.steps.iter().map(|s| s.edges_added).sum()
    }
}

/// Runs URSA's allocation phase: transforms `ddg` until no legal
/// schedule can exceed `machine`'s resources (or until no heuristic
/// applies; see [`AllocationOutcome::residual_excess`]).
pub fn allocate(ddg: DependenceDag, machine: &Machine, config: &UrsaConfig) -> AllocationOutcome {
    allocate_budgeted(ddg, machine, config, &CompileBudget::unlimited())
}

/// [`allocate`] under a [`CompileBudget`]: the reduce loop, measurement
/// matchings, and transform searches all checkpoint cooperatively
/// against `budget`. When it exhausts, the loop stops at the next
/// checkpoint and returns the best-so-far transformed DAG with
/// [`AllocationOutcome::budget_exhausted`] set — anytime semantics;
/// allocation never hangs and never returns an inconsistent DAG.
pub fn allocate_budgeted(
    ddg: DependenceDag,
    machine: &Machine,
    config: &UrsaConfig,
    budget: &CompileBudget,
) -> AllocationOutcome {
    if let Some(plan) = fault::trip(FaultSite::Driver) {
        match plan.kind {
            FaultKind::Panic => fault::trip_panic(FaultSite::Driver),
            _ => budget.starve(),
        }
    }
    let meter: &dyn WorkMeter = budget;
    let mut ctx = AllocCtx::new(ddg, machine);
    let opts = config.measure_options();
    let mut meas = measure_metered(&mut ctx, opts, meter);
    let initial_measurement = meas.summary();
    let mut steps = Vec::new();
    let mut hit_iteration_limit = false;
    // The incremental engine is primed against the current base context
    // and answers probes by delta propagation; it must be rebuilt
    // whenever the base changes, i.e. after every adopted step.
    // `charge(0)` consumes nothing: it only skips the (expensive,
    // unmetered) engine priming when the budget is already gone — the
    // loop below will stop at its first checkpoint anyway.
    let mut engine = (config.incremental && !meas.fits() && meter.charge(0)).then(|| {
        IncrementalEngine::new(&ctx, &meas.kills, config.kill_mode, config.paranoid_measure)
    });

    // Phase structure (§5). In *integrated* mode the allowed set is
    // chosen dynamically each round: while any register excess exists,
    // only the register transformations compete (FU sequentialization
    // can *increase* register requirements by forcing long lifetimes,
    // so it waits); once registers fit, FU sequentialization runs — and
    // if its spill-free edges or a later spill's memory ops re-create
    // register excess, the register transformations return. The static
    // phased modes never revisit an earlier phase (their weakness is
    // ablation T5).
    const REG_KINDS: &[StepKind] = &[StepKind::RegisterSequentialization, StepKind::Spill];
    const FU_KINDS: &[StepKind] = &[StepKind::FuSequentialization];
    let phases: &[&[StepKind]] = match config.strategy {
        Strategy::Integrated => &[&[]], // dynamic; see below
        Strategy::Phased => &[REG_KINDS, FU_KINDS],
        Strategy::PhasedFuFirst => &[FU_KINDS, REG_KINDS],
        Strategy::SpillOnly => &[&[StepKind::Spill], FU_KINDS],
    };

    let mut iterations = 0usize;
    'phases: for phase_allowed in phases {
        loop {
            if meas.fits() {
                break 'phases;
            }
            if iterations >= config.max_iterations {
                hit_iteration_limit = true;
                break 'phases;
            }
            // Round-head checkpoint: charge one node-count unit (every
            // round is at least one full scan) and sample the deadline.
            // Exhaustion stops the loop with the best-so-far DAG.
            if !meter.charge(ctx.ddg().dag().node_count() as u64) {
                break 'phases;
            }
            // Peak-memory estimate: each tentative candidate clones the
            // context, whose footprint is dominated by the n×n
            // reachability closure (two bit matrices) plus per-node
            // tables.
            {
                let n = ctx.ddg().dag().node_count() as u64;
                budget.note_mem(n * n / 4 + 128 * n);
            }
            iterations += 1;
            let excess_before = meas.total_excess();
            let reg_excess = meas
                .of(ResourceKind::Registers)
                .is_some_and(|rm| !rm.requirement.fits());

            // A winning candidate: its score, the transformed trial
            // context, the step record, and the sequence edges it added.
            type Found<'m> = (
                CandidateScore,
                AllocCtx<'m>,
                Step,
                Vec<(ursa_graph::dag::NodeId, ursa_graph::dag::NodeId)>,
            );

            // Generates the best candidate among the allowed kinds.
            // `ctx` is only borrowed mutably so incremental probes can
            // apply-and-revert tentative edges in place; on return it is
            // structurally untouched.
            #[allow(clippy::too_many_arguments)]
            fn try_kinds<'m>(
                allowed: &[StepKind],
                ctx: &mut AllocCtx<'m>,
                mut engine: Option<&mut IncrementalEngine>,
                meas: &crate::measure::Measurement,
                opts: MeasureOptions,
                kill_mode: KillMode,
                excess_before: u32,
                meter: &dyn WorkMeter,
            ) -> Option<Found<'m>> {
                let mut best: Option<Found<'m>> = None;
                for rm in &meas.resources {
                    if rm.requirement.fits() {
                        continue;
                    }
                    let kinds: &[StepKind] = match rm.requirement.resource {
                        ResourceKind::Fu(_) => &[StepKind::FuSequentialization],
                        ResourceKind::Registers => {
                            &[StepKind::RegisterSequentialization, StepKind::Spill]
                        }
                    };
                    // §5 prefers sequencing over spilling at equal
                    // excess; when register sequencing already reduces
                    // a *small* excess this round, sequencing alone can
                    // close the remaining gap, spill candidates cannot
                    // win that preference, and their (expensive, node-
                    // inserting, scratch-scored) evaluation is skipped.
                    // Under heavy pressure spilling's larger per-step
                    // excess reduction must stay in the running — on
                    // high-pressure kernels an all-sequencing path can
                    // walk into Kill() under-measurement territory
                    // (tests/pipeline_guarantees.rs guards this).
                    let lazy_spill = rm.requirement.excess() <= LAZY_SPILL_MAX_EXCESS;
                    let mut reg_seq_reduced = false;
                    for &kind in kinds {
                        if !allowed.contains(&kind) {
                            continue;
                        }
                        if kind == StepKind::Spill && reg_seq_reduced && lazy_spill {
                            continue;
                        }
                        let mut trial = ctx.clone();
                        let Some(ex) = find_excessive(&mut trial, rm, &meas.kills) else {
                            continue;
                        };
                        let result = match kind {
                            StepKind::FuSequentialization => {
                                sequentialize_fus_metered(&mut trial, &ex, &meas.kills, meter)
                            }
                            StepKind::RegisterSequentialization => sequentialize_registers_metered(
                                &mut trial,
                                &ex,
                                &meas.kills,
                                opts,
                                engine.as_deref_mut(),
                                meter,
                            ),
                            StepKind::Spill => {
                                spill_registers_metered(&mut trial, &ex, &meas.kills, opts, meter)
                            }
                        };
                        let Ok(report) = result else { continue };
                        // Score the candidate. Spill-free transforms only
                        // added `report.edges_added` to the base context,
                        // so the incremental engine can probe those edges
                        // directly; spilling grows the node set and keeps
                        // the from-scratch path (the "scratch island").
                        // Either way the full staged measurement runs once
                        // on the adopted candidate.
                        let (trial_summary, trial_cp) = match engine.as_deref_mut() {
                            Some(e) if report.spills.is_empty() => {
                                let probe = e.probe_metered(ctx, &report.edges_added, meter);
                                (probe.summary, probe.critical_path)
                            }
                            _ => (
                                summary_fast_metered(&trial, kill_mode, meter),
                                trial.critical_path(),
                            ),
                        };
                        let score = CandidateScore {
                            excess_after: trial_summary.total_excess(),
                            critical_path: trial_cp,
                            spills: report.spills.len(),
                            rank: kind_rank(kind),
                        };
                        let step = Step {
                            kind,
                            resource: rm.requirement.resource,
                            edges_added: report.edges_added.len(),
                            spills: report.spills.len(),
                            excess_before,
                            excess_after: trial_summary.total_excess(),
                            critical_path_after: trial_cp,
                        };
                        if kind == StepKind::RegisterSequentialization
                            && score.excess_after < excess_before
                        {
                            reg_seq_reduced = true;
                        }
                        if best.as_ref().is_none_or(|(b, ..)| score < *b) {
                            best = Some((score, trial, step, report.edges_added));
                        }
                    }
                }
                best
            }

            let best = if config.strategy == Strategy::Integrated {
                // Register transformations have priority while register
                // excess exists (§5); when they are exhausted, FU
                // sequentialization proceeds anyway — narrowing the DAG
                // shrinks register width as a side effect, after which
                // the register transformations get another chance.
                let preferred = if reg_excess { REG_KINDS } else { FU_KINDS };
                let fallback = if reg_excess { FU_KINDS } else { REG_KINDS };
                let mut found = try_kinds(
                    preferred,
                    &mut ctx,
                    engine.as_mut(),
                    &meas,
                    opts,
                    config.kill_mode,
                    excess_before,
                    meter,
                );
                if found.is_none() {
                    found = try_kinds(
                        fallback,
                        &mut ctx,
                        engine.as_mut(),
                        &meas,
                        opts,
                        config.kill_mode,
                        excess_before,
                        meter,
                    );
                }
                found
            } else {
                try_kinds(
                    phase_allowed,
                    &mut ctx,
                    engine.as_mut(),
                    &meas,
                    opts,
                    config.kill_mode,
                    excess_before,
                    meter,
                )
            };

            match best {
                Some((_, chosen_ctx, step, edges)) => {
                    // Every applied candidate strictly grows the partial
                    // order (sequence edges) or the node set (spills), so
                    // the loop terminates even when a single step does
                    // not lower total excess; `max_iterations` backstops.
                    let spill_step = step.spills > 0;
                    steps.push(step);
                    // Spill-free steps only added `edges` to the base:
                    // commit them through the engine (one delta pass)
                    // instead of adopting the scratch-built trial and
                    // re-priming from zero. Spills grow the node set, so
                    // they keep the scratch rebuild.
                    let committed = match engine.as_mut() {
                        Some(e) if !spill_step => {
                            e.commit(&mut ctx, &edges);
                            true
                        }
                        _ => {
                            ctx = chosen_ctx;
                            false
                        }
                    };
                    // A committed (spill-free) step already re-measured the
                    // base through the engine's delta matchers and kill
                    // selector; adopt that summary instead of rebuilding
                    // every resource from scratch. Fitting resources get a
                    // placeholder decomposition nobody reads; only the
                    // still-excessive ones are measured for real.
                    meas = match engine.as_ref() {
                        Some(e) if committed => {
                            let adopted = measure_adopted_metered(
                                &mut ctx,
                                e.base_kills().clone(),
                                &e.base_summary(),
                                opts,
                                meter,
                            );
                            if config.paranoid_measure {
                                let scratch = measure_metered(&mut ctx, opts, meter);
                                assert_eq!(
                                    adopted.summary(),
                                    scratch.summary(),
                                    "adopted fast measure disagrees with scratch measurement"
                                );
                                assert_eq!(
                                    adopted.kills, scratch.kills,
                                    "adopted kill map disagrees with scratch kill selection"
                                );
                            }
                            adopted
                        }
                        _ => measure_metered(&mut ctx, opts, meter),
                    };
                    if engine.is_some() {
                        if meas.fits() {
                            engine = None;
                        } else if !committed {
                            engine = Some(IncrementalEngine::new(
                                &ctx,
                                &meas.kills,
                                config.kill_mode,
                                config.paranoid_measure,
                            ));
                        }
                    }
                    let _ = excess_before;
                }
                None => break, // nothing applies in this phase
            }
        }
    }

    let final_measurement = meas.summary();
    let residual_excess = final_measurement.total_excess();
    AllocationOutcome {
        critical_path: ctx.critical_path(),
        ddg: ctx.into_ddg(),
        initial_measurement,
        final_measurement,
        steps,
        residual_excess,
        hit_iteration_limit,
        budget_exhausted: budget.is_exhausted(),
    }
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct CandidateScore {
    excess_after: u32,
    critical_path: u64,
    spills: usize,
    rank: u8,
}

fn kind_rank(kind: StepKind) -> u8 {
    // §5 tie-breaking: register sequencing beats spilling ("it does not
    // require the use of additional resources to access main memory");
    // FU sequencing sits between.
    match kind {
        StepKind::RegisterSequentialization => 0,
        StepKind::FuSequentialization => 1,
        StepKind::Spill => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::parser::parse;
    use ursa_machine::FuClass;

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn fig2_ddg() -> DependenceDag {
        DependenceDag::from_entry_block(&parse(FIG2).unwrap())
    }

    fn required(summary: &MeasurementSummary, kind: ResourceKind) -> u32 {
        summary.of(kind).unwrap().required
    }

    /// Figure 3(d): the combination of transformations reaches 2 FUs and
    /// 3 registers.
    #[test]
    fn figure3d_two_fus_three_registers() {
        let machine = Machine::homogeneous(2, 3);
        let out = allocate(fig2_ddg(), &machine, &UrsaConfig::default());
        assert_eq!(out.residual_excess, 0, "steps: {:?}", out.steps);
        assert!(out.final_measurement.fits(&machine));
        assert_eq!(
            required(
                &out.initial_measurement,
                ResourceKind::Fu(FuClass::Universal)
            ),
            4
        );
        assert_eq!(
            required(&out.initial_measurement, ResourceKind::Registers),
            5
        );
        assert!(required(&out.final_measurement, ResourceKind::Fu(FuClass::Universal)) <= 2);
        assert!(required(&out.final_measurement, ResourceKind::Registers) <= 3);
        assert!(!out.hit_iteration_limit);
    }

    #[test]
    fn roomy_machine_needs_no_steps() {
        let machine = Machine::homogeneous(8, 16);
        let out = allocate(fig2_ddg(), &machine, &UrsaConfig::default());
        assert!(out.steps.is_empty());
        assert_eq!(out.residual_excess, 0);
        assert_eq!(out.initial_measurement, out.final_measurement);
    }

    #[test]
    fn phased_matches_integrated_on_fit() {
        let machine = Machine::homogeneous(3, 4);
        for strategy in [
            Strategy::Integrated,
            Strategy::Phased,
            Strategy::PhasedFuFirst,
        ] {
            let out = allocate(
                fig2_ddg(),
                &machine,
                &UrsaConfig {
                    strategy,
                    ..UrsaConfig::default()
                },
            );
            assert_eq!(out.residual_excess, 0, "{strategy:?}: {:?}", out.steps);
            assert!(out.final_measurement.fits(&machine), "{strategy:?}");
        }
    }

    #[test]
    fn one_fu_machine_fully_sequentializes() {
        let machine = Machine::homogeneous(1, 3);
        let out = allocate(fig2_ddg(), &machine, &UrsaConfig::default());
        assert_eq!(out.residual_excess, 0, "steps: {:?}", out.steps);
        assert_eq!(
            required(&out.final_measurement, ResourceKind::Fu(FuClass::Universal)),
            1
        );
    }

    #[test]
    fn outcome_counters_match_steps() {
        let machine = Machine::homogeneous(2, 3);
        let out = allocate(fig2_ddg(), &machine, &UrsaConfig::default());
        let edges: usize = out.steps.iter().map(|s| s.edges_added).sum();
        let spills: usize = out.steps.iter().map(|s| s.spills).sum();
        assert_eq!(out.sequence_edge_count(), edges);
        assert_eq!(out.spill_count(), spills);
    }

    #[test]
    fn transformed_dag_stays_acyclic_and_anchored() {
        let machine = Machine::homogeneous(2, 3);
        let out = allocate(fig2_ddg(), &machine, &UrsaConfig::default());
        assert!(out.ddg.dag().is_acyclic());
        assert_eq!(out.ddg.dag().roots(), vec![out.ddg.entry()]);
        assert_eq!(out.ddg.dag().leaves(), vec![out.ddg.exit()]);
    }

    #[test]
    fn classed_machine_allocation() {
        let machine = Machine::classic_vliw();
        let out = allocate(fig2_ddg(), &machine, &UrsaConfig::default());
        assert_eq!(out.residual_excess, 0, "steps: {:?}", out.steps);
        assert!(out.final_measurement.fits(&machine));
    }

    #[test]
    fn naive_kill_mode_runs() {
        let machine = Machine::homogeneous(2, 3);
        let out = allocate(
            fig2_ddg(),
            &machine,
            &UrsaConfig {
                kill_mode: KillMode::Naive,
                ..UrsaConfig::default()
            },
        );
        assert!(out.final_measurement.fits(&machine));
    }
}
