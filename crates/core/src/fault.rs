//! Deterministic, seeded fault injection.
//!
//! The chaos harness must prove the pipeline survives *induced* faults,
//! not just natural ones. A [`FaultPlan`] names one fault (what kind,
//! at which stage site) and is armed per-compile in a thread-local slot;
//! the instrumented sites call [`trip`] — a one-shot check that is two
//! thread-local reads when nothing is armed, so production compiles pay
//! effectively nothing. Plans derive deterministically from a seed
//! ([`FaultPlan::from_seed`]), so any chaos failure replays from one
//! number.
//!
//! The same module owns the *stage marker* used by panic isolation: the
//! pipeline records which stage it is entering, and the `catch_unwind`
//! wrapper in `ursa-sched` attributes any escaped panic to the last
//! recorded stage (`CompileError::Internal { stage }`).

use std::cell::Cell;
use std::fmt;

/// Instrumented pipeline locations where a fault can fire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// The reduce-loop head in `driver.rs`.
    Driver,
    /// `Kill()` selection (`kill.rs`).
    KillSelect,
    /// Requirement measurement (`measure.rs` adjacency build).
    Measure,
    /// §4.1 FU sequentialization.
    FuSeq,
    /// §4.2 register sequentialization.
    RegSeq,
    /// §4.3 spilling.
    Spill,
    /// The Goodman–Hsu register-file widening loop (`ursa-sched`).
    Widen,
    /// List scheduling / assignment (`ursa-sched`).
    Schedule,
}

impl FaultSite {
    /// Every instrumented site, for plan derivation and reporting.
    pub const ALL: [FaultSite; 8] = [
        FaultSite::Driver,
        FaultSite::KillSelect,
        FaultSite::Measure,
        FaultSite::FuSeq,
        FaultSite::RegSeq,
        FaultSite::Spill,
        FaultSite::Widen,
        FaultSite::Schedule,
    ];
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultSite::Driver => "driver",
            FaultSite::KillSelect => "kill-select",
            FaultSite::Measure => "measure",
            FaultSite::FuSeq => "fu-seq",
            FaultSite::RegSeq => "reg-seq",
            FaultSite::Spill => "spill",
            FaultSite::Widen => "widen",
            FaultSite::Schedule => "schedule",
        })
    }
}

/// What the fault does when its site is reached.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// `panic!` at the site (must surface as `Internal { stage }`, never
    /// an escaped panic).
    Panic,
    /// Starve the compile budget (cooperative exhaustion from that point
    /// on; must surface as a demotion or a typed deadline error).
    Starve,
    /// Drop one producer's `CanReuse` row while building the measurement
    /// adjacency. Fewer reuse edges → smaller matching → *higher*
    /// measured requirement: strictly conservative, so the compile must
    /// still succeed (possibly with extra transforms) or fail typed.
    PoisonRow,
    /// Report "no applicable candidate" from a transformation
    /// (allocation failure; exercises the ladder).
    Refuse,
    /// Collapse the Goodman–Hsu widening cap to the starting file size,
    /// forcing the typed `RegisterOverflow` path.
    WidenCap,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Panic => "panic",
            FaultKind::Starve => "starve",
            FaultKind::PoisonRow => "poison-row",
            FaultKind::Refuse => "refuse",
            FaultKind::WidenCap => "widen-cap",
        })
    }
}

/// One planned fault: `kind` fires the first time `site` is reached.
///
/// `payload` parameterizes kinds that need a value (the poisoned row
/// index); other kinds ignore it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Where the fault fires.
    pub site: FaultSite,
    /// What it does.
    pub kind: FaultKind,
    /// Kind-specific parameter (row index for `PoisonRow`).
    pub payload: u32,
}

/// SplitMix64 — the classic seed expander; in-tree so `ursa-core` does
/// not need a dependency on `ursa-rng` for three multiplies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Derives a plan deterministically from `seed`. Only meaningful
    /// (kind, site) combinations are produced: `Refuse` targets the
    /// transforms, `PoisonRow` the measurement, `WidenCap` the widening
    /// loop, while `Panic` and `Starve` roam every site.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed;
        let kind = match splitmix64(&mut s) % 5 {
            0 => FaultKind::Panic,
            1 => FaultKind::Starve,
            2 => FaultKind::PoisonRow,
            3 => FaultKind::Refuse,
            _ => FaultKind::WidenCap,
        };
        let site = match kind {
            FaultKind::Panic | FaultKind::Starve => {
                FaultSite::ALL[(splitmix64(&mut s) % FaultSite::ALL.len() as u64) as usize]
            }
            FaultKind::PoisonRow => FaultSite::Measure,
            FaultKind::Refuse => match splitmix64(&mut s) % 3 {
                0 => FaultSite::FuSeq,
                1 => FaultSite::RegSeq,
                _ => FaultSite::Spill,
            },
            FaultKind::WidenCap => FaultSite::Widen,
        };
        let payload = (splitmix64(&mut s) & 0xFFFF_FFFF) as u32;
        FaultPlan {
            site,
            kind,
            payload,
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind, self.site)
    }
}

thread_local! {
    static ARMED: Cell<Option<FaultPlan>> = const { Cell::new(None) };
    static STAGE: Cell<&'static str> = const { Cell::new("setup") };
}

/// Arms `plan` for the current thread. The plan is one-shot: the first
/// matching [`trip`] consumes it. Re-arming replaces any leftover plan.
pub fn arm(plan: FaultPlan) {
    ARMED.with(|a| a.set(Some(plan)));
}

/// Disarms and returns whatever plan is still pending (a leftover means
/// the compile never reached the planned site — a legal outcome: e.g. a
/// `Widen` fault on a trace that fits without widening).
pub fn disarm() -> Option<FaultPlan> {
    ARMED.with(|a| a.take())
}

/// One-shot site check: if a plan is armed for `site`, consumes it and
/// returns the fault to perform. Callers handle each kind they support;
/// `FaultKind::Panic` can be delegated to [`trip_panic`].
pub fn trip(site: FaultSite) -> Option<FaultPlan> {
    ARMED.with(|a| {
        let armed = a.get()?;
        if armed.site == site {
            a.set(None);
            Some(armed)
        } else {
            None
        }
    })
}

/// Panics with a recognizable message — the standard action for
/// [`FaultKind::Panic`] so the isolation layer (and its tests) can tell
/// injected panics from real ones.
pub fn trip_panic(site: FaultSite) -> ! {
    panic!("injected fault: synthetic panic at {site}")
}

/// Records the pipeline stage now executing (for panic attribution).
pub fn set_stage(stage: &'static str) {
    STAGE.with(|s| s.set(stage));
}

/// The stage most recently recorded on this thread.
pub fn current_stage() -> &'static str {
    STAGE.with(|s| s.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        for seed in 0..64 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
    }

    #[test]
    fn from_seed_covers_every_kind_and_site() {
        let mut kinds = std::collections::BTreeSet::new();
        let mut sites = std::collections::BTreeSet::new();
        for seed in 0..512 {
            let p = FaultPlan::from_seed(seed);
            kinds.insert(format!("{}", p.kind));
            sites.insert(format!("{}", p.site));
        }
        assert_eq!(kinds.len(), 5, "kinds seen: {kinds:?}");
        assert_eq!(sites.len(), FaultSite::ALL.len(), "sites seen: {sites:?}");
    }

    #[test]
    fn plans_pair_kinds_with_meaningful_sites() {
        for seed in 0..2048 {
            let p = FaultPlan::from_seed(seed);
            match p.kind {
                FaultKind::PoisonRow => assert_eq!(p.site, FaultSite::Measure),
                FaultKind::WidenCap => assert_eq!(p.site, FaultSite::Widen),
                FaultKind::Refuse => assert!(matches!(
                    p.site,
                    FaultSite::FuSeq | FaultSite::RegSeq | FaultSite::Spill
                )),
                FaultKind::Panic | FaultKind::Starve => {}
            }
        }
    }

    #[test]
    fn trip_is_one_shot_and_site_selective() {
        let plan = FaultPlan {
            site: FaultSite::RegSeq,
            kind: FaultKind::Refuse,
            payload: 7,
        };
        arm(plan);
        assert_eq!(trip(FaultSite::FuSeq), None, "wrong site must not trip");
        assert_eq!(trip(FaultSite::RegSeq), Some(plan));
        assert_eq!(trip(FaultSite::RegSeq), None, "one-shot");
        assert_eq!(disarm(), None);
    }

    #[test]
    fn disarm_returns_leftover_plan() {
        let plan = FaultPlan::from_seed(3);
        arm(plan);
        assert_eq!(disarm(), Some(plan));
        assert_eq!(disarm(), None);
    }

    #[test]
    fn stage_marker_round_trips() {
        set_stage("allocate");
        assert_eq!(current_stage(), "allocate");
        set_stage("schedule");
        assert_eq!(current_stage(), "schedule");
    }
}
