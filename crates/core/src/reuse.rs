//! Explicit Reuse DAGs (paper §3, Definition 4).
//!
//! The measurement pipeline works directly on the `CanReuse` relation
//! (the matching is over *all* related pairs, per [FoF65]); this module
//! materializes the paper's presentation artifact — the Reuse_R DAG,
//! i.e. the transitive reduction of `CanReuse_R` — for inspection,
//! visualization and tests. Definition 4's second condition ("eliminates
//! transitive edges … simplifies later discussions") is exactly a
//! transitive reduction, which is unique for DAGs.

use crate::ctx::AllocCtx;
use crate::kill::KillMap;
use crate::measure::{can_reuse_fu, can_reuse_reg};
use crate::resource::ResourceKind;
use ursa_graph::dag::{Dag, EdgeKind, NodeId};

/// The Reuse DAG of one resource: nodes are the resource's consumers
/// (indexed locally), edges are the non-transitive `CanReuse` pairs.
#[derive(Clone, Debug)]
pub struct ReuseDag {
    /// The resource this DAG describes.
    pub resource: ResourceKind,
    /// The reduced graph over local indices `0..nodes.len()`.
    pub graph: Dag,
    /// Maps local indices back to dependence-DAG nodes.
    pub nodes: Vec<NodeId>,
}

impl ReuseDag {
    /// The dependence-DAG node behind local index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn original(&self, i: usize) -> NodeId {
        self.nodes[i]
    }

    /// Renders the Reuse DAG in Graphviz DOT syntax, labeling nodes with
    /// a caller-provided printer (e.g. [`ursa_ir::ddg::DependenceDag::describe`]).
    pub fn to_dot(&self, name: &str, mut label: impl FnMut(NodeId) -> String) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(out, "digraph {name} {{").expect("write to string");
        writeln!(out, "  node [shape=box, fontname=\"monospace\"];").expect("write");
        for (i, &n) in self.nodes.iter().enumerate() {
            writeln!(out, "  r{i} [label=\"{}\"];", label(n).replace('"', "'")).expect("write");
        }
        for e in self.graph.edges() {
            writeln!(out, "  r{} -> r{};", e.from.0, e.to.0).expect("write");
        }
        writeln!(out, "}}").expect("write");
        out
    }
}

/// Builds the Reuse DAG of `resource` for the current context, using the
/// given kill map for registers (paper Definition 4: edges are the
/// `CanReuse` pairs minus transitive ones).
pub fn reuse_dag(ctx: &AllocCtx<'_>, kills: &KillMap, resource: ResourceKind) -> ReuseDag {
    let nodes = ctx.resource_nodes(resource);
    let k = nodes.len();
    let related = |a: NodeId, b: NodeId| match resource {
        ResourceKind::Fu(_) => can_reuse_fu(ctx, a, b),
        ResourceKind::Registers => can_reuse_reg(ctx, kills, a, b),
    };
    let mut graph = Dag::new(k);
    for i in 0..k {
        for j in 0..k {
            if i == j || !related(nodes[i], nodes[j]) {
                continue;
            }
            // Condition 2 of Definition 4: drop (i, j) when some c with
            // CanReuse(i, c) and CanReuse(c, j) exists. CanReuse is
            // transitive, so this is the standard transitive reduction.
            let transitive = (0..k).any(|c| {
                c != i && c != j && related(nodes[i], nodes[c]) && related(nodes[c], nodes[j])
            });
            if !transitive {
                graph.add_edge(NodeId::from(i), NodeId::from(j), EdgeKind::Data);
            }
        }
    }
    ReuseDag {
        resource,
        graph,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kill::{select_kills, KillMode};
    use ursa_graph::reach::Reachability;
    use ursa_ir::ddg::DependenceDag;
    use ursa_ir::parser::parse;
    use ursa_machine::{FuClass, Machine};

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn ctx_of(src: &str) -> AllocCtx<'static> {
        let p = parse(src).unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let m: &'static Machine = Box::leak(Box::new(Machine::homogeneous(8, 16)));
        AllocCtx::new(ddg, m)
    }

    /// "The DAG in Figure 2(b) is both a program DAG and a Reuse_FU
    /// DAG" — the FU Reuse DAG of the example has exactly the program's
    /// data edges.
    #[test]
    fn figure2_fu_reuse_dag_is_the_program_dag() {
        let ctx = ctx_of(FIG2);
        let kills = select_kills(&ctx, KillMode::MinCover);
        let r = reuse_dag(&ctx, &kills, ResourceKind::Fu(FuClass::Universal));
        assert_eq!(r.nodes.len(), 11);
        // The program DAG has 15 data edges among A..K.
        assert_eq!(r.graph.edge_count(), 15);
        // Spot checks: A -> B and E -> I present, A -> E (transitive)
        // absent. Local index = node id - 2 here (A..K are nodes 2..12).
        let idx = |letter: u8| (letter - b'A') as usize;
        assert!(r
            .graph
            .has_edge(NodeId::from(idx(b'A')), NodeId::from(idx(b'B'))));
        assert!(r
            .graph
            .has_edge(NodeId::from(idx(b'E')), NodeId::from(idx(b'I'))));
        assert!(!r
            .graph
            .has_edge(NodeId::from(idx(b'A')), NodeId::from(idx(b'E'))));
    }

    /// The reduction preserves reachability: the Reuse DAG's closure
    /// equals the original CanReuse relation.
    #[test]
    fn reduction_preserves_the_relation() {
        let ctx = ctx_of(FIG2);
        let kills = select_kills(&ctx, KillMode::MinCover);
        for resource in [
            ResourceKind::Fu(FuClass::Universal),
            ResourceKind::Registers,
        ] {
            let r = reuse_dag(&ctx, &kills, resource);
            let closure = Reachability::of(&r.graph);
            for (i, &a) in r.nodes.iter().enumerate() {
                for (j, &b) in r.nodes.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let related = match resource {
                        ResourceKind::Fu(_) => can_reuse_fu(&ctx, a, b),
                        ResourceKind::Registers => can_reuse_reg(&ctx, &kills, a, b),
                    };
                    assert_eq!(
                        closure.reaches(NodeId::from(i), NodeId::from(j)),
                        related,
                        "{resource}: pair ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn register_reuse_dag_chains_match_measurement() {
        use crate::measure::{measure, MeasureOptions};
        let mut ctx = ctx_of(FIG2);
        let m = measure(&mut ctx, MeasureOptions::default());
        let r = reuse_dag(&ctx, &m.kills, ResourceKind::Registers);
        // Width of the Reuse DAG = measured requirement (Theorem 1).
        let closure = Reachability::of(&r.graph);
        let locals: Vec<NodeId> = r.graph.nodes().collect();
        let anti = ursa_graph::chains::max_antichain(&locals, |a, b| closure.reaches(a, b));
        assert_eq!(
            anti.len() as u32,
            m.of(ResourceKind::Registers).unwrap().requirement.required
        );
    }

    #[test]
    fn dot_output_is_well_formed() {
        let ctx = ctx_of(FIG2);
        let kills = select_kills(&ctx, KillMode::MinCover);
        let r = reuse_dag(&ctx, &kills, ResourceKind::Fu(FuClass::Universal));
        let dot = r.to_dot("reuse_fu", |n| ctx.ddg().describe(n));
        assert!(dot.starts_with("digraph reuse_fu {"));
        assert!(dot.contains("load"));
        assert_eq!(dot.matches(" -> ").count(), r.graph.edge_count());
    }
}
