//! Register sequentialization (paper §4.2).
//!
//! Unlike a functional unit, a register stays busy from its value's
//! definition until the kill executes, so delaying instructions only
//! helps if the *values* of the first stage die before the second stage
//! starts — "values which are alive during the execution of instructions
//! that are not delayed contribute to the resource requirements". In the
//! worked example, delaying G and H until after I (the kill of E and F)
//! reduces the requirement from five to four, while delaying F (a killer
//! of B and C) would merely extend B's and C's lifetimes.
//!
//! The implementation therefore anchors the stage split at a *kill
//! point*: for every candidate kill node `s` of the excessive set's
//! values, the chains whose heads can legally move after `s` form SD2;
//! the split is tentatively applied and re-measured, and the best
//! candidate (fewest registers, then shortest critical path) is kept —
//! the tentative-evaluation discipline §5 prescribes.

use crate::ctx::AllocCtx;
use crate::excess::ExcessiveChainSet;
use crate::fault::{self, FaultKind, FaultSite};
use crate::incremental::IncrementalEngine;
use crate::kill::{select_kills_metered, KillMap};
use crate::measure::{requirement_only_metered, MeasureOptions};
use crate::resource::ResourceKind;
use crate::transform::{TransformError, TransformReport};
use ursa_graph::bitset::BitSet;
use ursa_graph::dag::NodeId;
use ursa_graph::meter::{Unmetered, WorkMeter};

/// Scores a tentative edge batch: `(register requirement, critical
/// path)` as if `edges` were added to `ctx`. With an engine the probe
/// is delta-incremental and reverts itself; without one it pays for a
/// context clone and a from-scratch kill selection + matching.
fn score_edges(
    ctx: &mut AllocCtx<'_>,
    engine: &mut Option<&mut IncrementalEngine>,
    edges: &[(NodeId, NodeId)],
    options: MeasureOptions,
    meter: &dyn WorkMeter,
) -> (u32, u64) {
    if let Some(e) = engine.as_deref_mut() {
        let probe = e.probe_metered(ctx, edges, meter);
        let required = probe
            .summary
            .of(ResourceKind::Registers)
            .map_or(0, |r| r.required);
        return (required, probe.critical_path);
    }
    let mut trial = ctx.clone();
    for &(a, b) in edges {
        trial.add_sequence_edge(a, b);
    }
    let trial_kills = select_kills_metered(&trial, options.kill_mode, meter);
    let required = requirement_only_metered(&trial, &trial_kills, ResourceKind::Registers, meter);
    (required, trial.critical_path())
}

/// A candidate staging: `(register requirement, critical path, sequence
/// edges to insert)` — lower requirement wins, critical path breaks
/// ties.
type SequencingPlan = (u32, u64, Vec<(NodeId, NodeId)>);

/// Upper bound on stage-boundary candidates evaluated per application
/// (each costs a tentative re-measurement).
pub(crate) const MAX_BOUNDARIES: usize = 8;

/// Keeps the `MAX_BOUNDARIES` most promising boundaries: those chosen
/// as the kill of the most excessive-set values.
pub(crate) fn cap_boundaries(
    _ctx: &AllocCtx<'_>,
    kills: &KillMap,
    excess_set: &ExcessiveChainSet,
    boundaries: &mut Vec<NodeId>,
) {
    if boundaries.len() <= MAX_BOUNDARIES {
        return;
    }
    let mut scored: Vec<(usize, NodeId)> = boundaries
        .iter()
        .map(|&b| {
            let ends = excess_set
                .nodes()
                .filter(|&n| kills.kill_of(n) == Some(b))
                .count();
            (ends, b)
        })
        .collect();
    scored.sort_by_key(|&(ends, b)| (std::cmp::Reverse(ends), b));
    *boundaries = scored
        .into_iter()
        .take(MAX_BOUNDARIES)
        .map(|(_, b)| b)
        .collect();
}

/// The stage split produced by a register sequentialization
/// (Definition 8).
#[derive(Clone, Debug)]
pub struct Stages {
    /// Ancestors of SD2's roots (including SD1 and everything feeding it).
    pub stage1: BitSet,
    /// SD2's roots and all their descendants.
    pub stage2: BitSet,
}

/// Computes the Definition 8 stages for a set of delayed roots.
pub fn stages(ctx: &AllocCtx<'_>, sd2_roots: &[NodeId]) -> Stages {
    let n = ctx.ddg().dag().node_count();
    let mut stage1 = BitSet::new(n);
    let mut stage2 = BitSet::new(n);
    for &r in sd2_roots {
        stage1.union_with(&ctx.reach().ancestors(r));
        stage2.insert(r.index());
        stage2.union_with(&ctx.reach().descendants(r));
    }
    Stages { stage1, stage2 }
}

/// Delays a nonsupporting sub-DAG of `excess_set` behind the kill point
/// that best reduces the register requirement.
///
/// # Errors
///
/// [`TransformError::NoCandidate`] when no stage boundary reduces the
/// requirement — e.g. every kill point is the exit node, or every legal
/// delay merely extends other live ranges. The caller should fall back
/// to [`crate::transform::spill`], which is always applicable (§4.3).
pub fn sequentialize_registers(
    ctx: &mut AllocCtx<'_>,
    excess_set: &ExcessiveChainSet,
    kills: &KillMap,
    options: MeasureOptions,
    engine: Option<&mut IncrementalEngine>,
) -> Result<TransformReport, TransformError> {
    sequentialize_registers_metered(ctx, excess_set, kills, options, engine, &Unmetered)
}

/// [`sequentialize_registers`] with a cooperative [`WorkMeter`]. Each
/// stage-boundary candidate costs a tentative re-measurement; on
/// exhaustion the remaining candidates are skipped and the best split
/// found so far (if any) is applied — anytime behaviour, never a hang.
pub fn sequentialize_registers_metered(
    ctx: &mut AllocCtx<'_>,
    excess_set: &ExcessiveChainSet,
    kills: &KillMap,
    options: MeasureOptions,
    mut engine: Option<&mut IncrementalEngine>,
    meter: &dyn WorkMeter,
) -> Result<TransformReport, TransformError> {
    if let Some(plan) = fault::trip(FaultSite::RegSeq) {
        match plan.kind {
            FaultKind::Panic => fault::trip_panic(FaultSite::RegSeq),
            FaultKind::Refuse => {
                return Err(TransformError::NoCandidate("injected allocation failure"))
            }
            _ => meter.starve(),
        }
    }
    let capacity = excess_set.resource.capacity(ctx.machine());
    if excess_set.excess_over(capacity) == 0 {
        return Err(TransformError::NoCandidate("no excess to remove"));
    }
    let required_before = excess_set.chains.len() as u32;
    let exit = ctx.ddg().exit();

    // Candidate stage boundaries: the kill points of the excessive
    // set's values (head and tail of each subchain), except the exit.
    let mut boundaries: Vec<NodeId> = Vec::new();
    for chain in &excess_set.chains {
        for node in [chain[0], *chain.last().expect("nonempty")] {
            if let Some(k) = kills.kill_of(node) {
                if k != exit && !boundaries.contains(&k) {
                    boundaries.push(k);
                }
            }
        }
    }
    if boundaries.is_empty() {
        return Err(TransformError::NoCandidate(
            "every value of the excessive set lives to the exit",
        ));
    }
    // Cap the candidate boundaries (each costs a tentative re-measure);
    // kill points that end the most chains come first.
    cap_boundaries(ctx, kills, excess_set, &mut boundaries);

    let heads: Vec<NodeId> = excess_set.heads();
    let mut best: Option<SequencingPlan> = None;
    let n = ctx.ddg().dag().node_count();
    for &s in &boundaries {
        // Checkpoint: each boundary costs a tentative re-measurement.
        // On exhaustion, keep whatever best split is already in hand.
        if !meter.charge(n as u64) {
            break;
        }
        // SD2: chains whose heads can execute after `s`.
        let delayed: Vec<NodeId> = heads
            .iter()
            .copied()
            .filter(|&h| h != s && !ctx.reach().reaches(h, s))
            .collect();
        if delayed.is_empty() || delayed.len() == heads.len() {
            continue; // both stages must be nonempty
        }
        let edges: Vec<(NodeId, NodeId)> = delayed
            .iter()
            .copied()
            .filter(|&h| !ctx.reach().reaches(s, h))
            .map(|h| (s, h))
            .collect();
        if edges.is_empty() {
            continue; // split already implied; no schedule removed
        }
        // Tentatively apply and re-measure registers only (only the
        // count matters for scoring).
        let (required, cp) = score_edges(ctx, &mut engine, &edges, options, meter);
        // Reducing below capacity buys nothing; don't pay critical path
        // for it.
        if best
            .as_ref()
            .is_none_or(|&(br, bcp, _)| (required.max(capacity), cp) < (br.max(capacity), bcp))
        {
            best = Some((required, cp, edges));
        }
    }

    match best {
        Some((required_after, _, edges)) if required_after < required_before => {
            let mut report = TransformReport::default();
            for (a, b) in edges {
                ctx.add_sequence_edge(a, b);
                report.edges_added.push((a, b));
            }
            Ok(report)
        }
        // No boundary split helps (already-serialized DAGs, interleaved
        // kills): fall back to direct lifetime staggering.
        _ => stagger_lifetimes(ctx, excess_set, kills, options, engine, meter),
    }
}

/// Last-resort register sequencing: pick pairs `(u, v)` of excessive
/// values and sequence `kill(u) → v`, so `v`'s value can take over
/// `u`'s register — the pairwise core of the paper's transformation,
/// applied without requiring a whole nonsupporting sub-DAG. The round
/// is applied tentatively and kept only if the measured requirement
/// falls.
fn stagger_lifetimes(
    ctx: &mut AllocCtx<'_>,
    excess_set: &ExcessiveChainSet,
    kills: &KillMap,
    options: MeasureOptions,
    engine: Option<&mut IncrementalEngine>,
    meter: &dyn WorkMeter,
) -> Result<TransformReport, TransformError> {
    let capacity = excess_set.resource.capacity(ctx.machine());
    let required_before = excess_set.chains.len() as u32;
    let x = excess_set.excess_over(capacity) as usize;
    let exit = ctx.ddg().exit();

    let members: Vec<NodeId> = excess_set.heads();
    let mut trial = ctx.clone();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut used_source = Vec::new();
    let mut used_target = Vec::new();
    for _ in 0..x.max(1) {
        // Checkpoint: each round scans all member pairs. On exhaustion,
        // keep the edges staggered so far (the acceptance re-measure
        // below still decides whether they help).
        if !meter.charge((members.len() * members.len()) as u64) {
            break;
        }
        let mut best: Option<(u64, NodeId, NodeId, NodeId)> = None; // (cost, k, u, v)
        for &u in &members {
            if used_source.contains(&u) {
                continue;
            }
            let Some(k) = kills.kill_of(u) else { continue };
            if k == exit {
                continue;
            }
            for &v in &members {
                if v == u
                    || used_target.contains(&v)
                    || trial.reach().reaches(k, v)
                    || trial.would_cycle(k, v)
                {
                    continue;
                }
                let cost = trial.levels().asap(k)
                    + trial.latency(k)
                    + (trial.critical_path() - trial.levels().alap(v));
                if best.is_none_or(|b| (b.0, b.1, b.2) > (cost, k, v)) {
                    best = Some((cost, k, u, v));
                }
            }
        }
        let Some((_, k, u, v)) = best else { break };
        trial.add_sequence_edge(k, v);
        edges.push((k, v));
        used_source.push(u);
        used_target.push(v);
    }
    if edges.is_empty() {
        return Err(TransformError::NoCandidate(
            "no lifetime pair can be staggered",
        ));
    }
    // The greedy picker above needed the progressively-updated trial;
    // the acceptance check can go through the incremental engine.
    let required_after = if let Some(e) = engine {
        e.probe_metered(ctx, &edges, meter)
            .summary
            .of(ResourceKind::Registers)
            .map_or(0, |r| r.required)
    } else {
        let trial_kills = select_kills_metered(&trial, options.kill_mode, meter);
        requirement_only_metered(&trial, &trial_kills, ResourceKind::Registers, meter)
    };
    if required_after >= required_before {
        return Err(TransformError::NoCandidate(
            "staggering does not reduce the requirement either",
        ));
    }
    let report = TransformReport {
        edges_added: edges,
        ..TransformReport::default()
    };
    *ctx = trial;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::excess::find_excessive;
    use crate::measure::{measure, MeasureOptions};
    use crate::resource::ResourceKind;
    use ursa_ir::ddg::DependenceDag;
    use ursa_ir::parser::parse;
    use ursa_machine::Machine;

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn ctx_of(src: &str, machine: Machine) -> AllocCtx<'static> {
        let p = parse(src).unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let m: &'static Machine = Box::leak(Box::new(machine));
        AllocCtx::new(ddg, m)
    }

    fn reg_requirement(ctx: &mut AllocCtx<'_>) -> u32 {
        let m = measure(ctx, MeasureOptions::default());
        m.of(ResourceKind::Registers).unwrap().requirement.required
    }

    /// Figure 3(b): delaying the late sub-DAG reduces registers 5 → 4.
    #[test]
    fn figure3b_five_to_four() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 4));
        assert_eq!(reg_requirement(&mut ctx), 5);
        let m = measure(&mut ctx, MeasureOptions::default());
        let regs = m.of(ResourceKind::Registers).unwrap().clone();
        let ex = find_excessive(&mut ctx, &regs, &m.kills).unwrap();
        let report =
            sequentialize_registers(&mut ctx, &ex, &m.kills, MeasureOptions::default(), None)
                .unwrap();
        assert!(!report.edges_added.is_empty());
        assert_eq!(reg_requirement(&mut ctx), 4, "paper: exactly 5 → 4");
        assert!(ctx.ddg().dag().is_acyclic());
    }

    #[test]
    fn stages_partition_around_roots() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 4));
        let m = measure(&mut ctx, MeasureOptions::default());
        let regs = m.of(ResourceKind::Registers).unwrap().clone();
        let ex = find_excessive(&mut ctx, &regs, &m.kills).unwrap();
        let report =
            sequentialize_registers(&mut ctx, &ex, &m.kills, MeasureOptions::default(), None)
                .unwrap();
        let roots: Vec<NodeId> = report.edges_added.iter().map(|&(_, r)| r).collect();
        let st = stages(&ctx, &roots);
        for &r in &roots {
            assert!(st.stage2.contains(r.index()));
            assert!(!st.stage1.contains(r.index()));
        }
        assert!(st.stage2.contains(ctx.ddg().exit().index()));
        assert!(st.stage1.contains(ctx.ddg().entry().index()));
    }

    #[test]
    fn all_edges_share_one_boundary_source() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 4));
        let m = measure(&mut ctx, MeasureOptions::default());
        let regs = m.of(ResourceKind::Registers).unwrap().clone();
        let ex = find_excessive(&mut ctx, &regs, &m.kills).unwrap();
        let report =
            sequentialize_registers(&mut ctx, &ex, &m.kills, MeasureOptions::default(), None)
                .unwrap();
        let sources: Vec<NodeId> = report.edges_added.iter().map(|&(s, _)| s).collect();
        assert!(
            sources.windows(2).all(|w| w[0] == w[1]),
            "one kill point anchors the split: {sources:?}"
        );
    }

    #[test]
    fn live_to_exit_values_cannot_be_sequenced() {
        // Values never used: all killed at the exit → no boundary.
        let mut ctx = ctx_of(
            "v0 = const 1\nv1 = const 2\nv2 = const 3\n",
            Machine::homogeneous(8, 2),
        );
        let m = measure(&mut ctx, MeasureOptions::default());
        let regs = m.of(ResourceKind::Registers).unwrap().clone();
        let ex = find_excessive(&mut ctx, &regs, &m.kills).unwrap();
        let err = sequentialize_registers(&mut ctx, &ex, &m.kills, MeasureOptions::default(), None)
            .unwrap_err();
        assert!(matches!(err, TransformError::NoCandidate(_)));
    }

    #[test]
    fn rejects_splits_that_do_not_reduce() {
        // Two values consumed by one shared use: width 2 cannot drop to
        // 1 by sequencing (both feed the same instruction).
        let mut ctx = ctx_of(
            "v0 = const 1\nv1 = const 2\nv2 = add v0, v1\nstore a[0], v2\n",
            Machine::homogeneous(8, 1),
        );
        let m = measure(&mut ctx, MeasureOptions::default());
        let regs = m.of(ResourceKind::Registers).unwrap().clone();
        if let Some(ex) = find_excessive(&mut ctx, &regs, &m.kills) {
            let r =
                sequentialize_registers(&mut ctx, &ex, &m.kills, MeasureOptions::default(), None);
            assert!(r.is_err(), "both operands must be live together: {r:?}");
        }
    }
}
