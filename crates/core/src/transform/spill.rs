//! Spill-based register requirement reduction (paper §4.3).
//!
//! Spilling handles the values register sequentialization cannot:
//! values that *bridge* the stage split — computed before (or parallel
//! to) stage 1 but needed only by the delayed sub-DAG SD2, like node D
//! in the worked example, whose value would otherwise stay alive
//! throughout B, C, E, F. Per the paper, "the roots of SD2 are computed
//! and their values are spilled prior to SD1's roots. The reloads of
//! the values are placed after SD1's leaves."
//!
//! Like [`super::reg_seq`], the stage boundary is anchored at a kill
//! point of the excessive set; the delayed chains and the values
//! feeding them from outside are identified, and candidates are chosen
//! by tentative re-measurement (§5's integrated evaluation).

use crate::ctx::AllocCtx;
use crate::excess::ExcessiveChainSet;
use crate::fault::{self, FaultKind, FaultSite};
use crate::kill::{select_kills_metered, KillMap};
use crate::measure::{requirement_only_metered, MeasureOptions};
use crate::resource::ResourceKind;
use crate::transform::reg_seq::cap_boundaries;
use crate::transform::{TransformError, TransformReport};
use ursa_graph::bitset::BitSet;
use ursa_graph::dag::NodeId;
use ursa_graph::meter::{Unmetered, WorkMeter};

/// Most spill candidates evaluated by tentative re-measurement per
/// invocation (the counterpart of [`cap_boundaries`]'s boundary cap).
const MAX_SCORED_CANDIDATES: usize = 12;

/// A candidate stage boundary with its bridging victims.
#[derive(Clone)]
struct Candidate {
    boundary: NodeId,
    /// Heads of the chains that stay in stage 1.
    sd1_heads: Vec<NodeId>,
    /// Tails of the chains that stay in stage 1.
    sd1_tails: Vec<NodeId>,
    /// `(victim, uses to rewire to the reload)`.
    victims: Vec<(NodeId, Vec<NodeId>)>,
}

/// Spills the values feeding a delayed sub-DAG across a stage boundary,
/// rewiring those uses to reloads sequenced after stage 1.
///
/// # Errors
///
/// [`TransformError::NoCandidate`] if no boundary has a bridging value
/// or no candidate reduces the measured requirement.
pub fn spill_registers(
    ctx: &mut AllocCtx<'_>,
    excess_set: &ExcessiveChainSet,
    kills: &KillMap,
    options: MeasureOptions,
) -> Result<TransformReport, TransformError> {
    spill_registers_metered(ctx, excess_set, kills, options, &Unmetered)
}

/// [`spill_registers`] with a cooperative [`WorkMeter`]. Candidate
/// generation is cheap and always runs; the tentative apply+re-measure
/// scoring loop checkpoints per candidate and, on exhaustion, picks the
/// best candidate scored so far (a typed `NoCandidate` error if none
/// was).
pub fn spill_registers_metered(
    ctx: &mut AllocCtx<'_>,
    excess_set: &ExcessiveChainSet,
    kills: &KillMap,
    options: MeasureOptions,
    meter: &dyn WorkMeter,
) -> Result<TransformReport, TransformError> {
    if let Some(plan) = fault::trip(FaultSite::Spill) {
        match plan.kind {
            FaultKind::Panic => fault::trip_panic(FaultSite::Spill),
            FaultKind::Refuse => {
                return Err(TransformError::NoCandidate("injected allocation failure"))
            }
            _ => meter.starve(),
        }
    }
    let capacity = excess_set.resource.capacity(ctx.machine());
    let x = excess_set.excess_over(capacity) as usize;
    if x == 0 {
        return Err(TransformError::NoCandidate("no excess to remove"));
    }
    let required_before = excess_set.chains.len() as u32;
    let exit = ctx.ddg().exit();
    let n = ctx.ddg().dag().node_count();

    // Candidate boundaries: kill points of the excessive values.
    let mut boundaries: Vec<NodeId> = Vec::new();
    for chain in &excess_set.chains {
        for node in [chain[0], *chain.last().expect("nonempty")] {
            if let Some(k) = kills.kill_of(node) {
                if k != exit && !boundaries.contains(&k) {
                    boundaries.push(k);
                }
            }
        }
    }
    if boundaries.is_empty() {
        return Err(TransformError::NoCandidate(
            "every value of the excessive set lives to the exit",
        ));
    }
    cap_boundaries(ctx, kills, excess_set, &mut boundaries);

    let heads = excess_set.heads();
    let mut candidates: Vec<Candidate> = Vec::new();
    for &s in &boundaries {
        // SD2: the excessive chains delayable past the boundary.
        let delayed: Vec<usize> = (0..excess_set.chains.len())
            .filter(|&i| {
                let h = excess_set.chains[i][0];
                h != s && !ctx.reach().reaches(h, s)
            })
            .collect();
        if delayed.is_empty() || delayed.len() == heads.len() {
            continue;
        }
        let mut delayed_region = BitSet::new(n);
        for &i in &delayed {
            let h = excess_set.chains[i][0];
            delayed_region.insert(h.index());
            delayed_region.union_with(&ctx.reach().descendants(h));
        }
        let sd1_heads: Vec<NodeId> = (0..excess_set.chains.len())
            .filter(|i| !delayed.contains(i))
            .map(|i| excess_set.chains[i][0])
            .collect();
        let sd1_tails: Vec<NodeId> = (0..excess_set.chains.len())
            .filter(|i| !delayed.contains(i))
            .map(|i| *excess_set.chains[i].last().expect("nonempty"))
            .collect();

        // Victims: producers outside the delayed region whose values
        // feed it — their registers would otherwise bridge stage 1.
        let mut victims: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for v in ctx.ddg().value_nodes() {
            if v == s || delayed_region.contains(v.index()) || ctx.reach().reaches(s, v) {
                continue;
            }
            let beyond: Vec<NodeId> = ctx
                .ddg()
                .uses_of(v)
                .iter()
                .copied()
                .filter(|&u| delayed_region.contains(u.index()))
                .collect();
            if beyond.is_empty() {
                continue;
            }
            let bridges = match kills.kill_of(v) {
                Some(k) => beyond.contains(&k) || k == exit,
                None => false,
            };
            if bridges {
                victims.push((v, beyond));
            }
        }
        if victims.is_empty() {
            continue;
        }
        // Longest bridge first.
        victims.sort_by_key(|(v, beyond)| {
            let first_use = beyond
                .iter()
                .map(|&u| ctx.levels().asap(u))
                .min()
                .unwrap_or(0);
            (std::cmp::Reverse(first_use), *v)
        });
        // Spill-just-enough and spill-everything variants.
        if victims.len() > x {
            candidates.push(Candidate {
                boundary: s,
                sd1_heads: sd1_heads.clone(),
                sd1_tails: sd1_tails.clone(),
                victims: victims[..x].to_vec(),
            });
        }
        candidates.push(Candidate {
            boundary: s,
            sd1_heads,
            sd1_tails,
            victims,
        });
    }
    // Second candidate family: values whose live range crosses a
    // boundary *in an already-serialized DAG* (no delayable chains
    // remain — e.g. after heavy FU sequentialization). The store is
    // forced before the boundary and the reload after it, freeing the
    // register across the busy region.
    for &s in &boundaries {
        let mut victims: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for v in ctx.ddg().value_nodes() {
            if v == s || ctx.reach().reaches(s, v) {
                continue;
            }
            let beyond: Vec<NodeId> = ctx
                .ddg()
                .uses_of(v)
                .iter()
                .copied()
                .filter(|&u| u != s && ctx.reach().reaches(s, u))
                .collect();
            if beyond.is_empty() {
                continue;
            }
            let bridges = match kills.kill_of(v) {
                Some(k) => beyond.contains(&k) || k == exit,
                None => false,
            };
            if bridges {
                victims.push((v, beyond));
            }
        }
        if victims.is_empty() {
            continue;
        }
        victims.sort_by_key(|(v, beyond)| {
            let first_use = beyond
                .iter()
                .map(|&u| ctx.levels().asap(u))
                .min()
                .unwrap_or(0);
            (std::cmp::Reverse(first_use), *v)
        });
        // The store must be pinned *early* or the worst-case measurement
        // still sees the victim's register busy until just before the
        // boundary: anchor it ahead of every other excessive value's
        // definition (the family-1 "prior to SD1's roots" rule).
        let pinned_heads = |chosen: &[(NodeId, Vec<NodeId>)]| -> Vec<NodeId> {
            heads
                .iter()
                .copied()
                .filter(|h| !chosen.iter().any(|(v, _)| v == h))
                .collect()
        };
        if victims.len() > x {
            let chosen = victims[..x].to_vec();
            candidates.push(Candidate {
                boundary: s,
                sd1_heads: pinned_heads(&chosen),
                sd1_tails: Vec::new(),
                victims: chosen,
            });
        }
        candidates.push(Candidate {
            boundary: s,
            sd1_heads: pinned_heads(&victims),
            sd1_tails: Vec::new(),
            victims,
        });
    }
    if candidates.is_empty() {
        return Err(TransformError::NoCandidate(
            "no value bridges any stage boundary",
        ));
    }
    // Each scored candidate pays a full tentative apply + re-measurement,
    // and node insertion cannot be probed incrementally, so cap the
    // fully-evaluated set. Generation order already ranks candidates:
    // family 1 (delayed sub-DAG) before family 2, boundaries in
    // chains-ended order, spill-just-enough before spill-everything —
    // truncation keeps the paper-preferred prefix deterministically.
    candidates.truncate(MAX_SCORED_CANDIDATES);

    // Tentatively apply each candidate and keep the best.
    let mut best: Option<(u32, u64, usize, usize)> = None; // (req, cp, spills, idx)
    for (idx, cand) in candidates.iter().enumerate() {
        // Checkpoint: each candidate pays a context clone plus a full
        // re-measurement. On exhaustion, settle for the best scored so
        // far (typed NoCandidate below if none was).
        if !meter.charge(n as u64) {
            break;
        }
        let mut trial = ctx.clone();
        apply_candidate(&mut trial, cand);
        let trial_kills = select_kills_metered(&trial, options.kill_mode, meter);
        let required =
            requirement_only_metered(&trial, &trial_kills, ResourceKind::Registers, meter);
        // Reducing below capacity buys nothing; don't pay critical path
        // or extra spills for it.
        let key = (
            required.max(capacity),
            trial.critical_path(),
            cand.victims.len(),
            idx,
        );
        if best.is_none_or(|b| (key.0, key.1, key.2) < (b.0, b.1, b.2)) {
            best = Some(key);
        }
    }
    let Some((required_after, _, _, idx)) = best else {
        // Meter exhausted before any candidate could be scored.
        return Err(TransformError::NoCandidate(
            "budget exhausted before any spill candidate was scored",
        ));
    };
    if required_after >= required_before {
        return Err(TransformError::NoCandidate(
            "no spill candidate reduces the requirement",
        ));
    }

    Ok(apply_candidate(ctx, &candidates[idx]))
}

/// Applies a candidate, returning the report of what was done.
fn apply_candidate(ctx: &mut AllocCtx<'_>, cand: &Candidate) -> TransformReport {
    let mut report = TransformReport::default();
    for (v, beyond) in &cand.victims {
        let pair = ctx.insert_spill(*v, beyond);
        report.spills.push((*v, pair));
        // "Spilled prior to SD1's roots": the store completes before
        // stage 1 starts, freeing the register throughout it. In the
        // serialized family (no stage-1 chains) the store is anchored
        // before the boundary itself.
        for &h in cand.sd1_heads.iter().chain(std::iter::once(&cand.boundary)) {
            if !ctx.reach().reaches(pair.store, h) && !ctx.would_cycle(pair.store, h) {
                ctx.add_sequence_edge(pair.store, h);
                report.edges_added.push((pair.store, h));
            }
        }
        // "Reloads placed after SD1's leaves" — and after the boundary
        // kill point, so stage 1's values are dead first.
        for &t in cand.sd1_tails.iter().chain(std::iter::once(&cand.boundary)) {
            if !ctx.reach().reaches(t, pair.load) && !ctx.would_cycle(t, pair.load) {
                ctx.add_sequence_edge(t, pair.load);
                report.edges_added.push((t, pair.load));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::excess::find_excessive;
    use crate::measure::{measure, MeasureOptions};
    use crate::resource::ResourceKind;
    use ursa_ir::ddg::DependenceDag;
    use ursa_ir::parser::parse;
    use ursa_machine::Machine;

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn ctx_of(src: &str, machine: Machine) -> AllocCtx<'static> {
        let p = parse(src).unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let m: &'static Machine = Box::leak(Box::new(machine));
        AllocCtx::new(ddg, m)
    }

    fn reg_requirement(ctx: &mut AllocCtx<'_>) -> u32 {
        let m = measure(ctx, MeasureOptions::default());
        m.of(ResourceKind::Registers).unwrap().requirement.required
    }

    /// Figure 3(c): the spilled value is D — the only producer outside
    /// the delayed sub-DAG {G, H} feeding it.
    #[test]
    fn figure3c_spills_node_d() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 3));
        let m = measure(&mut ctx, MeasureOptions::default());
        let regs = m.of(ResourceKind::Registers).unwrap().clone();
        let ex = find_excessive(&mut ctx, &regs, &m.kills).unwrap();
        let report = spill_registers(&mut ctx, &ex, &m.kills, MeasureOptions::default()).unwrap();
        let d = ctx.ddg().dag().node(5); // D = v3 = add v0, 5
        assert!(
            report.spills.iter().any(|&(v, _)| v == d),
            "paper spills D; spilled {:?}",
            report.spills
        );
    }

    /// Figure 3(c): spilling drives registers from 5 down to 3.
    #[test]
    fn figure3c_spill_reduces_requirement() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 3));
        assert_eq!(reg_requirement(&mut ctx), 5);
        for _ in 0..6 {
            let m = measure(&mut ctx, MeasureOptions::default());
            let regs = m.of(ResourceKind::Registers).unwrap().clone();
            let Some(ex) = find_excessive(&mut ctx, &regs, &m.kills) else {
                break;
            };
            if spill_registers(&mut ctx, &ex, &m.kills, MeasureOptions::default()).is_err() {
                break;
            }
        }
        let after = reg_requirement(&mut ctx);
        assert!(after <= 3, "requirement {after} fits 3 registers");
        assert!(ctx.ddg().dag().is_acyclic());
    }

    #[test]
    fn spill_inserts_store_and_reload() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 4));
        let n_before = ctx.ddg().dag().node_count();
        let m = measure(&mut ctx, MeasureOptions::default());
        let regs = m.of(ResourceKind::Registers).unwrap().clone();
        let ex = find_excessive(&mut ctx, &regs, &m.kills).unwrap();
        let report = spill_registers(&mut ctx, &ex, &m.kills, MeasureOptions::default()).unwrap();
        assert!(!report.spills.is_empty());
        assert_eq!(
            ctx.ddg().dag().node_count(),
            n_before + 2 * report.spills.len()
        );
        for (victim, pair) in report.spills {
            assert!(ctx.reach().reaches(victim, pair.store));
            assert!(ctx.reach().reaches(pair.store, pair.load));
        }
    }

    #[test]
    fn spill_preserves_single_root_and_leaf() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 3));
        let m = measure(&mut ctx, MeasureOptions::default());
        let regs = m.of(ResourceKind::Registers).unwrap().clone();
        let ex = find_excessive(&mut ctx, &regs, &m.kills).unwrap();
        spill_registers(&mut ctx, &ex, &m.kills, MeasureOptions::default()).unwrap();
        assert_eq!(ctx.ddg().dag().roots(), vec![ctx.ddg().entry()]);
        assert_eq!(ctx.ddg().dag().leaves(), vec![ctx.ddg().exit()]);
    }

    #[test]
    fn spilled_use_reads_reload_register() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 3));
        let m = measure(&mut ctx, MeasureOptions::default());
        let regs = m.of(ResourceKind::Registers).unwrap().clone();
        let ex = find_excessive(&mut ctx, &regs, &m.kills).unwrap();
        let report = spill_registers(&mut ctx, &ex, &m.kills, MeasureOptions::default()).unwrap();
        for (_, pair) in &report.spills {
            let reload_reg = ctx.ddg().value_def(pair.load).unwrap();
            for &u in ctx.ddg().uses_of(pair.load) {
                if let Some(instr) = ctx.ddg().instr(u) {
                    assert!(instr.uses().contains(&reload_reg));
                }
            }
        }
    }
}
