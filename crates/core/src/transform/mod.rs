//! Resource-requirement reduction transformations (paper §4).
//!
//! All three transformations operate on the same DAG and can be applied
//! in any order or in an integrated manner (§5):
//!
//! * [`fu_seq`] — adds sequence edges between independent chains to
//!   remove excess instruction parallelism (§4.1).
//! * [`reg_seq`] — delays a nonsupporting sub-DAG until the values of
//!   another sub-DAG die, splitting the hammock into stages (§4.2).
//! * [`spill`] — stores a value early and reloads it once registers are
//!   available again; always applicable (§4.3).

pub mod fu_seq;
pub mod reg_seq;
pub mod spill;

use std::fmt;
use ursa_graph::dag::NodeId;

/// Why a transformation could not be applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransformError {
    /// No legal source/sink pair (or victim) exists for this excessive
    /// set; the caller should try another transformation.
    NoCandidate(&'static str),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NoCandidate(what) => {
                write!(f, "no applicable candidate: {what}")
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// What a transformation did to the DAG.
#[derive(Clone, Debug, Default)]
pub struct TransformReport {
    /// Sequence edges inserted.
    pub edges_added: Vec<(NodeId, NodeId)>,
    /// Spilled values with their store/reload node pairs.
    pub spills: Vec<(NodeId, ursa_ir::ddg::SpillPair)>,
}

impl TransformReport {
    /// `true` if the transformation changed nothing.
    pub fn is_empty(&self) -> bool {
        self.edges_added.is_empty() && self.spills.is_empty()
    }
}
