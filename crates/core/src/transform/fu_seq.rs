//! Functional-unit sequentialization (paper §4.1).
//!
//! The only way to remove excess instruction parallelism is to add
//! sequential dependence edges between independent instructions of the
//! excessive chain set. The paper's *ideal sequence matching* pairs the
//! tail of the chain whose tail is i-th closest to the hammock's entry
//! with the head of another chain, averaging the lengths of the
//! resulting entry→exit paths instead of stacking them onto one path.
//! Finding optimal sets is NP-complete, so the heuristic tries the
//! lowest-cost legal pair first and retries with the next candidate on
//! failure (overall O(N²m), as in the paper).

use crate::ctx::AllocCtx;
use crate::excess::ExcessiveChainSet;
use crate::fault::{self, FaultKind, FaultSite};
use crate::kill::KillMap;
use crate::transform::{TransformError, TransformReport};
use ursa_graph::dag::NodeId;
use ursa_graph::matching::IncrementalMatcher;
use ursa_graph::meter::{Unmetered, WorkMeter};

/// 1 if sequencing `u -> v` would keep `u`'s value alive through `v`'s
/// execution (paper §5: FU sequentialization "will force long lifetimes
/// for some of the values"); 0 when `v` runs after `u`'s kill, so the
/// edge is free register-wise.
fn lifetime_penalty(ctx: &AllocCtx<'_>, kills: &KillMap, u: NodeId, v: NodeId) -> u64 {
    match (ctx.ddg().value_def(u), kills.kill_of(u)) {
        (Some(_), Some(k)) => {
            if k == v || ctx.reach().reaches(k, v) {
                0
            } else {
                1
            }
        }
        _ => 0,
    }
}

/// Adds up to `excess` sequence edges between chains of `excess_set`,
/// merging pairs of chains so at most `capacity` remain runnable in
/// parallel.
///
/// # Errors
///
/// [`TransformError::NoCandidate`] if not a single legal edge exists.
pub fn sequentialize_fus(
    ctx: &mut AllocCtx<'_>,
    excess_set: &ExcessiveChainSet,
    kills: &KillMap,
) -> Result<TransformReport, TransformError> {
    sequentialize_fus_metered(ctx, excess_set, kills, &Unmetered)
}

/// [`sequentialize_fus`] with a cooperative [`WorkMeter`]. Checkpoints
/// sit between pairing rounds and between antichain repeat rounds; on
/// exhaustion the edges added so far are returned (each one only
/// *narrows* the DAG, so a partial application is always sound — the
/// caller re-measures and either fits, keeps reducing, or demotes).
pub fn sequentialize_fus_metered(
    ctx: &mut AllocCtx<'_>,
    excess_set: &ExcessiveChainSet,
    kills: &KillMap,
    meter: &dyn WorkMeter,
) -> Result<TransformReport, TransformError> {
    if let Some(plan) = fault::trip(FaultSite::FuSeq) {
        match plan.kind {
            FaultKind::Panic => fault::trip_panic(FaultSite::FuSeq),
            FaultKind::Refuse => {
                return Err(TransformError::NoCandidate("injected allocation failure"))
            }
            _ => meter.starve(),
        }
    }
    let capacity = excess_set.resource.capacity(ctx.machine());
    let x = excess_set.excess_over(capacity) as usize;
    if x == 0 {
        return Err(TransformError::NoCandidate("no excess to remove"));
    }
    let n_chains = excess_set.chains.len();
    let mut tail_available = vec![true; n_chains];
    let mut head_available = vec![true; n_chains];
    let mut report = TransformReport::default();

    for _ in 0..x {
        if !meter.charge((n_chains * n_chains) as u64) {
            break;
        }
        let mut best: Option<(u64, NodeId, NodeId, usize, usize)> = None;
        for (i, ci) in excess_set.chains.iter().enumerate() {
            if !tail_available[i] {
                continue;
            }
            let tail = *ci.last().expect("nonempty chain");
            for (j, cj) in excess_set.chains.iter().enumerate() {
                if i == j || !head_available[j] {
                    continue;
                }
                let head = cj[0];
                // The edge must sequence something new and stay acyclic.
                if ctx.reach().reaches(tail, head) || ctx.would_cycle(tail, head) {
                    continue;
                }
                // Prefer edges that do not extend live ranges, then the
                // shortest resulting entry→exit path through the edge.
                let cost = lifetime_penalty(ctx, kills, tail, head) * 1_000_000
                    + ctx.levels().asap(tail)
                    + ctx.latency(tail)
                    + (ctx.critical_path() - ctx.levels().alap(head));
                let key = (cost, tail, head, i, j);
                if best.is_none_or(|b| (b.0, b.1, b.2) > (cost, tail, head)) {
                    best = Some(key);
                }
            }
        }
        // Interlocked chains can leave no legal tail→head pair; the
        // paper then trims "the portions of the chains below each node
        // in T and above each node in S" and retries. Equivalent here:
        // scan all cross-chain independent node pairs.
        if best.is_none() {
            for (i, ci) in excess_set.chains.iter().enumerate() {
                for &u in ci {
                    for (j, cj) in excess_set.chains.iter().enumerate() {
                        if i == j {
                            continue;
                        }
                        for &v in cj {
                            if ctx.reach().reaches(u, v) || ctx.would_cycle(u, v) {
                                continue;
                            }
                            let cost = lifetime_penalty(ctx, kills, u, v) * 1_000_000
                                + ctx.levels().asap(u)
                                + ctx.latency(u)
                                + (ctx.critical_path() - ctx.levels().alap(v));
                            if best.is_none_or(|b| (b.0, b.1, b.2) > (cost, u, v)) {
                                best = Some((cost, u, v, i, j));
                            }
                        }
                    }
                }
            }
        }
        let Some((_, tail, head, i, j)) = best else {
            break;
        };
        ctx.add_sequence_edge(tail, head);
        report.edges_added.push((tail, head));
        tail_available[i] = false;
        head_available[j] = false;
    }

    // "There are cases when the transformation must be applied several
    // times within the same hammock … the transformation is applied
    // again" (§4.1): keep sequencing fresh witnesses until the
    // requirement fits. Each round extracts a maximum antichain of the
    // remaining parallelism — its members are mutually independent, so
    // a legal pairing always exists while more than `capacity` remain.
    //
    // FU requirements are monotone under this loop: sequence edges only
    // ever *grow* the comparability relation, so the bipartite matching
    // only grows and the width `k − |M|` only shrinks — once the class
    // fits it stays fitting. One persistent matcher is therefore built
    // once, fed each round's new reachability pairs, and warm-start
    // re-maximized; the König antichain extraction is O(E) per round.
    // (The old per-round scratch `max_antichain` made this loop the
    // ~90 s worst case at 1024 ops.)
    let nodes = ctx.resource_nodes(excess_set.resource);
    let k = nodes.len();
    if meter.charge((k * k) as u64) {
        let mut pos = vec![usize::MAX; ctx.ddg().dag().node_count()];
        for (i, &n) in nodes.iter().enumerate() {
            pos[n.index()] = i;
        }
        let mut matcher = IncrementalMatcher::new(k, k);
        for (i, &a) in nodes.iter().enumerate() {
            for (j, &b) in nodes.iter().enumerate() {
                if i != j && ctx.reach().reaches(a, b) {
                    matcher.add_edge(i, j);
                }
            }
        }
        matcher.maximize_metered(meter);
        loop {
            if !meter.charge(k as u64) {
                // An exhausted meter can leave the matching sub-maximum,
                // in which case the König set is not a true antichain;
                // stop here with whatever edges are already in.
                break;
            }
            let width = (k - matcher.matching().len()) as u32;
            if width <= capacity {
                break;
            }
            let antichain: Vec<NodeId> = matcher
                .konig_independent_set()
                .into_iter()
                .map(|i| nodes[i])
                .collect();
            let x = (width - capacity) as usize;
            let mut sources: Vec<NodeId> = antichain.clone();
            let mut targets: Vec<NodeId> = antichain;
            let mut added = false;
            for _ in 0..x {
                if !meter.charge((sources.len() * targets.len()) as u64) {
                    break;
                }
                let mut best: Option<(u64, NodeId, NodeId)> = None;
                for &u in &sources {
                    for &v in &targets {
                        if u == v || ctx.reach().reaches(u, v) || ctx.would_cycle(u, v) {
                            continue;
                        }
                        let cost = lifetime_penalty(ctx, kills, u, v) * 1_000_000
                            + ctx.levels().asap(u)
                            + ctx.latency(u)
                            + (ctx.critical_path() - ctx.levels().alap(v));
                        if best.is_none_or(|b| (b.0, b.1, b.2) > (cost, u, v)) {
                            best = Some((cost, u, v));
                        }
                    }
                }
                let Some((_, u, v)) = best else { break };
                if let Some(delta) = ctx.add_sequence_edge_delta(u, v) {
                    report.edges_added.push((u, v));
                    // Feed every newly comparable pair of class nodes to
                    // the matcher; pairs outside the class are irrelevant
                    // to this decomposition.
                    for (s, d) in delta.pairs() {
                        let (si, di) = (pos[s.index()], pos[d.index()]);
                        if si != usize::MAX && di != usize::MAX {
                            matcher.add_edge(si, di);
                        }
                    }
                }
                sources.retain(|&s| s != u);
                targets.retain(|&t| t != v);
                added = true;
            }
            if !added {
                break;
            }
            matcher.maximize_metered(meter);
        }
    }

    if report.is_empty() {
        Err(TransformError::NoCandidate(
            "every chain pair is already ordered or would cycle",
        ))
    } else {
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::excess::find_excessive;
    use crate::measure::{measure, MeasureOptions};
    use crate::resource::ResourceKind;
    use ursa_ir::ddg::DependenceDag;
    use ursa_ir::parser::parse;
    use ursa_machine::{FuClass, Machine};

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn ctx_of(src: &str, machine: Machine) -> AllocCtx<'static> {
        let p = parse(src).unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let m: &'static Machine = Box::leak(Box::new(machine));
        AllocCtx::new(ddg, m)
    }

    fn fu_requirement(ctx: &mut AllocCtx<'_>) -> u32 {
        let m = measure(ctx, MeasureOptions::default());
        m.of(ResourceKind::Fu(FuClass::Universal))
            .unwrap()
            .requirement
            .required
    }

    /// Figure 3(a): one sequence edge reduces the FU requirement 4 → 3.
    #[test]
    fn figure3a_four_to_three() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(3, 16));
        let m = measure(&mut ctx, MeasureOptions::default());
        let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
        let ex = find_excessive(&mut ctx, &fu, &m.kills).unwrap();
        let report = sequentialize_fus(&mut ctx, &ex, &m.kills).unwrap();
        assert_eq!(report.edges_added.len(), 1);
        assert_eq!(fu_requirement(&mut ctx), 3);
        assert!(ctx.ddg().dag().is_acyclic());
    }

    /// Repeated application drives the requirement to any target ≥ 1.
    #[test]
    fn repeated_application_reaches_two_fus() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(2, 16));
        for _ in 0..8 {
            let m = measure(&mut ctx, MeasureOptions::default());
            let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
            let Some(ex) = find_excessive(&mut ctx, &fu, &m.kills) else {
                break;
            };
            sequentialize_fus(&mut ctx, &ex, &m.kills).unwrap();
        }
        assert!(fu_requirement(&mut ctx) <= 2);
    }

    #[test]
    fn critical_path_growth_is_bounded() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(3, 16));
        let cp_before = ctx.critical_path();
        let m = measure(&mut ctx, MeasureOptions::default());
        let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
        let ex = find_excessive(&mut ctx, &fu, &m.kills).unwrap();
        sequentialize_fus(&mut ctx, &ex, &m.kills).unwrap();
        // The paper's example keeps the critical path at 5 (plus the
        // zero-cost entry/exit anchors); allow minimal growth.
        assert!(
            ctx.critical_path() <= cp_before + 1,
            "cp grew from {cp_before} to {}",
            ctx.critical_path()
        );
    }

    #[test]
    fn no_excess_is_rejected() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(4, 16));
        let m = measure(&mut ctx, MeasureOptions::default());
        let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
        assert!(find_excessive(&mut ctx, &fu, &m.kills).is_none());
    }

    #[test]
    fn edges_are_sequence_kind() {
        use ursa_graph::dag::EdgeKind;
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(3, 16));
        let m = measure(&mut ctx, MeasureOptions::default());
        let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
        let ex = find_excessive(&mut ctx, &fu, &m.kills).unwrap();
        let report = sequentialize_fus(&mut ctx, &ex, &m.kills).unwrap();
        for (a, b) in report.edges_added {
            assert!(ctx.ddg().dag().has_edge_kind(a, b, EdgeKind::Sequence));
        }
    }

    /// Regression for the persistent-matcher repeat loop under high FU
    /// pressure: a 64-wide antichain on a 2-FU machine needs dozens of
    /// rounds, the requirement must descend monotonically (sequence
    /// edges only ever constrain more), and the final DAG stays acyclic.
    #[test]
    fn high_pressure_descent_is_monotone() {
        let mut src = String::from("v0 = load a[0]\n");
        for i in 1..=64 {
            src.push_str(&format!("v{i} = mul v0, {i}\n"));
        }
        let mut ctx = ctx_of(&src, Machine::homogeneous(2, 1 << 12));
        let mut last = fu_requirement(&mut ctx);
        assert!(last > 32, "expected heavy initial pressure, got {last}");
        for _ in 0..128 {
            let m = measure(&mut ctx, MeasureOptions::default());
            let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
            let Some(ex) = find_excessive(&mut ctx, &fu, &m.kills) else {
                break;
            };
            sequentialize_fus(&mut ctx, &ex, &m.kills).unwrap();
            let now = fu_requirement(&mut ctx);
            assert!(now <= last, "requirement rose {last} -> {now}");
            last = now;
        }
        assert!(last <= 2, "descent stalled at {last} FUs");
        assert!(ctx.ddg().dag().is_acyclic());
    }
}
