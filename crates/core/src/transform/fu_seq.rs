//! Functional-unit sequentialization (paper §4.1).
//!
//! The only way to remove excess instruction parallelism is to add
//! sequential dependence edges between independent instructions of the
//! excessive chain set. The paper's *ideal sequence matching* pairs the
//! tail of the chain whose tail is i-th closest to the hammock's entry
//! with the head of another chain, averaging the lengths of the
//! resulting entry→exit paths instead of stacking them onto one path.
//! Finding optimal sets is NP-complete, so the heuristic tries the
//! lowest-cost legal pair first and retries with the next candidate on
//! failure (overall O(N²m), as in the paper).
//!
//! Two size thresholds keep the pathological high-pressure cases out of
//! cubic territory while staying byte-identical to the exact heuristic
//! on everything small: antichain pairing rounds switch from the exact
//! per-pick rescan to a frozen-cost cursor picker above
//! [`SMALL_ANTICHAIN`] members, and the phase-1 chain scan is skipped
//! entirely above [`PHASE1_CHAIN_CAP`] chains (the antichain repeat
//! loop subsumes it).

use crate::ctx::AllocCtx;
use crate::excess::ExcessiveChainSet;
use crate::fault::{self, FaultKind, FaultSite};
use crate::kill::KillMap;
use crate::transform::{TransformError, TransformReport};
use ursa_graph::bitset::BitSet;
use ursa_graph::dag::NodeId;
use ursa_graph::matching::IncrementalMatcher;
use ursa_graph::meter::{Unmetered, WorkMeter};

/// Scale separating the lifetime-penalty tier from the path-length tier
/// of the pairing cost. Valid while every asap/alap/latency term stays
/// well below it, which [`pair_round_frozen`] guards explicitly.
const PENALTY_SCALE: u64 = 1_000_000;

/// Antichain sizes up to this bound use the exact per-pick rescan
/// ([`pair_round_exact`]); larger rounds switch to the frozen-cost
/// picker, whose only divergence from the exact scan is a stale `alap`
/// term for the rare member picked as a source and later re-paired as a
/// target within the same round.
const SMALL_ANTICHAIN: usize = 128;

/// Beyond this many chains the phase-1 tail→head scan (and its
/// all-pairs fallback, quadratic in the trace) duplicates work the
/// antichain repeat loop performs anyway; skip straight to that loop.
const PHASE1_CHAIN_CAP: usize = 160;

/// 1 if sequencing `u -> v` would keep `u`'s value alive through `v`'s
/// execution (paper §5: FU sequentialization "will force long lifetimes
/// for some of the values"); 0 when `v` runs after `u`'s kill, so the
/// edge is free register-wise.
fn lifetime_penalty(ctx: &AllocCtx<'_>, kills: &KillMap, u: NodeId, v: NodeId) -> u64 {
    match (ctx.ddg().value_def(u), kills.kill_of(u)) {
        (Some(_), Some(k)) => {
            if k == v || ctx.reach().reaches(k, v) {
                0
            } else {
                1
            }
        }
        _ => 0,
    }
}

/// Adds up to `excess` sequence edges between chains of `excess_set`,
/// merging pairs of chains so at most `capacity` remain runnable in
/// parallel.
///
/// # Errors
///
/// [`TransformError::NoCandidate`] if not a single legal edge exists.
pub fn sequentialize_fus(
    ctx: &mut AllocCtx<'_>,
    excess_set: &ExcessiveChainSet,
    kills: &KillMap,
) -> Result<TransformReport, TransformError> {
    sequentialize_fus_metered(ctx, excess_set, kills, &Unmetered)
}

/// [`sequentialize_fus`] with a cooperative [`WorkMeter`]. Checkpoints
/// sit between pairing rounds and between antichain repeat rounds; on
/// exhaustion the edges added so far are returned (each one only
/// *narrows* the DAG, so a partial application is always sound — the
/// caller re-measures and either fits, keeps reducing, or demotes).
pub fn sequentialize_fus_metered(
    ctx: &mut AllocCtx<'_>,
    excess_set: &ExcessiveChainSet,
    kills: &KillMap,
    meter: &dyn WorkMeter,
) -> Result<TransformReport, TransformError> {
    if let Some(plan) = fault::trip(FaultSite::FuSeq) {
        match plan.kind {
            FaultKind::Panic => fault::trip_panic(FaultSite::FuSeq),
            FaultKind::Refuse => {
                return Err(TransformError::NoCandidate("injected allocation failure"))
            }
            _ => meter.starve(),
        }
    }
    let capacity = excess_set.resource.capacity(ctx.machine());
    let x = excess_set.excess_over(capacity) as usize;
    if x == 0 {
        return Err(TransformError::NoCandidate("no excess to remove"));
    }
    let n_chains = excess_set.chains.len();
    let mut tail_available = vec![true; n_chains];
    let mut head_available = vec![true; n_chains];
    let mut report = TransformReport::default();

    // Phase 1 pairs chain tails with chain heads. Beyond the cap its
    // per-pick rescan — and especially the all-pairs fallback below —
    // costs more than the repeat loop it merely warms up, so huge chain
    // sets go straight to the antichain rounds.
    let phase1_rounds = if n_chains > PHASE1_CHAIN_CAP { 0 } else { x };
    for _ in 0..phase1_rounds {
        if !meter.charge((n_chains * n_chains) as u64) {
            break;
        }
        let mut best: Option<(u64, NodeId, NodeId, usize, usize)> = None;
        for (i, ci) in excess_set.chains.iter().enumerate() {
            if !tail_available[i] {
                continue;
            }
            let tail = *ci.last().expect("nonempty chain");
            for (j, cj) in excess_set.chains.iter().enumerate() {
                if i == j || !head_available[j] {
                    continue;
                }
                let head = cj[0];
                // The edge must sequence something new and stay acyclic.
                if ctx.reach().reaches(tail, head) || ctx.would_cycle(tail, head) {
                    continue;
                }
                // Prefer edges that do not extend live ranges, then the
                // shortest resulting entry→exit path through the edge.
                let cost = lifetime_penalty(ctx, kills, tail, head) * PENALTY_SCALE
                    + ctx.levels().asap(tail)
                    + ctx.latency(tail)
                    + (ctx.critical_path() - ctx.levels().alap(head));
                let key = (cost, tail, head, i, j);
                if best.is_none_or(|b| (b.0, b.1, b.2) > (cost, tail, head)) {
                    best = Some(key);
                }
            }
        }
        // Interlocked chains can leave no legal tail→head pair; the
        // paper then trims "the portions of the chains below each node
        // in T and above each node in S" and retries. Equivalent here:
        // scan all cross-chain independent node pairs.
        if best.is_none() {
            for (i, ci) in excess_set.chains.iter().enumerate() {
                for &u in ci {
                    for (j, cj) in excess_set.chains.iter().enumerate() {
                        if i == j {
                            continue;
                        }
                        for &v in cj {
                            if ctx.reach().reaches(u, v) || ctx.would_cycle(u, v) {
                                continue;
                            }
                            let cost = lifetime_penalty(ctx, kills, u, v) * PENALTY_SCALE
                                + ctx.levels().asap(u)
                                + ctx.latency(u)
                                + (ctx.critical_path() - ctx.levels().alap(v));
                            if best.is_none_or(|b| (b.0, b.1, b.2) > (cost, u, v)) {
                                best = Some((cost, u, v, i, j));
                            }
                        }
                    }
                }
            }
        }
        let Some((_, tail, head, i, j)) = best else {
            break;
        };
        ctx.add_sequence_edge(tail, head);
        report.edges_added.push((tail, head));
        tail_available[i] = false;
        head_available[j] = false;
    }

    // "There are cases when the transformation must be applied several
    // times within the same hammock … the transformation is applied
    // again" (§4.1): keep sequencing fresh witnesses until the
    // requirement fits. Each round extracts a maximum antichain of the
    // remaining parallelism — its members are mutually independent, so
    // a legal pairing always exists while more than `capacity` remain.
    //
    // FU requirements are monotone under this loop: sequence edges only
    // ever *grow* the comparability relation, so the bipartite matching
    // only grows and the width `k − |M|` only shrinks — once the class
    // fits it stays fitting. One persistent matcher is therefore built
    // once, fed each round's new reachability pairs, and warm-start
    // re-maximized; the König antichain extraction is O(E) per round.
    // Each round's pairing runs through the exact rescan up to
    // `SMALL_ANTICHAIN` members and the frozen-cost picker above it
    // (see `pair_round_frozen` for the cost argument) — the former
    // per-pick O(m²) rescan was the last ~O(N³) site at 1024 ops.
    let nodes = ctx.resource_nodes(excess_set.resource);
    let k = nodes.len();
    if meter.charge((k * k) as u64) {
        let mut pos = vec![usize::MAX; ctx.ddg().dag().node_count()];
        for (i, &n) in nodes.iter().enumerate() {
            pos[n.index()] = i;
        }
        let mut matcher = IncrementalMatcher::new(k, k);
        for (i, &a) in nodes.iter().enumerate() {
            for (j, &b) in nodes.iter().enumerate() {
                if i != j && ctx.reach().reaches(a, b) {
                    matcher.add_edge(i, j);
                }
            }
        }
        matcher.maximize_metered(meter);
        loop {
            if !meter.charge(k as u64) {
                // An exhausted meter can leave the matching sub-maximum,
                // in which case the König set is not a true antichain;
                // stop here with whatever edges are already in.
                break;
            }
            let width = (k - matcher.matching().len()) as u32;
            if width <= capacity {
                break;
            }
            let antichain: Vec<NodeId> = matcher
                .konig_independent_set()
                .into_iter()
                .map(|i| nodes[i])
                .collect();
            let x = (width - capacity) as usize;
            let added =
                if antichain.len() <= SMALL_ANTICHAIN || ctx.critical_path() >= PENALTY_SCALE / 4 {
                    pair_round_exact(
                        ctx,
                        kills,
                        antichain,
                        x,
                        meter,
                        &mut report,
                        &mut matcher,
                        &pos,
                    )
                } else {
                    pair_round_frozen(
                        ctx,
                        kills,
                        antichain,
                        x,
                        meter,
                        &mut report,
                        &mut matcher,
                        &pos,
                    )
                };
            if !added {
                break;
            }
            matcher.maximize_metered(meter);
        }
    }

    if report.is_empty() {
        Err(TransformError::NoCandidate(
            "every chain pair is already ordered or would cycle",
        ))
    } else {
        Ok(report)
    }
}

/// Inserts the picked edge, records it, and feeds every newly
/// comparable pair of class nodes to the matcher; pairs outside the
/// class are irrelevant to this decomposition.
fn apply_pick(
    ctx: &mut AllocCtx<'_>,
    report: &mut TransformReport,
    matcher: &mut IncrementalMatcher,
    pos: &[usize],
    u: NodeId,
    v: NodeId,
) {
    if let Some(delta) = ctx.add_sequence_edge_delta(u, v) {
        report.edges_added.push((u, v));
        for (s, d) in delta.pairs() {
            let (si, di) = (pos[s.index()], pos[d.index()]);
            if si != usize::MAX && di != usize::MAX {
                matcher.add_edge(si, di);
            }
        }
    }
}

/// One antichain pairing round, exact form: every pick rescans all live
/// source×target pairs against current reachability and levels. O(x·m²)
/// reach probes per round — fine up to [`SMALL_ANTICHAIN`] members.
#[allow(clippy::too_many_arguments)]
fn pair_round_exact(
    ctx: &mut AllocCtx<'_>,
    kills: &KillMap,
    antichain: Vec<NodeId>,
    x: usize,
    meter: &dyn WorkMeter,
    report: &mut TransformReport,
    matcher: &mut IncrementalMatcher,
    pos: &[usize],
) -> bool {
    let mut sources: Vec<NodeId> = antichain.clone();
    let mut targets: Vec<NodeId> = antichain;
    let mut added = false;
    for _ in 0..x {
        if !meter.charge((sources.len() * targets.len()) as u64) {
            break;
        }
        let mut best: Option<(u64, NodeId, NodeId)> = None;
        for &u in &sources {
            for &v in &targets {
                if u == v || ctx.reach().reaches(u, v) || ctx.would_cycle(u, v) {
                    continue;
                }
                let cost = lifetime_penalty(ctx, kills, u, v) * PENALTY_SCALE
                    + ctx.levels().asap(u)
                    + ctx.latency(u)
                    + (ctx.critical_path() - ctx.levels().alap(v));
                if best.is_none_or(|b| (b.0, b.1, b.2) > (cost, u, v)) {
                    best = Some((cost, u, v));
                }
            }
        }
        let Some((_, u, v)) = best else { break };
        apply_pick(ctx, report, matcher, pos, u, v);
        sources.retain(|&s| s != u);
        targets.retain(|&t| t != v);
        added = true;
    }
    added
}

/// Advances `cursor` through `order` to the first entry satisfying
/// `ok`. Every skip is permanent: the predicates used by the frozen
/// picker (target dead, same member, penalty-class membership, picked
/// reachability) never flip back to true once false, so each cursor
/// sweeps its order at most once per round.
fn advance(
    cursor: &mut usize,
    order: &[usize],
    mut ok: impl FnMut(usize) -> bool,
) -> Option<usize> {
    while *cursor < order.len() {
        let t = order[*cursor];
        if ok(t) {
            return Some(t);
        }
        *cursor += 1;
    }
    None
}

/// One antichain pairing round, frozen-cost form for rounds larger than
/// [`SMALL_ANTICHAIN`].
///
/// The exact cost is `pen·SCALE + asap(u) + lat(u) + (cp − alap(v))`.
/// Three observations make each pick O(live sources) instead of O(m²):
///
/// - **`cp` cancels.** It is the same for every pair within one pick,
///   so comparisons are unaffected by freezing it at round entry.
/// - **Penalties and target tails are frozen.** A picked edge chain can
///   only *end* at a picked target, never at a still-live target, so no
///   live target gains in-paths (its `alap` tail and every
///   `reaches(kill, v)` penalty probe are round-constants). Targets are
///   therefore pre-sorted once by `(cp₀ − alap₀, node id)` and each
///   source walks that order with two monotone cursors: one restricted
///   to its penalty-free targets, one unrestricted (only consulted when
///   the first is exhausted, where every remaining legal target
///   necessarily carries the penalty).
/// - **Picked-edge reachability is closed over members.** At round
///   entry members are mutually independent, so any member→member path
///   decomposes into picked edges; legality of `(u, v)` is two bitset
///   probes against that closure, maintained per pick in O(m²/64).
///
/// The `asap(u)` term is read live each pick (an O(1) lookup — levels
/// are already recomputed by the edge insertion), so the only
/// divergence from the exact rescan is the stale `alap` of a member
/// picked as a source and later re-examined as a live target — accepted
/// above the threshold and covered by the stress/paranoid oracle, which
/// checks soundness, not pick identity.
#[allow(clippy::too_many_arguments)]
fn pair_round_frozen(
    ctx: &mut AllocCtx<'_>,
    kills: &KillMap,
    antichain: Vec<NodeId>,
    x: usize,
    meter: &dyn WorkMeter,
    report: &mut TransformReport,
    matcher: &mut IncrementalMatcher,
    pos: &[usize],
) -> bool {
    let m = antichain.len();
    let cp0 = ctx.critical_path();
    let tail: Vec<u64> = antichain
        .iter()
        .map(|&v| cp0 - ctx.levels().alap(v))
        .collect();
    let mut by_tail: Vec<usize> = (0..m).collect();
    by_tail.sort_by_key(|&t| (tail[t], antichain[t]));
    let pen0: Vec<BitSet> = antichain
        .iter()
        .map(|&u| match (ctx.ddg().value_def(u), kills.kill_of(u)) {
            (Some(_), Some(k)) => {
                let mut s = BitSet::new(m);
                for (t, &v) in antichain.iter().enumerate() {
                    if k == v || ctx.reach().reaches(k, v) {
                        s.insert(t);
                    }
                }
                s
            }
            _ => BitSet::full(m),
        })
        .collect();
    let mut r_desc: Vec<BitSet> = (0..m).map(|_| BitSet::new(m)).collect();
    let mut r_anc: Vec<BitSet> = (0..m).map(|_| BitSet::new(m)).collect();
    let mut src_alive = vec![true; m];
    let mut tgt_alive = vec![true; m];
    let mut cur0 = vec![0usize; m];
    let mut cur1 = vec![0usize; m];
    let (mut live_s, mut live_t) = (m, m);
    let mut added = false;
    for _ in 0..x {
        // Same charge shape as the exact round: the meter prices the
        // work the exact scan would have done, keeping budget behavior
        // conservative rather than flattering the fast path.
        if !meter.charge((live_s * live_t) as u64) {
            break;
        }
        let mut best: Option<(u64, NodeId, NodeId, usize, usize)> = None;
        for i in 0..m {
            if !src_alive[i] {
                continue;
            }
            let u = antichain[i];
            let base = ctx.levels().asap(u) + ctx.latency(u);
            let cand0 = advance(&mut cur0[i], &by_tail, |t| {
                tgt_alive[t]
                    && t != i
                    && pen0[i].contains(t)
                    && !r_desc[i].contains(t)
                    && !r_anc[i].contains(t)
            });
            let (cost, t) = if let Some(t) = cand0 {
                (base + tail[t], t)
            } else if let Some(t) = advance(&mut cur1[i], &by_tail, |t| {
                tgt_alive[t] && t != i && !r_desc[i].contains(t) && !r_anc[i].contains(t)
            }) {
                (PENALTY_SCALE + base + tail[t], t)
            } else {
                continue;
            };
            let v = antichain[t];
            if best.is_none_or(|b| (b.0, b.1, b.2) > (cost, u, v)) {
                best = Some((cost, u, v, i, t));
            }
        }
        let Some((_, u, v, i, t)) = best else { break };
        apply_pick(ctx, report, matcher, pos, u, v);
        // Close the member-member reachability over the new edge: every
        // member above u now reaches v and everything below it.
        let mut above = r_anc[i].clone();
        above.insert(i);
        let mut below = r_desc[t].clone();
        below.insert(t);
        for a in above.iter() {
            r_desc[a].union_with(&below);
        }
        for d in below.iter() {
            r_anc[d].union_with(&above);
        }
        src_alive[i] = false;
        tgt_alive[t] = false;
        live_s -= 1;
        live_t -= 1;
        added = true;
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::excess::find_excessive;
    use crate::measure::{measure, MeasureOptions};
    use crate::resource::ResourceKind;
    use ursa_ir::ddg::DependenceDag;
    use ursa_ir::parser::parse;
    use ursa_machine::{FuClass, Machine};

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn ctx_of(src: &str, machine: Machine) -> AllocCtx<'static> {
        let p = parse(src).unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let m: &'static Machine = Box::leak(Box::new(machine));
        AllocCtx::new(ddg, m)
    }

    fn fu_requirement(ctx: &mut AllocCtx<'_>) -> u32 {
        let m = measure(ctx, MeasureOptions::default());
        m.of(ResourceKind::Fu(FuClass::Universal))
            .unwrap()
            .requirement
            .required
    }

    /// Figure 3(a): one sequence edge reduces the FU requirement 4 → 3.
    #[test]
    fn figure3a_four_to_three() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(3, 16));
        let m = measure(&mut ctx, MeasureOptions::default());
        let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
        let ex = find_excessive(&mut ctx, &fu, &m.kills).unwrap();
        let report = sequentialize_fus(&mut ctx, &ex, &m.kills).unwrap();
        assert_eq!(report.edges_added.len(), 1);
        assert_eq!(fu_requirement(&mut ctx), 3);
        assert!(ctx.ddg().dag().is_acyclic());
    }

    /// Repeated application drives the requirement to any target ≥ 1.
    #[test]
    fn repeated_application_reaches_two_fus() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(2, 16));
        for _ in 0..8 {
            let m = measure(&mut ctx, MeasureOptions::default());
            let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
            let Some(ex) = find_excessive(&mut ctx, &fu, &m.kills) else {
                break;
            };
            sequentialize_fus(&mut ctx, &ex, &m.kills).unwrap();
        }
        assert!(fu_requirement(&mut ctx) <= 2);
    }

    #[test]
    fn critical_path_growth_is_bounded() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(3, 16));
        let cp_before = ctx.critical_path();
        let m = measure(&mut ctx, MeasureOptions::default());
        let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
        let ex = find_excessive(&mut ctx, &fu, &m.kills).unwrap();
        sequentialize_fus(&mut ctx, &ex, &m.kills).unwrap();
        // The paper's example keeps the critical path at 5 (plus the
        // zero-cost entry/exit anchors); allow minimal growth.
        assert!(
            ctx.critical_path() <= cp_before + 1,
            "cp grew from {cp_before} to {}",
            ctx.critical_path()
        );
    }

    #[test]
    fn no_excess_is_rejected() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(4, 16));
        let m = measure(&mut ctx, MeasureOptions::default());
        let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
        assert!(find_excessive(&mut ctx, &fu, &m.kills).is_none());
    }

    #[test]
    fn edges_are_sequence_kind() {
        use ursa_graph::dag::EdgeKind;
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(3, 16));
        let m = measure(&mut ctx, MeasureOptions::default());
        let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
        let ex = find_excessive(&mut ctx, &fu, &m.kills).unwrap();
        let report = sequentialize_fus(&mut ctx, &ex, &m.kills).unwrap();
        for (a, b) in report.edges_added {
            assert!(ctx.ddg().dag().has_edge_kind(a, b, EdgeKind::Sequence));
        }
    }

    /// Regression for the persistent-matcher repeat loop under high FU
    /// pressure: a 64-wide antichain on a 2-FU machine needs dozens of
    /// rounds, the requirement must descend monotonically (sequence
    /// edges only ever constrain more), and the final DAG stays acyclic.
    #[test]
    fn high_pressure_descent_is_monotone() {
        let mut src = String::from("v0 = load a[0]\n");
        for i in 1..=64 {
            src.push_str(&format!("v{i} = mul v0, {i}\n"));
        }
        let mut ctx = ctx_of(&src, Machine::homogeneous(2, 1 << 12));
        let mut last = fu_requirement(&mut ctx);
        assert!(last > 32, "expected heavy initial pressure, got {last}");
        for _ in 0..128 {
            let m = measure(&mut ctx, MeasureOptions::default());
            let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
            let Some(ex) = find_excessive(&mut ctx, &fu, &m.kills) else {
                break;
            };
            sequentialize_fus(&mut ctx, &ex, &m.kills).unwrap();
            let now = fu_requirement(&mut ctx);
            assert!(now <= last, "requirement rose {last} -> {now}");
            last = now;
        }
        assert!(last <= 2, "descent stalled at {last} FUs");
        assert!(ctx.ddg().dag().is_acyclic());
    }

    /// Same shape as [`high_pressure_descent_is_monotone`] but wide
    /// enough (200-op fan) to cross both `SMALL_ANTICHAIN` and
    /// `PHASE1_CHAIN_CAP`, exercising the frozen-cost picker and the
    /// phase-1 skip. The picker is a documented heuristic divergence at
    /// this scale, so the assertions are the soundness ones: monotone
    /// descent to capacity and an acyclic result.
    #[test]
    fn frozen_picker_descends_above_threshold() {
        let mut src = String::from("v0 = load a[0]\n");
        for i in 1..=200 {
            src.push_str(&format!("v{i} = mul v0, {i}\n"));
        }
        let mut ctx = ctx_of(&src, Machine::homogeneous(2, 1 << 12));
        let mut last = fu_requirement(&mut ctx);
        assert!(
            last as usize > SMALL_ANTICHAIN,
            "expected pressure above the exactness threshold, got {last}"
        );
        for _ in 0..256 {
            let m = measure(&mut ctx, MeasureOptions::default());
            let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
            let Some(ex) = find_excessive(&mut ctx, &fu, &m.kills) else {
                break;
            };
            sequentialize_fus(&mut ctx, &ex, &m.kills).unwrap();
            let now = fu_requirement(&mut ctx);
            assert!(now <= last, "requirement rose {last} -> {now}");
            last = now;
        }
        assert!(last <= 2, "descent stalled at {last} FUs");
        assert!(ctx.ddg().dag().is_acyclic());
    }
}
