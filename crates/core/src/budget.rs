//! Compile-time resource budgets (deadline, work steps, memory).
//!
//! A [`CompileBudget`] is the pipeline's implementation of
//! [`ursa_graph::meter::WorkMeter`]: one budget is created per compile
//! (the degradation ladder shares a single budget across all of its
//! rungs) and threaded by shared reference through the reduce loop, kill
//! selection, matching augmentation and the transform loops. Checkpoints
//! call [`CompileBudget::charge`]; the first exhausted answer is sticky
//! and every layer unwinds cooperatively with its best-so-far state —
//! anytime semantics, never a hang.
//!
//! Wall-clock deadlines are only sampled every [`DEADLINE_CHECK_UNITS`]
//! charged units so the common case is two `Cell` reads and an add; the
//! bench series `reduce_budgeted/*` pins the overhead against the
//! unbudgeted path.

use std::cell::Cell;
use std::fmt;
use std::time::{Duration, Instant};
use ursa_graph::meter::WorkMeter;

/// How often (in charged work units) the wall clock is compared against
/// the deadline. `Instant::now` costs a vDSO call — cheap, but not
/// two-Cell-reads cheap, so it is amortized.
const DEADLINE_CHECK_UNITS: u64 = 4096;

/// Which limit exhausted the budget first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BudgetCause {
    /// The wall-clock deadline passed.
    Deadline,
    /// The work-step allowance ran out.
    Steps,
    /// The peak-memory estimate exceeded its cap.
    Memory,
}

impl fmt::Display for BudgetCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetCause::Deadline => "deadline",
            BudgetCause::Steps => "steps",
            BudgetCause::Memory => "memory",
        })
    }
}

/// A per-compile resource budget. See the module docs for the protocol.
///
/// # Examples
///
/// ```
/// use ursa_core::budget::{BudgetCause, CompileBudget};
/// use ursa_graph::meter::WorkMeter;
///
/// let b = CompileBudget::with_max_steps(10);
/// assert!(b.charge(10));
/// assert!(!b.charge(1));
/// assert_eq!(b.cause(), Some(BudgetCause::Steps));
///
/// let unlimited = CompileBudget::unlimited();
/// assert!(unlimited.charge(u64::MAX));
/// ```
#[derive(Debug)]
pub struct CompileBudget {
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    max_mem_bytes: Option<u64>,
    steps: Cell<u64>,
    peak_mem_bytes: Cell<u64>,
    next_deadline_check: Cell<u64>,
    exhausted: Cell<Option<BudgetCause>>,
}

impl CompileBudget {
    /// A budget that never exhausts (the default when no limit is
    /// requested; charging still counts steps for telemetry).
    pub fn unlimited() -> Self {
        Self::new(None, None, None)
    }

    /// A budget with the given limits; `None` disables that dimension.
    pub fn new(
        deadline: Option<Duration>,
        max_steps: Option<u64>,
        max_mem_bytes: Option<u64>,
    ) -> Self {
        CompileBudget {
            // A duration too large to represent is no deadline at all.
            deadline: deadline.and_then(|d| Instant::now().checked_add(d)),
            max_steps,
            max_mem_bytes,
            steps: Cell::new(0),
            peak_mem_bytes: Cell::new(0),
            next_deadline_check: Cell::new(0),
            exhausted: Cell::new(None),
        }
    }

    /// A budget limited only by wall clock.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self::new(Some(deadline), None, None)
    }

    /// A budget limited only by work steps.
    pub fn with_max_steps(max_steps: u64) -> Self {
        Self::new(None, Some(max_steps), None)
    }

    /// Work units charged so far.
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }

    /// Why the budget exhausted, if it did.
    pub fn cause(&self) -> Option<BudgetCause> {
        self.exhausted.get()
    }

    /// `true` once any limit has been hit.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted.get().is_some()
    }

    /// Records a transient allocation of `bytes` toward the peak-memory
    /// estimate and exhausts the budget if the cap is exceeded. The
    /// estimate is deliberately coarse (dominant O(N²) structures only);
    /// it exists to bound pathological traces, not to account exactly.
    pub fn note_mem(&self, bytes: u64) {
        let peak = self.peak_mem_bytes.get().max(bytes);
        self.peak_mem_bytes.set(peak);
        if self.exhausted.get().is_none() && self.max_mem_bytes.is_some_and(|cap| peak > cap) {
            self.exhausted.set(Some(BudgetCause::Memory));
        }
    }

    /// Largest single memory estimate seen (bytes).
    pub fn peak_mem_bytes(&self) -> u64 {
        self.peak_mem_bytes.get()
    }

    /// Forces exhaustion with an explicit cause (fault injection's
    /// budget-starvation path, and [`WorkMeter::starve`]).
    pub fn force_exhaust(&self, cause: BudgetCause) {
        if self.exhausted.get().is_none() {
            self.exhausted.set(Some(cause));
        }
    }
}

impl WorkMeter for CompileBudget {
    fn charge(&self, units: u64) -> bool {
        if self.exhausted.get().is_some() {
            return false;
        }
        let steps = self.steps.get().saturating_add(units);
        self.steps.set(steps);
        if self.max_steps.is_some_and(|cap| steps > cap) {
            self.exhausted.set(Some(BudgetCause::Steps));
            return false;
        }
        if let Some(deadline) = self.deadline {
            if steps >= self.next_deadline_check.get() {
                self.next_deadline_check
                    .set(steps.saturating_add(DEADLINE_CHECK_UNITS));
                if Instant::now() >= deadline {
                    self.exhausted.set(Some(BudgetCause::Deadline));
                    return false;
                }
            }
        }
        true
    }

    fn starve(&self) {
        self.force_exhaust(BudgetCause::Steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts_but_counts() {
        let b = CompileBudget::unlimited();
        assert!(b.charge(5));
        assert!(b.charge(7));
        assert_eq!(b.steps(), 12);
        assert!(!b.is_exhausted());
        assert!(b.cause().is_none());
    }

    #[test]
    fn step_limit_is_sticky() {
        let b = CompileBudget::with_max_steps(3);
        assert!(b.charge(3));
        assert!(!b.charge(1));
        assert!(!b.charge(0), "exhaustion must be sticky");
        assert_eq!(b.cause(), Some(BudgetCause::Steps));
    }

    #[test]
    fn zero_deadline_exhausts_on_first_charge() {
        let b = CompileBudget::with_deadline(Duration::ZERO);
        assert!(!b.charge(1));
        assert_eq!(b.cause(), Some(BudgetCause::Deadline));
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let b = CompileBudget::with_deadline(Duration::from_secs(3600));
        for _ in 0..10 {
            assert!(b.charge(DEADLINE_CHECK_UNITS));
        }
        assert!(!b.is_exhausted());
    }

    #[test]
    fn memory_cap_exhausts_with_cause() {
        let b = CompileBudget::new(None, None, Some(1000));
        b.note_mem(999);
        assert!(b.charge(1));
        b.note_mem(1001);
        assert!(!b.charge(1));
        assert_eq!(b.cause(), Some(BudgetCause::Memory));
        assert_eq!(b.peak_mem_bytes(), 1001);
    }

    #[test]
    fn starve_reports_steps_cause() {
        let b = CompileBudget::unlimited();
        b.starve();
        assert!(!b.charge(0));
        assert_eq!(b.cause(), Some(BudgetCause::Steps));
    }

    #[test]
    fn first_cause_wins() {
        let b = CompileBudget::with_max_steps(1);
        assert!(!b.charge(2));
        b.force_exhaust(BudgetCause::Deadline);
        assert_eq!(b.cause(), Some(BudgetCause::Steps));
    }
}
