//! Machine-independent lower-bound certificates for schedule quality.
//!
//! URSA's allocation machinery already computes everything needed to
//! bound what *any* legal schedule of a dependence DAG can achieve:
//!
//! * the **critical path** — the weighted longest path through the DAG
//!   (no schedule finishes sooner);
//! * the **Dilworth chain-cover requirement** per resource — the
//!   minimum chain decomposition of the `CanReuse` DAG (Theorem 1: the
//!   worst case any schedule can demand, so a fitting requirement
//!   certifies that spill code was avoidable);
//! * the **functional-unit occupancy bound** per class —
//!   `⌈Σ occupancy / units⌉` busy cycles have to go *somewhere*.
//!
//! [`schedule_bounds`] packages the three into a [`ScheduleBounds`]
//! certificate. `ursa-lint`'s quality analyzer compares emitted
//! schedules against it (diagnostics `U0301`–`U0305`), and the
//! evaluation records the heuristic-vs-bound gap (EXPERIMENTS.md T8).
//! The bounds are computed on the *untransformed* DAG: they certify the
//! source program, not the allocator's sequence-edge-laden rewrite.

use crate::ctx::AllocCtx;
use crate::kill::KillMode;
use crate::measure::summary_fast;
use crate::resource::{Requirement, ResourceKind};
use ursa_ir::ddg::{DependenceDag, NodeKind};
use ursa_machine::{FuClass, Machine, OpKind};

/// The busy-cycle bound for one functional-unit class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FuOccupancyBound {
    /// The class.
    pub class: FuClass,
    /// Operations routed to this class.
    pub ops: usize,
    /// Total cycles those operations occupy a unit of the class.
    pub busy: u64,
    /// Units of this class the machine provides.
    pub units: u32,
}

impl FuOccupancyBound {
    /// `⌈busy / units⌉` — no schedule can drain the class's work in
    /// fewer cycles.
    pub fn bound(&self) -> u64 {
        if self.units == 0 {
            0
        } else {
            self.busy.div_ceil(u64::from(self.units))
        }
    }
}

/// Lower-bound certificates over all legal schedules of one DAG.
#[derive(Clone, Debug)]
pub struct ScheduleBounds {
    /// Weighted critical-path length in cycles.
    pub critical_path: u64,
    /// The Dilworth chain-cover register requirement vs. the file size.
    pub registers: Requirement,
    /// Per-class occupancy bounds, in machine declaration order.
    pub occupancy: Vec<FuOccupancyBound>,
}

impl ScheduleBounds {
    /// The schedule-length lower bound: the critical path or the
    /// tightest per-class occupancy bound, whichever is larger.
    pub fn length_bound(&self) -> u64 {
        self.occupancy
            .iter()
            .map(FuOccupancyBound::bound)
            .fold(self.critical_path, u64::max)
    }

    /// `true` when the register requirement fits the register file —
    /// the certificate that no legal schedule needs spill code.
    pub fn registers_fit(&self) -> bool {
        self.registers.fits()
    }
}

/// Computes the lower-bound certificates for `ddg` on `machine`.
///
/// The register requirement reuses the measurement machinery
/// (`select_kills` + a plain Hopcroft–Karp chain cover over the
/// `CanReuse` relation); the critical path comes from the weighted
/// level analysis; the occupancy bounds are a single pass over the
/// DAG's FU-occupying nodes.
///
/// # Examples
///
/// ```
/// use ursa_core::schedule_bounds;
/// use ursa_ir::ddg::DependenceDag;
/// use ursa_machine::Machine;
/// use ursa_workloads::paper::figure2_block;
///
/// let p = figure2_block();
/// let ddg = DependenceDag::from_entry_block(&p);
/// let b = schedule_bounds(&ddg, &Machine::homogeneous(2, 16));
/// assert_eq!(b.critical_path, 5);
/// assert_eq!(b.registers.required, 5);
/// // 11 unit-occupancy ops over 2 FUs: ⌈11/2⌉ = 6 beats the path.
/// assert_eq!(b.length_bound(), 6);
/// ```
pub fn schedule_bounds(ddg: &DependenceDag, machine: &Machine) -> ScheduleBounds {
    let ctx = AllocCtx::new(ddg.clone(), machine);
    bounds_from_ctx(&ctx)
}

/// [`schedule_bounds`] over an existing allocation context (the DAG it
/// holds is measured as-is).
pub fn bounds_from_ctx(ctx: &AllocCtx<'_>) -> ScheduleBounds {
    let machine = ctx.machine();
    let summary = summary_fast(ctx, KillMode::default());
    let registers = summary.of(ResourceKind::Registers).unwrap_or(Requirement {
        resource: ResourceKind::Registers,
        capacity: machine.registers(),
        required: 0,
    });
    let mut occupancy: Vec<FuOccupancyBound> = machine
        .fu_classes()
        .iter()
        .map(|&(class, units)| FuOccupancyBound {
            class,
            ops: 0,
            busy: 0,
            units,
        })
        .collect();
    for n in ctx.ddg().fu_nodes() {
        let (class, busy) = match ctx.ddg().kind(n) {
            NodeKind::Op { instr, .. } => {
                (machine.instr_class(instr), machine.instr_occupancy(instr))
            }
            NodeKind::Branch { .. } => (
                machine.class_of(OpKind::Branch),
                machine.occupancy_of(OpKind::Branch),
            ),
            _ => continue,
        };
        if let Some(o) = occupancy.iter_mut().find(|o| o.class == class) {
            o.ops += 1;
            o.busy += busy;
        }
    }
    ScheduleBounds {
        critical_path: ctx.critical_path(),
        registers,
        occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::parser::parse;

    fn bounds_for(src: &str, machine: &Machine) -> ScheduleBounds {
        let p = parse(src).unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        schedule_bounds(&ddg, machine)
    }

    #[test]
    fn chain_is_bounded_by_its_path() {
        // A pure dependence chain: cp = 4, one value live at a time
        // (plus its successor's operands) — registers requirement small.
        let b = bounds_for(
            "v0 = load a[0]\n\
             v1 = mul v0, 2\n\
             v2 = add v1, 1\n\
             store a[1], v2\n",
            &Machine::homogeneous(4, 16),
        );
        assert_eq!(b.critical_path, 4);
        // 4 ops over 4 units: occupancy bound 1 — the path dominates.
        assert_eq!(b.length_bound(), 4);
        assert!(b.registers_fit());
    }

    #[test]
    fn occupancy_dominates_on_a_scalar_machine() {
        let b = bounds_for(
            "v0 = load a[0]\n\
             v1 = mul v0, 2\n\
             v2 = mul v0, 3\n\
             v3 = add v1, v2\n\
             store a[1], v3\n",
            &Machine::homogeneous(1, 16),
        );
        // 5 ops on one unit: no schedule beats 5 cycles.
        let occ: u64 = b
            .occupancy
            .iter()
            .map(FuOccupancyBound::bound)
            .max()
            .unwrap();
        assert_eq!(occ, 5);
        assert_eq!(b.length_bound(), 5);
    }

    #[test]
    fn classed_machine_splits_occupancy_by_class() {
        let m = Machine::classic_vliw();
        let b = bounds_for(
            "v0 = load a[0]\n\
             v1 = mul v0, 2\n\
             v2 = add v1, 3\n\
             store a[1], v2\n",
            &m,
        );
        let total_ops: usize = b.occupancy.iter().map(|o| o.ops).sum();
        assert_eq!(total_ops, 4);
        for o in &b.occupancy {
            assert_eq!(o.units, m.fu_count(o.class));
        }
    }
}
