//! Measurement of resource requirements (paper §3).
//!
//! For each resource kind a `CanReuse` relation is built over the nodes
//! competing for it; the minimum chain decomposition of that relation
//! (computed by bipartite matching, with the paper's hammock-priority
//! staging) gives the worst-case requirement over *all* legal schedules.
//!
//! For functional units the bound is exact. For registers it inherits
//! the `Kill()` heuristic's approximation (Theorem 2): when a value has
//! several mutually independent maximal uses, the single chosen killer
//! may not be the one some schedule runs last, and the measurement can
//! be off by a small amount in either direction — the paper's §2 hands
//! any leftover excess to the assignment phase.

use crate::ctx::AllocCtx;
use crate::fault::{self, FaultKind, FaultSite};
use crate::kill::{select_kills_metered, KillMap, KillMode};
use crate::resource::{Requirement, ResourceKind};
use std::fmt;
use ursa_graph::chains::{decompose_prioritized_metered, ChainDecomposition};
use ursa_graph::dag::NodeId;
use ursa_graph::meter::{Unmetered, WorkMeter};

/// Consumes any fault armed for the measurement site, translating it
/// into either an immediate action (panic, budget starvation) or a
/// poisoned-row index the adjacency builders apply once.
fn trip_measure_fault(meter: &dyn WorkMeter) -> Option<u32> {
    let plan = fault::trip(FaultSite::Measure)?;
    match plan.kind {
        FaultKind::Panic => fault::trip_panic(FaultSite::Measure),
        FaultKind::PoisonRow => Some(plan.payload),
        _ => {
            meter.starve();
            None
        }
    }
}

/// Options controlling measurement.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeasureOptions {
    /// How `Kill()` is selected for register measurement.
    pub kill_mode: KillMode,
    /// Use the paper's hammock-nesting-prioritized matching so the
    /// decomposition is minimal for every nested hammock (§3.1). When
    /// `false`, a plain maximum matching is used (ablation T7).
    pub plain_matching: bool,
}

/// The measured requirement and decomposition for one resource.
#[derive(Clone, Debug)]
pub struct ResourceMeasure {
    /// Requirement vs. capacity.
    pub requirement: Requirement,
    /// The minimum chain decomposition that witnessed the requirement.
    pub decomposition: ChainDecomposition,
}

/// Requirements for every resource of the machine.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Per-resource measures, in [`ResourceKind::all_for`] order.
    pub resources: Vec<ResourceMeasure>,
    /// The kill map used for register measurement (reused by
    /// transformations).
    pub kills: KillMap,
}

impl Measurement {
    /// Sum of excesses across resources (0 = everything fits).
    pub fn total_excess(&self) -> u32 {
        self.resources.iter().map(|r| r.requirement.excess()).sum()
    }

    /// `true` when no legal schedule can exceed any capacity.
    pub fn fits(&self) -> bool {
        self.resources.iter().all(|r| r.requirement.fits())
    }

    /// The measure for one resource kind.
    pub fn of(&self, kind: ResourceKind) -> Option<&ResourceMeasure> {
        self.resources
            .iter()
            .find(|r| r.requirement.resource == kind)
    }

    /// A compact copy of the requirements (no decompositions).
    pub fn summary(&self) -> MeasurementSummary {
        MeasurementSummary {
            requirements: self.resources.iter().map(|r| r.requirement).collect(),
        }
    }

    /// Cross-checks every staged decomposition against the plain
    /// Dilworth bound from [`requirement_only`]. Both are maximum
    /// matchings of the same `CanReuse` relation, so the chain counts
    /// must agree; each `(resource, staged chains, plain bound)` entry
    /// returned is a resource where the hammock-priority matcher lost
    /// minimality. `ursa-lint` reports nonempty results as `U0103
    /// non-minimal-chain-decomposition`.
    pub fn minimality_gaps(&self, ctx: &AllocCtx<'_>) -> Vec<(ResourceKind, usize, u32)> {
        self.resources
            .iter()
            .filter_map(|m| {
                let staged = m.decomposition.num_chains();
                let bound = requirement_only(ctx, &self.kills, m.requirement.resource);
                (staged as u32 != bound).then_some((m.requirement.resource, staged, bound))
            })
            .collect()
    }
}

/// Requirements only — cheap to store in reports.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MeasurementSummary {
    /// One entry per machine resource.
    pub requirements: Vec<Requirement>,
}

impl MeasurementSummary {
    /// `true` when every requirement is within its capacity.
    pub fn fits(&self, machine: &ursa_machine::Machine) -> bool {
        self.requirements
            .iter()
            .all(|r| r.required <= r.resource.capacity(machine))
    }

    /// The requirement for one resource kind.
    pub fn of(&self, kind: ResourceKind) -> Option<Requirement> {
        self.requirements
            .iter()
            .copied()
            .find(|r| r.resource == kind)
    }

    /// Sum of excesses across resources.
    pub fn total_excess(&self) -> u32 {
        self.requirements.iter().map(Requirement::excess).sum()
    }
}

impl fmt::Display for MeasurementSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.requirements.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

/// The register `CanReuse` relation (paper §3.2): `b` may take over
/// `a`'s register exactly when `b` is the chosen kill of `a`'s value or
/// a descendant of it.
pub fn can_reuse_reg(ctx: &AllocCtx<'_>, kills: &KillMap, a: NodeId, b: NodeId) -> bool {
    match kills.kill_of(a) {
        Some(k) => b == k || ctx.reach().reaches(k, b),
        None => false,
    }
}

/// The functional-unit `CanReuse` relation (paper §3.2): with
/// non-pipelined units, a dependent instruction can always reuse its
/// ancestor's unit.
pub fn can_reuse_fu(ctx: &AllocCtx<'_>, a: NodeId, b: NodeId) -> bool {
    ctx.reach().reaches(a, b)
}

/// Measures one resource kind.
pub fn measure_resource(
    ctx: &mut AllocCtx<'_>,
    kills: &KillMap,
    resource: ResourceKind,
    options: MeasureOptions,
) -> ResourceMeasure {
    measure_resource_inner(ctx, kills, resource, options, &Unmetered, None)
}

fn measure_resource_inner(
    ctx: &mut AllocCtx<'_>,
    kills: &KillMap,
    resource: ResourceKind,
    options: MeasureOptions,
    meter: &dyn WorkMeter,
    poison_row: Option<u32>,
) -> ResourceMeasure {
    let nodes = ctx.resource_nodes(resource);
    let capacity = resource.capacity(ctx.machine());
    // Hammock priorities need the (lazily computed) hammock analysis;
    // compute it before borrowing ctx immutably for the relation.
    if !options.plain_matching {
        let _ = ctx.hammocks();
    }
    let poisoned = poison_row.and_then(|p| nodes.get(p as usize % nodes.len().max(1)).copied());
    let decomposition = {
        let ctx_ref: &AllocCtx<'_> = ctx;
        let mut relation = |a: NodeId, b: NodeId| {
            if poisoned == Some(a) {
                return false;
            }
            match resource {
                ResourceKind::Fu(_) => can_reuse_fu(ctx_ref, a, b),
                ResourceKind::Registers => can_reuse_reg(ctx_ref, kills, a, b),
            }
        };
        if options.plain_matching {
            decompose_prioritized_metered(&nodes, &mut relation, |_, _| 0, meter)
        } else {
            let hammocks = ctx_ref.hammocks_ref().expect("hammocks computed above");
            decompose_prioritized_metered(
                &nodes,
                &mut relation,
                |a, b| hammocks.edge_priority(a, b),
                meter,
            )
        }
    };
    let required = decomposition.num_chains() as u32;
    ResourceMeasure {
        requirement: Requirement {
            resource,
            capacity,
            required,
        },
        decomposition,
    }
}

/// Computes only the requirement *count* of one resource, with a plain
/// Hopcroft–Karp matching and no hammock analysis. Every maximum
/// matching has the same cardinality, so the count equals the staged
/// measurement's; transformations use this for cheap tentative scoring
/// (§5's "tentatively applied, and the resource requirements … are
/// measured").
pub fn requirement_only(ctx: &AllocCtx<'_>, kills: &KillMap, resource: ResourceKind) -> u32 {
    requirement_only_metered(ctx, kills, resource, &Unmetered)
}

/// [`requirement_only`] with a cooperative [`WorkMeter`]. On exhaustion
/// the matching may stop sub-maximum, so the returned count can only
/// *over*-state the true requirement (conservative).
pub fn requirement_only_metered(
    ctx: &AllocCtx<'_>,
    kills: &KillMap,
    resource: ResourceKind,
    meter: &dyn WorkMeter,
) -> u32 {
    let nodes = ctx.resource_nodes(resource);
    let k = nodes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &a) in nodes.iter().enumerate() {
        // Row-granular checkpoint; dropped rows only shrink the
        // matching, over-stating the requirement (conservative).
        if !meter.charge(k as u64) {
            break;
        }
        for (j, &b) in nodes.iter().enumerate() {
            let related = i != j
                && match resource {
                    ResourceKind::Fu(_) => can_reuse_fu(ctx, a, b),
                    ResourceKind::Registers => can_reuse_reg(ctx, kills, a, b),
                };
            if related {
                adj[i].push(j);
            }
        }
    }
    let m = ursa_graph::matching::hopcroft_karp_metered(k, k, &adj, meter);
    (k - m.len()) as u32
}

/// Cheap requirement counts for every machine resource (see
/// [`requirement_only`]).
pub fn summary_fast(ctx: &AllocCtx<'_>, kill_mode: KillMode) -> MeasurementSummary {
    summary_fast_metered(ctx, kill_mode, &Unmetered)
}

/// [`summary_fast`] with a cooperative [`WorkMeter`] (conservative on
/// exhaustion, like every metered measurement).
pub fn summary_fast_metered(
    ctx: &AllocCtx<'_>,
    kill_mode: KillMode,
    meter: &dyn WorkMeter,
) -> MeasurementSummary {
    let kills = select_kills_metered(ctx, kill_mode, meter);
    let requirements = ResourceKind::all_for(ctx.machine())
        .into_iter()
        .map(|resource| Requirement {
            resource,
            capacity: resource.capacity(ctx.machine()),
            required: requirement_only_metered(ctx, &kills, resource, meter),
        })
        .collect();
    MeasurementSummary { requirements }
}

/// Measures every resource of the machine (paper Figure 1, step
/// "Measure the requirements for both functional units and registers").
pub fn measure(ctx: &mut AllocCtx<'_>, options: MeasureOptions) -> Measurement {
    measure_metered(ctx, options, &Unmetered)
}

/// [`measure`] with a cooperative [`WorkMeter`]: augmentation inside the
/// staged matchings checkpoints against `meter`, and an exhausted meter
/// yields a decomposition that over-counts rather than under-counts.
/// This is also the site where a `poison-row` fault (chaos harness)
/// lands: the first resource measured loses one producer's `CanReuse`
/// row, which likewise only raises the measured requirement.
pub fn measure_metered(
    ctx: &mut AllocCtx<'_>,
    options: MeasureOptions,
    meter: &dyn WorkMeter,
) -> Measurement {
    let mut poison_row = trip_measure_fault(meter);
    let kills = select_kills_metered(ctx, options.kill_mode, meter);
    let resources = ResourceKind::all_for(ctx.machine())
        .into_iter()
        .map(|r| measure_resource_inner(ctx, &kills, r, options, meter, poison_row.take()))
        .collect();
    Measurement { resources, kills }
}

/// Measurement of an *adopted* context whose kill map and requirement
/// counts the incremental engine already maintains exactly (its commit
/// path asserts both against scratch under `ParanoidMeasure`). Only
/// resources that exceed their capacity get a real staged decomposition
/// — those are the ones `find_excessive` will consult; fitting
/// resources carry a [`ChainDecomposition::singletons`] placeholder,
/// which no reduce-loop consumer reads (`find_excessive` returns before
/// touching a fitting resource's chains). Callers that need minimum
/// witnesses for every resource — `minimality_gaps` diagnostics — must
/// use [`measure_metered`] instead.
///
/// An armed `Measure` fault (chaos harness) invalidates the trusted
/// summary, so that path falls back to the full per-resource
/// measurement with the poisoned row applied, exactly like
/// [`measure_metered`].
pub fn measure_adopted_metered(
    ctx: &mut AllocCtx<'_>,
    kills: KillMap,
    summary: &MeasurementSummary,
    options: MeasureOptions,
    meter: &dyn WorkMeter,
) -> Measurement {
    let mut poison_row = trip_measure_fault(meter);
    if poison_row.is_some() {
        let resources = ResourceKind::all_for(ctx.machine())
            .into_iter()
            .map(|r| measure_resource_inner(ctx, &kills, r, options, meter, poison_row.take()))
            .collect();
        return Measurement { resources, kills };
    }
    let resources = summary
        .requirements
        .iter()
        .map(|req| {
            if req.fits() {
                ResourceMeasure {
                    requirement: *req,
                    decomposition: ursa_graph::chains::ChainDecomposition::singletons(
                        &ctx.resource_nodes(req.resource),
                    ),
                }
            } else {
                measure_resource_inner(ctx, &kills, req.resource, options, meter, None)
            }
        })
        .collect();
    Measurement { resources, kills }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::ddg::DependenceDag;
    use ursa_ir::parser::parse;
    use ursa_machine::{FuClass, Machine};

    /// The paper's Figure 2 basic block.
    pub(crate) const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn ctx_of(src: &str, machine: Machine) -> AllocCtx<'static> {
        let p = parse(src).unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let m: &'static Machine = Box::leak(Box::new(machine));
        AllocCtx::new(ddg, m)
    }

    #[test]
    fn figure2_fu_requirement_is_four() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 16));
        let m = measure(&mut ctx, MeasureOptions::default());
        let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap();
        assert_eq!(fu.requirement.required, 4, "paper: 4 FUs needed");
        assert!(fu.requirement.fits());
    }

    #[test]
    fn figure2_register_requirement_is_five() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 16));
        let m = measure(&mut ctx, MeasureOptions::default());
        let regs = m.of(ResourceKind::Registers).unwrap();
        assert_eq!(
            regs.requirement.required, 5,
            "paper: values of B, C, E, G, H alive simultaneously"
        );
    }

    #[test]
    fn figure2_excess_against_small_machine() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(3, 3));
        let m = measure(&mut ctx, MeasureOptions::default());
        assert!(!m.fits());
        assert_eq!(
            m.of(ResourceKind::Fu(FuClass::Universal))
                .unwrap()
                .requirement
                .excess(),
            1
        );
        assert_eq!(
            m.of(ResourceKind::Registers).unwrap().requirement.excess(),
            2
        );
        assert_eq!(m.total_excess(), 3);
    }

    #[test]
    fn naive_kill_measures_no_more_than_min_cover() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 16));
        let cover = measure(
            &mut ctx,
            MeasureOptions {
                kill_mode: KillMode::MinCover,
                plain_matching: false,
            },
        );
        let naive = measure(
            &mut ctx,
            MeasureOptions {
                kill_mode: KillMode::Naive,
                plain_matching: false,
            },
        );
        let c = cover
            .of(ResourceKind::Registers)
            .unwrap()
            .requirement
            .required;
        let n = naive
            .of(ResourceKind::Registers)
            .unwrap()
            .requirement
            .required;
        assert!(n <= c, "naive {n} must not exceed min-cover {c}");
    }

    #[test]
    fn plain_matching_same_global_requirement() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 16));
        let staged = measure(&mut ctx, MeasureOptions::default());
        let plain = measure(
            &mut ctx,
            MeasureOptions {
                kill_mode: KillMode::MinCover,
                plain_matching: true,
            },
        );
        assert_eq!(
            staged
                .summary()
                .requirements
                .iter()
                .map(|r| r.required)
                .collect::<Vec<_>>(),
            plain
                .summary()
                .requirements
                .iter()
                .map(|r| r.required)
                .collect::<Vec<_>>(),
            "both matchings are maximum, so global requirements agree"
        );
    }

    #[test]
    fn classed_machine_measures_per_class() {
        let mut ctx = ctx_of(FIG2, Machine::classic_vliw());
        let m = measure(&mut ctx, MeasureOptions::default());
        // 4 muls in Figure 2; B, C independent; F, G independent of each
        // other and of B, C only partially — requirement ≥ 2.
        let mul = m.of(ResourceKind::Fu(FuClass::Mul)).unwrap();
        assert!(mul.requirement.required >= 2);
        let div = m.of(ResourceKind::Fu(FuClass::Div)).unwrap();
        assert_eq!(div.requirement.required, 2, "H and I are independent");
        assert_eq!(div.requirement.capacity, 1);
        assert!(!div.requirement.fits());
    }

    #[test]
    fn summary_round_trip() {
        let machine = Machine::homogeneous(4, 4);
        let mut ctx = ctx_of(FIG2, machine);
        let m = measure(&mut ctx, MeasureOptions::default());
        let s = m.summary();
        assert_eq!(s.total_excess(), m.total_excess());
        assert!(!s.fits(ctx.machine()));
        assert!(s.of(ResourceKind::Registers).is_some());
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn chains_partition_the_producers() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 16));
        let m = measure(&mut ctx, MeasureOptions::default());
        let regs = m.of(ResourceKind::Registers).unwrap();
        let producer_count = ctx.resource_nodes(ResourceKind::Registers).len();
        assert_eq!(regs.decomposition.node_count(), producer_count);
    }
}
