//! Selection of the `Kill()` function for register measurement
//! (paper §3.2).
//!
//! A register holds a value from its defining instruction until the last
//! use executes. URSA does not assume a schedule, so for the worst-case
//! measurement it must pick, for every value, the use that *would*
//! maximize simultaneous register demand. Only *maximal* uses (not
//! ancestors of other uses of the same value) can be last in any
//! schedule. When several values share candidate killers, choosing a
//! minimum-sized set of killers maximizes the number of other dependents
//! that can execute while their ancestors' values are still live —
//! defining `Kill()` optimally is NP-complete by reduction from Minimum
//! Cover (Theorem 2), so a greedy set-cover heuristic is used.

use crate::ctx::AllocCtx;
use crate::fault::{self, FaultKind, FaultSite};
use ursa_graph::dag::NodeId;
use ursa_graph::meter::{Unmetered, WorkMeter};
use ursa_graph::reach::ReachDelta;

/// How `Kill()` is chosen for values with several candidate killers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum KillMode {
    /// The paper's heuristic: greedy minimum cover, maximizing measured
    /// worst-case pressure.
    #[default]
    MinCover,
    /// Ablation baseline: each value independently takes its first
    /// maximal use, ignoring sharing. May under-measure pressure.
    Naive,
}

/// The chosen killer for every value-producing node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KillMap {
    kill: Vec<Option<NodeId>>,
}

impl KillMap {
    /// The node selected to kill `n`'s value (`None` if `n` produces no
    /// value).
    pub fn kill_of(&self, n: NodeId) -> Option<NodeId> {
        self.kill.get(n.index()).copied().flatten()
    }

    /// Number of distinct killer nodes across all values.
    pub fn distinct_killers(&self) -> usize {
        let mut killers: Vec<NodeId> = self.kill.iter().flatten().copied().collect();
        killers.sort_unstable();
        killers.dedup();
        killers.len()
    }
}

/// Computes `Kill()` for every producer in the DAG.
pub fn select_kills(ctx: &AllocCtx<'_>, mode: KillMode) -> KillMap {
    select_kills_metered(ctx, mode, &Unmetered)
}

/// [`select_kills`] with a cooperative [`WorkMeter`]. If the meter
/// exhausts mid-cover, every still-pending value falls back to its
/// lowest-id maximal use (the `Naive` rule) — any maximal use is a legal
/// kill, so the map stays valid; only the min-cover sharing optimality
/// degrades.
pub fn select_kills_metered(ctx: &AllocCtx<'_>, mode: KillMode, meter: &dyn WorkMeter) -> KillMap {
    trip_kill_fault(meter);
    let n = ctx.ddg().dag().node_count();
    let (mut kill, pending) = collect_pending(ctx);
    resolve_pending(&mut kill, pending, n, mode, meter);
    KillMap { kill }
}

fn trip_kill_fault(meter: &dyn WorkMeter) {
    if let Some(plan) = fault::trip(FaultSite::KillSelect) {
        match plan.kind {
            FaultKind::Panic => fault::trip_panic(FaultSite::KillSelect),
            _ => meter.starve(),
        }
    }
}

/// Producers whose maximal-use set still has several members, each
/// with that set, in `value_nodes` order.
type PendingCovers = Vec<(NodeId, Vec<NodeId>)>;

/// Walks every producer, writing the forced kills (live-out / unused →
/// exit, single maximal use → that use) into the returned vector and
/// collecting the producers whose maximal-use set still has several
/// members, in `value_nodes` order.
fn collect_pending(ctx: &AllocCtx<'_>) -> (Vec<Option<NodeId>>, PendingCovers) {
    let ddg = ctx.ddg();
    let reach = ctx.reach();
    let n = ddg.dag().node_count();
    let mut kill: Vec<Option<NodeId>> = vec![None; n];
    // Producers whose kill is still open, with their maximal uses.
    let mut pending: Vec<(NodeId, Vec<NodeId>)> = Vec::new();

    for p in ddg.value_nodes() {
        if ddg.is_live_out(p) {
            // A live-out value survives to the trace exit no matter the
            // schedule; the exit node is its kill.
            kill[p.index()] = Some(ddg.exit());
            continue;
        }
        let uses = ddg.uses_of(p);
        if uses.is_empty() {
            kill[p.index()] = Some(ddg.exit());
            continue;
        }
        // Only uses that are not ancestors of other uses of the same
        // value can execute last in some schedule.
        let maximal: Vec<NodeId> = uses
            .iter()
            .copied()
            .filter(|&u| !uses.iter().any(|&v| v != u && reach.reaches(u, v)))
            .collect();
        debug_assert!(
            !maximal.is_empty(),
            "a nonempty use set has a maximal element"
        );
        if let [only] = maximal[..] {
            kill[p.index()] = Some(only);
        } else {
            pending.push((p, maximal));
        }
    }
    (kill, pending)
}

/// Resolves the multi-candidate producers according to `mode`.
fn resolve_pending(
    kill: &mut [Option<NodeId>],
    pending: Vec<(NodeId, Vec<NodeId>)>,
    n: usize,
    mode: KillMode,
    meter: &dyn WorkMeter,
) {
    match mode {
        KillMode::Naive => {
            for (p, mut maximal) in pending {
                maximal.sort_unstable();
                kill[p.index()] = Some(maximal[0]);
            }
        }
        KillMode::MinCover => greedy_min_cover(kill, pending, n, meter),
    }
}

/// Incrementally maintained kill selection (ROADMAP item 1a).
///
/// A probed sequence edge changes reachability only along the pairs a
/// [`ReachDelta`] enumerates, and a producer's maximal-use set can only
/// *shrink* under edge insertion (a use that was already dominated stays
/// dominated). So a producer `p` is affected by a probe iff some delta
/// pair `(s, d)` has `s` in `p`'s maximal set and `d` among `p`'s uses —
/// exactly the condition for a member to become non-maximal. The
/// selector keeps the multi-candidate producers and an inverted index
/// from nodes to the sets containing them; a probe re-filters only the
/// affected sets and reruns the greedy cover over the surviving
/// multi-candidate producers (cover choices interact globally, so the
/// cover itself is never patched piecemeal). When no set is affected —
/// the common case for a local edge — the probe is O(delta) and returns
/// the base map unchanged.
///
/// Decision-neutrality: the recomputed sets equal what a scratch
/// [`select_kills`] would collect (filtering the old set against the
/// full use list under current reachability is exact, by shrink-only),
/// and the cover input preserves `value_nodes` order, so the resulting
/// map is byte-identical to the scratch one. The engine's paranoid mode
/// asserts this per probe.
#[derive(Clone, Debug)]
pub struct KillSelector {
    mode: KillMode,
    kills: KillMap,
    /// Producers whose maximal-use set still has several members, in
    /// `value_nodes` order.
    pending: Vec<(NodeId, Vec<NodeId>)>,
    /// Node index → indices into `pending` whose maximal set contains
    /// that node.
    users: Vec<Vec<u32>>,
}

impl KillSelector {
    /// Builds the maintained state for `ctx`, whose current kill map is
    /// `kills` (as computed by [`select_kills`] with the same `mode`).
    pub fn prime(ctx: &AllocCtx<'_>, kills: KillMap, mode: KillMode) -> Self {
        let (_, pending) = collect_pending(ctx);
        let users = Self::build_users(&pending, ctx.ddg().dag().node_count());
        KillSelector {
            mode,
            kills,
            pending,
            users,
        }
    }

    fn build_users(pending: &[(NodeId, Vec<NodeId>)], n: usize) -> Vec<Vec<u32>> {
        let mut users: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (pi, (_, maximal)) in pending.iter().enumerate() {
            for &u in maximal {
                users[u.index()].push(pi as u32);
            }
        }
        users
    }

    /// The kill map of the base (committed) context.
    pub fn kills(&self) -> &KillMap {
        &self.kills
    }

    /// Number of producers currently holding several kill candidates.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The kill map for the probed context (`ctx` with the edges whose
    /// reachability deltas are `deltas` applied), or `None` when it is
    /// unchanged from [`KillSelector::kills`]. Never mutates the
    /// selector, so interleaved probes and rollbacks are stateless.
    pub fn probe_metered<'d>(
        &self,
        ctx: &AllocCtx<'_>,
        deltas: impl Iterator<Item = &'d ReachDelta>,
        meter: &dyn WorkMeter,
    ) -> Option<KillMap> {
        trip_kill_fault(meter);
        let ddg = ctx.ddg();
        let reach = ctx.reach();
        let mut affected = vec![false; self.pending.len()];
        let mut any = false;
        for delta in deltas {
            for (s, d) in delta.pairs() {
                for &pi in &self.users[s.index()] {
                    let p = self.pending[pi as usize].0;
                    if !affected[pi as usize] && d != s && ddg.uses_of(p).contains(&d) {
                        affected[pi as usize] = true;
                        any = true;
                    }
                }
            }
        }
        if !any {
            return None;
        }
        let n = ddg.dag().node_count();
        let mut kill = self.kills.kill.clone();
        // Re-filter the affected sets against the *full* use list under
        // current reachability — exact because non-maximal uses stay
        // non-maximal — then resolve all still-multi producers the way
        // the scratch pass would (newly-single sets get their only
        // member directly; the cover reruns globally).
        let mut still_multi: Vec<(NodeId, Vec<NodeId>)> = Vec::with_capacity(self.pending.len());
        for (pi, (p, m_old)) in self.pending.iter().enumerate() {
            let m: Vec<NodeId> = if affected[pi] {
                let uses = ddg.uses_of(*p);
                m_old
                    .iter()
                    .copied()
                    .filter(|&u| !uses.iter().any(|&v| v != u && reach.reaches(u, v)))
                    .collect()
            } else {
                m_old.clone()
            };
            debug_assert!(!m.is_empty(), "maximal sets shrink but never empty");
            if let [only] = m[..] {
                kill[p.index()] = Some(only);
            } else {
                still_multi.push((*p, m));
            }
        }
        resolve_pending(&mut kill, still_multi, n, self.mode, meter);
        Some(KillMap { kill })
    }

    /// Adopts a committed edit: `new_kills` is the map
    /// [`KillSelector::probe_metered`] returned for the now-permanent
    /// edges (`None` when the probe reported no change). Shrinks every
    /// maintained set under the committed reachability and drops the
    /// ones that became single-candidate.
    pub fn advance(&mut self, ctx: &AllocCtx<'_>, new_kills: Option<KillMap>) {
        let Some(kills) = new_kills else {
            // No set was affected: reachability among all maximal
            // members and their co-uses is unchanged, so the maintained
            // state is already exact for the committed context.
            return;
        };
        self.kills = kills;
        let ddg = ctx.ddg();
        let reach = ctx.reach();
        self.pending.retain_mut(|(p, m)| {
            let uses = ddg.uses_of(*p);
            m.retain(|&u| !uses.iter().any(|&v| v != u && reach.reaches(u, v)));
            m.len() > 1
        });
        self.users = Self::build_users(&self.pending, ctx.ddg().dag().node_count());
    }
}

/// Greedy minimum cover over the values with several candidate killers,
/// with per-node counts maintained across picks (decrement-on-cover)
/// instead of rebuilt per round. The pick order — largest count first,
/// lowest node id on ties — is exactly the one the naive rebuild-a-round
/// loop produces, so the selected kills are identical.
fn greedy_min_cover(
    kill: &mut [Option<NodeId>],
    mut pending: Vec<(NodeId, Vec<NodeId>)>,
    n: usize,
    meter: &dyn WorkMeter,
) {
    let mut count = vec![0usize; n];
    for (_, cands) in &pending {
        for &u in cands {
            count[u.index()] += 1;
        }
    }
    while !pending.is_empty() {
        // Checkpoint: each pick scans the count table once. On
        // exhaustion the remaining values take their lowest-id maximal
        // use — still a legal kill for each, just without sharing.
        if !meter.charge(n as u64) {
            for (p, mut maximal) in pending {
                maximal.sort_unstable();
                kill[p.index()] = Some(maximal[0]);
            }
            return;
        }
        let best = NodeId(
            (0..n)
                .max_by_key(|&u| (count[u], std::cmp::Reverse(u)))
                .expect("nonempty DAG") as u32,
        );
        debug_assert!(count[best.index()] > 0, "pending entries have candidates");
        pending.retain(|(p, cands)| {
            if cands.contains(&best) {
                kill[p.index()] = Some(best);
                for &u in cands {
                    count[u.index()] -= 1;
                }
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::ddg::DependenceDag;
    use ursa_ir::parser::parse;
    use ursa_machine::Machine;

    fn ctx_of(src: &str) -> AllocCtx<'static> {
        let p = parse(src).unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let m: &'static Machine = Box::leak(Box::new(Machine::homogeneous(4, 8)));
        AllocCtx::new(ddg, m)
    }

    /// The paper's hard case: sub-DAG {B, C, E, F} where B and C are each
    /// used by both E and F. Minimum cover picks the same killer for B
    /// and C, so the other use can execute while both values live.
    #[test]
    fn shared_killer_chosen_by_min_cover() {
        let ctx = ctx_of(
            "v0 = const 1\n\
             v1 = const 2\n\
             v2 = add v0, v1\n\
             v3 = mul v0, v1\n\
             store a[0], v2\n\
             store a[1], v3\n",
        );
        let kills = select_kills(&ctx, KillMode::MinCover);
        let b = ctx.ddg().dag().node(2); // v0
        let c = ctx.ddg().dag().node(3); // v1
        assert_eq!(
            kills.kill_of(b),
            kills.kill_of(c),
            "min cover shares one killer between B and C"
        );
    }

    #[test]
    fn naive_mode_picks_first_maximal_use() {
        let ctx = ctx_of(
            "v0 = const 1\n\
             v1 = const 2\n\
             v2 = add v0, v1\n\
             v3 = mul v0, v1\n\
             store a[0], v2\n\
             store a[1], v3\n",
        );
        let kills = select_kills(&ctx, KillMode::Naive);
        let b = ctx.ddg().dag().node(2);
        let e = ctx.ddg().dag().node(4);
        assert_eq!(kills.kill_of(b), Some(e), "lowest-id maximal use");
    }

    #[test]
    fn single_use_is_the_kill() {
        let ctx = ctx_of("v0 = const 1\nv1 = neg v0\nstore a[0], v1\n");
        let kills = select_kills(&ctx, KillMode::MinCover);
        let def = ctx.ddg().dag().node(2);
        let neg = ctx.ddg().dag().node(3);
        assert_eq!(kills.kill_of(def), Some(neg));
    }

    #[test]
    fn non_maximal_uses_cannot_kill() {
        // v0 used by v1 (= add) and by the store of v1's result chain:
        // the store is a descendant of the add, so only the store can be
        // last.
        let ctx = ctx_of("v0 = const 1\nv1 = add v0, 2\nstore a[v0], v1\n");
        let kills = select_kills(&ctx, KillMode::MinCover);
        let def = ctx.ddg().dag().node(2);
        let store = ctx.ddg().dag().node(4);
        assert_eq!(kills.kill_of(def), Some(store));
    }

    #[test]
    fn unused_value_killed_at_exit() {
        let ctx = ctx_of("v0 = const 1\n");
        let kills = select_kills(&ctx, KillMode::MinCover);
        let def = ctx.ddg().dag().node(2);
        assert_eq!(kills.kill_of(def), Some(ctx.ddg().exit()));
    }

    #[test]
    fn non_producers_have_no_kill() {
        let ctx = ctx_of("v0 = const 1\nstore a[0], v0\n");
        let kills = select_kills(&ctx, KillMode::MinCover);
        let store = ctx.ddg().dag().node(3);
        assert_eq!(kills.kill_of(store), None);
        assert_eq!(kills.kill_of(ctx.ddg().entry()), None);
    }

    /// Probing any single legal edge through the selector must produce
    /// exactly what a scratch `select_kills` on the edited context does,
    /// and the selector must stay byte-stable across interleaved probes.
    #[test]
    fn selector_probe_matches_scratch_on_every_edge() {
        for mode in [KillMode::MinCover, KillMode::Naive] {
            let mut ctx = ctx_of(
                "v0 = const 1\n\
                 v1 = const 2\n\
                 v2 = add v0, v1\n\
                 v3 = mul v0, v1\n\
                 v4 = add v0, 7\n\
                 store a[0], v2\n\
                 store a[1], v3\n\
                 store a[2], v4\n",
            );
            let base = select_kills(&ctx, mode);
            let selector = KillSelector::prime(&ctx, base.clone(), mode);
            let n = ctx.ddg().dag().node_count();
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    let (a, b) = (NodeId(a), NodeId(b));
                    if a == b || ctx.reach().reaches(a, b) || ctx.reach().would_cycle(a, b) {
                        continue;
                    }
                    let mut txn = crate::incremental::CtxTxn::begin(&ctx);
                    if !txn.add_sequence_edge(&mut ctx, a, b) {
                        txn.rollback(&mut ctx);
                        continue;
                    }
                    let probed = selector
                        .probe_metered(&ctx, txn.deltas(), &Unmetered)
                        .unwrap_or_else(|| base.clone());
                    let scratch = select_kills(&ctx, mode);
                    assert_eq!(probed, scratch, "{mode:?} edge {a} -> {b}");
                    txn.rollback(&mut ctx);
                    // Statelessness: after rollback, a no-edge re-prime
                    // agrees with the live selector.
                    assert_eq!(select_kills(&ctx, mode), base, "{mode:?} rollback");
                }
            }
        }
    }

    /// `advance` keeps the maintained sets exact across a chain of
    /// committed edits.
    #[test]
    fn selector_advance_tracks_committed_edits() {
        let mut ctx = ctx_of(
            "v0 = const 1\n\
             v1 = const 2\n\
             v2 = add v0, v1\n\
             v3 = mul v0, v1\n\
             store a[0], v2\n\
             store a[1], v3\n",
        );
        let mode = KillMode::MinCover;
        let base = select_kills(&ctx, mode);
        let mut selector = KillSelector::prime(&ctx, base, mode);
        // Commit two edits in sequence, advancing after each.
        let edits = [(4, 5), (2, 3)]; // v2 -> v3 producers, then v0 -> v1
        for (a, b) in edits {
            let (a, b) = (NodeId(a), NodeId(b));
            if ctx.reach().reaches(a, b) || ctx.reach().would_cycle(a, b) {
                continue;
            }
            let mut txn = crate::incremental::CtxTxn::begin(&ctx);
            assert!(txn.add_sequence_edge(&mut ctx, a, b));
            let probed = selector.probe_metered(&ctx, txn.deltas(), &Unmetered);
            selector.advance(&ctx, probed);
            txn.commit();
            assert_eq!(
                *selector.kills(),
                select_kills(&ctx, mode),
                "after committing {a} -> {b}"
            );
            // The re-primed state must agree with the advanced one.
            let fresh = KillSelector::prime(&ctx, selector.kills().clone(), mode);
            assert_eq!(fresh.pending, selector.pending);
            assert_eq!(fresh.users, selector.users);
        }
    }

    #[test]
    fn min_cover_never_uses_more_killers_than_naive() {
        let ctx = ctx_of(
            "v0 = const 1\n\
             v1 = const 2\n\
             v2 = const 3\n\
             v3 = add v0, v1\n\
             v4 = mul v1, v2\n\
             v5 = add v0, v2\n\
             store a[0], v3\n\
             store a[1], v4\n\
             store a[2], v5\n",
        );
        let cover = select_kills(&ctx, KillMode::MinCover);
        let naive = select_kills(&ctx, KillMode::Naive);
        assert!(cover.distinct_killers() <= naive.distinct_killers());
    }
}
