//! Selection of the `Kill()` function for register measurement
//! (paper §3.2).
//!
//! A register holds a value from its defining instruction until the last
//! use executes. URSA does not assume a schedule, so for the worst-case
//! measurement it must pick, for every value, the use that *would*
//! maximize simultaneous register demand. Only *maximal* uses (not
//! ancestors of other uses of the same value) can be last in any
//! schedule. When several values share candidate killers, choosing a
//! minimum-sized set of killers maximizes the number of other dependents
//! that can execute while their ancestors' values are still live —
//! defining `Kill()` optimally is NP-complete by reduction from Minimum
//! Cover (Theorem 2), so a greedy set-cover heuristic is used.

use crate::ctx::AllocCtx;
use crate::fault::{self, FaultKind, FaultSite};
use ursa_graph::dag::NodeId;
use ursa_graph::meter::{Unmetered, WorkMeter};

/// How `Kill()` is chosen for values with several candidate killers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum KillMode {
    /// The paper's heuristic: greedy minimum cover, maximizing measured
    /// worst-case pressure.
    #[default]
    MinCover,
    /// Ablation baseline: each value independently takes its first
    /// maximal use, ignoring sharing. May under-measure pressure.
    Naive,
}

/// The chosen killer for every value-producing node.
#[derive(Clone, Debug)]
pub struct KillMap {
    kill: Vec<Option<NodeId>>,
}

impl KillMap {
    /// The node selected to kill `n`'s value (`None` if `n` produces no
    /// value).
    pub fn kill_of(&self, n: NodeId) -> Option<NodeId> {
        self.kill.get(n.index()).copied().flatten()
    }

    /// Number of distinct killer nodes across all values.
    pub fn distinct_killers(&self) -> usize {
        let mut killers: Vec<NodeId> = self.kill.iter().flatten().copied().collect();
        killers.sort_unstable();
        killers.dedup();
        killers.len()
    }
}

/// Computes `Kill()` for every producer in the DAG.
pub fn select_kills(ctx: &AllocCtx<'_>, mode: KillMode) -> KillMap {
    select_kills_metered(ctx, mode, &Unmetered)
}

/// [`select_kills`] with a cooperative [`WorkMeter`]. If the meter
/// exhausts mid-cover, every still-pending value falls back to its
/// lowest-id maximal use (the `Naive` rule) — any maximal use is a legal
/// kill, so the map stays valid; only the min-cover sharing optimality
/// degrades.
pub fn select_kills_metered(ctx: &AllocCtx<'_>, mode: KillMode, meter: &dyn WorkMeter) -> KillMap {
    if let Some(plan) = fault::trip(FaultSite::KillSelect) {
        match plan.kind {
            FaultKind::Panic => fault::trip_panic(FaultSite::KillSelect),
            _ => meter.starve(),
        }
    }
    let ddg = ctx.ddg();
    let reach = ctx.reach();
    let n = ddg.dag().node_count();
    let mut kill: Vec<Option<NodeId>> = vec![None; n];
    // Producers whose kill is still open, with their maximal uses.
    let mut pending: Vec<(NodeId, Vec<NodeId>)> = Vec::new();

    for p in ddg.value_nodes() {
        if ddg.is_live_out(p) {
            // A live-out value survives to the trace exit no matter the
            // schedule; the exit node is its kill.
            kill[p.index()] = Some(ddg.exit());
            continue;
        }
        let uses = ddg.uses_of(p);
        if uses.is_empty() {
            kill[p.index()] = Some(ddg.exit());
            continue;
        }
        // Only uses that are not ancestors of other uses of the same
        // value can execute last in some schedule.
        let maximal: Vec<NodeId> = uses
            .iter()
            .copied()
            .filter(|&u| !uses.iter().any(|&v| v != u && reach.reaches(u, v)))
            .collect();
        debug_assert!(
            !maximal.is_empty(),
            "a nonempty use set has a maximal element"
        );
        if let [only] = maximal[..] {
            kill[p.index()] = Some(only);
        } else {
            pending.push((p, maximal));
        }
    }

    match mode {
        KillMode::Naive => {
            for (p, mut maximal) in pending {
                maximal.sort_unstable();
                kill[p.index()] = Some(maximal[0]);
            }
        }
        KillMode::MinCover => greedy_min_cover(&mut kill, pending, n, meter),
    }
    KillMap { kill }
}

/// Greedy minimum cover over the values with several candidate killers,
/// with per-node counts maintained across picks (decrement-on-cover)
/// instead of rebuilt per round. The pick order — largest count first,
/// lowest node id on ties — is exactly the one the naive rebuild-a-round
/// loop produces, so the selected kills are identical.
fn greedy_min_cover(
    kill: &mut [Option<NodeId>],
    mut pending: Vec<(NodeId, Vec<NodeId>)>,
    n: usize,
    meter: &dyn WorkMeter,
) {
    let mut count = vec![0usize; n];
    for (_, cands) in &pending {
        for &u in cands {
            count[u.index()] += 1;
        }
    }
    while !pending.is_empty() {
        // Checkpoint: each pick scans the count table once. On
        // exhaustion the remaining values take their lowest-id maximal
        // use — still a legal kill for each, just without sharing.
        if !meter.charge(n as u64) {
            for (p, mut maximal) in pending {
                maximal.sort_unstable();
                kill[p.index()] = Some(maximal[0]);
            }
            return;
        }
        let best = NodeId(
            (0..n)
                .max_by_key(|&u| (count[u], std::cmp::Reverse(u)))
                .expect("nonempty DAG") as u32,
        );
        debug_assert!(count[best.index()] > 0, "pending entries have candidates");
        pending.retain(|(p, cands)| {
            if cands.contains(&best) {
                kill[p.index()] = Some(best);
                for &u in cands {
                    count[u.index()] -= 1;
                }
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::ddg::DependenceDag;
    use ursa_ir::parser::parse;
    use ursa_machine::Machine;

    fn ctx_of(src: &str) -> AllocCtx<'static> {
        let p = parse(src).unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let m: &'static Machine = Box::leak(Box::new(Machine::homogeneous(4, 8)));
        AllocCtx::new(ddg, m)
    }

    /// The paper's hard case: sub-DAG {B, C, E, F} where B and C are each
    /// used by both E and F. Minimum cover picks the same killer for B
    /// and C, so the other use can execute while both values live.
    #[test]
    fn shared_killer_chosen_by_min_cover() {
        let ctx = ctx_of(
            "v0 = const 1\n\
             v1 = const 2\n\
             v2 = add v0, v1\n\
             v3 = mul v0, v1\n\
             store a[0], v2\n\
             store a[1], v3\n",
        );
        let kills = select_kills(&ctx, KillMode::MinCover);
        let b = ctx.ddg().dag().node(2); // v0
        let c = ctx.ddg().dag().node(3); // v1
        assert_eq!(
            kills.kill_of(b),
            kills.kill_of(c),
            "min cover shares one killer between B and C"
        );
    }

    #[test]
    fn naive_mode_picks_first_maximal_use() {
        let ctx = ctx_of(
            "v0 = const 1\n\
             v1 = const 2\n\
             v2 = add v0, v1\n\
             v3 = mul v0, v1\n\
             store a[0], v2\n\
             store a[1], v3\n",
        );
        let kills = select_kills(&ctx, KillMode::Naive);
        let b = ctx.ddg().dag().node(2);
        let e = ctx.ddg().dag().node(4);
        assert_eq!(kills.kill_of(b), Some(e), "lowest-id maximal use");
    }

    #[test]
    fn single_use_is_the_kill() {
        let ctx = ctx_of("v0 = const 1\nv1 = neg v0\nstore a[0], v1\n");
        let kills = select_kills(&ctx, KillMode::MinCover);
        let def = ctx.ddg().dag().node(2);
        let neg = ctx.ddg().dag().node(3);
        assert_eq!(kills.kill_of(def), Some(neg));
    }

    #[test]
    fn non_maximal_uses_cannot_kill() {
        // v0 used by v1 (= add) and by the store of v1's result chain:
        // the store is a descendant of the add, so only the store can be
        // last.
        let ctx = ctx_of("v0 = const 1\nv1 = add v0, 2\nstore a[v0], v1\n");
        let kills = select_kills(&ctx, KillMode::MinCover);
        let def = ctx.ddg().dag().node(2);
        let store = ctx.ddg().dag().node(4);
        assert_eq!(kills.kill_of(def), Some(store));
    }

    #[test]
    fn unused_value_killed_at_exit() {
        let ctx = ctx_of("v0 = const 1\n");
        let kills = select_kills(&ctx, KillMode::MinCover);
        let def = ctx.ddg().dag().node(2);
        assert_eq!(kills.kill_of(def), Some(ctx.ddg().exit()));
    }

    #[test]
    fn non_producers_have_no_kill() {
        let ctx = ctx_of("v0 = const 1\nstore a[0], v0\n");
        let kills = select_kills(&ctx, KillMode::MinCover);
        let store = ctx.ddg().dag().node(3);
        assert_eq!(kills.kill_of(store), None);
        assert_eq!(kills.kill_of(ctx.ddg().entry()), None);
    }

    #[test]
    fn min_cover_never_uses_more_killers_than_naive() {
        let ctx = ctx_of(
            "v0 = const 1\n\
             v1 = const 2\n\
             v2 = const 3\n\
             v3 = add v0, v1\n\
             v4 = mul v1, v2\n\
             v5 = add v0, v2\n\
             store a[0], v3\n\
             store a[1], v4\n\
             store a[2], v5\n",
        );
        let cover = select_kills(&ctx, KillMode::MinCover);
        let naive = select_kills(&ctx, KillMode::Naive);
        assert!(cover.distinct_killers() <= naive.distinct_killers());
    }
}
