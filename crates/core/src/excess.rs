//! Location of excessive chain sets (paper §3.1, Definition 6).
//!
//! Once measurement finds a resource whose requirement exceeds capacity,
//! URSA needs the *sets of allocation subchains that are independent of
//! each other* and more numerous than the available instances — these
//! are what the reduction transformations operate on. Following the
//! paper's worked example, subchains are obtained by trimming the
//! minimal decomposition: a chain's head is removed while it is an
//! ancestor of another chain's head, and a tail is removed while it is a
//! descendant of another chain's tail. The trimmed set lives inside a
//! hammock that bounds the scope of the transformations.

use crate::ctx::AllocCtx;
use crate::measure::ResourceMeasure;
use crate::resource::ResourceKind;
use ursa_graph::bitset::BitSet;
use ursa_graph::chains::max_antichain;
use ursa_graph::dag::NodeId;

/// An excessive chain set located in a hammock.
#[derive(Clone, Debug)]
pub struct ExcessiveChainSet {
    /// The resource whose requirements are excessive.
    pub resource: ResourceKind,
    /// Mutually independent allocation subchains, each head → tail;
    /// more of them than the machine has instances.
    pub chains: Vec<Vec<NodeId>>,
    /// Entry/exit of the innermost hammock containing the set.
    pub hammock: (NodeId, NodeId),
    /// All nodes of that hammock (boundary included).
    pub region: BitSet,
}

impl ExcessiveChainSet {
    /// How many subchains must be merged/delayed to fit `capacity`.
    pub fn excess_over(&self, capacity: u32) -> u32 {
        (self.chains.len() as u32).saturating_sub(capacity)
    }

    /// Heads of the subchains.
    pub fn heads(&self) -> Vec<NodeId> {
        self.chains.iter().map(|c| c[0]).collect()
    }

    /// Tails of the subchains.
    pub fn tails(&self) -> Vec<NodeId> {
        self.chains
            .iter()
            .map(|c| *c.last().expect("nonempty"))
            .collect()
    }

    /// Every node of every subchain.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.chains.iter().flatten().copied()
    }
}

/// Finds the excessive chain set for `measure`, or `None` when the
/// resource fits its capacity.
///
/// The trimming fixpoint can occasionally trim below the true width (the
/// chains interlock); in that case each member of a maximum antichain of
/// the `CanReuse` relation becomes its own singleton subchain, which
/// satisfies Definition 6 trivially. `kills` must be the kill map the
/// measurement was taken with.
pub fn find_excessive(
    ctx: &mut AllocCtx<'_>,
    measure: &ResourceMeasure,
    kills: &crate::kill::KillMap,
) -> Option<ExcessiveChainSet> {
    let req = measure.requirement;
    if req.fits() {
        return None;
    }
    let resource = req.resource;
    let mut chains: Vec<Vec<NodeId>> = measure
        .decomposition
        .chains()
        .iter()
        .filter(|c| !c.is_empty())
        .cloned()
        .collect();

    // Trim to mutually independent heads and tails.
    loop {
        let mut changed = false;
        // Heads: remove a head that is an ancestor of another head.
        let heads: Vec<NodeId> = chains.iter().map(|c| c[0]).collect();
        for (i, chain) in chains.iter_mut().enumerate() {
            let h = chain[0];
            if heads
                .iter()
                .enumerate()
                .any(|(j, &h2)| j != i && ctx.reach().reaches(h, h2))
            {
                chain.remove(0);
                changed = true;
            }
        }
        chains.retain(|c| !c.is_empty());
        // Tails: remove a tail that is a descendant of another tail.
        let tails: Vec<NodeId> = chains
            .iter()
            .map(|c| *c.last().expect("nonempty"))
            .collect();
        for (i, chain) in chains.iter_mut().enumerate() {
            let t = *chain.last().expect("nonempty");
            if tails
                .iter()
                .enumerate()
                .any(|(j, &t2)| j != i && ctx.reach().reaches(t2, t))
            {
                chain.pop();
                changed = true;
            }
        }
        chains.retain(|c| !c.is_empty());
        if !changed {
            break;
        }
    }

    if (chains.len() as u32) < req.required {
        // Trimming interlocked chains lost part of the witness; fall
        // back to a maximum antichain of singletons under the same
        // CanReuse relation the measurement used — its size is exactly
        // the measured requirement and it satisfies Definition 6
        // trivially.
        let nodes = ctx.resource_nodes(resource);
        let antichain = max_antichain(&nodes, |a, b| match resource {
            ResourceKind::Fu(_) => crate::measure::can_reuse_fu(ctx, a, b),
            ResourceKind::Registers => crate::measure::can_reuse_reg(ctx, kills, a, b),
        });
        debug_assert_eq!(antichain.len() as u32, req.required);
        if (antichain.len() as u32) <= req.capacity {
            return None;
        }
        chains = antichain.into_iter().map(|n| vec![n]).collect();
    }

    let n = ctx.ddg().dag().node_count();
    let mut members = BitSet::new(n);
    for c in &chains {
        for v in c {
            members.insert(v.index());
        }
    }
    let (hammock, region) = ctx.hammocks().innermost_containing(&members);
    Some(ExcessiveChainSet {
        resource,
        chains,
        hammock,
        region,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measure, MeasureOptions};
    use crate::resource::ResourceKind;
    use ursa_ir::ddg::DependenceDag;
    use ursa_ir::parser::parse;
    use ursa_machine::{FuClass, Machine};

    const FIG2: &str = "\
        v0 = load a[0]\n\
        v1 = mul v0, 2\n\
        v2 = mul v0, 3\n\
        v3 = add v0, 5\n\
        v4 = add v1, v2\n\
        v5 = mul v1, v2\n\
        v6 = mul v3, 2\n\
        v7 = div v3, 3\n\
        v8 = div v4, v5\n\
        v9 = add v6, v7\n\
        v10 = add v8, v9\n";

    fn ctx_of(src: &str, machine: Machine) -> AllocCtx<'static> {
        let p = parse(src).unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let m: &'static Machine = Box::leak(Box::new(machine));
        AllocCtx::new(ddg, m)
    }

    /// Node ids in the Figure 2 DAG: entry=0, exit=1, then A..K = 2..12.
    fn letter(n: NodeId) -> char {
        (b'A' + (n.0 - 2) as u8) as char
    }

    #[test]
    fn figure2_fu_excess_set_matches_paper() {
        // 3 FUs available, 4 required: paper's excessive set is
        // { {B,E}, {C,F}, {G}, {H} }.
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(3, 16));
        let m = measure(&mut ctx, MeasureOptions::default());
        let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
        let ex = find_excessive(&mut ctx, &fu, &m.kills).expect("excess exists");
        assert_eq!(ex.chains.len(), 4);
        let mut sets: Vec<String> = ex
            .chains
            .iter()
            .map(|c| c.iter().map(|&n| letter(n)).collect())
            .collect();
        sets.sort();
        // {B,E},{C,F} and {B,F},{C,E} are equally minimal decompositions
        // (E and F both depend on both B and C); accept either pairing.
        let paper = sets == ["BE", "CF", "G", "H"]
            || sets == ["BF", "CE", "G", "H"]
            || sets == ["B", "C", "E", "F", "G", "H"][..4].to_vec();
        assert!(
            sets == ["BE", "CF", "G", "H"]
                || sets == ["BF", "CE", "G", "H"]
                || sets == ["B", "C", "F", "G", "H"]
                || sets == ["B", "C", "E", "G", "H"],
            "paper §3.1 example (modulo symmetric pairings): {sets:?} {paper}"
        );
        assert_eq!(ex.excess_over(3), 1);
    }

    #[test]
    fn heads_and_tails_mutually_independent() {
        use crate::measure::{can_reuse_fu, can_reuse_reg};
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(3, 3));
        let m = measure(&mut ctx, MeasureOptions::default());
        for rm in m.resources.clone() {
            if let Some(ex) = find_excessive(&mut ctx, &rm, &m.kills) {
                // Independence is with respect to the resource's own
                // CanReuse relation (Definition 6 over allocation chains).
                let unrelated = |a, b| match rm.requirement.resource {
                    ResourceKind::Fu(_) => !can_reuse_fu(&ctx, a, b) && !can_reuse_fu(&ctx, b, a),
                    ResourceKind::Registers => {
                        !can_reuse_reg(&ctx, &m.kills, a, b) && !can_reuse_reg(&ctx, &m.kills, b, a)
                    }
                };
                let heads = ex.heads();
                for (i, &a) in heads.iter().enumerate() {
                    for &b in &heads[i + 1..] {
                        assert!(unrelated(a, b), "heads {a} {b}");
                    }
                }
                let tails = ex.tails();
                for (i, &a) in tails.iter().enumerate() {
                    for &b in &tails[i + 1..] {
                        assert!(unrelated(a, b), "tails {a} {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn fitting_resource_has_no_excess_set() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 16));
        let m = measure(&mut ctx, MeasureOptions::default());
        for rm in &m.resources {
            assert!(find_excessive(&mut ctx, rm, &m.kills).is_none());
        }
    }

    #[test]
    fn excess_set_region_is_a_hammock_containing_all_nodes() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(2, 16));
        let m = measure(&mut ctx, MeasureOptions::default());
        let fu = m.of(ResourceKind::Fu(FuClass::Universal)).unwrap().clone();
        let ex = find_excessive(&mut ctx, &fu, &m.kills).unwrap();
        for n in ex.nodes() {
            assert!(ex.region.contains(n.index()));
        }
    }

    #[test]
    fn register_excess_set_found() {
        let mut ctx = ctx_of(FIG2, Machine::homogeneous(8, 3));
        let m = measure(&mut ctx, MeasureOptions::default());
        let regs = m.of(ResourceKind::Registers).unwrap().clone();
        let ex = find_excessive(&mut ctx, &regs, &m.kills).expect("5 > 3");
        assert!(ex.chains.len() > 3);
        assert_eq!(ex.resource, ResourceKind::Registers);
    }
}
