//! URSA — Unified ReSource Allocation for registers and functional units
//! (Berson, Gupta, Soffa; 1993).
//!
//! URSA re-partitions instruction scheduling and register allocation into
//! an **allocation** phase (this crate) followed by an **assignment**
//! phase (`ursa-sched`). Allocation never fixes a schedule; it transforms
//! the dependence DAG until *no legal schedule* can demand more resources
//! than the target machine provides:
//!
//! 1. [`measure`] — per-resource `CanReuse` relations, minimum chain
//!    decompositions (Dilworth/Ford–Fulkerson with hammock-priority
//!    matching), worst-case requirements.
//! 2. [`excess`] — excessive chain sets located in hammocks.
//! 3. [`transform`] — the three reduction transformations (FU
//!    sequentialization, register sequentialization, spilling).
//! 4. [`driver`] — the integrated / phased application loop.
//!
//! # Examples
//!
//! ```
//! use ursa_core::{allocate, UrsaConfig};
//! use ursa_ir::ddg::DependenceDag;
//! use ursa_ir::parser::parse;
//! use ursa_machine::Machine;
//!
//! // A block with more parallelism than the machine can host.
//! let program = parse(
//!     "v0 = load a[0]\n\
//!      v1 = mul v0, 2\n\
//!      v2 = mul v0, 3\n\
//!      v3 = add v1, v2\n\
//!      store a[1], v3\n",
//! ).unwrap();
//! let ddg = DependenceDag::from_entry_block(&program);
//! let machine = Machine::homogeneous(1, 2);
//! let outcome = allocate(ddg, &machine, &UrsaConfig::default());
//! assert_eq!(outcome.residual_excess, 0);
//! assert!(outcome.final_measurement.fits(&machine));
//! ```

pub mod bounds;
pub mod budget;
pub mod ctx;
pub mod driver;
pub mod excess;
pub mod fault;
pub mod incremental;
pub mod kill;
pub mod measure;
pub mod resource;
pub mod reuse;
pub mod transform;

pub use bounds::{bounds_from_ctx, schedule_bounds, FuOccupancyBound, ScheduleBounds};
pub use budget::{BudgetCause, CompileBudget};
pub use ctx::AllocCtx;
pub use driver::{
    allocate, allocate_budgeted, AllocationOutcome, Step, StepKind, Strategy, UrsaConfig,
};
pub use excess::{find_excessive, ExcessiveChainSet};
pub use fault::{FaultKind, FaultPlan, FaultSite};
pub use incremental::{CtxTxn, IncrementalEngine, ProbeResult};
pub use kill::{select_kills, KillMap, KillMode};
pub use measure::{
    measure, measure_resource, MeasureOptions, Measurement, MeasurementSummary, ResourceMeasure,
};
pub use resource::{Requirement, ResourceKind};
pub use reuse::{reuse_dag, ReuseDag};
pub use transform::{TransformError, TransformReport};
