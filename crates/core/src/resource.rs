//! Resource kinds and measured requirements.

use std::fmt;
use ursa_machine::{FuClass, Machine};

/// A resource class URSA allocates (paper §2: registers and functional
/// units are treated uniformly; §5 extends to several classes of each).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ResourceKind {
    /// Functional units of one class.
    Fu(FuClass),
    /// The (single-class) register file.
    Registers,
}

impl ResourceKind {
    /// The number of instances the machine provides.
    pub fn capacity(self, machine: &Machine) -> u32 {
        match self {
            ResourceKind::Fu(class) => machine.fu_count(class),
            ResourceKind::Registers => machine.registers(),
        }
    }

    /// Every resource kind `machine` exposes: one per functional-unit
    /// class, plus registers.
    pub fn all_for(machine: &Machine) -> Vec<ResourceKind> {
        let mut out: Vec<ResourceKind> = machine
            .fu_classes()
            .iter()
            .map(|&(c, _)| ResourceKind::Fu(c))
            .collect();
        out.push(ResourceKind::Registers);
        out
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceKind::Fu(c) => write!(f, "fu:{c}"),
            ResourceKind::Registers => write!(f, "registers"),
        }
    }
}

/// The measured requirement of one resource kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Requirement {
    /// The resource measured.
    pub resource: ResourceKind,
    /// Instances the machine provides.
    pub capacity: u32,
    /// Worst-case instances any legal schedule of the DAG can demand
    /// (the chain count of the minimum decomposition, Theorem 1).
    pub required: u32,
}

impl Requirement {
    /// Requirement above capacity (0 when the resource fits).
    pub fn excess(&self) -> u32 {
        self.required.saturating_sub(self.capacity)
    }

    /// `true` if no legal schedule can exceed the machine's capacity.
    pub fn fits(&self) -> bool {
        self.required <= self.capacity
    }
}

impl fmt::Display for Requirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: required {} of {} available",
            self.resource, self.required, self.capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_from_machine() {
        let m = Machine::homogeneous(4, 8);
        assert_eq!(ResourceKind::Fu(FuClass::Universal).capacity(&m), 4);
        assert_eq!(ResourceKind::Registers.capacity(&m), 8);
        assert_eq!(ResourceKind::Fu(FuClass::Mul).capacity(&m), 0);
    }

    #[test]
    fn all_for_lists_every_class_plus_registers() {
        let m = Machine::classic_vliw();
        let all = ResourceKind::all_for(&m);
        assert_eq!(all.len(), 6); // 5 FU classes + registers
        assert!(all.contains(&ResourceKind::Registers));
        assert!(all.contains(&ResourceKind::Fu(FuClass::Mem)));

        let h = Machine::homogeneous(2, 4);
        assert_eq!(ResourceKind::all_for(&h).len(), 2);
    }

    #[test]
    fn excess_and_fits() {
        let r = Requirement {
            resource: ResourceKind::Registers,
            capacity: 4,
            required: 6,
        };
        assert_eq!(r.excess(), 2);
        assert!(!r.fits());
        let ok = Requirement {
            resource: ResourceKind::Registers,
            capacity: 6,
            required: 4,
        };
        assert_eq!(ok.excess(), 0);
        assert!(ok.fits());
    }

    #[test]
    fn display_is_informative() {
        let r = Requirement {
            resource: ResourceKind::Fu(FuClass::Alu),
            capacity: 2,
            required: 5,
        };
        let s = r.to_string();
        assert!(s.contains("fu:alu"));
        assert!(s.contains('5'));
    }
}
