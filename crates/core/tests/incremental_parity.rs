//! Incremental/scratch parity: the reduce loop must make *identical*
//! decisions whether candidates are scored by the delta-propagating
//! [`ursa_core::IncrementalEngine`] or by cloning the context and
//! re-measuring from scratch.
//!
//! This is the contract DESIGN.md's "incremental measurement" section
//! states: incremental probing is an optimization of the *measurement
//! mechanics*, never of the *decision procedure*. Every maximum
//! matching of a `CanReuse` relation has the same cardinality, so the
//! probe returns the same requirement counts, the same candidates win,
//! and the transformed DAGs come out byte-identical — asserted here via
//! the structural fingerprint on all nine paper kernels under all four
//! strategies, and on random traces.

use ursa_core::{allocate, AllocationOutcome, Strategy, UrsaConfig};
use ursa_ir::ddg::DependenceDag;
use ursa_machine::Machine;
use ursa_workloads::kernels::kernel_suite;
use ursa_workloads::random::{random_block, RandomShape};

const STRATEGIES: [Strategy; 4] = [
    Strategy::Integrated,
    Strategy::Phased,
    Strategy::PhasedFuFirst,
    Strategy::SpillOnly,
];

/// Runs the same allocation with the engine on and off and asserts the
/// outcomes are indistinguishable.
fn assert_parity(ddg: &DependenceDag, machine: &Machine, strategy: Strategy, what: &str) {
    let run = |incremental: bool, paranoid_measure: bool| -> AllocationOutcome {
        allocate(
            ddg.clone(),
            machine,
            &UrsaConfig {
                strategy,
                incremental,
                paranoid_measure,
                ..UrsaConfig::default()
            },
        )
    };
    // The incremental run also cross-checks every probe differentially
    // (ParanoidMeasure) — any disagreement panics with both summaries.
    let inc = run(true, true);
    let scratch = run(false, false);

    assert_eq!(
        inc.ddg.dag().fingerprint(),
        scratch.ddg.dag().fingerprint(),
        "{what} ({strategy:?}): transformed DAGs differ structurally"
    );
    assert_eq!(
        inc.final_measurement, scratch.final_measurement,
        "{what} ({strategy:?}): final measurements differ"
    );
    assert_eq!(
        inc.residual_excess, scratch.residual_excess,
        "{what} ({strategy:?}): residual excess differs"
    );
    assert_eq!(
        inc.critical_path, scratch.critical_path,
        "{what} ({strategy:?}): critical paths differ"
    );
    assert_eq!(
        format!("{:?}", inc.steps),
        format!("{:?}", scratch.steps),
        "{what} ({strategy:?}): step sequences differ"
    );
}

#[test]
fn paper_kernels_all_strategies() {
    // Tight enough that every kernel needs transformations, roomy
    // enough that allocation converges quickly in debug builds.
    let machines = [Machine::homogeneous(2, 4), Machine::classic_vliw()];
    for kernel in kernel_suite() {
        let ddg = DependenceDag::from_entry_block(&kernel.program);
        for machine in &machines {
            for strategy in STRATEGIES {
                assert_parity(&ddg, machine, strategy, &kernel.name);
            }
        }
    }
}

#[test]
fn random_traces_integrated() {
    for seed in 0..6 {
        let shape = RandomShape {
            ops: 48,
            ..RandomShape::default()
        };
        let program = random_block(seed, shape);
        let ddg = DependenceDag::from_entry_block(&program);
        let machine = Machine::homogeneous(3, 6);
        assert_parity(
            &ddg,
            &machine,
            Strategy::Integrated,
            &format!("seed {seed}"),
        );
    }
}

/// Interleaved probe/commit/rollback statelessness of the journaled
/// kill selector: after any mix of probed-and-rolled-back transactions
/// and committed edges, the maintained [`KillMap`] must equal a scratch
/// `select_kills` of the context, and a freshly primed selector must
/// probe the next edge to the same answer as the long-lived one.
#[test]
fn kill_selector_journal_is_stateless_across_interleaving() {
    use ursa_core::kill::KillSelector;
    use ursa_core::{select_kills, AllocCtx, CtxTxn, KillMode};
    use ursa_graph::meter::Unmetered;

    let program = random_block(
        11,
        RandomShape {
            ops: 40,
            ..RandomShape::default()
        },
    );
    let ddg = DependenceDag::from_entry_block(&program);
    let machine = Machine::homogeneous(4, 8);
    let mut ctx = AllocCtx::new(ddg, &machine);
    for mode in [KillMode::MinCover, KillMode::Naive] {
        let mut selector = KillSelector::prime(&ctx, select_kills(&ctx, mode), mode);
        let order = ctx.ddg().dag().topo_order().expect("acyclic");
        let legal: Vec<_> = order
            .iter()
            .flat_map(|&u| order.iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u != v && !ctx.reach().reaches(u, v) && !ctx.would_cycle(u, v))
            .take(12)
            .collect();
        for (step, &(u, v)) in legal.iter().enumerate() {
            if ctx.reach().reaches(u, v) || ctx.would_cycle(u, v) {
                continue; // an earlier committed edge implied or blocked it
            }
            // Probe and roll back: the base map must be untouched.
            let mut txn = CtxTxn::begin(&ctx);
            txn.add_sequence_edge(&mut ctx, u, v);
            let probed = selector.probe_metered(&ctx, txn.deltas(), &Unmetered);
            let probed_map = probed.clone().unwrap_or_else(|| selector.kills().clone());
            assert_eq!(
                probed_map,
                select_kills(&ctx, mode),
                "step {step} ({mode:?}): probe disagrees with scratch"
            );
            txn.rollback(&mut ctx);
            assert_eq!(
                *selector.kills(),
                select_kills(&ctx, mode),
                "step {step} ({mode:?}): rollback leaked into the base map"
            );
            // Commit every other edge for real and advance the journal.
            if step % 2 == 0 {
                ctx.add_sequence_edge(u, v);
                selector.advance(&ctx, probed);
                assert_eq!(
                    *selector.kills(),
                    select_kills(&ctx, mode),
                    "step {step} ({mode:?}): advanced map diverged from scratch"
                );
                let fresh = KillSelector::prime(&ctx, select_kills(&ctx, mode), mode);
                assert_eq!(
                    fresh.pending_len(),
                    selector.pending_len(),
                    "step {step} ({mode:?}): journal shape diverged from a fresh prime"
                );
            }
        }
    }
}

/// Interleaved probe/commit statelessness of the hammock cache: engine
/// probes roll the installed analysis back, and every committed batch
/// installs a delta-updated analysis equal to a from-scratch
/// [`HammockAnalysis::analyze`] of the adopted DAG.
#[test]
fn hammock_cache_is_stateless_across_interleaving() {
    use ursa_core::{select_kills, AllocCtx, IncrementalEngine, KillMode};
    use ursa_graph::hammock::HammockAnalysis;

    let program = random_block(
        13,
        RandomShape {
            ops: 40,
            ..RandomShape::default()
        },
    );
    let ddg = DependenceDag::from_entry_block(&program);
    let machine = Machine::homogeneous(2, 4);
    let mut ctx = AllocCtx::new(ddg, &machine);
    let kills = select_kills(&ctx, KillMode::MinCover);
    // Paranoid mode: every commit cross-checks the delta-updated
    // analysis against a fresh analyze() internally as well.
    let mut engine = IncrementalEngine::new(&ctx, &kills, KillMode::MinCover, true);
    let order = ctx.ddg().dag().topo_order().expect("acyclic");
    let legal: Vec<_> = order
        .iter()
        .flat_map(|&u| order.iter().map(move |&v| (u, v)))
        .filter(|&(u, v)| u != v && !ctx.reach().reaches(u, v) && !ctx.would_cycle(u, v))
        .take(8)
        .collect();
    let mut expected = HammockAnalysis::analyze(ctx.ddg().dag()).expect("anchored DAG");
    for (step, &(u, v)) in legal.iter().enumerate() {
        if ctx.reach().reaches(u, v) || ctx.would_cycle(u, v) {
            continue;
        }
        // A probe must leave the installed analysis untouched.
        let _ = engine.probe(&mut ctx, &[(u, v)]);
        assert_eq!(
            *ctx.hammocks(),
            expected,
            "step {step}: probe rollback leaked hammock state"
        );
        if step % 2 == 0 {
            engine.commit(&mut ctx, &[(u, v)]);
            expected = HammockAnalysis::analyze(ctx.ddg().dag()).expect("anchored DAG");
            assert_eq!(
                *ctx.hammocks(),
                expected,
                "step {step}: committed delta analysis differs from scratch"
            );
        }
    }
}

#[test]
fn interleaved_probe_revert_probe_is_stateless() {
    // Re-running the same allocation twice with one engine-enabled run
    // in between must be deterministic: the engine never leaks state
    // into the context it probes.
    let kernel = &kernel_suite()[0];
    let ddg = DependenceDag::from_entry_block(&kernel.program);
    let machine = Machine::homogeneous(2, 3);
    let cfg = UrsaConfig {
        incremental: true,
        ..UrsaConfig::default()
    };
    let a = allocate(ddg.clone(), &machine, &cfg);
    let b = allocate(ddg.clone(), &machine, &cfg);
    assert_eq!(a.ddg.dag().fingerprint(), b.ddg.dag().fingerprint());
    assert_eq!(format!("{:?}", a.steps), format!("{:?}", b.steps));
}
