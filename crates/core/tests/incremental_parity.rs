//! Incremental/scratch parity: the reduce loop must make *identical*
//! decisions whether candidates are scored by the delta-propagating
//! [`ursa_core::IncrementalEngine`] or by cloning the context and
//! re-measuring from scratch.
//!
//! This is the contract DESIGN.md's "incremental measurement" section
//! states: incremental probing is an optimization of the *measurement
//! mechanics*, never of the *decision procedure*. Every maximum
//! matching of a `CanReuse` relation has the same cardinality, so the
//! probe returns the same requirement counts, the same candidates win,
//! and the transformed DAGs come out byte-identical — asserted here via
//! the structural fingerprint on all nine paper kernels under all four
//! strategies, and on random traces.

use ursa_core::{allocate, AllocationOutcome, Strategy, UrsaConfig};
use ursa_ir::ddg::DependenceDag;
use ursa_machine::Machine;
use ursa_workloads::kernels::kernel_suite;
use ursa_workloads::random::{random_block, RandomShape};

const STRATEGIES: [Strategy; 4] = [
    Strategy::Integrated,
    Strategy::Phased,
    Strategy::PhasedFuFirst,
    Strategy::SpillOnly,
];

/// Runs the same allocation with the engine on and off and asserts the
/// outcomes are indistinguishable.
fn assert_parity(ddg: &DependenceDag, machine: &Machine, strategy: Strategy, what: &str) {
    let run = |incremental: bool, paranoid_measure: bool| -> AllocationOutcome {
        allocate(
            ddg.clone(),
            machine,
            &UrsaConfig {
                strategy,
                incremental,
                paranoid_measure,
                ..UrsaConfig::default()
            },
        )
    };
    // The incremental run also cross-checks every probe differentially
    // (ParanoidMeasure) — any disagreement panics with both summaries.
    let inc = run(true, true);
    let scratch = run(false, false);

    assert_eq!(
        inc.ddg.dag().fingerprint(),
        scratch.ddg.dag().fingerprint(),
        "{what} ({strategy:?}): transformed DAGs differ structurally"
    );
    assert_eq!(
        inc.final_measurement, scratch.final_measurement,
        "{what} ({strategy:?}): final measurements differ"
    );
    assert_eq!(
        inc.residual_excess, scratch.residual_excess,
        "{what} ({strategy:?}): residual excess differs"
    );
    assert_eq!(
        inc.critical_path, scratch.critical_path,
        "{what} ({strategy:?}): critical paths differ"
    );
    assert_eq!(
        format!("{:?}", inc.steps),
        format!("{:?}", scratch.steps),
        "{what} ({strategy:?}): step sequences differ"
    );
}

#[test]
fn paper_kernels_all_strategies() {
    // Tight enough that every kernel needs transformations, roomy
    // enough that allocation converges quickly in debug builds.
    let machines = [Machine::homogeneous(2, 4), Machine::classic_vliw()];
    for kernel in kernel_suite() {
        let ddg = DependenceDag::from_entry_block(&kernel.program);
        for machine in &machines {
            for strategy in STRATEGIES {
                assert_parity(&ddg, machine, strategy, &kernel.name);
            }
        }
    }
}

#[test]
fn random_traces_integrated() {
    for seed in 0..6 {
        let shape = RandomShape {
            ops: 48,
            ..RandomShape::default()
        };
        let program = random_block(seed, shape);
        let ddg = DependenceDag::from_entry_block(&program);
        let machine = Machine::homogeneous(3, 6);
        assert_parity(
            &ddg,
            &machine,
            Strategy::Integrated,
            &format!("seed {seed}"),
        );
    }
}

#[test]
fn interleaved_probe_revert_probe_is_stateless() {
    // Re-running the same allocation twice with one engine-enabled run
    // in between must be deterministic: the engine never leaks state
    // into the context it probes.
    let kernel = &kernel_suite()[0];
    let ddg = DependenceDag::from_entry_block(&kernel.program);
    let machine = Machine::homogeneous(2, 3);
    let cfg = UrsaConfig {
        incremental: true,
        ..UrsaConfig::default()
    };
    let a = allocate(ddg.clone(), &machine, &cfg);
    let b = allocate(ddg.clone(), &machine, &cfg);
    assert_eq!(a.ddg.dag().fingerprint(), b.ddg.dag().fingerprint());
    assert_eq!(format!("{:?}", a.steps), format!("{:?}", b.steps));
}
