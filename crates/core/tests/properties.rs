//! Property-based tests for the URSA core: the paper's structural
//! claims must hold on arbitrary programs, not just the worked example.

// The proptest dependency is unavailable in hermetic builds; this whole
// suite only compiles under `--features proptest` after the crate is
// added back (see CONTRIBUTING.md "Hermetic builds").
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use ursa_core::{measure, select_kills, AllocCtx, KillMode, MeasureOptions, ResourceKind};
use ursa_graph::dag::NodeId;
use ursa_ir::ddg::DependenceDag;
use ursa_machine::{FuClass, Machine};
use ursa_workloads::random::{random_block, RandomShape};

fn arb_shape() -> impl Strategy<Value = RandomShape> {
    (6usize..30, 1usize..6, 1usize..10, 0u32..40).prop_map(|(ops, seeds, window, store_pct)| {
        RandomShape {
            ops,
            seeds,
            window,
            store_pct,
        }
    })
}

fn ctx_of(seed: u64, shape: RandomShape, machine: &Machine) -> AllocCtx<'_> {
    let program = random_block(seed, shape);
    AllocCtx::new(DependenceDag::from_entry_block(&program), machine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// §5: "Neither [sequentialization] transformation can increase the
    /// requirements of either resource" — adding any legal sequence
    /// edge never increases the *FU* requirement. (Register
    /// requirements can shift because Kill() changes; the FU relation
    /// is pure reachability, so the claim is exact there.)
    #[test]
    fn sequence_edges_never_increase_fu_requirement(
        seed in 0u64..500,
        shape in arb_shape(),
        picks in proptest::collection::vec((0usize..64, 0usize..64), 1..6),
    ) {
        let machine = Machine::homogeneous(4, 16);
        let mut ctx = ctx_of(seed, shape, &machine);
        let before = measure(&mut ctx, MeasureOptions::default());
        let fu_before = before
            .of(ResourceKind::Fu(FuClass::Universal))
            .unwrap()
            .requirement
            .required;
        let n = ctx.ddg().dag().node_count();
        for (a, b) in picks {
            let (a, b) = (NodeId::from(a % n), NodeId::from(b % n));
            if a != b && !ctx.would_cycle(a, b) && !ctx.reach().reaches(a, b) {
                ctx.add_sequence_edge(a, b);
            }
        }
        let after = measure(&mut ctx, MeasureOptions::default());
        let fu_after = after
            .of(ResourceKind::Fu(FuClass::Universal))
            .unwrap()
            .requirement
            .required;
        prop_assert!(fu_after <= fu_before, "{fu_before} -> {fu_after}");
    }

    /// The kill of every value is one of its kill candidates, and a
    /// killer drawn from the uses is always *maximal* (no other use of
    /// the same value can run after it in every schedule). Greedy set
    /// cover is an approximation (Theorem 2), so no cardinality claim
    /// is made against the naive policy here — ablation T6 reports the
    /// measured tendency instead.
    #[test]
    fn kill_selection_is_sound(seed in 0u64..500, shape in arb_shape()) {
        let machine = Machine::homogeneous(4, 16);
        let ctx = ctx_of(seed, shape, &machine);
        for mode in [KillMode::MinCover, KillMode::Naive] {
            let kills = select_kills(&ctx, mode);
            for v in ctx.ddg().value_nodes() {
                let k = kills.kill_of(v).expect("every producer has a kill");
                prop_assert!(
                    ctx.ddg().kill_candidates(v).contains(&k),
                    "kill of {v} is not a candidate"
                );
                // A use-killer is never an ancestor of another use.
                if ctx.ddg().uses_of(v).contains(&k) {
                    for &u in ctx.ddg().uses_of(v) {
                        prop_assert!(
                            u == k || !ctx.reach().reaches(k, u),
                            "killer {k} precedes use {u}"
                        );
                    }
                }
            }
        }
    }

    /// Both Kill() policies yield structurally valid measurements (the
    /// decompositions partition the producers and respect CanReuse).
    /// Min-cover *tends* to measure at least as much pressure as naive
    /// (Theorem 2's intent, confirmed by ablation T6 on the kernel
    /// suite), but neither dominates universally: choosing a shared
    /// killer changes the whole relation, which can occasionally shrink
    /// one antichain while growing another.
    #[test]
    fn both_kill_policies_yield_valid_measurements(seed in 0u64..500, shape in arb_shape()) {
        let machine = Machine::homogeneous(4, 16);
        let mut ctx = ctx_of(seed, shape, &machine);
        for mode in [KillMode::MinCover, KillMode::Naive] {
            let m = measure(&mut ctx, MeasureOptions {
                kill_mode: mode,
                plain_matching: false,
            });
            let regs = m.of(ResourceKind::Registers).unwrap();
            let producers = ctx.resource_nodes(ResourceKind::Registers).len();
            prop_assert_eq!(regs.decomposition.node_count(), producers);
            prop_assert!(regs.requirement.required >= 1 || producers == 0);
            let kills = select_kills(&ctx, mode);
            let valid = regs
                .decomposition
                .is_valid_under(|a, b| ursa_core::measure::can_reuse_reg(&ctx, &kills, a, b));
            prop_assert!(valid, "decomposition violates CanReuse");
        }
    }

    /// Staged and plain matching always agree on every requirement.
    #[test]
    fn matching_variants_agree(seed in 0u64..500, shape in arb_shape()) {
        let machine = Machine::classic_vliw();
        let mut ctx = ctx_of(seed, shape, &machine);
        let staged = measure(&mut ctx, MeasureOptions::default());
        let plain = measure(&mut ctx, MeasureOptions {
            kill_mode: KillMode::MinCover,
            plain_matching: true,
        });
        for (s, p) in staged
            .summary()
            .requirements
            .iter()
            .zip(plain.summary().requirements.iter())
        {
            prop_assert_eq!(s.resource, p.resource);
            prop_assert_eq!(s.required, p.required, "{}", s.resource);
        }
    }

    /// Requirements decompose consistently: the sum of per-class FU
    /// requirements on a classed machine is at least the homogeneous
    /// requirement's lower bound... precisely: each class requirement
    /// never exceeds the homogeneous (universal) requirement.
    #[test]
    fn classed_requirements_bounded_by_universal(seed in 0u64..500, shape in arb_shape()) {
        let program = random_block(seed, shape);
        let homo = Machine::homogeneous(4, 16);
        let classed = Machine::classic_vliw();
        let mut ctx_h = AllocCtx::new(DependenceDag::from_entry_block(&program), &homo);
        let mut ctx_c = AllocCtx::new(DependenceDag::from_entry_block(&program), &classed);
        let mh = measure(&mut ctx_h, MeasureOptions::default());
        let mc = measure(&mut ctx_c, MeasureOptions::default());
        let universal = mh
            .of(ResourceKind::Fu(FuClass::Universal))
            .unwrap()
            .requirement
            .required;
        for rm in &mc.resources {
            if let ResourceKind::Fu(_) = rm.requirement.resource {
                prop_assert!(
                    rm.requirement.required <= universal,
                    "{} requirement {} exceeds universal {}",
                    rm.requirement.resource,
                    rm.requirement.required,
                    universal
                );
            }
        }
    }
}
