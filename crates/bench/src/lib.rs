//! Experiment harness for the URSA reproduction: runners that
//! regenerate every paper figure and the constructed evaluation tables.
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! recorded results. The `experiments` binary prints any table:
//!
//! ```sh
//! cargo run --release -p ursa-bench --bin experiments -- all
//! ```

pub mod harness;
pub mod tables;
