use ursa_core::*;
use ursa_ir::ddg::DependenceDag;
use ursa_machine::Machine;
use ursa_sched::{list_schedule, schedule_pressure};
use ursa_workloads::random::{random_block, RandomShape};
fn main() {
    let shape = RandomShape {
        ops: 7,
        seeds: 2,
        window: 5,
        store_pct: 0,
    };
    let program = random_block(314, shape);
    println!("{program}");
    let machine = Machine::homogeneous(4, 64);
    let ddg = DependenceDag::from_entry_block(&program);
    let s = list_schedule(&ddg, &machine);
    for op in s.ops() {
        println!("cycle {} : {}", op.cycle, ddg.describe(op.node));
    }
    println!("pressure {}", schedule_pressure(&ddg, &s, &machine));
    let mut ctx = AllocCtx::new(ddg, &machine);
    let m = measure(&mut ctx, MeasureOptions::default());
    let regs = m.of(ResourceKind::Registers).unwrap();
    println!("bound {}", regs.requirement.required);
    for c in regs.decomposition.chains() {
        println!(
            "chain {:?}",
            c.iter().map(|&n| ctx.ddg().describe(n)).collect::<Vec<_>>()
        );
    }
    for v in ctx.ddg().value_nodes().collect::<Vec<_>>() {
        println!(
            "kill({}) = {:?} uses {:?} live_out {}",
            ctx.ddg().describe(v),
            m.kills.kill_of(v).map(|k| ctx.ddg().describe(k)),
            ctx.ddg()
                .uses_of(v)
                .iter()
                .map(|&u| ctx.ddg().describe(u))
                .collect::<Vec<_>>(),
            ctx.ddg().is_live_out(v)
        );
    }
}
