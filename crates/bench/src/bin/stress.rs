//! `stress` — seeded differential stress harness for the fail-safe
//! pipeline.
//!
//! Drives deterministic random programs (`ursa-workloads::random`)
//! through every compilation strategy on a grid of machines, inside
//! `catch_unwind`, and verifies each compile with **two independent
//! oracles**: the differential reference interpreter (`ursa-vm::equiv`,
//! one concrete input) and the static translation validator
//! (`ursa-lint`, all inputs at once). Either oracle rejecting fails the
//! case; when they disagree the failure is annotated — a static-only
//! reject can be a validator bug or a latent miscompile the seeded
//! input missed, and both deserve a look. Every failure prints the
//! exact seed and a single-case repro command.
//!
//! ```text
//! stress                          # default grid, seeds 0..64
//! stress --seeds 0..256           # acceptance sweep
//! stress --seeds 41..42           # one seed (repro)
//! stress --validate               # stage invariant checks on
//! stress --paranoid-measure       # differential incremental-measure checks
//! stress --machine vliw2r3        # filter machines by name substring
//! stress --strategy ursa-phased   # filter strategies by name
//! stress --programs               # multi-block CFGs through the whole-program driver
//! stress --quality                # third oracle: bounds-based quality lints (counted)
//! stress --chaos                  # fault injection: programs × fault plans
//! stress --chaos --plans 8        # fault plans per (seed, machine, strategy)
//! stress --chaos --fault-seed 7   # base seed for the fault-plan derivation
//! stress --deadline-ms 50         # wall-clock budget per compilation
//! stress --max-steps 100000       # cooperative work-step cap per compilation
//! ```
//!
//! **Programs mode** (`--programs`) swaps the straight-line generator
//! for seeded multi-block CFGs (diamonds, counted loops, side exits)
//! and the per-trace pipeline for the whole-program driver
//! (`ursa_sched::compile_program`). The oracles scale with it: the
//! static side is `ursa_lint::lint_program` (per-unit validator replay
//! plus the boundary hand-off contract), the dynamic side is
//! `check_program_equivalence` (sequential reference vs. the stitched
//! unit schedules on one seeded input).
//!
//! **Quality mode** (`--quality`) runs the schedule-quality analyzer
//! (`ursa-lint::bounds`, the `U03xx` family) as a **third oracle** over
//! every successful compile: quality warnings are counted and reported
//! in the summary but never fail a case — suboptimality is not a
//! miscompile, and the dual correctness oracles keep the final word.
//!
//! **Chaos mode** arms one seeded [`ursa_core::FaultPlan`] per case
//! (allocation refusals, poisoned matching rows, widening-cap hits,
//! synthetic panics, budget starvation — each at a named stage site)
//! and compiles with panic isolation on. The contract it enforces:
//! every case ends in working verified code **or a typed error — never
//! a raw panic, never a miscompile**. Successful compiles still run
//! both oracles; a typed error is counted, attributed, and accepted.
//!
//! Exit status: 0 when every case passes, 1 otherwise.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use ursa_core::{Strategy, UrsaConfig};
use ursa_ir::ddg::DependenceDag;
use ursa_ir::Trace;
use ursa_lint::{analyze_quality, lint_program, validate_translation, BoundsOptions};
use ursa_machine::Machine;
use ursa_rng::Rng;
use ursa_sched::{
    try_compile_program, try_compile_with, CompileError, CompileStrategy, PipelineOptions,
};
use ursa_vm::equiv::{check_equivalence, seeded_memory};
use ursa_vm::program::check_program_equivalence;
use ursa_workloads::random::{random_block, random_cfg, CfgShape, RandomShape};

struct Options {
    seeds: std::ops::Range<u64>,
    validate: bool,
    paranoid_measure: bool,
    machine_filter: Option<String>,
    strategy_filter: Option<String>,
    programs: bool,
    quality: bool,
    chaos: bool,
    fault_seed: u64,
    plans: u64,
    deadline_ms: Option<u64>,
    max_steps: Option<u64>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seeds: 0..64,
        validate: false,
        paranoid_measure: false,
        machine_filter: None,
        strategy_filter: None,
        programs: false,
        quality: false,
        chaos: false,
        fault_seed: 0,
        plans: 8,
        deadline_ms: None,
        max_steps: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => {
                let spec = take("--seeds")?;
                let (a, b) = spec
                    .split_once("..")
                    .ok_or_else(|| format!("--seeds wants A..B, got '{spec}'"))?;
                let lo: u64 = a.parse().map_err(|e| format!("--seeds: {e}"))?;
                let hi: u64 = b.parse().map_err(|e| format!("--seeds: {e}"))?;
                opts.seeds = lo..hi;
            }
            "--validate" => opts.validate = true,
            "--paranoid-measure" => opts.paranoid_measure = true,
            "--machine" => opts.machine_filter = Some(take("--machine")?),
            "--strategy" => opts.strategy_filter = Some(take("--strategy")?),
            "--programs" => opts.programs = true,
            "--quality" => opts.quality = true,
            "--chaos" => opts.chaos = true,
            "--fault-seed" => {
                opts.fault_seed = take("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("--fault-seed: {e}"))?
            }
            "--plans" => {
                opts.plans = take("--plans")?
                    .parse()
                    .map_err(|e| format!("--plans: {e}"))?;
                if opts.plans == 0 {
                    return Err("--plans must be at least 1".to_string());
                }
            }
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    take("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--max-steps" => {
                opts.max_steps = Some(
                    take("--max-steps")?
                        .parse()
                        .map_err(|e| format!("--max-steps: {e}"))?,
                )
            }
            "--help" | "-h" => {
                return Err(
                    "usage: stress [--seeds A..B] [--validate] [--paranoid-measure] \
                            [--machine NAME] [--strategy NAME] [--programs] [--quality] \
                            [--chaos] [--fault-seed N] [--plans N] [--deadline-ms N] \
                            [--max-steps N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

/// The machine grid: homogeneous shapes from scalar to wide, tight to
/// roomy register files (≥ 3, the pipeline's floor), plus the classed
/// and pipelined machines.
fn machine_grid() -> Vec<Machine> {
    let mut machines = Vec::new();
    for fus in [1u32, 2, 4] {
        for regs in [3u32, 4, 8, 16] {
            machines.push(Machine::homogeneous(fus, regs));
        }
    }
    // High FU pressure with a register file wide enough to never spill:
    // allocation is pure FU sequentialization, driving the monotone
    // antichain repeat loop (and, on wide traces, its frozen-cost
    // picker) under the ParanoidMeasure differential oracle.
    machines.push(Machine::homogeneous(2, 1 << 12));
    machines.push(Machine::classic_vliw());
    machines.push(Machine::pipelined_vliw());
    machines
}

/// Strategy menu: the four public kinds plus URSA's alternate
/// disciplines, so every rung of the degradation ladder gets exercised.
/// With `paranoid_measure` the URSA strategies cross-check every
/// incremental measurement probe against a from-scratch measurement
/// (`ParanoidMeasure`); any disagreement panics and is reported as a
/// failure with its seed.
fn strategy_menu(paranoid_measure: bool) -> Vec<(&'static str, CompileStrategy)> {
    let ursa = |strategy| {
        CompileStrategy::Ursa(UrsaConfig {
            strategy,
            paranoid_measure,
            ..UrsaConfig::default()
        })
    };
    vec![
        ("ursa", ursa(Strategy::Integrated)),
        ("ursa-phased", ursa(Strategy::Phased)),
        ("ursa-fu-first", ursa(Strategy::PhasedFuFirst)),
        ("ursa-spill-only", ursa(Strategy::SpillOnly)),
        ("postpass", CompileStrategy::Postpass),
        ("prepass", CompileStrategy::Prepass),
        ("goodman-hsu", CompileStrategy::GoodmanHsu),
    ]
}

/// Program shape drawn deterministically from the seed, spanning chains
/// to wide blocks.
fn shape_for(seed: u64) -> RandomShape {
    let mut rng = Rng::seed_from_u64(seed ^ 0x5745_4544);
    RandomShape {
        ops: rng.gen_range(8usize..96),
        seeds: rng.gen_range(1usize..8),
        window: rng.gen_range(2usize..24),
        store_pct: rng.gen_range(0u32..40),
    }
}

/// CFG shape drawn deterministically from the seed, spanning short
/// single-region programs to chains of nested control flow.
fn cfg_shape_for(seed: u64) -> CfgShape {
    let mut rng = Rng::seed_from_u64(seed ^ 0x4347_5748);
    CfgShape {
        regions: rng.gen_range(1usize..5),
        block_ops: rng.gen_range(2usize..10),
        loop_pct: rng.gen_range(0u32..60),
        exit_pct: rng.gen_range(0u32..50),
    }
}

enum CaseResult {
    Pass {
        /// Quality-mode third oracle: `U03xx` warnings observed on this
        /// verified-correct compile. Counted, never failing.
        quality_warnings: u64,
    },
    /// The strategy refused the input for an expected, typed reason
    /// (Goodman–Hsu cannot spill, so honest overflow refusals count).
    Refused,
    /// Chaos mode: the injected fault surfaced as a typed
    /// [`CompileError`] — exactly the contract. `internal` marks a
    /// synthetic panic converted by the isolation boundary.
    Typed { internal: bool },
    Fail {
        why: String,
        /// The static validator rejected the code.
        static_reject: bool,
        /// The two oracles disagreed (one accepted, one rejected).
        disagreement: bool,
    },
}

impl CaseResult {
    fn fail(why: impl Into<String>) -> CaseResult {
        CaseResult::Fail {
            why: why.into(),
            static_reject: false,
            disagreement: false,
        }
    }
}

fn run_case(
    seed: u64,
    machine: &Machine,
    strategy_name: &str,
    strategy: &CompileStrategy,
    opts: &PipelineOptions,
    chaos: bool,
    quality: bool,
) -> CaseResult {
    let program = random_block(seed, shape_for(seed));
    let trace = Trace::entry();
    let gh = matches!(strategy, CompileStrategy::GoodmanHsu);
    // The outer catch_unwind is the harness backstop: with isolation on
    // (chaos mode) a panic reaching it means the isolation boundary
    // itself failed, which is a reportable bug, not a typed error.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        try_compile_with(&program, &trace, machine, strategy.clone(), opts)
    }));
    let compiled = match outcome {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            return CaseResult::fail(format!("panic: {msg}"));
        }
        Ok(Err(CompileError::RegisterOverflow { .. })) if gh => return CaseResult::Refused,
        Ok(Err(e)) if chaos => {
            // Chaos contract: a typed error is a pass. Only record
            // whether it was a converted synthetic panic.
            return CaseResult::Typed {
                internal: matches!(e, CompileError::Internal { .. }),
            };
        }
        Ok(Err(e)) => return CaseResult::fail(format!("compile error: {e}")),
        Ok(Ok(c)) => c,
    };
    // Oracle 1: the static translation validator, against the DAG the
    // code was generated from. Prepass code is pre-colored before its
    // DAG exists, so the validator cannot map its live-ins; skip it
    // there (the differential oracle still covers it).
    let static_verdict: Option<Vec<String>> = if matches!(strategy, CompileStrategy::Prepass) {
        None
    } else {
        let run = catch_unwind(AssertUnwindSafe(|| {
            let built;
            let reference = match &compiled.outcome {
                Some(o) => &o.ddg,
                None => {
                    built = DependenceDag::build(&program, &trace);
                    &built
                }
            };
            validate_translation(reference, &compiled.vliw, machine)
                .diagnostics
                .iter()
                .filter(|d| d.severity() == ursa_lint::Severity::Error)
                .map(|d| d.to_string())
                .collect::<Vec<String>>()
        }));
        match run {
            Err(_) => return CaseResult::fail("panic during static validation"),
            Ok(errors) => Some(errors),
        }
    };
    // Oracle 2: differential execution against the sequential reference
    // interpreter on one seeded input. Goodman–Hsu declares the file it
    // truly needs; execute on it.
    let exec_machine = if compiled.vliw.num_regs > machine.registers() {
        machine.with_registers(compiled.vliw.num_regs)
    } else {
        machine.clone()
    };
    let memory = seeded_memory(&program, 256, seed);
    let check = catch_unwind(AssertUnwindSafe(|| {
        check_equivalence(
            &program,
            &compiled.vliw,
            &exec_machine,
            &memory,
            &HashMap::new(),
        )
    }));
    let dynamic_err: Option<String> = match check {
        Err(_) => Some("panic during differential execution".to_string()),
        Ok(Err(e)) => Some(format!("differential check ({strategy_name}): {e}")),
        Ok(Ok(())) => None,
    };
    // Oracle 3 (quality mode, advisory): the bounds-based schedule
    // quality analyzer on the untransformed DAG. Warnings are counted,
    // never a failure — only a panic in the analyzer itself is a bug.
    // The analyzer replays measurement code, so an armed fault plan
    // must be cleared first (as `lint_program` does in programs mode).
    let quality_warnings = if quality {
        if chaos {
            let _ = ursa_core::fault::disarm();
        }
        let run = catch_unwind(AssertUnwindSafe(|| {
            let ddg = DependenceDag::build(&program, &trace);
            let (_, diags) = analyze_quality(&ddg, machine, &compiled, BoundsOptions::default());
            diags
                .iter()
                .filter(|d| d.severity() == ursa_lint::Severity::Warning)
                .count() as u64
        }));
        match run {
            Err(_) => return CaseResult::fail("panic during quality analysis"),
            Ok(n) => n,
        }
    } else {
        0
    };
    let static_errs = static_verdict.as_ref().filter(|e| !e.is_empty());
    match (static_errs, dynamic_err) {
        (None, None) => CaseResult::Pass { quality_warnings },
        (Some(se), None) => CaseResult::Fail {
            why: format!(
                "static validator rejected, dynamic oracle passed (ORACLE DISAGREEMENT): {}",
                se.join("; ")
            ),
            static_reject: true,
            disagreement: true,
        },
        (None, Some(de)) => {
            let disagreement = static_verdict.is_some();
            let note = if disagreement {
                " — static validator accepted (ORACLE DISAGREEMENT)"
            } else {
                ""
            };
            CaseResult::Fail {
                why: format!("{de}{note}"),
                static_reject: false,
                disagreement,
            }
        }
        (Some(se), Some(de)) => CaseResult::Fail {
            why: format!("{de}; static validator agrees: {}", se.join("; ")),
            static_reject: true,
            disagreement: false,
        },
    }
}

/// Programs-mode analog of [`run_case`]: a random multi-block CFG
/// through the whole-program driver, checked by the whole-program
/// oracle pair.
fn run_program_case(
    seed: u64,
    machine: &Machine,
    strategy_name: &str,
    strategy: &CompileStrategy,
    opts: &PipelineOptions,
    chaos: bool,
) -> CaseResult {
    // Quality mode rides on `opts.bounds` here: `lint_program` already
    // runs the bounds analyzer per unit when it is set, so the third
    // oracle is the same lint pass, read twice — errors fail the case,
    // `U03xx` warnings are only counted. Prepass skips the static
    // oracle entirely, so its quality count is 0 by construction.
    let program = random_cfg(seed, cfg_shape_for(seed));
    let gh = matches!(strategy, CompileStrategy::GoodmanHsu);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        try_compile_program(&program, machine, strategy.clone(), opts)
    }));
    let sched = match outcome {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            return CaseResult::fail(format!("panic: {msg}"));
        }
        Ok(Err(CompileError::RegisterOverflow { .. })) if gh => return CaseResult::Refused,
        Ok(Err(e)) if chaos => {
            return CaseResult::Typed {
                internal: matches!(e, CompileError::Internal { .. }),
            };
        }
        Ok(Err(e)) => return CaseResult::fail(format!("compile error: {e}")),
        Ok(Ok(s)) => s,
    };
    // The fault plan targets the pipeline. A plan whose site was never
    // reached during a successful compile stays armed, and unlike the
    // single-block oracles, `lint_program` replays measurement code and
    // would trip it; disarm before judging the artifact.
    if chaos {
        let _ = ursa_core::fault::disarm();
    }
    // Oracle 1: whole-program lint — per-unit validator replay plus the
    // boundary hand-off contract (U0201/U0202). Prepass code is
    // pre-colored before its DAG exists, so the validator cannot map
    // its live-ins; skip it there, as in single-block mode.
    let mut quality_warnings = 0u64;
    let static_verdict: Option<Vec<String>> = if matches!(strategy, CompileStrategy::Prepass) {
        None
    } else {
        let run = catch_unwind(AssertUnwindSafe(|| {
            let report = lint_program(&program, &sched, machine, strategy, opts);
            let quality = report
                .diagnostics
                .iter()
                .filter(|d| {
                    d.severity() == ursa_lint::Severity::Warning
                        && d.code.as_str().starts_with("U03")
                })
                .count() as u64;
            let errors = report
                .diagnostics
                .iter()
                .filter(|d| d.severity() == ursa_lint::Severity::Error)
                .map(|d| d.to_string())
                .collect::<Vec<String>>();
            (errors, quality)
        }));
        match run {
            Err(_) => return CaseResult::fail("panic during whole-program lint"),
            Ok((errors, quality)) => {
                quality_warnings = quality;
                Some(errors)
            }
        }
    };
    // Oracle 2: differential execution of the stitched unit schedules
    // against the sequential reference. Goodman–Hsu declares the file
    // it truly needs; execute on the widest unit's file.
    let widest = sched
        .units
        .iter()
        .map(|u| u.compiled.vliw.num_regs)
        .max()
        .unwrap_or(0);
    let exec_machine = if widest > machine.registers() {
        machine.with_registers(widest)
    } else {
        machine.clone()
    };
    let memory = seeded_memory(&program, 256, seed);
    let check = catch_unwind(AssertUnwindSafe(|| {
        check_program_equivalence(&program, &sched, &exec_machine, &memory, &HashMap::new())
    }));
    let dynamic_err: Option<String> = match check {
        Err(_) => Some("panic during differential execution".to_string()),
        Ok(Err(e)) => Some(format!("differential check ({strategy_name}): {e}")),
        Ok(Ok(())) => None,
    };
    let static_errs = static_verdict.as_ref().filter(|e| !e.is_empty());
    match (static_errs, dynamic_err) {
        (None, None) => CaseResult::Pass { quality_warnings },
        (Some(se), None) => CaseResult::Fail {
            why: format!(
                "static validator rejected, dynamic oracle passed (ORACLE DISAGREEMENT): {}",
                se.join("; ")
            ),
            static_reject: true,
            disagreement: true,
        },
        (None, Some(de)) => {
            let disagreement = static_verdict.is_some();
            let note = if disagreement {
                " — static validator accepted (ORACLE DISAGREEMENT)"
            } else {
                ""
            };
            CaseResult::Fail {
                why: format!("{de}{note}"),
                static_reject: false,
                disagreement,
            }
        }
        (Some(se), Some(de)) => CaseResult::Fail {
            why: format!("{de}; static validator agrees: {}", se.join("; ")),
            static_reject: true,
            disagreement: false,
        },
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("stress: {msg}");
            return ExitCode::from(2);
        }
    };
    // The harness reports panics itself, with seeds attached; the
    // default per-panic banner would drown the summary.
    std::panic::set_hook(Box::new(|_| {}));
    let machines = machine_grid();
    let strategies = strategy_menu(opts.paranoid_measure);
    let pipeline = PipelineOptions {
        validate: opts.validate,
        no_fallback: false,
        deadline: opts.deadline_ms.map(std::time::Duration::from_millis),
        max_steps: opts.max_steps,
        // Chaos plans include synthetic panics; the pipeline must
        // convert them to typed errors at the trace boundary.
        isolate: opts.chaos,
        // Quality mode: programs-mode lint_program picks this up and
        // runs the bounds analyzer per unit (zero slack — every gap
        // over the certificate is counted).
        bounds: if opts.quality { Some(0) } else { None },
        ..Default::default()
    };
    let plans = if opts.chaos { opts.plans } else { 1 };
    let (mut cases, mut refusals, mut failures) = (0u64, 0u64, 0u64);
    let (mut static_rejects, mut disagreements) = (0u64, 0u64);
    let (mut typed_errors, mut isolated_panics) = (0u64, 0u64);
    let (mut quality_total, mut quality_flagged_cases) = (0u64, 0u64);
    for seed in opts.seeds.clone() {
        for machine in &machines {
            if let Some(f) = &opts.machine_filter {
                if !machine.name().contains(f.as_str()) {
                    continue;
                }
            }
            for (name, strategy) in &strategies {
                if let Some(f) = &opts.strategy_filter {
                    if *name != f.as_str() {
                        continue;
                    }
                }
                for plan_idx in 0..plans {
                    // Every program seed sweeps the same plan set, so a
                    // failing case reproduces with `--fault-seed
                    // <derived> --plans 1` regardless of filters.
                    let fault_seed = opts.fault_seed.wrapping_add(plan_idx);
                    if opts.chaos {
                        ursa_core::fault::arm(ursa_core::FaultPlan::from_seed(fault_seed));
                    }
                    cases += 1;
                    let result = if opts.programs {
                        run_program_case(seed, machine, name, strategy, &pipeline, opts.chaos)
                    } else {
                        run_case(
                            seed,
                            machine,
                            name,
                            strategy,
                            &pipeline,
                            opts.chaos,
                            opts.quality,
                        )
                    };
                    // A plan whose site was never reached stays armed;
                    // clear it so it cannot leak into the next case.
                    let _ = ursa_core::fault::disarm();
                    match result {
                        CaseResult::Pass { quality_warnings } => {
                            quality_total += quality_warnings;
                            quality_flagged_cases += u64::from(quality_warnings > 0);
                        }
                        CaseResult::Refused => refusals += 1,
                        CaseResult::Typed { internal } => {
                            typed_errors += 1;
                            isolated_panics += u64::from(internal);
                        }
                        CaseResult::Fail {
                            why,
                            static_reject,
                            disagreement,
                        } => {
                            failures += 1;
                            static_rejects += u64::from(static_reject);
                            disagreements += u64::from(disagreement);
                            let programs = if opts.programs { " --programs" } else { "" };
                            let quality = if opts.quality { " --quality" } else { "" };
                            let validate = if opts.validate { " --validate" } else { "" };
                            let paranoid = if opts.paranoid_measure {
                                " --paranoid-measure"
                            } else {
                                ""
                            };
                            let mut budget = String::new();
                            if let Some(ms) = opts.deadline_ms {
                                budget.push_str(&format!(" --deadline-ms {ms}"));
                            }
                            if let Some(n) = opts.max_steps {
                                budget.push_str(&format!(" --max-steps {n}"));
                            }
                            let chaos = if opts.chaos {
                                format!(
                                    " --chaos --fault-seed {fault_seed} --plans 1 (plan {})",
                                    ursa_core::FaultPlan::from_seed(fault_seed)
                                )
                            } else {
                                String::new()
                            };
                            println!(
                                "FAIL seed={seed} machine={} strategy={name}{}: {why}",
                                machine.name(),
                                if opts.chaos {
                                    format!(" fault-seed={fault_seed}")
                                } else {
                                    String::new()
                                }
                            );
                            println!(
                                "  repro: cargo run --release -p ursa-bench --bin stress -- \
                                 --seeds {seed}..{} --machine {} --strategy \
                                 {name}{programs}{quality}{validate}{paranoid}{budget}{chaos}",
                                seed + 1,
                                machine.name(),
                            );
                        }
                    }
                }
            }
        }
    }
    let _ = std::panic::take_hook();
    let chaos_note = if opts.chaos {
        format!(
            ", {typed_errors} typed errors under fault injection \
             ({isolated_panics} isolated panics)"
        )
    } else {
        String::new()
    };
    let mode = if opts.programs {
        " (whole-program mode)"
    } else {
        ""
    };
    let quality_note = if opts.quality {
        format!(
            ", {quality_total} quality warnings on {quality_flagged_cases} cases \
             (advisory, third oracle)"
        )
    } else {
        String::new()
    };
    println!(
        "stress: {cases} cases{mode} over seeds {}..{}, {refusals} typed refusals, \
         {failures} failures ({static_rejects} static rejects, {disagreements} oracle \
         disagreements){chaos_note}{quality_note}",
        opts.seeds.start, opts.seeds.end
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
