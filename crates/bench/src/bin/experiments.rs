//! Command-line front end of the experiment harness.
//!
//! ```text
//! experiments fig2                # F2: Figure 2 measurements
//! experiments fig3                # F3a-d: the three transformations
//! experiments sweep-regs          # T1: cycles vs. register count
//! experiments sweep-fus           # T2: cycles vs. FU count
//! experiments spills              # T3: spill behavior under pressure
//! experiments scaling             # T4: compile-time scaling
//! experiments ablation-driver     # T5: integrated vs. phased orders
//! experiments ablation-kill       # T6: Kill() selection policies
//! experiments ablation-matching   # T7: staged vs. plain matching
//! experiments validate            # V1: equivalence grid
//! experiments all                 # everything above
//! ```

use ursa_bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let run = |name: &str| -> bool { what == "all" || what == name };

    let mut ran_any = false;
    if run("fig2") {
        ran_any = true;
        println!("{}", tables::fig2_report());
    }
    if run("fig3") {
        ran_any = true;
        println!("{}", tables::fig3_report());
    }
    if run("sweep-regs") {
        ran_any = true;
        println!("T1: schedule length vs. registers (4 universal FUs)");
        let rows = tables::sweep_regs(&[4, 6, 8, 12, 16]);
        println!("{}", tables::render_sweep(&rows, "regs"));
    }
    if run("sweep-fus") {
        ran_any = true;
        println!("T2: schedule length vs. functional units (16 registers)");
        let rows = tables::sweep_fus(&[1, 2, 4, 8]);
        println!("{}", tables::render_sweep(&rows, "fus"));
    }
    if run("spills") {
        ran_any = true;
        println!("{}", tables::spill_table());
    }
    if run("scaling") {
        ran_any = true;
        println!("{}", tables::scaling_table(&[32, 64, 128, 256]));
    }
    if run("ablation-driver") {
        ran_any = true;
        println!("{}", tables::ablation_driver());
    }
    if run("ablation-kill") {
        ran_any = true;
        println!("{}", tables::ablation_kill());
    }
    if run("ablation-matching") {
        ran_any = true;
        println!("{}", tables::ablation_matching());
    }
    if run("validate") {
        ran_any = true;
        println!("{}", tables::validation_table());
    }
    if !ran_any {
        eprintln!(
            "unknown experiment '{what}'; expected one of: fig2 fig3 sweep-regs \
             sweep-fus spills scaling ablation-driver ablation-kill \
             ablation-matching validate all"
        );
        std::process::exit(2);
    }
}
