//! `perf_compare` — the CI perf gate over `BENCH_*.json` tables.
//!
//! Compares a freshly-measured bench table against a committed baseline
//! (both written by the harness's `--json` flag) and fails when any
//! shared benchmark's **median** regressed past the threshold:
//!
//! ```text
//! perf_compare BENCH_baseline.json current.json              # 25% gate
//! perf_compare --threshold 1.10 baseline.json current.json   # 10% gate
//! perf_compare --ratios A.json B.json                        # speedup table
//! ```
//!
//! `--ratios` replaces the gate with a per-series speedup report
//! (`A_median / B_median`, so >1.00× means B is faster) and always
//! exits 0 when both tables parse — it regenerates EXPERIMENTS.md
//! tables mechanically rather than guarding CI.
//!
//! Only medians are gated — min/mean/max wobble too much on shared CI
//! runners. Benchmarks present on one side only are reported but never
//! fail the gate, so adding or retiring benchmarks does not require a
//! lockstep baseline update. Improvements print as such; refreshing the
//! committed baseline after a genuine speedup is a deliberate, reviewed
//! act (see README "Performance trajectory").
//!
//! Exit status: 0 when every shared benchmark is within threshold,
//! 1 on regression, 2 on usage or file-format errors.

use std::process::ExitCode;
use ursa_json::Value;

/// Median table of one `BENCH_*.json` file: `(name, median_ns)` rows
/// plus the header fields the gate reports.
struct BenchTable {
    git: String,
    rows: Vec<(String, f64)>,
}

/// Reads and shape-checks one bench table. The `schema` header is
/// required and must be `1`; refusing unknown layouts beats silently
/// comparing fields that moved.
fn load_table(path: &str) -> Result<BenchTable, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = ursa_json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match doc.get("schema").and_then(Value::as_u64) {
        Some(1) => {}
        Some(v) => return Err(format!("{path}: unsupported schema {v} (expected 1)")),
        None => return Err(format!("{path}: missing schema header")),
    }
    let git = doc
        .get("git")
        .and_then(Value::as_str)
        .unwrap_or("unknown")
        .to_string();
    let results = doc
        .get("results")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: missing results array"))?;
    let mut rows = Vec::with_capacity(results.len());
    for r in results {
        let name = r
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: result without a name"))?;
        let median = r
            .get("median_ns")
            .and_then(Value::as_f64)
            .filter(|m| *m > 0.0)
            .ok_or_else(|| format!("{path}: {name}: missing or non-positive median_ns"))?;
        rows.push((name.to_string(), median));
    }
    Ok(BenchTable { git, rows })
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

/// Prints the `--ratios` speedup table: every series shared by both
/// tables as `A_median / B_median`. Never gates.
fn print_ratios(a_path: &str, a: &BenchTable, b_path: &str, b: &BenchTable) -> Result<(), String> {
    println!(
        "speedup: {a_path} (git {}) vs {b_path} (git {})",
        a.git, b.git
    );
    println!("  {:<40} {:>10} {:>10} {:>9}", "series", "A", "B", "A/B");
    let mut shared = 0usize;
    for (name, a_ns) in &a.rows {
        let Some((_, b_ns)) = b.rows.iter().find(|(n, _)| n == name) else {
            continue;
        };
        shared += 1;
        println!(
            "  {:<40} {:>10} {:>10} {:>8.2}x",
            name,
            format_ns(*a_ns),
            format_ns(*b_ns),
            a_ns / b_ns
        );
    }
    if shared == 0 {
        return Err("no shared benchmarks between the two tables".to_string());
    }
    for (name, _) in &a.rows {
        if !b.rows.iter().any(|(n, _)| n == name) {
            println!("  {name}: in {a_path} only");
        }
    }
    for (name, _) in &b.rows {
        if !a.rows.iter().any(|(n, _)| n == name) {
            println!("  {name}: in {b_path} only");
        }
    }
    Ok(())
}

fn run() -> Result<bool, String> {
    let mut threshold = 1.25f64;
    let mut ratios = false;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = args.next().ok_or("--threshold needs a value")?;
                threshold = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| *t > 1.0)
                    .ok_or_else(|| format!("--threshold wants a ratio > 1.0, got '{v}'"))?;
            }
            "--ratios" => ratios = true,
            "--help" | "-h" => {
                return Err(
                    "usage: perf_compare [--threshold RATIO | --ratios] BASELINE.json CURRENT.json"
                        .to_string(),
                )
            }
            other if other.starts_with("--") => return Err(format!("unknown option '{other}'")),
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return Err("expected exactly two files: BASELINE.json CURRENT.json".to_string());
    };
    let baseline = load_table(baseline_path)?;
    let current = load_table(current_path)?;
    if ratios {
        print_ratios(baseline_path, &baseline, current_path, &current)?;
        return Ok(true);
    }
    println!(
        "perf gate: baseline {} (git {}) vs current {} (git {}), threshold {:.0}%",
        baseline_path,
        baseline.git,
        current_path,
        current.git,
        (threshold - 1.0) * 100.0
    );

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (name, cur) in &current.rows {
        let Some((_, base)) = baseline.rows.iter().find(|(n, _)| n == name) else {
            println!(
                "  new      {name}: {} (no baseline, not gated)",
                format_ns(*cur)
            );
            continue;
        };
        compared += 1;
        let ratio = cur / base;
        if ratio > threshold {
            regressions += 1;
            println!(
                "  REGRESS  {name}: {} -> {} ({:+.1}%)",
                format_ns(*base),
                format_ns(*cur),
                (ratio - 1.0) * 100.0
            );
        } else if ratio < 1.0 / threshold {
            println!(
                "  improve  {name}: {} -> {} ({:+.1}%)",
                format_ns(*base),
                format_ns(*cur),
                (ratio - 1.0) * 100.0
            );
        } else {
            println!(
                "  ok       {name}: {} -> {} ({:+.1}%)",
                format_ns(*base),
                format_ns(*cur),
                (ratio - 1.0) * 100.0
            );
        }
    }
    for (name, _) in &baseline.rows {
        if !current.rows.iter().any(|(n, _)| n == name) {
            println!("  retired  {name}: in baseline only (not gated)");
        }
    }
    if compared == 0 {
        return Err("no shared benchmarks between the two tables".to_string());
    }
    println!(
        "perf gate: {compared} compared, {regressions} regression(s) past {:.0}%",
        (threshold - 1.0) * 100.0
    );
    Ok(regressions == 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("perf_compare: {msg}");
            ExitCode::from(2)
        }
    }
}
