//! Experiment runners regenerating every figure of the paper and the
//! constructed evaluation tables (see DESIGN.md §4 for the index).

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;
use ursa_core::{
    allocate, find_excessive, measure, AllocCtx, KillMode, MeasureOptions, ResourceKind, Strategy,
    UrsaConfig,
};
use ursa_graph::dag::NodeId;
use ursa_ir::ddg::DependenceDag;
use ursa_machine::{FuClass, Machine};
use ursa_sched::{compile_entry_block, CompileStrategy};
use ursa_vm::equiv::{check_equivalence, seeded_memory};
use ursa_workloads::kernels::{kernel_suite, Kernel};
use ursa_workloads::paper::{figure2_block, figure2_letter};
use ursa_workloads::random::{random_block, RandomShape};

/// All compile strategies compared in the evaluation.
pub fn strategies() -> Vec<CompileStrategy> {
    vec![
        CompileStrategy::Ursa(UrsaConfig::default()),
        CompileStrategy::Postpass,
        CompileStrategy::Prepass,
        CompileStrategy::GoodmanHsu,
    ]
}

fn chain_string(chain: &[NodeId]) -> String {
    let letters: Vec<String> = chain.iter().map(|&n| figure2_letter(n)).collect();
    format!("{{{}}}", letters.join(","))
}

/// F2 — Figure 2: measurements of the paper's worked example.
pub fn fig2_report() -> String {
    let mut out = String::new();
    let program = figure2_block();
    let machine = Machine::homogeneous(8, 16);
    let ddg = DependenceDag::from_entry_block(&program);
    let mut ctx = AllocCtx::new(ddg, &machine);
    let m = measure(&mut ctx, MeasureOptions::default());
    let fu = m
        .of(ResourceKind::Fu(FuClass::Universal))
        .expect("fu measured");
    let regs = m.of(ResourceKind::Registers).expect("regs measured");

    writeln!(out, "F2: Figure 2 worked example").unwrap();
    writeln!(
        out,
        "  paper: FU requirement 4      measured: {}",
        fu.requirement.required
    )
    .unwrap();
    writeln!(
        out,
        "  paper: register requirement 5 measured: {}",
        regs.requirement.required
    )
    .unwrap();
    writeln!(
        out,
        "  paper: critical path 5       measured: {}",
        ctx.critical_path()
    )
    .unwrap();
    writeln!(out, "  FU chain decomposition (a minimal one):").unwrap();
    for c in fu.decomposition.chains() {
        writeln!(out, "    {}", chain_string(c)).unwrap();
    }
    // Excessive chain set with 3 FUs.
    let machine3 = Machine::homogeneous(3, 16);
    let ddg = DependenceDag::from_entry_block(&program);
    let mut ctx3 = AllocCtx::new(ddg, &machine3);
    let m3 = measure(&mut ctx3, MeasureOptions::default());
    let fu3 = m3
        .of(ResourceKind::Fu(FuClass::Universal))
        .expect("fu measured")
        .clone();
    let ex = find_excessive(&mut ctx3, &fu3, &m3.kills).expect("4 > 3");
    writeln!(
        out,
        "  excessive chain set at 3 FUs (paper: {{B,E}},{{C,F}},{{G}},{{H}}):"
    )
    .unwrap();
    for c in &ex.chains {
        writeln!(out, "    {}", chain_string(c)).unwrap();
    }
    out
}

/// F3 — Figure 3: the three transformations and their combination.
pub fn fig3_report() -> String {
    let mut out = String::new();
    let program = figure2_block();
    writeln!(out, "F3: Figure 3 transformations on the example DAG").unwrap();

    let req = |machine: &Machine, ddg: DependenceDag, kind: ResourceKind| -> u32 {
        let mut ctx = AllocCtx::new(ddg, machine);
        let m = measure(&mut ctx, MeasureOptions::default());
        m.of(kind).expect("measured").requirement.required
    };

    // 3(a): FU sequentialization 4 -> 3.
    {
        let machine = Machine::homogeneous(3, 16);
        let out3a = allocate(
            DependenceDag::from_entry_block(&program),
            &machine,
            &UrsaConfig::default(),
        );
        let fu_after = req(
            &machine,
            out3a.ddg.clone(),
            ResourceKind::Fu(FuClass::Universal),
        );
        writeln!(
            out,
            "  3(a) FU sequentialization:  paper 4 -> 3   measured 4 -> {fu_after}  \
             ({} sequence edges, {} spills)",
            out3a.sequence_edge_count(),
            out3a.spill_count()
        )
        .unwrap();
    }
    // 3(b): register sequentialization 5 -> 4.
    {
        let machine = Machine::homogeneous(8, 4);
        let o = allocate(
            DependenceDag::from_entry_block(&program),
            &machine,
            &UrsaConfig::default(),
        );
        let after = req(&machine, o.ddg.clone(), ResourceKind::Registers);
        writeln!(
            out,
            "  3(b) register sequencing:   paper 5 -> 4   measured 5 -> {after}  \
             ({} sequence edges, {} spills)",
            o.sequence_edge_count(),
            o.spill_count()
        )
        .unwrap();
    }
    // 3(c): spill 5 -> 3.
    {
        let machine = Machine::homogeneous(8, 3);
        let o = allocate(
            DependenceDag::from_entry_block(&program),
            &machine,
            &UrsaConfig::default(),
        );
        let after = req(&machine, o.ddg.clone(), ResourceKind::Registers);
        writeln!(
            out,
            "  3(c) spilling:              paper 5 -> 3   measured 5 -> {after}  \
             ({} sequence edges, {} spills)",
            o.sequence_edge_count(),
            o.spill_count()
        )
        .unwrap();
    }
    // 3(d): combined 2 FUs / 3 regs.
    {
        let machine = Machine::homogeneous(2, 3);
        let o = allocate(
            DependenceDag::from_entry_block(&program),
            &machine,
            &UrsaConfig::default(),
        );
        let fu = req(
            &machine,
            o.ddg.clone(),
            ResourceKind::Fu(FuClass::Universal),
        );
        let rg = req(&machine, o.ddg.clone(), ResourceKind::Registers);
        writeln!(
            out,
            "  3(d) combined:              paper (2 FU, 3 reg)   measured ({fu} FU, {rg} reg)  \
             residual excess {}",
            o.residual_excess
        )
        .unwrap();
    }
    out
}

/// One measured point of a sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Kernel name.
    pub kernel: String,
    /// Strategy name.
    pub strategy: &'static str,
    /// Universal functional units.
    pub fus: u32,
    /// Register-file size.
    pub regs: u32,
    /// Final schedule length (cycles).
    pub cycles: u64,
    /// Spill stores + reloads.
    pub spills: usize,
    /// Loads + stores in the final code.
    pub memops: usize,
    /// Registers needed beyond the file (Goodman–Hsu only).
    pub overflow: u32,
    /// `true` if the generated code matched the reference semantics.
    pub equivalent: bool,
}

impl SweepPoint {
    /// The point as a JSON object (one row of a sweep table).
    pub fn to_json_value(&self) -> ursa_json::Value {
        use ursa_json::Value;
        Value::object([
            ("kernel", Value::from(self.kernel.as_str())),
            ("strategy", Value::from(self.strategy)),
            ("fus", Value::from(self.fus)),
            ("regs", Value::from(self.regs)),
            ("cycles", Value::from(self.cycles)),
            ("spills", Value::from(self.spills)),
            ("memops", Value::from(self.memops)),
            ("overflow", Value::from(self.overflow)),
            ("equivalent", Value::from(self.equivalent)),
        ])
    }
}

/// Renders a sweep as a JSON document (`{"sweep": <name>, "rows": [...]}`),
/// the machine-readable companion of [`render_sweep`].
pub fn sweep_to_json(name: &str, rows: &[SweepPoint]) -> String {
    use ursa_json::Value;
    Value::object([
        ("sweep", Value::from(name)),
        (
            "rows",
            Value::array(rows.iter().map(SweepPoint::to_json_value)),
        ),
    ])
    .to_string_pretty()
}

fn run_point(kernel: &Kernel, fus: u32, regs: u32, strategy: CompileStrategy) -> SweepPoint {
    let machine = Machine::homogeneous(fus, regs);
    let name = strategy.name();
    let c = compile_entry_block(&kernel.program, &machine, strategy);
    let exec_machine = if c.vliw.num_regs > machine.registers() {
        machine.with_registers(c.vliw.num_regs)
    } else {
        machine.clone()
    };
    let memory = if kernel.name == "fig2" {
        let mut m = ursa_vm::Memory::new();
        m.store(ursa_ir::SymbolId(0), 0, 7);
        m
    } else {
        seeded_memory(&kernel.program, 128, 11)
    };
    let equivalent = check_equivalence(
        &kernel.program,
        &c.vliw,
        &exec_machine,
        &memory,
        &HashMap::new(),
    )
    .is_ok();
    SweepPoint {
        kernel: kernel.name.clone(),
        strategy: name,
        fus,
        regs,
        cycles: c.stats.schedule_length,
        spills: c.stats.spill_stores + c.stats.spill_loads,
        memops: c.stats.memory_traffic,
        overflow: c.stats.reg_overflow,
        equivalent,
    }
}

/// T1 — schedule length vs. register count (4 universal FUs).
pub fn sweep_regs(regs: &[u32]) -> Vec<SweepPoint> {
    let mut rows = Vec::new();
    for kernel in kernel_suite() {
        for &r in regs {
            for strategy in strategies() {
                rows.push(run_point(&kernel, 4, r, strategy));
            }
        }
    }
    rows
}

/// T2 — schedule length vs. functional-unit count (16 registers).
pub fn sweep_fus(fus: &[u32]) -> Vec<SweepPoint> {
    let mut rows = Vec::new();
    for kernel in kernel_suite() {
        for &f in fus {
            for strategy in strategies() {
                rows.push(run_point(&kernel, f, 16, strategy));
            }
        }
    }
    rows
}

/// Renders sweep points grouped per kernel.
pub fn render_sweep(rows: &[SweepPoint], vary: &str) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:>12} {:>5} | {:>11} | {:>7} {:>7} {:>7} {:>9} {:>6}",
        "kernel", vary, "strategy", "cycles", "spills", "memops", "overflow", "equiv"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(78)).unwrap();
    for p in rows {
        let vary_val = if vary == "regs" { p.regs } else { p.fus };
        writeln!(
            out,
            "{:>12} {:>5} | {:>11} | {:>7} {:>7} {:>7} {:>9} {:>6}",
            p.kernel,
            vary_val,
            p.strategy,
            p.cycles,
            p.spills,
            p.memops,
            p.overflow,
            if p.equivalent { "OK" } else { "FAIL" }
        )
        .unwrap();
    }
    out
}

/// T3 — spill counts and memory traffic under tight registers.
pub fn spill_table() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "T3: spill behavior at 4 FUs, 6 registers\n\
         {:>12} | {:>11} | {:>7} {:>7} {:>7} {:>9}",
        "kernel", "strategy", "cycles", "spills", "memops", "overflow"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(66)).unwrap();
    for kernel in kernel_suite() {
        for strategy in strategies() {
            let p = run_point(&kernel, 4, 6, strategy);
            writeln!(
                out,
                "{:>12} | {:>11} | {:>7} {:>7} {:>7} {:>9}",
                p.kernel, p.strategy, p.cycles, p.spills, p.memops, p.overflow
            )
            .unwrap();
        }
    }
    out
}

/// T5 — ablation: integrated vs. phased vs. FU-first driver orders.
pub fn ablation_driver() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "T5: driver discipline ablation at 4 FUs, 8 registers\n\
         {:>12} | {:>11} | {:>7} | {:>8} | {:>9} | {:>7}",
        "kernel", "strategy", "cycles", "residual", "seq-edges", "spills"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(70)).unwrap();
    for kernel in kernel_suite() {
        for (name, strategy) in [
            ("integrated", Strategy::Integrated),
            ("reg-first", Strategy::Phased),
            ("fu-first", Strategy::PhasedFuFirst),
        ] {
            let machine = Machine::homogeneous(4, 8);
            let cfg = UrsaConfig {
                strategy,
                ..UrsaConfig::default()
            };
            let c = compile_entry_block(&kernel.program, &machine, CompileStrategy::Ursa(cfg));
            let o = c.outcome.expect("ursa outcome");
            writeln!(
                out,
                "{:>12} | {:>11} | {:>7} | {:>8} | {:>9} | {:>7}",
                kernel.name,
                name,
                c.stats.schedule_length,
                o.residual_excess,
                o.sequence_edge_count(),
                o.spill_count()
            )
            .unwrap();
        }
    }
    out
}

/// T6 — ablation: min-cover vs. naive `Kill()` selection.
pub fn ablation_kill() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "T6: Kill() selection ablation (register requirement measured)\n\
         {:>12} | {:>9} | {:>9} | {:>12}",
        "kernel", "min-cover", "naive", "under-measure"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(52)).unwrap();
    for kernel in kernel_suite() {
        let machine = Machine::homogeneous(8, 64);
        let measure_with = |mode: KillMode| -> u32 {
            let ddg = DependenceDag::from_entry_block(&kernel.program);
            let mut ctx = AllocCtx::new(ddg, &machine);
            let m = measure(
                &mut ctx,
                MeasureOptions {
                    kill_mode: mode,
                    plain_matching: false,
                },
            );
            m.of(ResourceKind::Registers)
                .expect("regs")
                .requirement
                .required
        };
        let cover = measure_with(KillMode::MinCover);
        let naive = measure_with(KillMode::Naive);
        writeln!(
            out,
            "{:>12} | {:>9} | {:>9} | {:>12}",
            kernel.name,
            cover,
            naive,
            cover.saturating_sub(naive)
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nThe naive policy under-measures worst-case pressure wherever\n\
         values share killers (Theorem 2's minimum-cover effect); an\n\
         allocator trusting it would overflow in the assignment phase."
    )
    .unwrap();
    out
}

/// T7 — ablation: hammock-prioritized matching vs. plain matching.
/// Metric: how often consecutive chain elements cross hammock nesting
/// levels (the staged matching exists precisely to avoid such
/// crossings, keeping each hammock's projection minimal — paper §3.1).
pub fn ablation_matching() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "T7: matching ablation over 40 random blocks — chain links that\n\
         cross hammock nesting levels (lower keeps excessive sets local)"
    )
    .unwrap();
    let machine = Machine::homogeneous(8, 64);
    let mut totals = [0usize; 2]; // [staged, plain]
    let mut chains = [0usize; 2];
    for seed in 0..40u64 {
        let program = random_block(
            seed,
            RandomShape {
                ops: 24,
                seeds: 3,
                window: 5,
                store_pct: 15,
            },
        );
        for (slot, plain) in [(0usize, false), (1, true)] {
            let ddg = DependenceDag::from_entry_block(&program);
            let mut ctx = AllocCtx::new(ddg, &machine);
            let m = measure(
                &mut ctx,
                MeasureOptions {
                    kill_mode: KillMode::MinCover,
                    plain_matching: plain,
                },
            );
            let fu = m.of(ResourceKind::Fu(FuClass::Universal)).expect("fu");
            let hammocks = ctx.hammocks();
            totals[slot] += fu
                .decomposition
                .chains()
                .iter()
                .map(|c| {
                    c.windows(2)
                        .map(|w| hammocks.edge_priority(w[0], w[1]) as usize)
                        .sum::<usize>()
                })
                .sum::<usize>();
            chains[slot] += fu.decomposition.num_chains();
        }
    }
    writeln!(
        out,
        "  staged (paper): {} crossings over {} chains",
        totals[0], chains[0]
    )
    .unwrap();
    writeln!(
        out,
        "  plain:          {} crossings over {} chains",
        totals[1], chains[1]
    )
    .unwrap();
    writeln!(
        out,
        "\nBoth matchings agree on every requirement (both are maximum);\n\
         the staged one prefers edges that stay inside nested hammocks,\n\
         so excessive chain sets remain local to the smallest enclosing\n\
         region (paper §3.1's modified algorithm)."
    )
    .unwrap();
    out
}

/// T4 — compile-time scaling of the measurement on random DAGs.
pub fn scaling_table(sizes: &[usize]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "T4: measurement scaling on random blocks (O(N^3) bound, paper §3.1)\n\
         {:>6} | {:>12} | {:>12}",
        "ops", "measure", "allocate"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(38)).unwrap();
    for &n in sizes {
        let program = random_block(
            9,
            RandomShape {
                ops: n,
                seeds: 8,
                window: 16,
                store_pct: 10,
            },
        );
        let machine = Machine::homogeneous(4, 16);
        let ddg = DependenceDag::from_entry_block(&program);
        let t = Instant::now();
        let mut ctx = AllocCtx::new(ddg.clone(), &machine);
        let _ = measure(&mut ctx, MeasureOptions::default());
        let measure_time = t.elapsed();
        let t = Instant::now();
        let _ = allocate(ddg, &machine, &UrsaConfig::default());
        let alloc_time = t.elapsed();
        writeln!(
            out,
            "{:>6} | {:>12?} | {:>12?}",
            n, measure_time, alloc_time
        )
        .unwrap();
    }
    out
}

/// V1 — equivalence validation across the whole grid.
pub fn validation_table() -> String {
    let mut out = String::new();
    let mut checked = 0usize;
    let mut failed = 0usize;
    for kernel in kernel_suite() {
        for &(f, r) in &[(2u32, 4u32), (4, 6), (4, 16), (8, 8)] {
            for strategy in strategies() {
                let p = run_point(&kernel, f, r, strategy);
                checked += 1;
                if !p.equivalent {
                    failed += 1;
                    writeln!(
                        out,
                        "  FAIL: {} {} at {}fu/{}regs",
                        p.kernel, p.strategy, f, r
                    )
                    .unwrap();
                }
            }
        }
    }
    writeln!(
        out,
        "V1: {checked} compile+execute equivalence checks, {failed} failures"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_report_matches_paper() {
        let r = fig2_report();
        assert!(r.contains("measured: 4"));
        assert!(r.contains("measured: 5"));
    }

    #[test]
    fn fig3_report_reaches_paper_targets() {
        let r = fig3_report();
        assert!(r.contains("measured 4 -> 3"), "{r}");
        assert!(r.contains("measured 5 -> 4"), "{r}");
        assert!(r.contains("residual excess 0"), "{r}");
    }

    #[test]
    fn sweep_points_are_equivalent() {
        let kernel = &kernel_suite()[0];
        for strategy in strategies() {
            let p = run_point(kernel, 4, 6, strategy);
            assert!(p.equivalent, "{} not equivalent", p.strategy);
        }
    }

    #[test]
    fn kill_ablation_never_negative() {
        let t = ablation_kill();
        assert!(t.contains("min-cover"));
    }

    #[test]
    fn sweep_json_round_trips() {
        let kernel = &kernel_suite()[0];
        let rows = vec![run_point(kernel, 4, 8, CompileStrategy::Postpass)];
        let json = sweep_to_json("t1", &rows);
        let doc = ursa_json::parse(&json).unwrap();
        assert_eq!(
            doc.get("sweep").and_then(ursa_json::Value::as_str),
            Some("t1")
        );
        let parsed = doc
            .get("rows")
            .and_then(ursa_json::Value::as_array)
            .unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(
            parsed[0].get("cycles").and_then(ursa_json::Value::as_u64),
            Some(rows[0].cycles)
        );
        assert_eq!(
            parsed[0]
                .get("equivalent")
                .and_then(ursa_json::Value::as_bool),
            Some(rows[0].equivalent)
        );
    }
}
