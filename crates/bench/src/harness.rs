//! A dependency-free micro-benchmark harness (criterion replacement).
//!
//! The workspace builds hermetically, so `criterion` is out; this
//! harness keeps the three bench targets (`measurement`, `transforms`,
//! `pipeline`) runnable under plain `cargo bench` with `harness =
//! false`. The protocol per benchmark:
//!
//! 1. **Calibrate**: run the closure until ~[`Runner::calibration`]
//!    has elapsed to pick an iteration count per sample (so one sample
//!    is long enough for the clock to be meaningful).
//! 2. **Warm up** for roughly the same budget (fills caches, settles
//!    frequency scaling).
//! 3. **Sample**: take [`Runner::samples`] wall-clock samples and
//!    report the **median** per-iteration time — medians shrug off the
//!    occasional scheduler hiccup that poisons means.
//!
//! Results print as a table and can be dumped as JSON (via `ursa-json`)
//! with `--json <path>`, for the recorded `BENCH_*.json` trajectory.
//! A substring filter argument restricts which benchmarks run, and
//! `--list` prints names without running (mirroring libtest enough for
//! `cargo bench -- <filter>` muscle memory).

use std::hint::black_box;
use std::time::{Duration, Instant};
use ursa_json::Value;

pub use std::hint::black_box as bb;

/// One benchmark's summarized timings.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name (unique within a runner).
    pub name: String,
    /// Iterations per sample chosen by calibration.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Minimum per-iteration time, nanoseconds.
    pub min_ns: f64,
    /// Mean per-iteration time, nanoseconds.
    pub mean_ns: f64,
    /// Maximum per-iteration time, nanoseconds.
    pub max_ns: f64,
}

impl BenchResult {
    /// The result as a JSON object (one row of a `BENCH_*.json` table).
    pub fn to_json_value(&self) -> Value {
        Value::object([
            ("name", Value::from(self.name.as_str())),
            ("iters_per_sample", Value::from(self.iters_per_sample)),
            ("samples", Value::from(self.samples)),
            ("median_ns", Value::from(self.median_ns)),
            ("min_ns", Value::from(self.min_ns)),
            ("mean_ns", Value::from(self.mean_ns)),
            ("max_ns", Value::from(self.max_ns)),
        ])
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

/// Collects and runs benchmarks for one bench target.
pub struct Runner {
    target: String,
    /// Wall-clock budget for calibration and for warmup, each.
    pub calibration: Duration,
    /// Samples per benchmark (median-of-N).
    pub samples: usize,
    filter: Option<String>,
    list_only: bool,
    json_path: Option<String>,
    results: Vec<BenchResult>,
}

impl Runner {
    /// Creates a runner named after the bench target, reading `--json
    /// <path>`, `--samples <n>`, `--list` and an optional substring
    /// filter from the command line (cargo's own `--bench` flag is
    /// ignored).
    pub fn from_args(target: &str) -> Runner {
        let mut filter = None;
        let mut json_path = None;
        let mut list_only = false;
        let mut samples = 11usize;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => json_path = args.next(),
                "--samples" => {
                    samples = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| panic!("--samples wants a positive integer"));
                }
                "--list" => list_only = true,
                // Flags cargo bench forwards that we don't need.
                "--bench" | "--exact" | "--nocapture" => {}
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_owned()),
            }
        }
        Runner {
            target: target.to_owned(),
            calibration: Duration::from_millis(120),
            samples,
            filter,
            list_only,
            json_path,
            results: Vec::new(),
        }
    }

    /// Whether `name` passes the command-line filter.
    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Times `f`, which is run repeatedly; reports the median
    /// per-iteration wall-clock time. Wrap inputs in
    /// [`black_box`] inside the closure if the optimizer might
    /// otherwise hoist work out.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if !self.selected(name) {
            return;
        }
        if self.list_only {
            println!("{}: bench", name);
            return;
        }
        // Calibration: how many iterations fit in the budget?
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.calibration {
            black_box(f());
            iters += 1;
        }
        let iters_per_sample = iters.max(1);
        // Warmup for roughly one more budget.
        let warm = Instant::now();
        while warm.elapsed() < self.calibration {
            black_box(f());
        }
        // Sampling.
        let mut per_iter_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = per_iter_ns[per_iter_ns.len() / 2];
        let result = BenchResult {
            name: name.to_owned(),
            iters_per_sample,
            samples: self.samples,
            median_ns,
            min_ns: per_iter_ns[0],
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
            max_ns: per_iter_ns[per_iter_ns.len() - 1],
        };
        println!(
            "{:<44} median {}   min {}   ({} iters × {} samples)",
            result.name,
            format_ns(result.median_ns),
            format_ns(result.min_ns),
            result.iters_per_sample,
            result.samples,
        );
        self.results.push(result);
    }

    /// The results gathered so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the footer and writes the JSON table if `--json` was
    /// given. Call at the end of `main`.
    pub fn finish(self) {
        if self.list_only {
            return;
        }
        println!(
            "\n{}: {} benchmark(s) done",
            self.target,
            self.results.len()
        );
        if let Some(path) = &self.json_path {
            // The `schema` field versions the file layout so the perf
            // gate (`perf_compare`) can refuse files it does not
            // understand; `git` records which commit produced the
            // numbers, so a committed `BENCH_*.json` baseline is
            // traceable to its source tree.
            let doc = Value::object([
                ("schema", Value::from(1u64)),
                ("git", Value::from(git_short_sha().as_str())),
                ("target", Value::from(self.target.as_str())),
                (
                    "results",
                    Value::array(self.results.iter().map(BenchResult::to_json_value)),
                ),
            ]);
            std::fs::write(path, doc.to_string_pretty() + "\n")
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            println!("wrote {path}");
        }
    }
}

/// The short commit hash of the working tree, or `"unknown"` outside a
/// git checkout (e.g. a source tarball). Best-effort by design: bench
/// numbers must never fail to serialize because git is absent.
pub fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_runner(target: &str) -> Runner {
        Runner {
            target: target.to_owned(),
            calibration: Duration::from_millis(2),
            samples: 5,
            filter: None,
            list_only: false,
            json_path: None,
            results: Vec::new(),
        }
    }

    #[test]
    fn bench_produces_sane_stats() {
        let mut r = quiet_runner("t");
        let mut counter = 0u64;
        r.bench("count", || {
            counter = counter.wrapping_add(1);
            counter
        });
        assert_eq!(r.results().len(), 1);
        let b = &r.results()[0];
        assert!(b.iters_per_sample >= 1);
        assert!(b.min_ns <= b.median_ns && b.median_ns <= b.max_ns);
        assert!(b.median_ns > 0.0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut r = quiet_runner("t");
        r.filter = Some("keep".into());
        r.bench("keep_this", || 1);
        r.bench("drop_this", || 2);
        assert_eq!(r.results().len(), 1);
        assert_eq!(r.results()[0].name, "keep_this");
    }

    #[test]
    fn json_row_shape() {
        let b = BenchResult {
            name: "x".into(),
            iters_per_sample: 10,
            samples: 3,
            median_ns: 1.5,
            min_ns: 1.0,
            mean_ns: 2.0,
            max_ns: 3.0,
        };
        let v = b.to_json_value();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("median_ns").and_then(Value::as_f64), Some(1.5));
        // The row itself must survive a write→parse round-trip.
        assert_eq!(ursa_json::parse(&v.to_string()).unwrap(), v);
    }
}
