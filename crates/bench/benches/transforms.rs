//! Benchmarks for the reduction transformations (F3a–d), on the
//! in-tree harness. Run with `cargo bench --bench transforms`.

use ursa_bench::harness::Runner;
use ursa_core::{allocate, UrsaConfig};
use ursa_ir::ddg::DependenceDag;
use ursa_machine::Machine;
use ursa_workloads::paper::figure2_block;

fn main() {
    let mut runner = Runner::from_args("transforms");
    let program = figure2_block();

    // F3: the full allocation loop on the paper's example, per target
    // machine from Figures 3(a)–(d).
    for (name, fus, regs) in [
        ("a_fu_4to3", 3u32, 16u32),
        ("b_regseq_5to4", 8, 4),
        ("c_spill_5to3", 8, 3),
        ("d_combined_2fu3reg", 2, 3),
    ] {
        let machine = Machine::homogeneous(fus, regs);
        runner.bench(&format!("fig3_transforms/{name}"), || {
            allocate(
                DependenceDag::from_entry_block(&program),
                &machine,
                &UrsaConfig::default(),
            )
        });
    }

    runner.finish();
}
