//! Criterion benchmarks for the reduction transformations (F3a–d).

use criterion::{criterion_group, criterion_main, Criterion};
use ursa_core::{allocate, UrsaConfig};
use ursa_ir::ddg::DependenceDag;
use ursa_machine::Machine;
use ursa_workloads::paper::figure2_block;

/// F3: the full allocation loop on the paper's example, per target
/// machine from Figures 3(a)–(d).
fn bench_fig3_transforms(c: &mut Criterion) {
    let program = figure2_block();
    let mut group = c.benchmark_group("fig3_transforms");
    for (name, fus, regs) in [
        ("a_fu_4to3", 3u32, 16u32),
        ("b_regseq_5to4", 8, 4),
        ("c_spill_5to3", 8, 3),
        ("d_combined_2fu3reg", 2, 3),
    ] {
        let machine = Machine::homogeneous(fus, regs);
        group.bench_function(name, |b| {
            b.iter(|| {
                allocate(
                    DependenceDag::from_entry_block(&program),
                    &machine,
                    &UrsaConfig::default(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3_transforms);
criterion_main!(benches);
