//! Criterion benchmarks for the end-to-end compilation strategies
//! (drivers of tables T1–T3): per-strategy compile time and, as
//! reported metrics, schedule quality on representative points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ursa_machine::Machine;
use ursa_sched::{compile_entry_block, CompileStrategy};
use ursa_workloads::kernels::{dct8, hydro, matmul};

/// T1 driver: compile each strategy at tight registers.
fn bench_strategies_tight_regs(c: &mut Criterion) {
    let kernel = matmul(3);
    let machine = Machine::homogeneous(4, 6);
    let mut group = c.benchmark_group("sweep_regs_matmul3_r6");
    group.sample_size(10);
    for strategy in [
        CompileStrategy::Ursa(Default::default()),
        CompileStrategy::Postpass,
        CompileStrategy::Prepass,
        CompileStrategy::GoodmanHsu,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, s| b.iter(|| compile_entry_block(&kernel.program, &machine, s.clone())),
        );
    }
    group.finish();
}

/// T2 driver: URSA compile time across machine widths.
fn bench_sweep_fus(c: &mut Criterion) {
    let kernel = dct8();
    let mut group = c.benchmark_group("sweep_fus_dct8");
    group.sample_size(10);
    for fus in [1u32, 2, 4, 8] {
        let machine = Machine::homogeneous(fus, 16);
        group.bench_with_input(BenchmarkId::from_parameter(fus), &machine, |b, m| {
            b.iter(|| {
                compile_entry_block(&kernel.program, m, CompileStrategy::Ursa(Default::default()))
            })
        });
    }
    group.finish();
}

/// T3 driver: spill-heavy compilation on the hydro fragment.
fn bench_spill_pressure(c: &mut Criterion) {
    let kernel = hydro(6);
    let machine = Machine::homogeneous(4, 6);
    let mut group = c.benchmark_group("spills_hydro6_r6");
    group.sample_size(10);
    for strategy in [
        CompileStrategy::Ursa(Default::default()),
        CompileStrategy::Postpass,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, s| b.iter(|| compile_entry_block(&kernel.program, &machine, s.clone())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_strategies_tight_regs,
    bench_sweep_fus,
    bench_spill_pressure
);
criterion_main!(benches);
