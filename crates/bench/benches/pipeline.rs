//! Benchmarks for the end-to-end compilation strategies (drivers of
//! tables T1–T3): per-strategy compile time on representative points,
//! on the in-tree harness. Run with `cargo bench --bench pipeline`.

use ursa_bench::harness::Runner;
use ursa_machine::Machine;
use ursa_sched::{compile_entry_block, CompileStrategy};
use ursa_workloads::kernels::{dct8, hydro, matmul};

fn main() {
    let mut runner = Runner::from_args("pipeline");

    // T1 driver: compile each strategy at tight registers.
    {
        let kernel = matmul(3);
        let machine = Machine::homogeneous(4, 6);
        for strategy in [
            CompileStrategy::Ursa(Default::default()),
            CompileStrategy::Postpass,
            CompileStrategy::Prepass,
            CompileStrategy::GoodmanHsu,
        ] {
            runner.bench(
                &format!("sweep_regs_matmul3_r6/{}", strategy.name()),
                || compile_entry_block(&kernel.program, &machine, strategy.clone()),
            );
        }
    }

    // T2 driver: URSA compile time across machine widths.
    {
        let kernel = dct8();
        for fus in [1u32, 2, 4, 8] {
            let machine = Machine::homogeneous(fus, 16);
            runner.bench(&format!("sweep_fus_dct8/{fus}"), || {
                compile_entry_block(
                    &kernel.program,
                    &machine,
                    CompileStrategy::Ursa(Default::default()),
                )
            });
        }
    }

    // T3 driver: spill-heavy compilation on the hydro fragment.
    {
        let kernel = hydro(6);
        let machine = Machine::homogeneous(4, 6);
        for strategy in [
            CompileStrategy::Ursa(Default::default()),
            CompileStrategy::Postpass,
        ] {
            runner.bench(&format!("spills_hydro6_r6/{}", strategy.name()), || {
                compile_entry_block(&kernel.program, &machine, strategy.clone())
            });
        }
    }

    runner.finish();
}
