//! Criterion benchmarks for the measurement phase (F2, T4, T7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ursa_core::{measure, AllocCtx, KillMode, MeasureOptions};
use ursa_ir::ddg::DependenceDag;
use ursa_machine::Machine;
use ursa_workloads::paper::figure2_block;
use ursa_workloads::random::{random_block, RandomShape};

/// F2: measuring the paper's example DAG.
fn bench_fig2_measure(c: &mut Criterion) {
    let program = figure2_block();
    let machine = Machine::homogeneous(8, 16);
    c.bench_function("fig2_measure", |b| {
        b.iter(|| {
            let ddg = DependenceDag::from_entry_block(&program);
            let mut ctx = AllocCtx::new(ddg, &machine);
            measure(&mut ctx, MeasureOptions::default())
        })
    });
}

/// T4: measurement scaling with block size (the O(N³) bound).
fn bench_measure_scaling(c: &mut Criterion) {
    let machine = Machine::homogeneous(4, 16);
    let mut group = c.benchmark_group("measure_scaling");
    group.sample_size(20);
    for n in [32usize, 64, 128, 256] {
        let program = random_block(
            9,
            RandomShape {
                ops: n,
                seeds: 8,
                window: 16,
                store_pct: 10,
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &program, |b, p| {
            b.iter(|| {
                let ddg = DependenceDag::from_entry_block(p);
                let mut ctx = AllocCtx::new(ddg, &machine);
                measure(&mut ctx, MeasureOptions::default())
            })
        });
    }
    group.finish();
}

/// T7: staged (hammock-prioritized) vs. plain maximum matching.
fn bench_matching_variants(c: &mut Criterion) {
    let machine = Machine::homogeneous(4, 16);
    let program = random_block(
        5,
        RandomShape {
            ops: 96,
            seeds: 8,
            window: 16,
            store_pct: 10,
        },
    );
    let mut group = c.benchmark_group("matching_variant");
    for (name, plain) in [("staged", false), ("plain", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let ddg = DependenceDag::from_entry_block(&program);
                let mut ctx = AllocCtx::new(ddg, &machine);
                measure(
                    &mut ctx,
                    MeasureOptions {
                        kill_mode: KillMode::MinCover,
                        plain_matching: plain,
                    },
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig2_measure,
    bench_measure_scaling,
    bench_matching_variants
);
criterion_main!(benches);
