//! Benchmarks for the measurement phase (F2, T4, T7), on the in-tree
//! harness (`ursa_bench::harness`). Run with `cargo bench --bench
//! measurement`; add `-- --json out.json` for a machine-readable table.

use ursa_bench::harness::Runner;
use ursa_core::{
    allocate, allocate_budgeted, measure, AllocCtx, CompileBudget, KillMode, MeasureOptions,
    UrsaConfig,
};
use ursa_ir::ddg::DependenceDag;
use ursa_machine::Machine;
use ursa_workloads::paper::figure2_block;
use ursa_workloads::random::{random_block, RandomShape};

fn main() {
    let mut runner = Runner::from_args("measurement");

    // F2: measuring the paper's example DAG.
    {
        let program = figure2_block();
        let machine = Machine::homogeneous(8, 16);
        runner.bench("fig2_measure", || {
            let ddg = DependenceDag::from_entry_block(&program);
            let mut ctx = AllocCtx::new(ddg, &machine);
            measure(&mut ctx, MeasureOptions::default())
        });
    }

    // T4: measurement scaling with block size (the O(N³) bound).
    {
        let machine = Machine::homogeneous(4, 16);
        for n in [32usize, 64, 128, 256] {
            let program = random_block(
                9,
                RandomShape {
                    ops: n,
                    seeds: 8,
                    window: 16,
                    store_pct: 10,
                },
            );
            runner.bench(&format!("measure_scaling/{n}"), || {
                let ddg = DependenceDag::from_entry_block(&program);
                let mut ctx = AllocCtx::new(ddg, &machine);
                measure(&mut ctx, MeasureOptions::default())
            });
        }
    }

    // T7: staged (hammock-prioritized) vs. plain maximum matching.
    {
        let machine = Machine::homogeneous(4, 16);
        let program = random_block(
            5,
            RandomShape {
                ops: 96,
                seeds: 8,
                window: 16,
                store_pct: 10,
            },
        );
        for (name, plain) in [("staged", false), ("plain", true)] {
            runner.bench(&format!("matching_variant/{name}"), || {
                let ddg = DependenceDag::from_entry_block(&program);
                let mut ctx = AllocCtx::new(ddg, &machine);
                measure(
                    &mut ctx,
                    MeasureOptions {
                        kill_mode: KillMode::MinCover,
                        plain_matching: plain,
                    },
                )
            });
        }
    }

    // Kill selection, cold vs. delta: the cold path derives maximal-use
    // sets and the greedy cover from scratch; the delta path probes a
    // primed `KillSelector` against one journaled sequence edge (the
    // txn open/insert/probe/rollback cycle the reduce loop pays per
    // candidate). The gap between the two series is what incremental
    // kill selection saves on every probe.
    {
        use ursa_core::kill::KillSelector;
        use ursa_core::{select_kills, CtxTxn};
        use ursa_graph::meter::Unmetered;
        let machine = Machine::homogeneous(4, 16);
        for n in [256usize, 1024] {
            let program = random_block(
                9,
                RandomShape {
                    ops: n,
                    seeds: 8,
                    window: 16,
                    store_pct: 10,
                },
            );
            let ddg = DependenceDag::from_entry_block(&program);
            let mut ctx = AllocCtx::new(ddg, &machine);
            runner.bench(&format!("kill_select/cold/{n}"), || {
                select_kills(&ctx, KillMode::MinCover)
            });
            let kills = select_kills(&ctx, KillMode::MinCover);
            let selector = KillSelector::prime(&ctx, kills, KillMode::MinCover);
            let order = ctx.ddg().dag().topo_order().expect("trace DAG is acyclic");
            let (from, to) = order
                .iter()
                .flat_map(|&u| order.iter().map(move |&v| (u, v)))
                .find(|&(u, v)| u != v && !ctx.reach().reaches(u, v) && !ctx.would_cycle(u, v))
                .expect("some independent pair exists");
            runner.bench(&format!("kill_select/delta/{n}"), || {
                let mut txn = CtxTxn::begin(&ctx);
                txn.add_sequence_edge(&mut ctx, from, to);
                let probed = selector.probe_metered(&ctx, txn.deltas(), &Unmetered);
                txn.rollback(&mut ctx);
                probed
            });
        }
    }

    // FU sequentialization under pressure: a `w`-wide fan on a 2-FU
    // machine drives the antichain repeat loop through dozens of
    // rounds. 64 stays on the exact per-pick rescan; 256 crosses
    // `SMALL_ANTICHAIN`/`PHASE1_CHAIN_CAP` and runs the frozen-cost
    // picker (the old exact scan made this shape the ~90 s worst case
    // at 1024 ops).
    {
        use ursa_ir::parser::parse;
        let machine = Machine::homogeneous(2, 1 << 12);
        for w in [64usize, 256] {
            let mut src = String::from("v0 = load a[0]\n");
            for i in 1..=w {
                src.push_str(&format!("v{i} = mul v0, {i}\n"));
            }
            let program = parse(&src).expect("fan parses");
            runner.bench(&format!("fu_seq_pressure/{w}"), || {
                let ddg = DependenceDag::from_entry_block(&program);
                allocate(ddg, &machine, &UrsaConfig::default())
            });
        }
    }

    // The reduce loop end to end, scratch vs. incremental candidate
    // scoring — the perf-gate trajectory. The machine is derived from a
    // pre-measurement of each trace: functional units sized to the
    // trace's own FU requirement and registers set a fixed slack below
    // the register requirement. That pins the workload in the
    // measurement-bound regime the engine targets — every round is
    // find-excessive + tentative sequentializations scored by
    // re-measurement, the loop the paper's §5 integrated evaluation
    // iterates — instead of degenerating into spill construction, whose
    // node insertion can never be probed incrementally.
    {
        use ursa_core::ResourceKind;
        use ursa_machine::FuClass;
        const REG_SLACK: u32 = 4;
        let derive = |n: usize| {
            let program = random_block(
                9,
                RandomShape {
                    ops: n,
                    seeds: 8,
                    window: 16,
                    store_pct: 10,
                },
            );
            let roomy = Machine::homogeneous(4096, 1 << 20);
            let ddg = DependenceDag::from_entry_block(&program);
            let mut ctx = AllocCtx::new(ddg, &roomy);
            let m = measure(&mut ctx, MeasureOptions::default());
            let fu_req = m
                .of(ResourceKind::Fu(FuClass::Universal))
                .map_or(4, |r| r.requirement.required);
            let reg_req = m
                .of(ResourceKind::Registers)
                .map_or(8, |r| r.requirement.required);
            let machine = Machine::homogeneous(fu_req, reg_req.saturating_sub(REG_SLACK).max(2));
            (program, machine)
        };
        for n in [64usize, 128, 256, 1024] {
            let (program, machine) = derive(n);
            runner.bench(&format!("reduce_scratch/{n}"), || {
                let ddg = DependenceDag::from_entry_block(&program);
                allocate(
                    ddg,
                    &machine,
                    &UrsaConfig {
                        incremental: false,
                        ..UrsaConfig::default()
                    },
                )
            });
        }
        for n in [64usize, 128, 256, 512, 1024] {
            let (program, machine) = derive(n);
            runner.bench(&format!("reduce_incremental/{n}"), || {
                let ddg = DependenceDag::from_entry_block(&program);
                allocate(ddg, &machine, &UrsaConfig::default())
            });
        }
        // The same loop through `allocate_budgeted` with a budget that
        // never trips: the delta against `reduce_incremental/{n}` is
        // the cost of the cooperative cancellation checkpoints alone
        // (the ≤2% bound README states for --deadline-ms support).
        for n in [64usize, 128, 256, 1024] {
            let (program, machine) = derive(n);
            runner.bench(&format!("reduce_budgeted/{n}"), || {
                let ddg = DependenceDag::from_entry_block(&program);
                let budget = CompileBudget::with_max_steps(u64::MAX);
                allocate_budgeted(ddg, &machine, &UrsaConfig::default(), &budget)
            });
        }
    }

    // The whole-program driver end to end on the shipped examples:
    // trace selection, liveness, per-unit compilation, and cross-block
    // compensation, as `ursac --whole-program` runs it.
    {
        use ursa_ir::parser::parse;
        use ursa_sched::{try_compile_program, CompileStrategy, PipelineOptions};
        let machine = Machine::homogeneous(4, 8);
        for name in ["hydro", "loop"] {
            let path = format!(
                "{}/../../examples/data/{name}.tac",
                env!("CARGO_MANIFEST_DIR")
            );
            let src = std::fs::read_to_string(&path).expect("example source");
            let program = parse(&src).expect("example parses");
            runner.bench(&format!("compile_program/{name}"), || {
                try_compile_program(
                    &program,
                    &machine,
                    CompileStrategy::Ursa(Default::default()),
                    &PipelineOptions::default(),
                )
                .expect("example compiles")
            });
        }
    }

    // The schedule-quality analyzer (ursa-lint::bounds) next to the
    // compile it annotates: `analyze/*` times one bounds pass (DDG
    // build + Dilworth register requirement + FU occupancy +
    // spill-traffic scan) over an already-compiled kernel, `compile/*`
    // is the matching full-pipeline denominator. The README's ≤5%
    // `--bounds` overhead claim is the analyze/compile ratio of the
    // dct8 rows (fig2 is the microscopic end, where the analyzer costs
    // about one extra `fig2_measure` — tiny in absolute terms, but the
    // 23 µs compile makes any ratio meaningless). dct8 runs on (4,32)
    // rather than T8's (4,16): same analysis, but the denominator stays
    // ~1 s instead of the ~8 s spill-heavy compile, which would drown
    // the rest of the perf gate.
    {
        use ursa_lint::{analyze_quality, BoundsOptions};
        use ursa_sched::{try_compile_with, CompileStrategy, PipelineOptions};
        use ursa_workloads::kernels::kernel_suite;
        let kernels: Vec<_> = kernel_suite()
            .into_iter()
            .filter(|k| k.name == "fig2" || k.name == "dct8")
            .collect();
        for kernel in &kernels {
            let machine = if kernel.name == "dct8" {
                Machine::homogeneous(4, 32)
            } else {
                Machine::homogeneous(4, 16)
            };
            let trace = ursa_ir::Trace::entry();
            let compiled = try_compile_with(
                &kernel.program,
                &trace,
                &machine,
                CompileStrategy::Ursa(Default::default()),
                &PipelineOptions::default(),
            )
            .expect("kernel compiles");
            runner.bench(&format!("lint_bounds/analyze/{}", kernel.name), || {
                let ddg = DependenceDag::from_entry_block(&kernel.program);
                analyze_quality(&ddg, &machine, &compiled, BoundsOptions::default())
            });
            runner.bench(&format!("lint_bounds/compile/{}", kernel.name), || {
                try_compile_with(
                    &kernel.program,
                    &trace,
                    &machine,
                    CompileStrategy::Ursa(Default::default()),
                    &PipelineOptions::default(),
                )
                .expect("kernel compiles")
            });
        }
    }

    runner.finish();
}
