//! Benchmarks for the measurement phase (F2, T4, T7), on the in-tree
//! harness (`ursa_bench::harness`). Run with `cargo bench --bench
//! measurement`; add `-- --json out.json` for a machine-readable table.

use ursa_bench::harness::Runner;
use ursa_core::{measure, AllocCtx, KillMode, MeasureOptions};
use ursa_ir::ddg::DependenceDag;
use ursa_machine::Machine;
use ursa_workloads::paper::figure2_block;
use ursa_workloads::random::{random_block, RandomShape};

fn main() {
    let mut runner = Runner::from_args("measurement");

    // F2: measuring the paper's example DAG.
    {
        let program = figure2_block();
        let machine = Machine::homogeneous(8, 16);
        runner.bench("fig2_measure", || {
            let ddg = DependenceDag::from_entry_block(&program);
            let mut ctx = AllocCtx::new(ddg, &machine);
            measure(&mut ctx, MeasureOptions::default())
        });
    }

    // T4: measurement scaling with block size (the O(N³) bound).
    {
        let machine = Machine::homogeneous(4, 16);
        for n in [32usize, 64, 128, 256] {
            let program = random_block(
                9,
                RandomShape {
                    ops: n,
                    seeds: 8,
                    window: 16,
                    store_pct: 10,
                },
            );
            runner.bench(&format!("measure_scaling/{n}"), || {
                let ddg = DependenceDag::from_entry_block(&program);
                let mut ctx = AllocCtx::new(ddg, &machine);
                measure(&mut ctx, MeasureOptions::default())
            });
        }
    }

    // T7: staged (hammock-prioritized) vs. plain maximum matching.
    {
        let machine = Machine::homogeneous(4, 16);
        let program = random_block(
            5,
            RandomShape {
                ops: 96,
                seeds: 8,
                window: 16,
                store_pct: 10,
            },
        );
        for (name, plain) in [("staged", false), ("plain", true)] {
            runner.bench(&format!("matching_variant/{name}"), || {
                let ddg = DependenceDag::from_entry_block(&program);
                let mut ctx = AllocCtx::new(ddg, &machine);
                measure(
                    &mut ctx,
                    MeasureOptions {
                        kill_mode: KillMode::MinCover,
                        plain_matching: plain,
                    },
                )
            });
        }
    }

    runner.finish();
}
