//! Structured diagnostics with stable codes.
//!
//! Every finding of the translation validator or a lint pass is a
//! [`Diagnostic`] carrying a stable [`Code`] (never renumbered, so
//! tooling can match on them), a message, optional cycle/node
//! provenance, and a trail of human-readable notes.

use std::fmt;
use ursa_graph::dag::NodeId;
pub use ursa_sched::LintLevel;

/// How bad a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational report (never fails a compilation).
    Note,
    /// A lint finding: suspicious but not provably a miscompile.
    Warning,
    /// A translation-validation failure: the emitted code provably does
    /// not implement the dependence DAG.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The diagnostic-code registry. `U00xx` codes are validator errors,
/// `U01xx` codes are lint findings, `U02xx` codes are whole-program
/// boundary-handoff errors, `U03xx` codes are schedule-quality findings
/// against the lower-bound certificates (see [`crate::bounds`]). Codes
/// are stable: they are never renumbered or reused.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Code {
    /// A register holding a live value was overwritten before its last
    /// read, and a later operation read the clobbering value.
    ClobberedLiveRegister,
    /// An operation read a register holding some other value than the
    /// dependence DAG says it should (and the expected value was never
    /// in that register).
    WrongOperandValue,
    /// An operation read a register whose producing write was issued
    /// but has not committed yet (latency violation).
    ReadBeforeCommit,
    /// A spill reload issued before the spill store's value committed
    /// to memory (or with no store at all).
    ReloadBeforeStoreCommit,
    /// An emitted operation matches no remaining dependence-DAG node.
    UnmatchedOperation,
    /// A dependence-DAG operation was never emitted.
    MissingOperation,
    /// A memory operation issued before a may-aliasing predecessor
    /// access it depends on.
    MemoryOrderViolation,
    /// A store wrote a different value than the DAG's store node.
    StoreValueMismatch,
    /// A sequentialization (or control) edge added to the DAG is not
    /// respected by the emitted issue order.
    DroppedSequenceEdge,
    /// Emitted code touches a register outside the declared file.
    RegisterOutOfFile,
    /// Two operations overlap on one functional unit, or the unit index
    /// does not exist.
    UnitConflict,
    /// A computed value is never used, is not live-out, and holds a
    /// register while later operations run.
    DeadValue,
    /// A spill store whose slot is never reloaded.
    RedundantSpillPair,
    /// A staged chain decomposition with more chains than the plain
    /// Dilworth bound — the hammock-priority matcher lost minimality.
    NonMinimalChainDecomposition,
    /// A machine description with inconsistent latency or resource
    /// declarations.
    InconsistentMachine,
    /// A register-pressure hotspot: an excessive region reported per
    /// the measure phase.
    RegisterPressureHotspot,
    /// A program symbol collides with the reserved `__` spill prefix,
    /// exempting its memory traffic from conservation checks.
    SpillSymbolCollision,
    /// A whole-program unit takes an off-trace edge along which a live
    /// value was never stored to the `__boundary` hand-off area: the
    /// successor unit would reload a stale value.
    MissingCompensation,
    /// A whole-program unit declares a non-empty register live-in set:
    /// a register value would have to survive a unit switch, which the
    /// boundary hand-off contract forbids.
    ClobberedLiveOut,
    /// The emitted schedule is longer than the largest lower bound
    /// (critical path / FU occupancy) by more than the configured
    /// slack: provably suboptimal.
    ScheduleExceedsBound,
    /// Spill code was emitted although the Dilworth register
    /// requirement fits the register file: some legal schedule needed
    /// no spills at all.
    AvoidableSpill,
    /// A spill store/load pair whose traffic is provably redundant: the
    /// spilled value is a constant (rematerializable in place) or the
    /// reloaded register is never read again.
    RedundantSpillTraffic,
    /// A `__boundary` hand-off store whose cell is dead on every
    /// successor unit: pure cross-unit traffic.
    DeadBoundaryStore,
    /// Per-unit optimality-gap report carrying the raw bound numbers
    /// (schedule length vs. critical path / occupancy / register
    /// requirement).
    OptimalityGap,
}

impl Code {
    /// Every code, for registry listings.
    pub const ALL: [Code; 24] = [
        Code::ClobberedLiveRegister,
        Code::WrongOperandValue,
        Code::ReadBeforeCommit,
        Code::ReloadBeforeStoreCommit,
        Code::UnmatchedOperation,
        Code::MissingOperation,
        Code::MemoryOrderViolation,
        Code::StoreValueMismatch,
        Code::DroppedSequenceEdge,
        Code::RegisterOutOfFile,
        Code::UnitConflict,
        Code::DeadValue,
        Code::RedundantSpillPair,
        Code::NonMinimalChainDecomposition,
        Code::InconsistentMachine,
        Code::RegisterPressureHotspot,
        Code::SpillSymbolCollision,
        Code::MissingCompensation,
        Code::ClobberedLiveOut,
        Code::ScheduleExceedsBound,
        Code::AvoidableSpill,
        Code::RedundantSpillTraffic,
        Code::DeadBoundaryStore,
        Code::OptimalityGap,
    ];

    /// The stable code string, e.g. `"U0001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::ClobberedLiveRegister => "U0001",
            Code::WrongOperandValue => "U0002",
            Code::ReadBeforeCommit => "U0003",
            Code::ReloadBeforeStoreCommit => "U0004",
            Code::UnmatchedOperation => "U0005",
            Code::MissingOperation => "U0006",
            Code::MemoryOrderViolation => "U0007",
            Code::StoreValueMismatch => "U0008",
            Code::DroppedSequenceEdge => "U0009",
            Code::RegisterOutOfFile => "U0010",
            Code::UnitConflict => "U0011",
            Code::DeadValue => "U0101",
            Code::RedundantSpillPair => "U0102",
            Code::NonMinimalChainDecomposition => "U0103",
            Code::InconsistentMachine => "U0104",
            Code::RegisterPressureHotspot => "U0105",
            Code::SpillSymbolCollision => "U0106",
            Code::MissingCompensation => "U0201",
            Code::ClobberedLiveOut => "U0202",
            Code::ScheduleExceedsBound => "U0301",
            Code::AvoidableSpill => "U0302",
            Code::RedundantSpillTraffic => "U0303",
            Code::DeadBoundaryStore => "U0304",
            Code::OptimalityGap => "U0305",
        }
    }

    /// Parses a stable code string (`"U0301"`) back into the code.
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// The kebab-case name, e.g. `"clobbered-live-register"`.
    pub fn name(self) -> &'static str {
        match self {
            Code::ClobberedLiveRegister => "clobbered-live-register",
            Code::WrongOperandValue => "wrong-operand-value",
            Code::ReadBeforeCommit => "read-before-commit",
            Code::ReloadBeforeStoreCommit => "reload-before-store-commit",
            Code::UnmatchedOperation => "unmatched-operation",
            Code::MissingOperation => "missing-operation",
            Code::MemoryOrderViolation => "memory-order-violation",
            Code::StoreValueMismatch => "store-value-mismatch",
            Code::DroppedSequenceEdge => "dropped-sequence-edge",
            Code::RegisterOutOfFile => "register-out-of-file",
            Code::UnitConflict => "unit-conflict",
            Code::DeadValue => "dead-value",
            Code::RedundantSpillPair => "redundant-spill-pair",
            Code::NonMinimalChainDecomposition => "non-minimal-chain-decomposition",
            Code::InconsistentMachine => "inconsistent-machine",
            Code::RegisterPressureHotspot => "register-pressure-hotspot",
            Code::SpillSymbolCollision => "spill-symbol-collision",
            Code::MissingCompensation => "missing-compensation",
            Code::ClobberedLiveOut => "clobbered-live-out",
            Code::ScheduleExceedsBound => "schedule-exceeds-bound",
            Code::AvoidableSpill => "avoidable-spill",
            Code::RedundantSpillTraffic => "redundant-spill-traffic",
            Code::DeadBoundaryStore => "dead-boundary-store",
            Code::OptimalityGap => "optimality-gap",
        }
    }

    /// The default severity of a code: validator codes are errors,
    /// lints are warnings, reports are notes.
    pub fn severity(self) -> Severity {
        match self {
            Code::ClobberedLiveRegister
            | Code::WrongOperandValue
            | Code::ReadBeforeCommit
            | Code::ReloadBeforeStoreCommit
            | Code::UnmatchedOperation
            | Code::MissingOperation
            | Code::MemoryOrderViolation
            | Code::StoreValueMismatch
            | Code::DroppedSequenceEdge
            | Code::RegisterOutOfFile
            | Code::UnitConflict
            | Code::MissingCompensation
            | Code::ClobberedLiveOut => Severity::Error,
            Code::DeadValue
            | Code::RedundantSpillPair
            | Code::NonMinimalChainDecomposition
            | Code::InconsistentMachine
            | Code::SpillSymbolCollision
            | Code::ScheduleExceedsBound
            | Code::AvoidableSpill
            | Code::RedundantSpillTraffic
            | Code::DeadBoundaryStore => Severity::Warning,
            Code::RegisterPressureHotspot | Code::OptimalityGap => Severity::Note,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.as_str(), self.name())
    }
}

/// One finding, with provenance.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// One-line description of what is wrong.
    pub message: String,
    /// Issue cycle of the offending operation, when applicable.
    pub cycle: Option<u64>,
    /// Dependence-DAG nodes involved (for `--dot-annotated`).
    pub nodes: Vec<NodeId>,
    /// Provenance trail: how the value got where it is, one hop per
    /// line.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with no provenance attached yet.
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            message: message.into(),
            cycle: None,
            nodes: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Attaches an issue cycle.
    pub fn at_cycle(mut self, cycle: u64) -> Diagnostic {
        self.cycle = Some(cycle);
        self
    }

    /// Attaches a DAG node.
    pub fn on_node(mut self, node: NodeId) -> Diagnostic {
        self.nodes.push(node);
        self
    }

    /// Appends a provenance note.
    pub fn note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// The severity (the code's default).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// The machine-readable form for `--format=json`.
    pub fn to_json_value(&self) -> ursa_json::Value {
        let mut fields = vec![
            ("code", ursa_json::Value::from(self.code.as_str())),
            ("name", ursa_json::Value::from(self.code.name())),
            (
                "severity",
                ursa_json::Value::from(self.severity().to_string()),
            ),
            ("message", ursa_json::Value::from(self.message.as_str())),
        ];
        if let Some(c) = self.cycle {
            fields.push(("cycle", ursa_json::Value::from(c)));
        }
        if !self.notes.is_empty() {
            fields.push((
                "notes",
                ursa_json::Value::array(self.notes.iter().map(|n| n.as_str().into())),
            ));
        }
        ursa_json::Value::object(fields)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{} {}]: {}",
            self.severity(),
            self.code.as_str(),
            self.code.name(),
            self.message
        )?;
        if let Some(c) = self.cycle {
            write!(f, " (cycle {c})")?;
        }
        for n in &self.notes {
            write!(f, "\n  note: {n}")?;
        }
        Ok(())
    }
}

/// All findings for one compilation (or one standalone `ursalint` run).
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// The findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> LintReport {
        LintReport::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Adds many findings.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// `true` when nothing was found at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The validator errors only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// The lint warnings only.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }

    /// Whether this report fails a compilation under `level`: `Allow`
    /// never fails, `Warn` fails on errors, `Deny` fails on warnings
    /// too. Notes never fail.
    pub fn fails_at(&self, level: LintLevel) -> bool {
        match level {
            LintLevel::Allow => false,
            LintLevel::Warn => self.errors().next().is_some(),
            LintLevel::Deny => self.errors().next().is_some() || self.warnings().next().is_some(),
        }
    }

    /// `true` when any diagnostic carries `code`.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The number of diagnostics carrying `code`.
    pub fn count(&self, code: Code) -> usize {
        self.diagnostics.iter().filter(|d| d.code == code).count()
    }

    /// The machine-readable form for `--format=json`: an array of
    /// diagnostic objects.
    pub fn to_json_value(&self) -> ursa_json::Value {
        ursa_json::Value::array(self.diagnostics.iter().map(Diagnostic::to_json_value))
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        strs.sort();
        strs.dedup();
        assert_eq!(strs.len(), Code::ALL.len(), "duplicate code strings");
        assert_eq!(Code::ClobberedLiveRegister.as_str(), "U0001");
        assert_eq!(
            Code::ClobberedLiveRegister.name(),
            "clobbered-live-register"
        );
        assert_eq!(Code::ReloadBeforeStoreCommit.as_str(), "U0004");
        assert_eq!(Code::DroppedSequenceEdge.as_str(), "U0009");
        assert_eq!(Code::MissingCompensation.as_str(), "U0201");
        assert_eq!(Code::MissingCompensation.name(), "missing-compensation");
        assert_eq!(Code::ClobberedLiveOut.as_str(), "U0202");
        assert_eq!(Code::MissingCompensation.severity(), Severity::Error);
        assert_eq!(Code::ClobberedLiveOut.severity(), Severity::Error);
        assert_eq!(Code::ScheduleExceedsBound.as_str(), "U0301");
        assert_eq!(Code::ScheduleExceedsBound.name(), "schedule-exceeds-bound");
        assert_eq!(Code::AvoidableSpill.as_str(), "U0302");
        assert_eq!(Code::RedundantSpillTraffic.as_str(), "U0303");
        assert_eq!(Code::DeadBoundaryStore.as_str(), "U0304");
        assert_eq!(Code::OptimalityGap.as_str(), "U0305");
        assert_eq!(Code::ScheduleExceedsBound.severity(), Severity::Warning);
        assert_eq!(Code::AvoidableSpill.severity(), Severity::Warning);
        assert_eq!(Code::OptimalityGap.severity(), Severity::Note);
        assert_eq!(Code::parse("U0302"), Some(Code::AvoidableSpill));
        assert_eq!(Code::parse("U9999"), None);
    }

    #[test]
    fn report_levels() {
        let mut r = LintReport::new();
        assert!(!r.fails_at(LintLevel::Deny));
        r.push(Diagnostic::new(Code::RegisterPressureHotspot, "hot"));
        assert!(!r.fails_at(LintLevel::Deny), "notes never fail");
        r.push(Diagnostic::new(Code::DeadValue, "dead"));
        assert!(!r.fails_at(LintLevel::Warn));
        assert!(r.fails_at(LintLevel::Deny));
        r.push(Diagnostic::new(Code::ClobberedLiveRegister, "clobber"));
        assert!(r.fails_at(LintLevel::Warn));
        assert!(!r.fails_at(LintLevel::Allow));
        assert!(r.has(Code::DeadValue));
        assert!(!r.has(Code::UnitConflict));
    }

    #[test]
    fn display_carries_code_cycle_and_notes() {
        let d = Diagnostic::new(Code::ClobberedLiveRegister, "r3 clobbered")
            .at_cycle(7)
            .note("defined at cycle 2");
        let s = d.to_string();
        assert!(s.contains("U0001"), "{s}");
        assert!(s.contains("clobbered-live-register"));
        assert!(s.contains("(cycle 7)"));
        assert!(s.contains("note: defined at cycle 2"));
    }

    #[test]
    fn json_form_round_trips() {
        let mut r = LintReport::new();
        r.push(
            Diagnostic::new(
                Code::AvoidableSpill,
                "2 spill stores, requirement 5 fits 16",
            )
            .at_cycle(3)
            .note("requirement computed on the untransformed DAG"),
        );
        let text = r.to_json_value().to_string_pretty();
        let v = ursa_json::parse(&text).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("code").unwrap().as_str(), Some("U0302"));
        assert_eq!(arr[0].get("severity").unwrap().as_str(), Some("warning"));
        assert_eq!(arr[0].get("cycle").unwrap().as_u64(), Some(3));
        assert_eq!(arr[0].get("notes").unwrap().as_array().unwrap().len(), 1);
    }
}
