//! Schedule-quality analysis against lower-bound certificates.
//!
//! [`analyze_quality`] compares one compiled trace against the
//! machine-independent bounds `ursa-core` computes on the
//! *untransformed* dependence DAG ([`ursa_core::schedule_bounds`]):
//! the weighted critical path, the Dilworth chain-cover register
//! requirement, and the per-FU-class occupancy bound. The findings are
//! the `U03xx` diagnostic family:
//!
//! * `U0301` — the schedule is longer than the largest bound by more
//!   than the configured slack (provably suboptimal);
//! * `U0302` — spill code was emitted although the register
//!   requirement fits the file (the paper's Theorem 1 bounds *all*
//!   schedules, so some legal schedule needed no spills);
//! * `U0303` — spill traffic that is provably redundant: the stored
//!   value is a constant (rematerializable in place), or a reload's
//!   register is redefined or unread ever after (final register
//!   contents are unobservable — only memory is compared);
//! * `U0304` — a `__boundary` hand-off store whose cell is dead on
//!   every successor unit (computed by `lint_program`, which has the
//!   liveness; [`dead_boundary_stores`] does the word scan);
//! * `U0305` — a note carrying the raw per-unit gap numbers.
//!
//! All `U03xx` findings except the `U0305` note are **warnings**, not
//! errors: a bound violation proves the schedule is *suboptimal*, never
//! that it is *wrong* — correctness is the validator's (`U00xx`) job.

use crate::diag::{Code, Diagnostic};
use ursa_core::{schedule_bounds, ScheduleBounds};
use ursa_ir::ddg::DependenceDag;
use ursa_ir::instr::Instr;
use ursa_ir::value::Operand;
use ursa_machine::Machine;
use ursa_sched::{is_spill_symbol, Compiled, SlotOp, VliwProgram, BOUNDARY_SYMBOL};

/// Knobs for the quality analysis.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoundsOptions {
    /// Cycles of headroom above the schedule-length lower bound before
    /// `U0301` fires. `0` reports every provably suboptimal schedule.
    pub slack: u64,
}

/// The per-unit quality record behind the `U0305` note and the JSON
/// telemetry (EXPERIMENTS.md T8).
#[derive(Clone, Debug)]
pub struct UnitQuality {
    /// The lower-bound certificates of the unit's DAG.
    pub bounds: ScheduleBounds,
    /// Achieved schedule length in cycles (including latency drain).
    pub schedule_length: u64,
    /// Spill stores emitted.
    pub spill_stores: usize,
    /// Spill reloads emitted.
    pub spill_loads: usize,
}

impl UnitQuality {
    /// `schedule_length − length_bound`: the provable optimality gap.
    pub fn gap(&self) -> u64 {
        self.schedule_length
            .saturating_sub(self.bounds.length_bound())
    }

    /// The machine-readable form for `--format=json` and T8.
    pub fn to_json_value(&self) -> ursa_json::Value {
        let occupancy_bound = self
            .bounds
            .occupancy
            .iter()
            .map(|o| o.bound())
            .max()
            .unwrap_or(0);
        ursa_json::Value::object([
            (
                "schedule_length",
                ursa_json::Value::from(self.schedule_length),
            ),
            (
                "length_bound",
                ursa_json::Value::from(self.bounds.length_bound()),
            ),
            ("gap", ursa_json::Value::from(self.gap())),
            (
                "critical_path",
                ursa_json::Value::from(self.bounds.critical_path),
            ),
            ("occupancy_bound", ursa_json::Value::from(occupancy_bound)),
            (
                "reg_required",
                ursa_json::Value::from(self.bounds.registers.required),
            ),
            (
                "reg_capacity",
                ursa_json::Value::from(self.bounds.registers.capacity),
            ),
            ("spill_stores", ursa_json::Value::from(self.spill_stores)),
            ("spill_loads", ursa_json::Value::from(self.spill_loads)),
        ])
    }
}

/// Runs the quality analysis for one compiled trace: returns the
/// quality record and the `U0301`/`U0302`/`U0303`/`U0305` findings.
///
/// `ddg` must be the **untransformed** DAG of the source trace — the
/// bounds certify the program, not the allocator's rewrite.
pub fn analyze_quality(
    ddg: &DependenceDag,
    machine: &Machine,
    compiled: &Compiled,
    opts: BoundsOptions,
) -> (UnitQuality, Vec<Diagnostic>) {
    let bounds = schedule_bounds(ddg, machine);
    let quality = UnitQuality {
        schedule_length: compiled.stats.schedule_length,
        spill_stores: compiled.stats.spill_stores,
        spill_loads: compiled.stats.spill_loads,
        bounds,
    };
    let mut diags = Vec::new();

    let bound = quality.bounds.length_bound();
    if quality.schedule_length > bound + opts.slack {
        diags.push(
            Diagnostic::new(
                Code::ScheduleExceedsBound,
                format!(
                    "schedule length {} exceeds the lower bound {} by {} cycle(s) \
                     (slack {})",
                    quality.schedule_length,
                    bound,
                    quality.schedule_length - bound,
                    opts.slack
                ),
            )
            .note(format!(
                "critical path {}, occupancy bound {}",
                quality.bounds.critical_path,
                quality
                    .bounds
                    .occupancy
                    .iter()
                    .map(|o| o.bound())
                    .max()
                    .unwrap_or(0)
            )),
        );
    }

    let spills = quality.spill_stores + quality.spill_loads;
    if spills > 0 && quality.bounds.registers_fit() {
        diags.push(
            Diagnostic::new(
                Code::AvoidableSpill,
                format!(
                    "{} spill op(s) emitted although the register requirement {} \
                     fits the {}-register file",
                    spills, quality.bounds.registers.required, quality.bounds.registers.capacity
                ),
            )
            .note(
                "the Dilworth requirement bounds every legal schedule: \
                 some schedule of this trace needs no spills",
            ),
        );
    }

    diags.extend(redundant_spill_traffic(&compiled.vliw));

    diags.push(
        Diagnostic::new(
            Code::OptimalityGap,
            format!(
                "length {} vs bound {} (gap {}); registers {}/{}; {} spill op(s)",
                quality.schedule_length,
                bound,
                quality.gap(),
                quality.bounds.registers.required,
                quality.bounds.registers.capacity,
                spills
            ),
        )
        .note(format!(
            "critical path {}; occupancy {}",
            quality.bounds.critical_path,
            quality
                .bounds
                .occupancy
                .iter()
                .map(|o| format!("{:?}:⌈{}/{}⌉={}", o.class, o.busy, o.units, o.bound()))
                .collect::<Vec<_>>()
                .join(", ")
        )),
    );

    (quality, diags)
}

/// Scans emitted words for provably redundant spill traffic (`U0303`):
/// spill stores of constant-defined registers (rematerializable) and
/// spill reloads whose destination is redefined or never read again.
///
/// The `__boundary` hand-off area is exempt — its stores implement the
/// cross-unit ABI and are judged by the liveness-aware `U0304` check
/// instead.
pub fn redundant_spill_traffic(vliw: &VliwProgram) -> Vec<Diagnostic> {
    let nregs = vliw.num_regs as usize;
    let spill_base = |base: ursa_ir::value::SymbolId| -> bool {
        vliw.symbols
            .get(base.0 as usize)
            .is_some_and(|s| is_spill_symbol(s) && s != BOUNDARY_SYMBOL)
    };
    // Per physical register: was the last def a constant, and is there
    // a spill reload into it that nothing has read yet?
    let mut const_def: Vec<Option<i64>> = vec![None; nregs];
    let mut pending_reload: Vec<Option<u64>> = vec![None; nregs];
    let mut diags = Vec::new();
    for (cycle, word) in vliw.words.iter().enumerate() {
        let cycle = cycle as u64;
        // Reads of a word see state from before the word: handle every
        // slot's uses first, then apply the defs.
        for mop in word {
            let uses: Vec<u32> = match &mop.op {
                SlotOp::Instr(i) => i.uses().iter().map(|r| r.0).collect(),
                SlotOp::Branch { cond, .. } => cond.as_reg().map(|r| r.0).into_iter().collect(),
            };
            for r in uses {
                if let Some(slot) = pending_reload.get_mut(r as usize) {
                    *slot = None;
                }
            }
            if let SlotOp::Instr(Instr::Store { mem, src }) = &mop.op {
                if spill_base(mem.base) {
                    if let Operand::Reg(r) = src {
                        if let Some(Some(value)) = const_def.get(r.0 as usize) {
                            diags.push(
                                Diagnostic::new(
                                    Code::RedundantSpillTraffic,
                                    format!(
                                        "spill store of register r{} holding constant {}: \
                                         rematerializable in place",
                                        r.0, value
                                    ),
                                )
                                .at_cycle(cycle),
                            );
                        }
                    }
                }
            }
        }
        for mop in word {
            let SlotOp::Instr(instr) = &mop.op else {
                continue;
            };
            let Some(dst) = instr.def() else { continue };
            let d = dst.0 as usize;
            if d >= nregs {
                continue;
            }
            if let Some(reload_cycle) = pending_reload[d].take() {
                diags.push(
                    Diagnostic::new(
                        Code::RedundantSpillTraffic,
                        format!(
                            "spill reload into register r{} at cycle {reload_cycle} is \
                             redefined before any read",
                            dst.0
                        ),
                    )
                    .at_cycle(reload_cycle),
                );
            }
            const_def[d] = match instr {
                Instr::Const { value, .. } => Some(*value),
                _ => None,
            };
            if let Instr::Load { mem, .. } = instr {
                if spill_base(mem.base) {
                    pending_reload[d] = Some(cycle);
                }
            }
        }
    }
    for (r, reload_cycle) in pending_reload.iter().enumerate() {
        if let Some(c) = reload_cycle {
            diags.push(
                Diagnostic::new(
                    Code::RedundantSpillTraffic,
                    format!(
                        "spill reload into register r{r} is never read again \
                         (final register contents are unobservable)"
                    ),
                )
                .at_cycle(*c),
            );
        }
    }
    diags
}

/// Finds `__boundary` stores to cells outside `live_cells` — the word
/// scan behind the `U0304` check. Returns `(cycle, cell)` pairs.
///
/// `live_cells[r]` must be `true` when boundary cell `r` (= virtual
/// register `r`) is live into **some** off-unit successor; a store to
/// any other cell is pure dead cross-unit traffic.
pub fn dead_boundary_stores(vliw: &VliwProgram, live_cells: &[bool]) -> Vec<(u64, u32)> {
    let boundary = vliw.symbols.iter().position(|s| s == BOUNDARY_SYMBOL);
    let Some(boundary) = boundary else {
        return Vec::new();
    };
    let mut dead = Vec::new();
    for (cycle, word) in vliw.words.iter().enumerate() {
        for mop in word {
            let SlotOp::Instr(Instr::Store { mem, .. }) = &mop.op else {
                continue;
            };
            if mem.base.0 as usize != boundary {
                continue;
            }
            let Operand::Imm(cell) = mem.index else {
                continue;
            };
            let cell = cell as u32;
            if !live_cells.get(cell as usize).copied().unwrap_or(false) {
                dead.push((cycle as u64, cell));
            }
        }
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::parser::parse;
    use ursa_machine::Machine;
    use ursa_sched::{compile_entry_block, CompileStrategy, MachineOp};
    use ursa_workloads::paper::{expected, figure2_block, FIGURE2_SOURCE};

    fn fig2_compiled(machine: &Machine) -> (DependenceDag, Compiled) {
        let p = parse(FIGURE2_SOURCE).unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let compiled = compile_entry_block(&p, machine, CompileStrategy::Ursa(Default::default()));
        (ddg, compiled)
    }

    #[test]
    fn figure2_bounds_match_the_paper() {
        let machine = Machine::homogeneous(4, 16);
        let p = figure2_block();
        let ddg = DependenceDag::from_entry_block(&p);
        let b = schedule_bounds(&ddg, &machine);
        assert_eq!(b.critical_path, u64::from(expected::CRITICAL_PATH));
        assert_eq!(b.registers.required, expected::REG_REQUIREMENT);
        // 11 ops over 4 FUs: ⌈11/4⌉ = 3 — the path dominates.
        assert_eq!(b.length_bound(), u64::from(expected::CRITICAL_PATH));
    }

    #[test]
    fn roomy_compile_is_quality_clean_modulo_the_note() {
        let machine = Machine::homogeneous(4, 16);
        let (ddg, compiled) = fig2_compiled(&machine);
        let (quality, diags) = analyze_quality(&ddg, &machine, &compiled, BoundsOptions::default());
        assert!(
            diags.iter().all(|d| d.code == Code::OptimalityGap),
            "unexpected quality findings: {diags:?}"
        );
        assert_eq!(quality.gap(), 0, "fig2 on (4,16) schedules at the bound");
    }

    #[test]
    fn padded_schedule_trips_u0301() {
        let machine = Machine::homogeneous(4, 16);
        let (ddg, mut compiled) = fig2_compiled(&machine);
        // Hand-pad the schedule with three empty words.
        compiled
            .vliw
            .words
            .extend([Vec::new(), Vec::new(), Vec::new()]);
        compiled.stats.schedule_length += 3;
        let (_, diags) = analyze_quality(&ddg, &machine, &compiled, BoundsOptions::default());
        assert!(diags.iter().any(|d| d.code == Code::ScheduleExceedsBound));
        // ... but a slack of 3 absorbs the padding.
        let (_, diags) = analyze_quality(&ddg, &machine, &compiled, BoundsOptions { slack: 3 });
        assert!(!diags.iter().any(|d| d.code == Code::ScheduleExceedsBound));
    }

    #[test]
    fn forced_spill_on_fitting_kernel_trips_u0302() {
        let machine = Machine::homogeneous(4, 16);
        let (ddg, mut compiled) = fig2_compiled(&machine);
        // Pretend the allocator spilled anyway: requirement 5 fits 16.
        compiled.stats.spill_stores = 1;
        compiled.stats.spill_loads = 1;
        let (_, diags) = analyze_quality(&ddg, &machine, &compiled, BoundsOptions::default());
        assert!(diags.iter().any(|d| d.code == Code::AvoidableSpill));
    }

    #[test]
    fn tight_file_spills_are_not_avoidable() {
        // Requirement 5 does not fit 3 registers: spills are justified,
        // U0302 must stay quiet.
        let machine = Machine::homogeneous(2, 3);
        let (ddg, compiled) = fig2_compiled(&machine);
        assert!(compiled.stats.spill_stores + compiled.stats.spill_loads > 0);
        let (quality, diags) = analyze_quality(&ddg, &machine, &compiled, BoundsOptions::default());
        assert!(!quality.bounds.registers_fit());
        assert!(!diags.iter().any(|d| d.code == Code::AvoidableSpill));
    }

    #[test]
    fn const_spill_and_dead_reload_trip_u0303() {
        use ursa_ir::value::{MemRef, SymbolId, VirtualReg};
        let mut vliw = VliwProgram {
            symbols: vec!["a".to_string(), "__spill".to_string()],
            num_regs: 4,
            ..Default::default()
        };
        let fu = (ursa_machine::FuClass::Alu, 0);
        let slot = |i: Instr| MachineOp {
            op: SlotOp::Instr(i),
            fu,
        };
        vliw.words = vec![
            vec![slot(Instr::Const {
                dst: VirtualReg(0),
                value: 7,
            })],
            // Spill the constant: rematerializable.
            vec![slot(Instr::Store {
                mem: MemRef::new(SymbolId(1), 0i64),
                src: Operand::Reg(VirtualReg(0)),
            })],
            // Reload it, then never read r1 again: dead reload.
            vec![slot(Instr::Load {
                dst: VirtualReg(1),
                mem: MemRef::new(SymbolId(1), 0i64),
            })],
        ];
        let diags = redundant_spill_traffic(&vliw);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.code == Code::RedundantSpillTraffic));
        assert!(diags.iter().any(|d| d.message.contains("rematerializable")));
        assert!(diags.iter().any(|d| d.message.contains("never read")));
    }

    #[test]
    fn read_reload_is_not_redundant() {
        use ursa_ir::value::{MemRef, SymbolId, VirtualReg};
        let mut vliw = VliwProgram {
            symbols: vec!["a".to_string(), "__spill".to_string()],
            num_regs: 4,
            ..Default::default()
        };
        let fu = (ursa_machine::FuClass::Alu, 0);
        let slot = |i: Instr| MachineOp {
            op: SlotOp::Instr(i),
            fu,
        };
        vliw.words = vec![
            vec![slot(Instr::Load {
                dst: VirtualReg(1),
                mem: MemRef::new(SymbolId(1), 0i64),
            })],
            vec![slot(Instr::Store {
                mem: MemRef::new(SymbolId(0), 0i64),
                src: Operand::Reg(VirtualReg(1)),
            })],
        ];
        assert!(redundant_spill_traffic(&vliw).is_empty());
    }

    #[test]
    fn boundary_store_scan_respects_liveness() {
        use ursa_ir::value::{MemRef, SymbolId, VirtualReg};
        let mut vliw = VliwProgram {
            symbols: vec!["a".to_string(), BOUNDARY_SYMBOL.to_string()],
            num_regs: 4,
            ..Default::default()
        };
        let fu = (ursa_machine::FuClass::Alu, 0);
        vliw.words = vec![vec![
            MachineOp {
                op: SlotOp::Instr(Instr::Store {
                    mem: MemRef::new(SymbolId(1), 0i64),
                    src: Operand::Reg(VirtualReg(0)),
                }),
                fu,
            },
            MachineOp {
                op: SlotOp::Instr(Instr::Store {
                    mem: MemRef::new(SymbolId(1), 1i64),
                    src: Operand::Reg(VirtualReg(1)),
                }),
                fu: (ursa_machine::FuClass::Alu, 1),
            },
        ]];
        // Cell 0 live somewhere, cell 1 dead everywhere.
        let dead = dead_boundary_stores(&vliw, &[true, false]);
        assert_eq!(dead, vec![(0, 1)]);
        // The boundary area is exempt from the spill-traffic scan.
        assert!(redundant_spill_traffic(&vliw).is_empty());
    }
}
