//! The static translation validator.
//!
//! [`validate_translation`] symbolically executes an emitted VLIW
//! program cycle-by-cycle against the dependence DAG it was compiled
//! from and proves that the code implements the DAG:
//!
//! * every register read observes exactly the value class the DAG
//!   assigns to that operand (no live register is clobbered, no value
//!   is read before its write commits),
//! * every emitted operation matches a distinct DAG node and every DAG
//!   node is emitted exactly once (spill traffic on reserved `__` cells
//!   is value plumbing and is exempt),
//! * spill reloads read cells only after the saving store's value has
//!   committed,
//! * memory accesses respect the DAG's may-alias ordering, and
//! * sequentialization/control edges added by the reducer survive as
//!   issue-order constraints.
//!
//! The walk never executes anything concretely — registers and memory
//! cells hold [`Vn`] value classes, so acceptance is independent of any
//! input data. Soundness rests on the structural value numbering: two
//! values share a class only when the DAG proves them equal, so a
//! schedule accepted here computes, for *every* input, the same cell
//! and live-out values as any legal schedule of the DAG.
//!
//! The validator covers code whose registers were assigned from a
//! renamed DAG (all URSA ladder rungs, postpass patching, Goodman–Hsu).
//! Prepass code is pre-colored before its DAG is built, so its live-in
//! table does not name original values; callers skip it.

use crate::diag::{Code, Diagnostic};
use crate::vn::{ValueNumbering, Vn, VnOperand};
use std::collections::HashMap;
use ursa_graph::dag::{EdgeKind, NodeId};
use ursa_ir::ddg::{DependenceDag, NodeKind};
use ursa_ir::instr::Instr;
use ursa_ir::value::{MemRef, Operand};
use ursa_machine::{FuClass, Machine, OpKind};
use ursa_sched::is_spill_symbol;
use ursa_sched::vliw::{SlotOp, VliwProgram};

/// The validator's verdict: the diagnostics found plus the node →
/// (cycle, slot) correspondence it established (useful for tooling and
/// for building targeted miscompile tests).
#[derive(Clone, Debug, Default)]
pub struct ValidationResult {
    /// Everything found; empty means the translation is proven.
    pub diagnostics: Vec<Diagnostic>,
    /// Where each matched DAG node was emitted.
    pub matches: HashMap<NodeId, (u64, usize)>,
}

impl ValidationResult {
    /// `true` when the code was proven to implement the DAG.
    pub fn is_proven(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Statically validates `vliw` against the dependence DAG it was
/// compiled from (the *transformed* DAG for URSA strategies — its spill
/// nodes and sequence edges are part of the contract being checked).
pub fn validate_translation(
    ddg: &DependenceDag,
    vliw: &VliwProgram,
    machine: &Machine,
) -> ValidationResult {
    Walker::new(ddg, vliw, machine).run()
}

/// One write to a physical register or memory cell.
#[derive(Clone, Copy, Debug)]
struct Write {
    vn: Vn,
    /// Issue cycle (provenance).
    issued: u64,
    /// First cycle at which the value is observable.
    commit: u64,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum MemKey {
    Imm(i64),
    Val(Vn),
}

struct Walker<'a> {
    ddg: &'a DependenceDag,
    vliw: &'a VliwProgram,
    machine: &'a Machine,
    vn: ValueNumbering,
    diags: Vec<Diagnostic>,
    matched: HashMap<NodeId, (u64, usize)>,
    /// Write history per physical register, in issue order.
    regs: Vec<Vec<Write>>,
    /// Last known write per (symbol name, index) memory cell.
    cells: HashMap<(String, MemKey), Write>,
    /// Commit cycle of each matched DAG store node.
    store_commit: HashMap<NodeId, u64>,
    /// Memory-predecessor FU nodes of each memory node.
    mem_preds: HashMap<NodeId, Vec<NodeId>>,
    unit_busy: HashMap<(FuClass, u32), u64>,
}

impl<'a> Walker<'a> {
    fn new(ddg: &'a DependenceDag, vliw: &'a VliwProgram, machine: &'a Machine) -> Walker<'a> {
        let vn = ValueNumbering::of(ddg);
        let mut mem_preds: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for e in ddg.dag().edges() {
            if e.kind == EdgeKind::Memory {
                mem_preds.entry(e.to).or_default().push(e.from);
            }
        }
        let regs = vec![Vec::new(); vliw.num_regs as usize];
        Walker {
            ddg,
            vliw,
            machine,
            vn,
            diags: Vec::new(),
            matched: HashMap::new(),
            regs,
            cells: HashMap::new(),
            store_commit: HashMap::new(),
            mem_preds,
            unit_busy: HashMap::new(),
        }
    }

    fn run(mut self) -> ValidationResult {
        self.init_live_in();
        self.seed_boundary_cells();
        for (c, word) in self.vliw.words.iter().enumerate() {
            for (slot, op) in word.iter().enumerate() {
                self.step(c as u64, slot, op);
            }
        }
        self.check_missing();
        self.repair_twin_assignments();
        self.check_order_edges();
        ValidationResult {
            diagnostics: self.diags,
            matches: self.matched,
        }
    }

    fn init_live_in(&mut self) {
        for &(phys, vreg) in &self.vliw.live_in {
            let vn = self
                .ddg
                .dag()
                .nodes()
                .find(|&n| matches!(self.ddg.kind(n), NodeKind::LiveIn { reg } if *reg == vreg))
                .and_then(|n| self.vn.vn_of(n))
                .unwrap_or_else(|| self.vn.fresh_opaque(&format!("live-in {vreg}")));
            if let Some(r) = self.regs.get_mut(phys as usize) {
                r.push(Write {
                    vn,
                    issued: 0,
                    commit: 0,
                });
            }
        }
    }

    /// Seeds the memory cells that hold values *before* this trace
    /// runs. A spill-area load with no Memory-edge predecessor in the
    /// DAG reads a cell some earlier unit filled — the whole-program
    /// driver's `__boundary` hand-off loads are the canonical case.
    /// (Allocator-inserted spill reloads always follow their spill
    /// store through a Memory edge, so they are never seeded.)
    fn seed_boundary_cells(&mut self) {
        let mut seeds = Vec::new();
        for n in self.ddg.fu_nodes() {
            let Some(Instr::Load { mem, .. }) = self.ddg.instr(n) else {
                continue;
            };
            let name = self.ddg.symbol_name(mem.base);
            if !is_spill_symbol(name) {
                continue;
            }
            if self.mem_preds.get(&n).is_some_and(|ps| !ps.is_empty()) {
                continue;
            }
            let (Some(idx), Some(vn)) = (self.dag_operand(mem.index), self.vn.vn_of(n)) else {
                continue;
            };
            seeds.push(((name.to_string(), mem_key(idx)), vn));
        }
        for (key, vn) in seeds {
            self.cells.entry(key).or_insert(Write {
                vn,
                issued: 0,
                commit: 0,
            });
        }
    }

    /// The symbol name an emitted memory op refers to.
    fn sym_name(&self, mem: &MemRef) -> &str {
        self.vliw
            .symbols
            .get(mem.base.index())
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Resolves a register read at `cycle`, reporting out-of-file,
    /// uninitialized, and in-flight reads. Returns the value class the
    /// read observes (the intended in-flight value on a latency
    /// violation, so one bad cycle does not cascade).
    fn read_reg(&mut self, r: u32, cycle: u64) -> Vn {
        if r >= self.vliw.num_regs {
            let d = Diagnostic::new(
                Code::RegisterOutOfFile,
                format!("r{r} is outside the {}-register file", self.vliw.num_regs),
            )
            .at_cycle(cycle);
            self.diags.push(d);
            return self.vn.fresh_opaque("out-of-file read");
        }
        let writes = &self.regs[r as usize];
        let committed = writes
            .iter()
            .filter(|w| w.commit <= cycle)
            .max_by_key(|w| w.commit);
        if let Some(w) = committed {
            return w.vn;
        }
        if let Some(w) = writes.iter().max_by_key(|w| w.issued).copied() {
            let d = Diagnostic::new(
                Code::ReadBeforeCommit,
                format!("r{r} read before its write commits"),
            )
            .at_cycle(cycle)
            .note(format!(
                "the pending write of {} issued at cycle {} and commits at cycle {}",
                self.vn.describe(w.vn),
                w.issued,
                w.commit
            ));
            self.diags.push(d);
            return w.vn;
        }
        let d = Diagnostic::new(
            Code::ReadBeforeCommit,
            format!("r{r} read but never written"),
        )
        .at_cycle(cycle);
        self.diags.push(d);
        self.vn.fresh_opaque("uninitialized read")
    }

    fn read_operand(&mut self, op: Operand, cycle: u64) -> VnOperand {
        match op {
            Operand::Imm(v) => VnOperand::Imm(v),
            Operand::Reg(r) => VnOperand::Val(self.read_reg(r.0, cycle)),
        }
    }

    fn write_reg(&mut self, r: u32, vn: Vn, cycle: u64, latency: u64) {
        if r >= self.vliw.num_regs {
            let d = Diagnostic::new(
                Code::RegisterOutOfFile,
                format!(
                    "write to r{r} outside the {}-register file",
                    self.vliw.num_regs
                ),
            )
            .at_cycle(cycle);
            self.diags.push(d);
            return;
        }
        self.regs[r as usize].push(Write {
            vn,
            issued: cycle,
            commit: cycle + latency,
        });
    }

    fn book_unit(&mut self, fu: (FuClass, u32), kind: OpKind, cycle: u64) {
        let (class, index) = fu;
        if index >= self.machine.fu_count(class) {
            let d = Diagnostic::new(
                Code::UnitConflict,
                format!(
                    "unit {class}#{index} does not exist (machine has {})",
                    self.machine.fu_count(class)
                ),
            )
            .at_cycle(cycle);
            self.diags.push(d);
            return;
        }
        if let Some(&until) = self.unit_busy.get(&fu) {
            if until > cycle {
                let d = Diagnostic::new(
                    Code::UnitConflict,
                    format!("unit {class}#{index} is busy until cycle {until}"),
                )
                .at_cycle(cycle);
                self.diags.push(d);
            }
        }
        self.unit_busy
            .insert(fu, cycle + self.machine.occupancy_of(kind));
    }

    /// `true` when every Memory-predecessor of `n` has been emitted.
    fn epoch_ready(&self, n: NodeId) -> bool {
        self.mem_preds
            .get(&n)
            .map(|ps| ps.iter().all(|p| self.matched.contains_key(p)))
            .unwrap_or(true)
    }

    /// `true` when every Sequence/Control predecessor of `n` has been
    /// emitted. Structurally identical nodes share a value class, so
    /// candidate selection breaks ties with this — matching an
    /// order-ready twin first mirrors any legal schedule's assignment
    /// and avoids phantom ordering violations.
    fn order_ready(&self, n: NodeId) -> bool {
        self.ddg.dag().pred_edges(n).all(|e| {
            !matches!(e.kind, EdgeKind::Sequence | EdgeKind::Control)
                || self.matched.contains_key(&e.from)
        })
    }

    /// The unmatched node satisfying `pred`, preferring order-ready
    /// candidates (falling back to the first match so a genuine
    /// violation is still attributed somewhere).
    fn pick_candidate(&self, pred: impl Fn(&Walker<'_>, NodeId) -> bool) -> Option<NodeId> {
        let mut first = None;
        for n in self.ddg.fu_nodes() {
            if self.matched.contains_key(&n) || !pred(self, n) {
                continue;
            }
            if self.order_ready(n) {
                return Some(n);
            }
            if first.is_none() {
                first = Some(n);
            }
        }
        first
    }

    /// The DAG-side value class of an operand (`None`: undefined
    /// register, matches nothing).
    fn dag_operand(&self, op: Operand) -> Option<VnOperand> {
        match op {
            Operand::Imm(v) => Some(VnOperand::Imm(v)),
            Operand::Reg(r) => {
                let def = self.vn.def_of(r)?;
                self.vn.vn_of(def).map(VnOperand::Val)
            }
        }
    }

    fn mark(&mut self, n: NodeId, cycle: u64, slot: usize) {
        self.matched.insert(n, (cycle, slot));
    }

    fn step(&mut self, cycle: u64, slot: usize, op: &ursa_sched::vliw::MachineOp) {
        let kind = match &op.op {
            SlotOp::Instr(i) => OpKind::of_instr(i),
            SlotOp::Branch { .. } => OpKind::Branch,
        };
        self.book_unit(op.fu, kind, cycle);
        match &op.op {
            SlotOp::Branch { cond, .. } => self.step_branch(*cond, cycle, slot),
            SlotOp::Instr(i) => match i {
                Instr::Const { dst, value } => {
                    let vn = self.vn.observe_const(*value);
                    self.match_value_op(i, vn, cycle, slot);
                    self.write_reg(dst.0, vn, cycle, self.machine.latency_of(kind));
                }
                Instr::Bin { op: bop, dst, a, b } => {
                    let (va, vb) = (self.read_operand(*a, cycle), self.read_operand(*b, cycle));
                    let vn = self.vn.observe_bin(*bop, va, vb);
                    self.match_value_op(i, vn, cycle, slot);
                    self.write_reg(dst.0, vn, cycle, self.machine.latency_of(kind));
                }
                Instr::Un { op: uop, dst, a } => {
                    let va = self.read_operand(*a, cycle);
                    let vn = self.vn.observe_un(*uop, va);
                    self.match_value_op(i, vn, cycle, slot);
                    self.write_reg(dst.0, vn, cycle, self.machine.latency_of(kind));
                }
                Instr::Load { dst, mem } => {
                    let vn = self.step_load(mem, cycle, slot);
                    self.write_reg(dst.0, vn, cycle, self.machine.latency_of(kind));
                }
                Instr::Store { mem, src } => self.step_store(mem, *src, cycle, slot),
            },
        }
    }

    /// Matches a Const/Bin/Un by value class: the emitted value number
    /// equals the DAG node's number exactly when operator and operand
    /// classes agree.
    fn match_value_op(&mut self, instr: &Instr, emitted: Vn, cycle: u64, slot: usize) {
        let found = self.pick_candidate(|w, n| {
            w.vn.vn_of(n) == Some(emitted) && w.ddg.instr(n).is_some_and(|di| same_shape(di, instr))
        });
        if let Some(n) = found {
            self.mark(n, cycle, slot);
            return;
        }
        self.diagnose_value_mismatch(instr, cycle);
    }

    /// The emitted op computes a value no unmatched DAG node wants.
    /// Triage against the best same-shape candidate to tell *why*: a
    /// clobbered register, an in-flight value, or a wrong operand.
    fn diagnose_value_mismatch(&mut self, instr: &Instr, cycle: u64) {
        let candidate = self.ddg.fu_nodes().find(|&n| {
            !self.matched.contains_key(&n)
                && self.ddg.instr(n).is_some_and(|di| same_shape(di, instr))
        });
        let Some(n) = candidate else {
            let d = Diagnostic::new(
                Code::UnmatchedOperation,
                format!("`{instr}` matches no operation of the dependence DAG"),
            )
            .at_cycle(cycle);
            self.diags.push(d);
            return;
        };
        let expected = self.ddg.instr(n).expect("candidate has an instr").clone();
        let pairs: Vec<(Operand, Operand)> = operand_pairs(&expected, instr);
        let mut reported = false;
        for (exp, got) in pairs {
            let Some(exp_vn) = self.dag_operand(exp) else {
                continue;
            };
            let got_vn = match got {
                Operand::Imm(v) => VnOperand::Imm(v),
                // Re-resolve without diagnostics: read_reg already
                // reported uninitialized/in-flight on the first pass.
                Operand::Reg(r) => {
                    self.triage_register(r.0, exp_vn, cycle, n, &mut reported);
                    continue;
                }
            };
            if got_vn != exp_vn {
                let d = Diagnostic::new(
                    Code::WrongOperandValue,
                    format!("`{instr}` uses immediate {got:?} where `{expected}` expects {exp:?}"),
                )
                .at_cycle(cycle)
                .on_node(n);
                self.diags.push(d);
                reported = true;
            }
        }
        if !reported {
            let d = Diagnostic::new(
                Code::UnmatchedOperation,
                format!("`{instr}` matches no remaining DAG operation"),
            )
            .at_cycle(cycle)
            .on_node(n)
            .note(format!("nearest candidate: `{expected}`"));
            self.diags.push(d);
        }
    }

    /// Why does register `r` not hold `expected` at `cycle`?
    fn triage_register(
        &mut self,
        r: u32,
        expected: VnOperand,
        cycle: u64,
        node: NodeId,
        reported: &mut bool,
    ) {
        let VnOperand::Val(evn) = expected else {
            return;
        };
        if r >= self.vliw.num_regs {
            return; // already reported by read_reg
        }
        let writes = self.regs[r as usize].clone();
        let observed = writes
            .iter()
            .filter(|w| w.commit <= cycle)
            .max_by_key(|w| w.commit)
            .copied();
        if observed.map(|w| w.vn) == Some(evn) {
            return; // this operand was fine
        }
        // Was the expected value in this register and then overwritten?
        if let Some(had) = writes
            .iter()
            .filter(|w| w.vn == evn && w.commit <= cycle)
            .max_by_key(|w| w.commit)
        {
            let clobber = writes
                .iter()
                .filter(|w| w.commit > had.commit && w.commit <= cycle)
                .min_by_key(|w| w.commit);
            let mut d = Diagnostic::new(
                Code::ClobberedLiveRegister,
                format!(
                    "r{r} held {} but was overwritten before this read",
                    self.vn.describe(evn)
                ),
            )
            .at_cycle(cycle)
            .on_node(node)
            .note(format!(
                "{} committed to r{r} at cycle {}",
                self.vn.describe(evn),
                had.commit
            ));
            if let Some(cl) = clobber {
                d = d.note(format!(
                    "overwritten by {} (issued at cycle {}, committed at cycle {})",
                    self.vn.describe(cl.vn),
                    cl.issued,
                    cl.commit
                ));
            }
            d = d.note(format!(
                "read at cycle {cycle} observes the clobbering value"
            ));
            self.diags.push(d);
            *reported = true;
            return;
        }
        // Still in flight in this register?
        if let Some(inflight) = writes.iter().find(|w| w.vn == evn && w.commit > cycle) {
            let d = Diagnostic::new(
                Code::ReadBeforeCommit,
                format!(
                    "r{r} read at cycle {cycle} but {} commits only at cycle {}",
                    self.vn.describe(evn),
                    inflight.commit
                ),
            )
            .at_cycle(cycle)
            .on_node(node);
            self.diags.push(d);
            *reported = true;
            return;
        }
        // Somewhere else, or nowhere.
        let elsewhere = self.regs.iter().enumerate().find_map(|(ri, ws)| {
            ws.iter()
                .filter(|w| w.vn == evn && w.commit <= cycle)
                .max_by_key(|w| w.commit)
                .map(|_| ri)
        });
        let mut d = Diagnostic::new(
            Code::WrongOperandValue,
            format!(
                "r{r} holds {} where the DAG expects {}",
                observed
                    .map(|w| self.vn.describe(w.vn).to_string())
                    .unwrap_or_else(|| "nothing".into()),
                self.vn.describe(evn)
            ),
        )
        .at_cycle(cycle)
        .on_node(node);
        if let Some(ri) = elsewhere {
            d = d.note(format!("the expected value currently lives in r{ri}"));
        }
        self.diags.push(d);
        *reported = true;
    }

    fn step_load(&mut self, mem: &MemRef, cycle: u64, slot: usize) -> Vn {
        let idx = self.read_operand(mem.index, cycle);
        let name = self.sym_name(mem).to_string();
        if is_spill_symbol(&name) {
            return self.step_spill_load(mem, &name, idx, cycle, slot);
        }
        // A program load must match a DAG load of the same cell whose
        // memory epoch has been reached.
        let candidate = self.pick_candidate(|w, n| match w.ddg.instr(n) {
            Some(Instr::Load { mem: dmem, .. }) => {
                w.ddg.symbol_name(dmem.base) == name
                    && w.dag_operand(dmem.index) == Some(idx)
                    && w.epoch_ready(n)
            }
            _ => false,
        });
        if let Some(n) = candidate {
            self.mark(n, cycle, slot);
            // The load must also wait for the *commit* of the stores it
            // depends on (the machine model loads the cell's committed
            // value).
            let preds = self.mem_preds.get(&n).cloned().unwrap_or_default();
            for p in preds {
                if let Some(&commit) = self.store_commit.get(&p) {
                    if commit > cycle {
                        let d = Diagnostic::new(
                            Code::MemoryOrderViolation,
                            format!("load of {name} issued before an aliasing store committed"),
                        )
                        .at_cycle(cycle)
                        .on_node(n)
                        .note(format!(
                            "`{}` commits at cycle {commit}",
                            self.ddg.describe(p)
                        ));
                        self.diags.push(d);
                    }
                }
            }
            return self.vn.vn_of(n).unwrap_or_else(|| {
                // unreachable: loads always produce a value
                self.vn.fresh_opaque("valueless load")
            });
        }
        // Same cell but wrong epoch → ordering violation; otherwise the
        // op corresponds to nothing.
        let blocked = self.ddg.fu_nodes().find(|&n| {
            !self.matched.contains_key(&n)
                && match self.ddg.instr(n) {
                    Some(Instr::Load { mem: dmem, .. }) => {
                        self.ddg.symbol_name(dmem.base) == name
                            && self.dag_operand(dmem.index) == Some(idx)
                    }
                    _ => false,
                }
        });
        if let Some(n) = blocked {
            let missing: Vec<String> = self
                .mem_preds
                .get(&n)
                .map(|ps| {
                    ps.iter()
                        .filter(|p| !self.matched.contains_key(p))
                        .map(|&p| format!("`{}`", self.ddg.describe(p)))
                        .collect()
                })
                .unwrap_or_default();
            let d = Diagnostic::new(
                Code::MemoryOrderViolation,
                format!("load of {name} issued before a may-aliasing predecessor access"),
            )
            .at_cycle(cycle)
            .on_node(n)
            .note(format!("not yet issued: {}", missing.join(", ")));
            self.diags.push(d);
            self.mark(n, cycle, slot);
            return self
                .vn
                .vn_of(n)
                .unwrap_or_else(|| self.vn.fresh_opaque("blocked load"));
        }
        let d = Diagnostic::new(
            Code::UnmatchedOperation,
            format!("load of {name} matches no DAG load"),
        )
        .at_cycle(cycle);
        self.diags.push(d);
        self.vn.fresh_opaque("unmatched load")
    }

    fn step_spill_load(
        &mut self,
        mem: &MemRef,
        name: &str,
        idx: VnOperand,
        cycle: u64,
        slot: usize,
    ) -> Vn {
        let key = (name.to_string(), mem_key(idx));
        let cell = self.cells.get(&key).copied();
        let value = match cell {
            Some(w) if w.commit <= cycle => w.vn,
            Some(w) => {
                let d = Diagnostic::new(
                    Code::ReloadBeforeStoreCommit,
                    format!(
                        "reload from {name}[{}] issued at cycle {cycle} but the spill \
                         store commits only at cycle {}",
                        mem.index, w.commit
                    ),
                )
                .at_cycle(cycle)
                .note(format!(
                    "the store of {} issued at cycle {}",
                    self.vn.describe(w.vn),
                    w.issued
                ));
                self.diags.push(d);
                w.vn
            }
            None => {
                let d = Diagnostic::new(
                    Code::ReloadBeforeStoreCommit,
                    format!(
                        "reload from {name}[{}] with no preceding spill store",
                        mem.index
                    ),
                )
                .at_cycle(cycle);
                self.diags.push(d);
                self.vn.fresh_opaque("reload of unwritten spill cell")
            }
        };
        // DAG-level spill reloads (inserted by the allocator) are real
        // DAG nodes and must be accounted for.
        let candidate = self.pick_candidate(|w, n| match w.ddg.instr(n) {
            Some(Instr::Load { mem: dmem, .. }) => {
                w.ddg.symbol_name(dmem.base) == name && dmem.index == mem.index
            }
            _ => false,
        });
        if let Some(n) = candidate {
            self.mark(n, cycle, slot);
            if let Some(nvn) = self.vn.vn_of(n) {
                if nvn != value {
                    let d = Diagnostic::new(
                        Code::WrongOperandValue,
                        format!(
                            "reload from {name}[{}] carries {} but the DAG spilled {}",
                            mem.index,
                            self.vn.describe(value),
                            self.vn.describe(nvn)
                        ),
                    )
                    .at_cycle(cycle)
                    .on_node(n);
                    self.diags.push(d);
                }
            }
        }
        value
    }

    fn step_store(&mut self, mem: &MemRef, src: Operand, cycle: u64, slot: usize) {
        let idx = self.read_operand(mem.index, cycle);
        let srcv = self.read_operand(src, cycle);
        let name = self.sym_name(mem).to_string();
        let latency = self.machine.latency_of(OpKind::Store);
        let key = (name.clone(), mem_key(idx));
        let write = Write {
            vn: match srcv {
                VnOperand::Val(v) => v,
                VnOperand::Imm(imm) => self.vn.observe_const(imm),
            },
            issued: cycle,
            commit: cycle + latency,
        };
        if is_spill_symbol(&name) {
            // Match a DAG spill store of the same cell, when one exists
            // (the patcher's own spills have no DAG node and are pure
            // plumbing).
            let candidate = self.pick_candidate(|w, n| match w.ddg.instr(n) {
                Some(Instr::Store { mem: dmem, .. }) => {
                    w.ddg.symbol_name(dmem.base) == name && dmem.index == mem.index
                }
                _ => false,
            });
            if let Some(n) = candidate {
                self.mark(n, cycle, slot);
                self.store_commit.insert(n, cycle + latency);
                let expected = match self.ddg.instr(n) {
                    Some(Instr::Store { src: dsrc, .. }) => self.dag_operand(*dsrc),
                    _ => None,
                };
                if let Some(exp) = expected {
                    if exp != srcv {
                        let d = Diagnostic::new(
                            Code::StoreValueMismatch,
                            format!("spill store to {name}[{}] saves the wrong value", mem.index),
                        )
                        .at_cycle(cycle)
                        .on_node(n);
                        self.diags.push(d);
                    }
                }
            }
            self.cells.insert(key, write);
            return;
        }
        // Program store: must match a DAG store with the same cell,
        // value, and memory epoch.
        let cell_matches = |w: &Walker<'_>, n: NodeId| match w.ddg.instr(n) {
            Some(Instr::Store { mem: dmem, .. }) => {
                w.ddg.symbol_name(dmem.base) == name && w.dag_operand(dmem.index) == Some(idx)
            }
            _ => false,
        };
        let full = self.pick_candidate(|w, n| {
            cell_matches(w, n)
                && w.epoch_ready(n)
                && match w.ddg.instr(n) {
                    Some(Instr::Store { src: dsrc, .. }) => w.dag_operand(*dsrc) == Some(srcv),
                    _ => false,
                }
        });
        if let Some(n) = full {
            self.mark(n, cycle, slot);
            self.store_commit.insert(n, cycle + latency);
            self.cells.insert(key, write);
            return;
        }
        // Right cell and epoch, wrong value.
        let value_off = self.ddg.fu_nodes().find(|&n| {
            !self.matched.contains_key(&n) && cell_matches(self, n) && self.epoch_ready(n)
        });
        if let Some(n) = value_off {
            self.mark(n, cycle, slot);
            self.store_commit.insert(n, cycle + latency);
            let expected = match self.ddg.instr(n) {
                Some(Instr::Store { src: dsrc, .. }) => self.dag_operand(*dsrc),
                _ => None,
            };
            let mut d = Diagnostic::new(
                Code::StoreValueMismatch,
                format!("store to {name} writes the wrong value"),
            )
            .at_cycle(cycle)
            .on_node(n);
            if let (Some(VnOperand::Val(e)), VnOperand::Val(g)) = (expected, srcv) {
                d = d.note(format!(
                    "expected {}, got {}",
                    self.vn.describe(e),
                    self.vn.describe(g)
                ));
            }
            self.diags.push(d);
            self.cells.insert(key, write);
            return;
        }
        // Right cell, epoch not reached → ordering violation.
        let blocked = self
            .ddg
            .fu_nodes()
            .find(|&n| !self.matched.contains_key(&n) && cell_matches(self, n));
        if let Some(n) = blocked {
            self.mark(n, cycle, slot);
            self.store_commit.insert(n, cycle + latency);
            let d = Diagnostic::new(
                Code::MemoryOrderViolation,
                format!("store to {name} issued before a may-aliasing predecessor access"),
            )
            .at_cycle(cycle)
            .on_node(n);
            self.diags.push(d);
        } else {
            let d = Diagnostic::new(
                Code::UnmatchedOperation,
                format!("store to {name} matches no DAG store"),
            )
            .at_cycle(cycle);
            self.diags.push(d);
        }
        self.cells.insert(key, write);
    }

    fn step_branch(&mut self, cond: Operand, cycle: u64, slot: usize) {
        let got = self.read_operand(cond, cycle);
        let candidate = self.ddg.fu_nodes().find(|&n| {
            !self.matched.contains_key(&n)
                && matches!(self.ddg.kind(n), NodeKind::Branch { .. })
                && match self.ddg.kind(n) {
                    NodeKind::Branch { cond: dcond, .. } => self.dag_operand(*dcond) == Some(got),
                    _ => false,
                }
        });
        if let Some(n) = candidate {
            self.mark(n, cycle, slot);
            return;
        }
        let any_branch = self.ddg.fu_nodes().find(|&n| {
            !self.matched.contains_key(&n) && matches!(self.ddg.kind(n), NodeKind::Branch { .. })
        });
        match any_branch {
            Some(n) => {
                let dcond = match self.ddg.kind(n) {
                    NodeKind::Branch { cond, .. } => *cond,
                    _ => unreachable!(),
                };
                if let (Some(VnOperand::Val(_)), Operand::Reg(r)) = (self.dag_operand(dcond), cond)
                {
                    let exp = self.dag_operand(dcond).unwrap();
                    let mut reported = false;
                    self.triage_register(r.0, exp, cycle, n, &mut reported);
                    if reported {
                        self.mark(n, cycle, slot);
                        return;
                    }
                }
                let d = Diagnostic::new(
                    Code::WrongOperandValue,
                    "branch condition does not carry the DAG's condition value".to_string(),
                )
                .at_cycle(cycle)
                .on_node(n);
                self.diags.push(d);
                self.mark(n, cycle, slot);
            }
            None => {
                let d = Diagnostic::new(
                    Code::UnmatchedOperation,
                    "branch matches no DAG branch".to_string(),
                )
                .at_cycle(cycle);
                self.diags.push(d);
            }
        }
    }

    fn check_missing(&mut self) {
        let missing: Vec<NodeId> = self
            .ddg
            .fu_nodes()
            .filter(|n| !self.matched.contains_key(n))
            .collect();
        for n in missing {
            let d = Diagnostic::new(
                Code::MissingOperation,
                format!("`{}` was never emitted", self.ddg.describe(n)),
            )
            .on_node(n);
            self.diags.push(d);
        }
    }

    /// Matched nodes in the same value class (equal number, same shape)
    /// are interchangeable: their emitted slots carry identical values,
    /// so any permutation of the node↔slot assignment within the class
    /// is an equally valid reading of the code. The walk assigns them
    /// greedily, which can pair an order-constrained twin with the
    /// wrong slot; re-permute within classes to minimize order-edge
    /// violations so only genuinely unsatisfiable edges are reported.
    fn repair_twin_assignments(&mut self) {
        // Shape discriminant: equal numbers can still span shapes (a
        // spill reload collapses to its stored value's number), and
        // cross-shape slots were never interchangeable.
        let shape_tag = |i: &Instr| -> u32 {
            match i {
                Instr::Const { .. } => 0,
                Instr::Bin { op, .. } => 1_000 + *op as u32,
                Instr::Un { op, .. } => 2_000 + *op as u32,
                Instr::Load { .. } => 3,
                Instr::Store { .. } => 4,
            }
        };
        let mut classes: HashMap<(Vn, u32), Vec<NodeId>> = HashMap::new();
        for &n in self.matched.keys() {
            let (Some(vn), Some(instr)) = (self.vn.vn_of(n), self.ddg.instr(n)) else {
                continue;
            };
            classes.entry((vn, shape_tag(instr))).or_default().push(n);
        }
        classes.retain(|_, nodes| nodes.len() > 1);
        if classes.is_empty() {
            return;
        }
        let edges: Vec<(NodeId, NodeId)> = self
            .ddg
            .dag()
            .edges()
            .filter(|e| {
                matches!(
                    e.kind,
                    EdgeKind::Sequence | EdgeKind::Control | EdgeKind::Anti
                )
            })
            .filter(|e| self.matched.contains_key(&e.from) && self.matched.contains_key(&e.to))
            .map(|e| (e.from, e.to))
            .collect();
        let violations = |m: &HashMap<NodeId, (u64, usize)>| {
            edges.iter().filter(|(u, v)| m[v].0 < m[u].0).count()
        };
        if violations(&self.matched) == 0 {
            return;
        }
        // Rebuild the assignment in topological order of the order-edge
        // subgraph: each node draws the earliest slot in its class pool
        // that does not precede its already-placed predecessors.
        // Coupled classes (an edge between twins of different classes)
        // are handled naturally — the predecessor's choice becomes the
        // successor's floor.
        let mut class_of: HashMap<NodeId, (Vn, u32)> = HashMap::new();
        let mut pools: HashMap<(Vn, u32), Vec<(u64, usize)>> = HashMap::new();
        for (key, nodes) in &classes {
            let mut pool: Vec<(u64, usize)> = nodes.iter().map(|n| self.matched[n]).collect();
            pool.sort_unstable();
            pools.insert(*key, pool);
            for &n in nodes {
                class_of.insert(n, *key);
            }
        }
        let mut succs: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        let mut indeg: HashMap<NodeId, usize> = self.matched.keys().map(|&n| (n, 0)).collect();
        for &(u, v) in &edges {
            succs.entry(u).or_default().push(v);
            *indeg.entry(v).or_default() += 1;
        }
        // Deadline of each node: the tightest upper bound any chain of
        // order successors imposes on its cycle, taking each node's
        // *latest possible* slot (class members could draw their pool's
        // last entry, singletons are fixed). Computed in reverse
        // topological order; the forward pass pops by deadline so the
        // twin with the tighter downstream constraint draws from the
        // shared pool first.
        let ub = |n: NodeId| -> u64 {
            match class_of.get(&n) {
                Some(key) => pools[key].last().expect("nonempty pool").0,
                None => self.matched[&n].0,
            }
        };
        let order: Vec<NodeId> = {
            let mut indeg = indeg.clone();
            let mut ready: Vec<NodeId> = indeg
                .iter()
                .filter(|(_, &d)| d == 0)
                .map(|(&n, _)| n)
                .collect();
            let mut order = Vec::with_capacity(indeg.len());
            while let Some(n) = ready.pop() {
                order.push(n);
                for &s in succs.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                    let d = indeg.get_mut(&s).unwrap();
                    *d -= 1;
                    if *d == 0 {
                        ready.push(s);
                    }
                }
            }
            order
        };
        let mut deadline: HashMap<NodeId, u64> = HashMap::new();
        for &n in order.iter().rev() {
            let mut d = ub(n);
            for &s in succs.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                d = d.min(deadline[&s]);
            }
            deadline.insert(n, d);
        }
        let mut ready: Vec<NodeId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut floor: HashMap<NodeId, u64> = HashMap::new();
        let mut proposed: HashMap<NodeId, (u64, usize)> = HashMap::new();
        while !ready.is_empty() {
            // Deterministic order: tightest deadline first, then
            // smallest node id.
            let i = ready
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| (deadline.get(n).copied().unwrap_or(u64::MAX), n.0))
                .map(|(i, _)| i)
                .unwrap();
            let n = ready.swap_remove(i);
            let lb = floor.get(&n).copied().unwrap_or(0);
            let slot = match class_of.get(&n) {
                Some(key) => {
                    let pool = pools.get_mut(key).unwrap();
                    let i = pool.iter().position(|&(c, _)| c >= lb).unwrap_or(0);
                    pool.remove(i)
                }
                None => self.matched[&n],
            };
            proposed.insert(n, slot);
            for &s in succs.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                let f = floor.entry(s).or_insert(0);
                *f = (*f).max(slot.0);
                let d = indeg.get_mut(&s).unwrap();
                *d -= 1;
                if *d == 0 {
                    ready.push(s);
                }
            }
        }
        // The order subgraph is acyclic, so every matched node was
        // re-placed; adopt the proposal only when it is strictly better.
        if proposed.len() == self.matched.len() && violations(&proposed) < violations(&self.matched)
        {
            self.matched = proposed;
        }
    }

    /// Sequentialization (and control) edges survive compilation as
    /// issue-order constraints. The postpass patcher re-times ops but
    /// preserves their order, so the check is on issue order, not
    /// latency separation (data/memory timing is covered by the value
    /// walk above).
    fn check_order_edges(&mut self) {
        for e in self.ddg.dag().edges() {
            if !matches!(
                e.kind,
                EdgeKind::Sequence | EdgeKind::Control | EdgeKind::Anti
            ) {
                continue;
            }
            let (Some(&(cu, _)), Some(&(cv, _))) =
                (self.matched.get(&e.from), self.matched.get(&e.to))
            else {
                continue;
            };
            if cv < cu {
                let kind = match e.kind {
                    EdgeKind::Sequence => "sequentialization",
                    EdgeKind::Control => "control",
                    _ => "anti",
                };
                let d = Diagnostic::new(
                    Code::DroppedSequenceEdge,
                    format!(
                        "{kind} edge `{}` → `{}` is not respected by the issue order",
                        self.ddg.describe(e.from),
                        self.ddg.describe(e.to)
                    ),
                )
                .at_cycle(cv)
                .on_node(e.from)
                .on_node(e.to)
                .note(format!(
                    "`{}` issues at cycle {cu}, its successor at cycle {cv}",
                    self.ddg.describe(e.from)
                ));
                self.diags.push(d);
            }
        }
    }
}

fn mem_key(idx: VnOperand) -> MemKey {
    match idx {
        VnOperand::Imm(v) => MemKey::Imm(v),
        VnOperand::Val(v) => MemKey::Val(v),
    }
}

/// `true` when two instructions have the same operator shape (operand
/// *values* are compared separately).
fn same_shape(a: &Instr, b: &Instr) -> bool {
    match (a, b) {
        (Instr::Const { value: x, .. }, Instr::Const { value: y, .. }) => x == y,
        (Instr::Bin { op: x, .. }, Instr::Bin { op: y, .. }) => x == y,
        (Instr::Un { op: x, .. }, Instr::Un { op: y, .. }) => x == y,
        (Instr::Load { .. }, Instr::Load { .. }) => true,
        (Instr::Store { .. }, Instr::Store { .. }) => true,
        _ => false,
    }
}

/// Pairs the operands of two same-shape instructions positionally.
fn operand_pairs(expected: &Instr, got: &Instr) -> Vec<(Operand, Operand)> {
    match (expected, got) {
        (Instr::Bin { a: ea, b: eb, .. }, Instr::Bin { a: ga, b: gb, .. }) => {
            vec![(*ea, *ga), (*eb, *gb)]
        }
        (Instr::Un { a: ea, .. }, Instr::Un { a: ga, .. }) => vec![(*ea, *ga)],
        _ => Vec::new(),
    }
}
