//! Structural value numbering over a dependence DAG.
//!
//! The translation validator needs to know, for every value-producing
//! DAG node, *which value* it computes — independent of register names,
//! so that two `const 1` nodes (or two loads of the same unwritten
//! cell) are interchangeable, while values that can differ get distinct
//! numbers. A [`Vn`] is an equivalence-class id under structural
//! equality:
//!
//! * live-ins are numbered by their original virtual register,
//! * constants by their value,
//! * arithmetic by operator and operand numbers,
//! * loads by base symbol, index number, and the *set of may-aliasing
//!   store nodes that precede them* (the memory epoch — two loads of
//!   one cell separated by a store must differ),
//! * spill reloads collapse to the number of the value their single
//!   feeding spill store saved (spill round-trips are value copies).
//!
//! The same interner also numbers values observed while walking emitted
//! VLIW code, so "does this operand hold the right value" is a plain
//! `Vn` comparison.

use std::collections::HashMap;
use ursa_graph::dag::{EdgeKind, NodeId};
use ursa_ir::ddg::{DependenceDag, NodeKind};
use ursa_ir::instr::{BinOp, Instr, UnOp};
use ursa_ir::value::{Operand, SymbolId, VirtualReg};
use ursa_sched::is_spill_symbol;

/// A value number: an equivalence class of values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Vn(pub u32);

/// An operand of a structural key: an immediate or a numbered value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VnOperand {
    /// A literal immediate.
    Imm(i64),
    /// A numbered value.
    Val(Vn),
}

/// The structural shape a value number is interned under.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Key {
    LiveIn(u32),
    Const(i64),
    Bin(BinOp, VnOperand, VnOperand),
    Un(UnOp, VnOperand),
    /// Base symbol, index, and the sorted may-aliasing store nodes that
    /// precede the load (its memory epoch).
    Load(SymbolId, VnOperand, Vec<u32>),
    /// A value nothing can legitimately equal (diagnostic recovery).
    Opaque(u32),
}

/// The interner plus the DAG-side numbering.
pub struct ValueNumbering {
    classes: HashMap<Key, Vn>,
    /// Per-class description for diagnostics (first definition wins).
    describe: Vec<String>,
    /// Value number of each value-producing DAG node.
    node_vn: HashMap<NodeId, Vn>,
    /// Defining node of each (renamed) virtual register.
    def_of: HashMap<VirtualReg, NodeId>,
    opaque: u32,
}

impl ValueNumbering {
    /// Numbers every value-producing node of `ddg`.
    ///
    /// `ddg` must be acyclic (callers run `check_dag` first).
    pub fn of(ddg: &DependenceDag) -> ValueNumbering {
        let mut vn = ValueNumbering {
            classes: HashMap::new(),
            describe: Vec::new(),
            node_vn: HashMap::new(),
            def_of: HashMap::new(),
            opaque: 0,
        };
        for n in ddg.dag().nodes() {
            if let Some(reg) = ddg.value_def(n) {
                vn.def_of.insert(reg, n);
            }
        }
        let order = ddg.dag().topo_order().expect("validated DAGs are acyclic");
        for n in order {
            vn.number_node(ddg, n);
        }
        vn
    }

    fn number_node(&mut self, ddg: &DependenceDag, n: NodeId) {
        let key = match ddg.kind(n) {
            NodeKind::LiveIn { reg } => Key::LiveIn(reg.0),
            NodeKind::Op { instr, .. } => match instr {
                Instr::Const { value, .. } => Key::Const(*value),
                Instr::Bin { op, a, b, .. } => {
                    Key::Bin(*op, self.operand_vn(*a), self.operand_vn(*b))
                }
                Instr::Un { op, a, .. } => Key::Un(*op, self.operand_vn(*a)),
                Instr::Load { mem, .. } => {
                    // Spill reloads are copies: collapse to the stored
                    // value when exactly one exact-cell store feeds the
                    // load and nothing else may alias it.
                    if let Some(fwd) = self.forwarded_store_value(ddg, n, mem) {
                        self.node_vn.insert(n, fwd);
                        return;
                    }
                    let mut epoch: Vec<u32> = ddg
                        .dag()
                        .pred_edges(n)
                        .filter(|e| e.kind == EdgeKind::Memory)
                        .filter(|e| is_store(ddg, e.from))
                        .map(|e| e.from.0)
                        .collect();
                    epoch.sort_unstable();
                    epoch.dedup();
                    Key::Load(mem.base, self.operand_vn(mem.index), epoch)
                }
                Instr::Store { .. } => return, // no value produced
            },
            _ => return,
        };
        let vn = self.intern(key, || ddg.describe(n));
        self.node_vn.insert(n, vn);
    }

    /// The stored value forwarded to load `n` from `mem`, when the load
    /// reads a compiler spill cell fed by exactly one store to the
    /// identical (constant-indexed) cell.
    fn forwarded_store_value(
        &self,
        ddg: &DependenceDag,
        n: NodeId,
        mem: &ursa_ir::value::MemRef,
    ) -> Option<Vn> {
        if !is_spill_symbol(ddg.symbol_name(mem.base)) {
            return None;
        }
        let stores: Vec<NodeId> = ddg
            .dag()
            .pred_edges(n)
            .filter(|e| e.kind == EdgeKind::Memory)
            .filter(|e| is_store(ddg, e.from))
            .map(|e| e.from)
            .collect();
        let [store] = stores[..] else { return None };
        let Some(Instr::Store { mem: smem, src }) = ddg.instr(store) else {
            return None;
        };
        if smem != mem || !matches!(mem.index, Operand::Imm(_)) {
            return None;
        }
        match src {
            Operand::Imm(_) => None,
            Operand::Reg(r) => {
                let def = self.def_of.get(r)?;
                self.node_vn.get(def).copied()
            }
        }
    }

    fn operand_vn(&mut self, op: Operand) -> VnOperand {
        match op {
            Operand::Imm(v) => VnOperand::Imm(v),
            Operand::Reg(r) => {
                if let Some(&def) = self.def_of.get(&r) {
                    if let Some(&vn) = self.node_vn.get(&def) {
                        return VnOperand::Val(vn);
                    }
                }
                // A read of a register with no def in the DAG: give it
                // a unique number so nothing spuriously matches.
                VnOperand::Val(self.fresh_opaque(&format!("undefined {r}")))
            }
        }
    }

    fn intern(&mut self, key: Key, describe: impl FnOnce() -> String) -> Vn {
        if let Some(&vn) = self.classes.get(&key) {
            return vn;
        }
        let vn = Vn(self.describe.len() as u32);
        self.describe.push(describe());
        self.classes.insert(key, vn);
        vn
    }

    /// A value number nothing else can equal (used to keep walking
    /// after a diagnostic without cascading).
    pub fn fresh_opaque(&mut self, why: &str) -> Vn {
        self.opaque += 1;
        let key = Key::Opaque(self.opaque);
        self.intern(key, || why.to_string())
    }

    /// The number of the value `n` produces, if any.
    pub fn vn_of(&self, n: NodeId) -> Option<Vn> {
        self.node_vn.get(&n).copied()
    }

    /// The node defining (renamed) register `r`, if any.
    pub fn def_of(&self, r: VirtualReg) -> Option<NodeId> {
        self.def_of.get(&r).copied()
    }

    /// Human description of a value class (its first definition).
    pub fn describe(&self, vn: Vn) -> &str {
        self.describe
            .get(vn.0 as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Numbers a value observed on the emitted side: a binary op
    /// applied to observed operands.
    pub fn observe_bin(&mut self, op: BinOp, a: VnOperand, b: VnOperand) -> Vn {
        self.intern(Key::Bin(op, a, b), || format!("emitted {op:?}"))
    }

    /// Numbers an observed unary op.
    pub fn observe_un(&mut self, op: UnOp, a: VnOperand) -> Vn {
        self.intern(Key::Un(op, a), || format!("emitted {op:?}"))
    }

    /// Numbers an observed constant.
    pub fn observe_const(&mut self, value: i64) -> Vn {
        self.intern(Key::Const(value), || format!("const {value}"))
    }
}

/// `true` when `n` is a store node.
pub fn is_store(ddg: &DependenceDag, n: NodeId) -> bool {
    matches!(ddg.instr(n), Some(Instr::Store { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::parser::parse;

    fn vn_of_reg(vn: &ValueNumbering, r: u32) -> Vn {
        let def = vn.def_of(VirtualReg(r)).expect("defined");
        vn.vn_of(def).expect("numbered")
    }

    #[test]
    fn identical_constants_share_a_class() {
        let p = parse("v0 = const 1\nv1 = const 1\nv2 = const 2\nstore a[0], v2\n").unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let vn = ValueNumbering::of(&ddg);
        assert_eq!(vn_of_reg(&vn, 0), vn_of_reg(&vn, 1));
        assert_ne!(vn_of_reg(&vn, 0), vn_of_reg(&vn, 2));
    }

    #[test]
    fn loads_split_by_memory_epoch() {
        let p = parse(
            "v0 = load a[0]\n\
             v1 = load a[0]\n\
             store a[0], 7\n\
             v2 = load a[0]\n\
             store b[0], v2\n",
        )
        .unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let vn = ValueNumbering::of(&ddg);
        // Same cell, same epoch: interchangeable.
        assert_eq!(vn_of_reg(&vn, 0), vn_of_reg(&vn, 1));
        // The store starts a new epoch.
        assert_ne!(vn_of_reg(&vn, 0), vn_of_reg(&vn, 2));
    }

    #[test]
    fn spill_round_trip_is_a_copy() {
        let p = parse(
            "v0 = load a[0]\n\
             v1 = mul v0, 2\n\
             v2 = mul v0, 3\n\
             v3 = add v1, v2\n\
             store a[1], v3\n",
        )
        .unwrap();
        let mut ddg = DependenceDag::from_entry_block(&p);
        // Spill v0's value across its uses.
        let def = ddg
            .dag()
            .nodes()
            .find(|&n| ddg.value_def(n) == Some(VirtualReg(0)))
            .unwrap();
        let uses: Vec<NodeId> = ddg.uses_of(def).to_vec();
        let pair = ddg.insert_spill(def, &uses);
        let vn = ValueNumbering::of(&ddg);
        assert_eq!(
            vn.vn_of(def),
            vn.vn_of(pair.load),
            "reload carries the spilled value"
        );
    }

    #[test]
    fn opaque_values_never_collide() {
        let p = parse("v0 = const 1\nstore a[0], v0\n").unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let mut vn = ValueNumbering::of(&ddg);
        let a = vn.fresh_opaque("x");
        let b = vn.fresh_opaque("x");
        assert_ne!(a, b);
    }
}
