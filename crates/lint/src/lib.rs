//! `ursa-lint` — static translation validation and lints for the URSA
//! pipeline.
//!
//! Two layers, both producing structured [`Diagnostic`]s with stable
//! codes:
//!
//! * **The translation validator** ([`validator`]) symbolically
//!   re-executes emitted VLIW code cycle-by-cycle over value classes
//!   (no concrete data) and proves it implements the dependence DAG it
//!   was compiled from: every operand reads exactly the value the DAG
//!   says, no live register is clobbered, spill reloads wait for their
//!   stores to commit, memory ordering and sequentialization edges are
//!   respected, units never overlap. Violations are `U00xx` errors.
//! * **Lint passes** ([`passes`]) flag the suspicious-but-legal:
//!   dead values, spill stores never reloaded, non-minimal chain
//!   decompositions (cross-checked against an independent Dilworth
//!   bound), inconsistent machine descriptions, register-pressure
//!   hotspots, and `__`-prefixed symbol collisions. Findings are
//!   `U01xx` warnings/notes.
//! * **Whole-program checks** ([`pipeline::lint_program`]) replay every
//!   unit of a [`ursa_sched::program::ProgramSchedule`] through both
//!   layers and then verify the boundary hand-off contract: every
//!   off-unit edge commits its live values to the `__boundary` area, and
//!   no unit expects a register to survive a unit switch. Violations are
//!   `U02xx` errors.
//! * **Schedule-quality analysis** ([`bounds`]) compares emitted code
//!   against the lower-bound certificates `ursa-core` computes on the
//!   untransformed dependence DAG (weighted critical path, Dilworth
//!   register requirement, per-FU-class occupancy) and flags provable
//!   suboptimality and redundant spill/boundary traffic. Findings are
//!   `U03xx` warnings plus the `U0305` gap note; enabled by the
//!   `--bounds[=slack]` flag / `PipelineOptions::bounds`.
//!
//! # Code registry
//!
//! | code  | name                           | severity |
//! |-------|--------------------------------|----------|
//! | U0001 | clobbered-live-register        | error    |
//! | U0002 | wrong-operand-value            | error    |
//! | U0003 | read-before-commit             | error    |
//! | U0004 | reload-before-store-commit     | error    |
//! | U0005 | unmatched-operation            | error    |
//! | U0006 | missing-operation              | error    |
//! | U0007 | memory-order-violation         | error    |
//! | U0008 | store-value-mismatch           | error    |
//! | U0009 | dropped-sequence-edge          | error    |
//! | U0010 | register-out-of-file           | error    |
//! | U0011 | unit-conflict                  | error    |
//! | U0101 | dead-value                     | warning  |
//! | U0102 | redundant-spill-pair           | warning  |
//! | U0103 | non-minimal-chain-decomposition| warning  |
//! | U0104 | inconsistent-machine           | warning  |
//! | U0105 | register-pressure-hotspot      | note     |
//! | U0106 | spill-symbol-collision         | warning  |
//! | U0201 | missing-compensation           | error    |
//! | U0202 | clobbered-live-out             | error    |
//! | U0301 | schedule-exceeds-bound         | warning  |
//! | U0302 | avoidable-spill                | warning  |
//! | U0303 | redundant-spill-traffic        | warning  |
//! | U0304 | dead-boundary-store            | warning  |
//! | U0305 | optimality-gap                 | note     |
//!
//! # Examples
//!
//! ```
//! use ursa_ir::{parser::parse, Trace};
//! use ursa_lint::{try_compile_linted, LintLevel};
//! use ursa_machine::Machine;
//! use ursa_sched::{CompileStrategy, PipelineOptions};
//!
//! let program = parse(
//!     "v0 = load a[0]\n\
//!      v1 = mul v0, 2\n\
//!      v2 = mul v0, 3\n\
//!      v3 = add v1, v2\n\
//!      store a[1], v3\n",
//! )
//! .unwrap();
//! let machine = Machine::homogeneous(2, 3);
//! let opts = PipelineOptions { lint: LintLevel::Deny, ..Default::default() };
//! let (compiled, report) = try_compile_linted(
//!     &program,
//!     &Trace::single(0),
//!     &machine,
//!     CompileStrategy::Ursa(Default::default()),
//!     &opts,
//! )
//! .unwrap();
//! assert!(compiled.vliw.op_count() >= 5);
//! assert!(!report.fails_at(LintLevel::Deny), "{report}");
//! ```

pub mod bounds;
pub mod diag;
pub mod passes;
pub mod pipeline;
pub mod validator;
pub mod vn;

pub use bounds::{analyze_quality, dead_boundary_stores, BoundsOptions, UnitQuality};
pub use diag::{Code, Diagnostic, LintLevel, LintReport, Severity};
pub use passes::{default_passes, LintContext, LintPass};
pub use pipeline::{
    lint_compiled, lint_compiled_opts, lint_compiled_with, lint_program, try_compile_linted,
};
pub use validator::{validate_translation, ValidationResult};
pub use vn::{ValueNumbering, Vn, VnOperand};
