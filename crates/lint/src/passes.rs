//! The pluggable lint pass framework.
//!
//! Where the translation validator (`validator`) proves a *specific*
//! compilation correct, lint passes look for things that are *suspect*
//! but not wrong: values computed and never used, spill stores never
//! reloaded, machine descriptions that cannot execute the IR, register
//! pressure hotspots. Passes see the program, the trace, the machine,
//! the untransformed dependence DAG, and (when available) the compiled
//! result, and append [`Diagnostic`]s to a shared [`LintReport`].

use crate::diag::{Code, Diagnostic, LintReport};
use std::collections::HashMap;
use ursa_core::{find_excessive, measure, AllocCtx, MeasureOptions};
use ursa_ir::ddg::DependenceDag;
use ursa_ir::instr::Instr;
use ursa_ir::program::Program;
use ursa_ir::trace::Trace;
use ursa_ir::value::VirtualReg;
use ursa_machine::{Machine, OpKind};
use ursa_sched::vliw::SlotOp;
use ursa_sched::{is_spill_symbol, Compiled};

/// Everything a lint pass may inspect.
pub struct LintContext<'a> {
    /// The source program.
    pub program: &'a Program,
    /// The trace being compiled.
    pub trace: &'a Trace,
    /// The target machine.
    pub machine: &'a Machine,
    /// The *untransformed* dependence DAG of the trace (passes that
    /// care about what the allocator did inspect `compiled`).
    pub ddg: &'a DependenceDag,
    /// The compilation result, when one exists.
    pub compiled: Option<&'a Compiled>,
}

/// One lint pass.
pub trait LintPass {
    /// Short stable name (shown in `ursalint --help` style listings).
    fn name(&self) -> &'static str;
    /// Appends findings to `report`.
    fn run(&self, cx: &LintContext<'_>, report: &mut LintReport);
}

/// The default pass set, in execution order.
pub fn default_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(DeadValue),
        Box::new(RedundantSpillPair),
        Box::new(NonMinimalChains),
        Box::new(InconsistentMachine),
        Box::new(PressureHotspot),
        Box::new(SpillSymbolCollision),
    ]
}

/// U0101: a value computed on the trace and never read afterwards,
/// while later operations still execute (it holds a register for
/// nothing). Trailing definitions are *not* flagged — a trace fragment
/// legitimately ends by producing its live-out values.
pub struct DeadValue;

impl LintPass for DeadValue {
    fn name(&self) -> &'static str {
        "dead-value"
    }

    fn run(&self, cx: &LintContext<'_>, report: &mut LintReport) {
        // Flatten the trace into program order.
        let mut flat: Vec<(usize, &Instr)> = Vec::new();
        let mut term_uses: Vec<(usize, Vec<VirtualReg>)> = Vec::new();
        for &b in &cx.trace.blocks {
            let block = &cx.program.blocks[b];
            for i in &block.instrs {
                flat.push((b, i));
            }
            term_uses.push((flat.len(), block.term.uses()));
        }
        for (pos, &(block, instr)) in flat.iter().enumerate() {
            let Some(def) = instr.def() else { continue };
            if pos + 1 >= flat.len() {
                continue; // trailing definition: live-out by convention
            }
            let read_later = flat[pos + 1..].iter().any(|(_, i)| i.uses().contains(&def))
                || term_uses
                    .iter()
                    .any(|(end, uses)| *end > pos && uses.contains(&def));
            if !read_later {
                let d = Diagnostic::new(
                    Code::DeadValue,
                    format!("`{instr}` defines {def} but nothing on the trace reads it"),
                )
                .note(format!(
                    "defined in block {block} (`{}`) while later operations still execute",
                    cx.program.blocks[block].label
                ));
                report.push(d);
            }
        }
    }
}

/// U0102: a spill store whose cell is never reloaded — the store (and
/// likely the whole spill decision) is redundant.
pub struct RedundantSpillPair;

impl LintPass for RedundantSpillPair {
    fn name(&self) -> &'static str {
        "redundant-spill-pair"
    }

    fn run(&self, cx: &LintContext<'_>, report: &mut LintReport) {
        let Some(compiled) = cx.compiled else { return };
        let vliw = &compiled.vliw;
        // (symbol, index-display) → (stores, loads, first store cycle)
        let mut cells: HashMap<(String, String), (usize, usize, u64)> = HashMap::new();
        for (c, word) in vliw.words.iter().enumerate() {
            for op in word {
                let SlotOp::Instr(i) = &op.op else { continue };
                let (mem, is_load) = match i {
                    Instr::Load { mem, .. } => (mem, true),
                    Instr::Store { mem, .. } => (mem, false),
                    _ => continue,
                };
                let name = vliw
                    .symbols
                    .get(mem.base.index())
                    .cloned()
                    .unwrap_or_default();
                if !is_spill_symbol(&name) {
                    continue;
                }
                let e = cells
                    .entry((name, mem.index.to_string()))
                    .or_insert((0, 0, c as u64));
                if is_load {
                    e.1 += 1;
                } else {
                    e.0 += 1;
                    e.2 = e.2.min(c as u64);
                }
            }
        }
        let mut dead: Vec<_> = cells
            .into_iter()
            .filter(|(_, (stores, loads, _))| *stores > 0 && *loads == 0)
            .collect();
        dead.sort_by(|a, b| a.0.cmp(&b.0));
        for ((name, idx), (_, _, cycle)) in dead {
            let d = Diagnostic::new(
                Code::RedundantSpillPair,
                format!("spill cell {name}[{idx}] is stored but never reloaded"),
            )
            .at_cycle(cycle)
            .note("the store — and likely the spill decision itself — is redundant".to_string());
            report.push(d);
        }
    }
}

/// U0103: cross-check that the measured chain decompositions are
/// minimal — each must use exactly as many chains as the Dilworth bound
/// computed independently by a plain maximum matching.
pub struct NonMinimalChains;

impl LintPass for NonMinimalChains {
    fn name(&self) -> &'static str {
        "non-minimal-chain-decomposition"
    }

    fn run(&self, cx: &LintContext<'_>, report: &mut LintReport) {
        let mut ctx = AllocCtx::new(cx.ddg.clone(), cx.machine);
        let m = measure(&mut ctx, MeasureOptions::default());
        for (resource, staged, bound) in m.minimality_gaps(&ctx) {
            let d = Diagnostic::new(
                Code::NonMinimalChainDecomposition,
                format!(
                    "decomposition for {resource} uses {staged} chains but the \
                     Dilworth bound is {bound}"
                ),
            )
            .note("the measure phase over- or under-states this requirement".to_string());
            report.push(d);
        }
    }
}

/// U0104: machine descriptions the pipeline cannot sensibly target.
pub struct InconsistentMachine;

impl LintPass for InconsistentMachine {
    fn name(&self) -> &'static str {
        "inconsistent-machine"
    }

    fn run(&self, cx: &LintContext<'_>, report: &mut LintReport) {
        let m = cx.machine;
        const KINDS: [OpKind; 6] = [
            OpKind::Alu,
            OpKind::Mul,
            OpKind::Div,
            OpKind::Load,
            OpKind::Store,
            OpKind::Branch,
        ];
        for kind in KINDS {
            if m.latency_of(kind) == 0 {
                report.push(Diagnostic::new(
                    Code::InconsistentMachine,
                    format!("{kind:?} has zero latency: results would commit before they issue"),
                ));
            }
            if m.occupancy_of(kind) > m.latency_of(kind) {
                report.push(Diagnostic::new(
                    Code::InconsistentMachine,
                    format!(
                        "{kind:?} occupies its unit for {} cycles but completes in {}",
                        m.occupancy_of(kind),
                        m.latency_of(kind)
                    ),
                ));
            }
            if m.fu_count(m.class_of(kind)) == 0 {
                report.push(Diagnostic::new(
                    Code::InconsistentMachine,
                    format!(
                        "no functional unit can execute {kind:?} ({} units: 0)",
                        m.class_of(kind)
                    ),
                ));
            }
        }
        if m.registers() < 3 {
            report.push(Diagnostic::new(
                Code::InconsistentMachine,
                format!(
                    "{} registers cannot hold two operands and a result at once",
                    m.registers()
                ),
            ));
        }
    }
}

/// U0105 (note): where the pressure is — the first excessive chain set
/// per over-subscribed resource, as measured on the untransformed DAG.
pub struct PressureHotspot;

impl LintPass for PressureHotspot {
    fn name(&self) -> &'static str {
        "register-pressure-hotspot"
    }

    fn run(&self, cx: &LintContext<'_>, report: &mut LintReport) {
        let mut ctx = AllocCtx::new(cx.ddg.clone(), cx.machine);
        let m = measure(&mut ctx, MeasureOptions::default());
        let kills = m.kills.clone();
        for rm in &m.resources {
            if rm.requirement.excess() == 0 {
                continue;
            }
            let Some(set) = find_excessive(&mut ctx, rm, &kills) else {
                continue;
            };
            let mut d = Diagnostic::new(
                Code::RegisterPressureHotspot,
                format!(
                    "{} requirement {} exceeds capacity {} ({} independent chains \
                     in one hammock)",
                    rm.requirement.resource,
                    rm.requirement.required,
                    rm.requirement.capacity,
                    set.chains.len()
                ),
            );
            for n in set.chains.iter().flatten() {
                d = d.on_node(*n);
            }
            d = d.note(format!(
                "hammock {} → {}",
                ctx.ddg().describe(set.hammock.0),
                ctx.ddg().describe(set.hammock.1)
            ));
            report.push(d);
        }
    }
}

/// U0106: program symbols that collide with the compiler's reserved
/// `__` spill prefix. The parser rejects these, but programs built
/// through the API can still carry them — and spill bookkeeping would
/// silently treat their cells as compiler temporaries.
pub struct SpillSymbolCollision;

impl LintPass for SpillSymbolCollision {
    fn name(&self) -> &'static str {
        "spill-symbol-collision"
    }

    fn run(&self, cx: &LintContext<'_>, report: &mut LintReport) {
        for name in &cx.program.symbols {
            if is_spill_symbol(name) {
                let d = Diagnostic::new(
                    Code::SpillSymbolCollision,
                    format!("symbol `{name}` uses the reserved compiler spill prefix `__`"),
                )
                .note(
                    "spill bookkeeping treats such cells as compiler temporaries; \
                     rename the symbol"
                        .to_string(),
                );
                report.push(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_ir::parser::parse;

    fn cx_parts(src: &str) -> (Program, Trace, Machine) {
        let p = parse(src).unwrap();
        (p, Trace::single(0), Machine::homogeneous(2, 8))
    }

    fn run_pass(pass: &dyn LintPass, src: &str, machine: Option<Machine>) -> LintReport {
        let (p, t, m) = cx_parts(src);
        let m = machine.unwrap_or(m);
        let ddg = DependenceDag::build(&p, &t);
        let mut report = LintReport::default();
        pass.run(
            &LintContext {
                program: &p,
                trace: &t,
                machine: &m,
                ddg: &ddg,
                compiled: None,
            },
            &mut report,
        );
        report
    }

    #[test]
    fn dead_value_flags_unused_mid_trace_defs_only() {
        // v1 is never read while the store still executes; the trailing
        // v3 is a live-out by convention.
        let r = run_pass(
            &DeadValue,
            "v0 = const 1\n\
             v1 = mul v0, 2\n\
             store a[0], v0\n\
             v3 = add v0, 4\n",
            None,
        );
        assert!(r.has(Code::DeadValue));
        let dead: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::DeadValue)
            .collect();
        assert_eq!(dead.len(), 1, "{r}");
        assert!(dead[0].message.contains("v1"), "{r}");
    }

    #[test]
    fn dead_value_clean_on_straightline_use_chain() {
        let r = run_pass(
            &DeadValue,
            "v0 = load a[0]\nv1 = mul v0, 2\nstore a[1], v1\n",
            None,
        );
        assert!(!r.has(Code::DeadValue), "{r}");
    }

    #[test]
    fn inconsistent_machine_flags_tiny_register_file() {
        let r = run_pass(
            &InconsistentMachine,
            "v0 = const 1\nstore a[0], v0\n",
            Some(Machine::homogeneous(2, 2)),
        );
        assert!(r.has(Code::InconsistentMachine), "{r}");
    }

    #[test]
    fn minimality_cross_check_is_clean_on_fig2() {
        let r = run_pass(
            &NonMinimalChains,
            ursa_workloads::paper::FIGURE2_SOURCE,
            Some(Machine::homogeneous(2, 3)),
        );
        assert!(!r.has(Code::NonMinimalChainDecomposition), "{r}");
    }

    #[test]
    fn hotspot_reports_excessive_regions_under_pressure() {
        let r = run_pass(
            &PressureHotspot,
            ursa_workloads::paper::FIGURE2_SOURCE,
            Some(Machine::homogeneous(2, 3)),
        );
        assert!(r.has(Code::RegisterPressureHotspot), "{r}");
        // Plenty of registers: nothing to report.
        let r = run_pass(
            &PressureHotspot,
            ursa_workloads::paper::FIGURE2_SOURCE,
            Some(Machine::homogeneous(4, 32)),
        );
        assert!(!r.has(Code::RegisterPressureHotspot), "{r}");
    }
}
