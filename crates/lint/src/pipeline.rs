//! Driver integration: compile-then-lint in one call.
//!
//! [`lint_compiled`] runs the full diagnostic battery over one finished
//! compilation — the translation validator against the DAG the code was
//! actually generated from (the allocator's transformed DAG when one
//! exists), plus every default lint pass over the original program and
//! DAG. [`try_compile_linted`] wraps `ursa_sched::try_compile_with` and
//! honors [`PipelineOptions::lint`]: at `Allow` no linting runs at all;
//! the caller decides pass/fail from [`LintReport::fails_at`].

use crate::bounds::BoundsOptions;
use crate::diag::{Code, Diagnostic, LintReport};
use crate::passes::{default_passes, LintContext};
use crate::validator::validate_translation;
use ursa_ir::ddg::{DdgOptions, DependenceDag};
use ursa_ir::instr::Instr;
use ursa_ir::program::Program;
use ursa_ir::trace::{liveness, Trace};
use ursa_ir::value::Operand;
use ursa_machine::Machine;
use ursa_sched::program::{ProgramSchedule, BOUNDARY_SYMBOL};
use ursa_sched::vliw::{SlotOp, VliwProgram};
use ursa_sched::{
    try_compile_with, CompileError, CompileStrategy, Compiled, LintLevel, PipelineOptions,
};

/// Runs the translation validator and all default lint passes over one
/// finished compilation.
///
/// The validator's reference DAG is the allocator's *transformed* DAG
/// when the strategy produced one (its spill nodes and sequence edges
/// are part of the contract being checked) and the freshly built
/// dependence DAG otherwise. Prepass code is pre-colored before its DAG
/// is built, so its live-in table cannot be mapped back to original
/// values — the validator is skipped for it (the lint passes still
/// run).
pub fn lint_compiled(
    program: &Program,
    trace: &Trace,
    machine: &Machine,
    strategy: &CompileStrategy,
    compiled: &Compiled,
) -> LintReport {
    lint_compiled_with(
        program,
        trace,
        machine,
        strategy,
        compiled,
        DdgOptions::default(),
    )
}

/// [`lint_compiled`] with explicit DAG-construction options. The
/// rebuilt reference DAG must be shaped exactly like the one the code
/// was generated from — the whole-program driver compiles its units
/// with a materialized final branch, so its lint replay must too.
pub fn lint_compiled_with(
    program: &Program,
    trace: &Trace,
    machine: &Machine,
    strategy: &CompileStrategy,
    compiled: &Compiled,
    ddg_opts: DdgOptions,
) -> LintReport {
    lint_compiled_inner(program, trace, machine, strategy, compiled, ddg_opts, None)
}

/// [`lint_compiled_with`] driven by [`PipelineOptions`]: takes the
/// DAG-construction options from `opts.ddg` and, when `opts.bounds` is
/// set, appends the schedule-quality analysis (`U0301`/`U0302`/`U0303`
/// warnings + the `U0305` gap note) with that slack.
pub fn lint_compiled_opts(
    program: &Program,
    trace: &Trace,
    machine: &Machine,
    strategy: &CompileStrategy,
    compiled: &Compiled,
    opts: &PipelineOptions,
) -> LintReport {
    lint_compiled_inner(
        program,
        trace,
        machine,
        strategy,
        compiled,
        opts.ddg,
        opts.bounds,
    )
}

fn lint_compiled_inner(
    program: &Program,
    trace: &Trace,
    machine: &Machine,
    strategy: &CompileStrategy,
    compiled: &Compiled,
    ddg_opts: DdgOptions,
    bounds: Option<u64>,
) -> LintReport {
    let mut report = LintReport::new();
    let original = DependenceDag::build_with(program, trace, ddg_opts);
    if !matches!(strategy, CompileStrategy::Prepass) {
        let reference = match &compiled.outcome {
            Some(o) => &o.ddg,
            None => &original,
        };
        let result = validate_translation(reference, &compiled.vliw, machine);
        report.extend(result.diagnostics);
    }
    let cx = LintContext {
        program,
        trace,
        machine,
        ddg: &original,
        compiled: Some(compiled),
    };
    for pass in default_passes() {
        pass.run(&cx, &mut report);
    }
    if let Some(slack) = bounds {
        let (_, diags) =
            crate::bounds::analyze_quality(&original, machine, compiled, BoundsOptions { slack });
        report.extend(diags);
    }
    report
}

/// Compiles `trace` and, unless `opts.lint` is [`LintLevel::Allow`],
/// lints the result. The report is returned alongside the code; whether
/// it *fails* the build under the configured level is the caller's call
/// via [`LintReport::fails_at`] (so drivers can still print and emit
/// the code).
///
/// # Errors
///
/// Exactly those of [`try_compile_with`] — lint findings are not
/// compile errors.
pub fn try_compile_linted(
    program: &Program,
    trace: &Trace,
    machine: &Machine,
    strategy: CompileStrategy,
    opts: &PipelineOptions,
) -> Result<(Compiled, LintReport), CompileError> {
    let compiled = try_compile_with(program, trace, machine, strategy.clone(), opts)?;
    let report = if opts.lint == LintLevel::Allow {
        LintReport::new()
    } else {
        lint_compiled_opts(program, trace, machine, &strategy, &compiled, opts)
    };
    Ok((compiled, report))
}

/// `true` when `vliw` stores to `__boundary[r]` no later than word
/// `limit` (any word when `limit` is `None`).
fn stores_to_boundary(vliw: &VliwProgram, r: usize, limit: Option<usize>) -> bool {
    vliw.words.iter().enumerate().any(|(w, word)| {
        limit.is_none_or(|l| w <= l)
            && word.iter().any(|op| match &op.op {
                SlotOp::Instr(Instr::Store { mem, .. }) => {
                    vliw.symbols.get(mem.base.index()).map(String::as_str) == Some(BOUNDARY_SYMBOL)
                        && mem.index == Operand::Imm(r as i64)
                }
                _ => false,
            })
    })
}

/// Lints a whole [`ProgramSchedule`]: each unit goes through the full
/// per-trace battery ([`lint_compiled_with`], against the *compensated*
/// program its code was generated from), then the boundary hand-off
/// contract is checked across units:
///
/// * **U0201 missing-compensation** — a unit takes an off-unit edge
///   (branch exit or fall-through) along which some value live into the
///   target block was never stored to the `__boundary` area. Exit edges
///   additionally require the store to issue no later than the branch's
///   word, since later words never execute on the exiting path.
/// * **U0202 clobbered-live-out** — a unit's code declares register
///   live-ins. Registers do not survive a unit switch: every cross-unit
///   value must arrive through the boundary area.
///
/// When `opts.bounds` is set, the per-unit replay additionally runs the
/// schedule-quality analysis (`U0301`/`U0302`/`U0303`/`U0305` against
/// each unit's compensated DAG) and a liveness-aware boundary check:
///
/// * **U0304 dead-boundary-store** — a `__boundary[r]` store in a unit
///   none of whose off-unit successors has `v r` live on entry: the
///   cell is never reloaded on any path, so the store is pure
///   cross-unit traffic.
///
/// `program` is the *original* program — liveness for the hand-off
/// checks is computed on it, exactly as [`ursa_sched::compensate`] did.
pub fn lint_program(
    program: &Program,
    sched: &ProgramSchedule,
    machine: &Machine,
    strategy: &CompileStrategy,
    opts: &PipelineOptions,
) -> LintReport {
    let mut report = LintReport::new();
    let mut ddg_opts = opts.ddg;
    ddg_opts.materialize_final_branch = true;
    let lv = liveness(program);
    for unit in &sched.units {
        let head = unit.trace.blocks[0];
        let unit_report = lint_compiled_inner(
            &sched.compensated,
            &unit.trace,
            machine,
            strategy,
            &unit.compiled,
            ddg_opts,
            opts.bounds,
        );
        // Two per-unit findings are expected shapes at program level:
        // the driver itself appended `__boundary` to the compensated
        // program (the collision lint is about *user* symbols), and
        // boundary cells are stored for *other* units to reload (the
        // redundant-spill-pair lint only sees one unit at a time).
        report.extend(
            unit_report
                .diagnostics
                .into_iter()
                .filter(|d| {
                    !(d.message.contains(BOUNDARY_SYMBOL)
                        && matches!(
                            d.code,
                            Code::SpillSymbolCollision | Code::RedundantSpillPair
                        ))
                })
                .map(|d| d.note(format!("in the unit headed by block {head}"))),
        );
        let vliw = &unit.compiled.vliw;
        // Branch words in issue order — ordinal k is the k-th branch.
        let branch_words: Vec<usize> = vliw
            .words
            .iter()
            .enumerate()
            .flat_map(|(w, word)| {
                word.iter()
                    .filter(|op| matches!(op.op, SlotOp::Branch { .. }))
                    .map(move |_| w)
            })
            .collect();
        for (k, &target) in unit.exits.iter().enumerate() {
            let limit = branch_words.get(k).copied();
            for r in lv.live_in[target].iter() {
                if !stores_to_boundary(vliw, r, limit) {
                    let mut d = Diagnostic::new(
                        Code::MissingCompensation,
                        format!(
                            "unit headed by block {head} exits to block {target} \
                             without committing v{r} to {BOUNDARY_SYMBOL}[{r}]"
                        ),
                    );
                    if let Some(w) = limit {
                        d = d.at_cycle(w as u64).note(format!(
                            "the exit branch issues at cycle {w}; the store must \
                             issue no later"
                        ));
                    }
                    report.push(d);
                }
            }
        }
        if let Some(target) = unit.fallthrough {
            for r in lv.live_in[target].iter() {
                if !stores_to_boundary(vliw, r, None) {
                    report.push(Diagnostic::new(
                        Code::MissingCompensation,
                        format!(
                            "unit headed by block {head} falls through to block \
                             {target} without committing v{r} to {BOUNDARY_SYMBOL}[{r}]"
                        ),
                    ));
                }
            }
        }
        if !vliw.live_in.is_empty() {
            let regs: Vec<String> = vliw
                .live_in
                .iter()
                .map(|&(phys, vreg)| format!("{vreg} in r{phys}"))
                .collect();
            report.push(Diagnostic::new(
                Code::ClobberedLiveOut,
                format!(
                    "unit headed by block {head} expects register live-ins \
                     ({}); registers do not survive unit switches",
                    regs.join(", ")
                ),
            ));
        }
        if opts.bounds.is_some() {
            let mut live_cells: Vec<bool> = Vec::new();
            for target in unit.successor_blocks() {
                for r in lv.live_in[target].iter() {
                    if r >= live_cells.len() {
                        live_cells.resize(r + 1, false);
                    }
                    live_cells[r] = true;
                }
            }
            for (cycle, cell) in crate::bounds::dead_boundary_stores(vliw, &live_cells) {
                report.push(
                    Diagnostic::new(
                        Code::DeadBoundaryStore,
                        format!(
                            "unit headed by block {head} stores {BOUNDARY_SYMBOL}[{cell}] \
                             but v{cell} is dead on every off-unit successor"
                        ),
                    )
                    .at_cycle(cycle),
                );
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_machine::Machine;
    use ursa_sched::CompileStrategy;
    use ursa_workloads::paper::figure2_block;

    #[test]
    fn linted_compile_accepts_figure2_on_every_strategy() {
        let program = figure2_block();
        let trace = Trace::single(0);
        // Tight machine so URSA actually transforms (spills + sequence
        // edges) and postpass actually patches.
        let machine = Machine::homogeneous(2, 3);
        let strategies = [
            CompileStrategy::Ursa(Default::default()),
            CompileStrategy::Postpass,
            CompileStrategy::Prepass,
            CompileStrategy::GoodmanHsu,
        ];
        for strategy in strategies {
            let name = strategy.name();
            let opts = PipelineOptions {
                lint: LintLevel::Deny,
                ..Default::default()
            };
            let (_, report) = try_compile_linted(&program, &trace, &machine, strategy, &opts)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                report.errors().next().is_none(),
                "{name} produced validator errors:\n{report}"
            );
        }
    }

    #[test]
    fn allow_level_skips_linting() {
        let program = figure2_block();
        let trace = Trace::single(0);
        let machine = Machine::homogeneous(2, 3);
        let opts = PipelineOptions::default(); // lint: Allow
        let (_, report) =
            try_compile_linted(&program, &trace, &machine, CompileStrategy::Postpass, &opts)
                .unwrap();
        assert!(report.is_clean());
    }

    const LOOP: &str = "\
        block entry:\n\
        v0 = const 0\n\
        jmp head\n\
        block head @ 8:\n\
        v1 = load a[v0]\n\
        v2 = mul v1, 3\n\
        store b[v0], v2\n\
        v0 = add v0, 1\n\
        v3 = cmplt v0, 8\n\
        br v3, head, done\n\
        block done:\n\
        ret\n";

    #[test]
    fn whole_program_lint_is_deny_clean_on_every_strategy() {
        let p = ursa_ir::parser::parse(LOOP).unwrap();
        let machine = Machine::homogeneous(2, 4);
        let opts = PipelineOptions::default();
        let strategies = [
            CompileStrategy::Ursa(Default::default()),
            CompileStrategy::Postpass,
            CompileStrategy::Prepass,
            CompileStrategy::GoodmanHsu,
        ];
        for strategy in strategies {
            let name = strategy.name();
            let sched =
                ursa_sched::program::try_compile_program(&p, &machine, strategy.clone(), &opts)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            let report = lint_program(&p, &sched, &machine, &strategy, &opts);
            assert!(
                !report.fails_at(LintLevel::Deny),
                "{name} fails deny-level lint:\n{report}"
            );
        }
    }

    #[test]
    fn dropped_boundary_store_is_missing_compensation() {
        let p = ursa_ir::parser::parse(LOOP).unwrap();
        let machine = Machine::homogeneous(2, 4);
        let opts = PipelineOptions::default();
        let strategy = CompileStrategy::Postpass;
        let mut sched =
            ursa_sched::program::try_compile_program(&p, &machine, strategy.clone(), &opts)
                .unwrap();
        // Sabotage: strip every boundary store from every unit.
        for unit in &mut sched.units {
            let vliw = &mut unit.compiled.vliw;
            let boundary: Vec<bool> = vliw.symbols.iter().map(|s| s == BOUNDARY_SYMBOL).collect();
            for word in &mut vliw.words {
                word.retain(|op| {
                    !matches!(
                        &op.op,
                        SlotOp::Instr(Instr::Store { mem, .. })
                            if boundary.get(mem.base.index()).copied().unwrap_or(false)
                    )
                });
            }
        }
        let report = lint_program(&p, &sched, &machine, &strategy, &opts);
        assert!(
            report.has(Code::MissingCompensation),
            "stripped stores must be reported:\n{report}"
        );
    }

    #[test]
    fn bounds_flow_through_the_pipeline_options() {
        let program = figure2_block();
        let trace = Trace::single(0);
        let machine = Machine::homogeneous(4, 16);
        let opts = PipelineOptions {
            lint: LintLevel::Warn,
            bounds: Some(0),
            ..Default::default()
        };
        let (_, report) = try_compile_linted(
            &program,
            &trace,
            &machine,
            CompileStrategy::Ursa(Default::default()),
            &opts,
        )
        .unwrap();
        assert!(
            report.has(Code::OptimalityGap),
            "bounds analysis must emit the gap note:\n{report}"
        );
        // Without the flag the quality family stays silent.
        let opts = PipelineOptions {
            lint: LintLevel::Warn,
            ..Default::default()
        };
        let (_, report) = try_compile_linted(
            &program,
            &trace,
            &machine,
            CompileStrategy::Ursa(Default::default()),
            &opts,
        )
        .unwrap();
        assert!(!report.has(Code::OptimalityGap));
    }

    #[test]
    fn whole_program_bounds_are_quality_clean() {
        let p = ursa_ir::parser::parse(LOOP).unwrap();
        let machine = Machine::homogeneous(2, 4);
        let opts = PipelineOptions {
            bounds: Some(0),
            ..Default::default()
        };
        let strategy = CompileStrategy::Ursa(Default::default());
        let sched = ursa_sched::program::try_compile_program(&p, &machine, strategy.clone(), &opts)
            .unwrap();
        let report = lint_program(&p, &sched, &machine, &strategy, &opts);
        assert!(
            !report.has(Code::AvoidableSpill)
                && !report.has(Code::RedundantSpillTraffic)
                && !report.has(Code::DeadBoundaryStore),
            "driver-produced boundary traffic must be justified:\n{report}"
        );
        assert!(report.has(Code::OptimalityGap), "one note per unit");
    }

    #[test]
    fn injected_dead_boundary_store_is_reported() {
        let p = ursa_ir::parser::parse(LOOP).unwrap();
        let machine = Machine::homogeneous(2, 4);
        let opts = PipelineOptions {
            bounds: Some(0),
            ..Default::default()
        };
        let strategy = CompileStrategy::Postpass;
        let mut sched =
            ursa_sched::program::try_compile_program(&p, &machine, strategy.clone(), &opts)
                .unwrap();
        // Sabotage: store a dead cell (v63 exists nowhere) to the
        // boundary area in the entry unit's first word.
        let entry = sched.entry_unit();
        let unit = &mut sched.units[entry];
        let boundary = unit
            .compiled
            .vliw
            .symbols
            .iter()
            .position(|s| s == BOUNDARY_SYMBOL)
            .expect("loop programs compensate through the boundary area");
        unit.compiled.vliw.words[0].push(ursa_sched::vliw::MachineOp {
            op: SlotOp::Instr(Instr::Store {
                mem: ursa_ir::value::MemRef::new(ursa_ir::value::SymbolId(boundary as u32), 63i64),
                src: Operand::Imm(0),
            }),
            fu: (ursa_machine::FuClass::Universal, 1),
        });
        let report = lint_program(&p, &sched, &machine, &strategy, &opts);
        assert!(
            report.has(Code::DeadBoundaryStore),
            "dead boundary store must be reported:\n{report}"
        );
    }

    #[test]
    fn unit_register_live_ins_are_clobbered_live_out() {
        let p = ursa_ir::parser::parse(LOOP).unwrap();
        let machine = Machine::homogeneous(2, 4);
        let opts = PipelineOptions::default();
        let strategy = CompileStrategy::Postpass;
        let mut sched =
            ursa_sched::program::try_compile_program(&p, &machine, strategy.clone(), &opts)
                .unwrap();
        // Sabotage: pretend a unit expects v0 to arrive in a register.
        sched.units[0]
            .compiled
            .vliw
            .live_in
            .push((0, ursa_ir::value::VirtualReg(0)));
        let report = lint_program(&p, &sched, &machine, &strategy, &opts);
        assert!(
            report.has(Code::ClobberedLiveOut),
            "register live-ins must be reported:\n{report}"
        );
    }
}
