//! Driver integration: compile-then-lint in one call.
//!
//! [`lint_compiled`] runs the full diagnostic battery over one finished
//! compilation — the translation validator against the DAG the code was
//! actually generated from (the allocator's transformed DAG when one
//! exists), plus every default lint pass over the original program and
//! DAG. [`try_compile_linted`] wraps `ursa_sched::try_compile_with` and
//! honors [`PipelineOptions::lint`]: at `Allow` no linting runs at all;
//! the caller decides pass/fail from [`LintReport::fails_at`].

use crate::diag::LintReport;
use crate::passes::{default_passes, LintContext};
use crate::validator::validate_translation;
use ursa_ir::ddg::DependenceDag;
use ursa_ir::program::Program;
use ursa_ir::trace::Trace;
use ursa_machine::Machine;
use ursa_sched::{
    try_compile_with, CompileError, CompileStrategy, Compiled, LintLevel, PipelineOptions,
};

/// Runs the translation validator and all default lint passes over one
/// finished compilation.
///
/// The validator's reference DAG is the allocator's *transformed* DAG
/// when the strategy produced one (its spill nodes and sequence edges
/// are part of the contract being checked) and the freshly built
/// dependence DAG otherwise. Prepass code is pre-colored before its DAG
/// is built, so its live-in table cannot be mapped back to original
/// values — the validator is skipped for it (the lint passes still
/// run).
pub fn lint_compiled(
    program: &Program,
    trace: &Trace,
    machine: &Machine,
    strategy: &CompileStrategy,
    compiled: &Compiled,
) -> LintReport {
    let mut report = LintReport::new();
    let original = DependenceDag::build(program, trace);
    if !matches!(strategy, CompileStrategy::Prepass) {
        let reference = match &compiled.outcome {
            Some(o) => &o.ddg,
            None => &original,
        };
        let result = validate_translation(reference, &compiled.vliw, machine);
        report.extend(result.diagnostics);
    }
    let cx = LintContext {
        program,
        trace,
        machine,
        ddg: &original,
        compiled: Some(compiled),
    };
    for pass in default_passes() {
        pass.run(&cx, &mut report);
    }
    report
}

/// Compiles `trace` and, unless `opts.lint` is [`LintLevel::Allow`],
/// lints the result. The report is returned alongside the code; whether
/// it *fails* the build under the configured level is the caller's call
/// via [`LintReport::fails_at`] (so drivers can still print and emit
/// the code).
///
/// # Errors
///
/// Exactly those of [`try_compile_with`] — lint findings are not
/// compile errors.
pub fn try_compile_linted(
    program: &Program,
    trace: &Trace,
    machine: &Machine,
    strategy: CompileStrategy,
    opts: &PipelineOptions,
) -> Result<(Compiled, LintReport), CompileError> {
    let compiled = try_compile_with(program, trace, machine, strategy.clone(), opts)?;
    let report = if opts.lint == LintLevel::Allow {
        LintReport::new()
    } else {
        lint_compiled(program, trace, machine, &strategy, &compiled)
    };
    Ok((compiled, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ursa_machine::Machine;
    use ursa_sched::CompileStrategy;
    use ursa_workloads::paper::figure2_block;

    #[test]
    fn linted_compile_accepts_figure2_on_every_strategy() {
        let program = figure2_block();
        let trace = Trace::single(0);
        // Tight machine so URSA actually transforms (spills + sequence
        // edges) and postpass actually patches.
        let machine = Machine::homogeneous(2, 3);
        let strategies = [
            CompileStrategy::Ursa(Default::default()),
            CompileStrategy::Postpass,
            CompileStrategy::Prepass,
            CompileStrategy::GoodmanHsu,
        ];
        for strategy in strategies {
            let name = strategy.name();
            let opts = PipelineOptions {
                lint: LintLevel::Deny,
                ..Default::default()
            };
            let (_, report) = try_compile_linted(&program, &trace, &machine, strategy, &opts)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                report.errors().next().is_none(),
                "{name} produced validator errors:\n{report}"
            );
        }
    }

    #[test]
    fn allow_level_skips_linting() {
        let program = figure2_block();
        let trace = Trace::single(0);
        let machine = Machine::homogeneous(2, 3);
        let opts = PipelineOptions::default(); // lint: Allow
        let (_, report) =
            try_compile_linted(&program, &trace, &machine, CompileStrategy::Postpass, &opts)
                .unwrap();
        assert!(report.is_clean());
    }
}
