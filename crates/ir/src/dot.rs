//! Graphviz (DOT) export of dependence DAGs.
//!
//! Handy for inspecting what URSA's transformations did to a trace:
//! data edges are solid, memory edges dashed, control edges dotted, and
//! URSA's added sequence edges bold red — the visual counterpart of the
//! paper's Figure 3.

use crate::ddg::{DependenceDag, NodeKind};
use std::collections::HashMap;
use std::fmt::Write as _;
use ursa_graph::dag::{EdgeKind, NodeId};

/// A visual annotation for [`to_dot_annotated`]: fill `node` with
/// `color` and append `note` to its label (one line per note).
#[derive(Clone, Debug)]
pub struct DotAnnotation {
    /// The node decorated.
    pub node: NodeId,
    /// Graphviz fill color, e.g. `"lightcoral"`.
    pub color: String,
    /// Short human-readable reason, e.g. a lint code.
    pub note: String,
}

/// Renders `ddg` as a DOT digraph.
///
/// # Examples
///
/// ```
/// use ursa_ir::{ddg::DependenceDag, dot::to_dot, parser::parse};
///
/// let p = parse("v0 = const 1\nstore a[0], v0\n").unwrap();
/// let dag = DependenceDag::from_entry_block(&p);
/// let dot = to_dot(&dag, "example");
/// assert!(dot.starts_with("digraph example {"));
/// assert!(dot.contains("store"));
/// ```
pub fn to_dot(ddg: &DependenceDag, name: &str) -> String {
    to_dot_annotated(ddg, name, &[])
}

/// Renders `ddg` as a DOT digraph with nodes decorated by
/// `annotations` — filled with the given color and labeled with the
/// notes. Used by `ursac --dot-annotated` to highlight excessive chain
/// sets and lint findings; several annotations may target one node (the
/// first color wins, all notes are shown).
pub fn to_dot_annotated(ddg: &DependenceDag, name: &str, annotations: &[DotAnnotation]) -> String {
    let mut decor: HashMap<u32, (String, Vec<String>)> = HashMap::new();
    for a in annotations {
        decor
            .entry(a.node.0)
            .or_insert_with(|| (a.color.clone(), Vec::new()))
            .1
            .push(a.note.clone());
    }
    let mut out = String::new();
    writeln!(out, "digraph {name} {{").unwrap();
    writeln!(out, "  rankdir=TB;").unwrap();
    writeln!(out, "  node [shape=box, fontname=\"monospace\"];").unwrap();
    for n in ddg.dag().nodes() {
        let (mut label, style) = match ddg.kind(n) {
            NodeKind::Entry => ("entry".to_string(), "shape=circle"),
            NodeKind::Exit => ("exit".to_string(), "shape=doublecircle"),
            NodeKind::LiveIn { reg } => (format!("live-in {reg}"), "style=dashed"),
            NodeKind::Op { instr, .. } => (instr.to_string(), "style=solid"),
            NodeKind::Branch { cond, .. } => (format!("br {cond}"), "shape=diamond"),
        };
        let mut style = style.to_string();
        if let Some((color, notes)) = decor.get(&n.0) {
            for note in notes {
                label.push_str("\\n");
                label.push_str(note);
            }
            style = format!("style=filled, fillcolor=\"{color}\"");
        }
        writeln!(
            out,
            "  n{} [label=\"{}\", {}];",
            n.0,
            label.replace('"', "'"),
            style
        )
        .unwrap();
    }
    for e in ddg.dag().edges() {
        let attrs = match e.kind {
            EdgeKind::Data => "color=black",
            EdgeKind::Memory => "style=dashed, color=blue",
            EdgeKind::Control => "style=dotted, color=gray",
            EdgeKind::Anti => "style=dashed, color=orange",
            EdgeKind::Sequence => "style=bold, color=red",
        };
        writeln!(out, "  n{} -> n{} [{}];", e.from.0, e.to.0, attrs).unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn dot_contains_every_node_and_edge_kind() {
        let p = parse(
            "v0 = load a[0]\n\
             v1 = mul v0, 2\n\
             store a[0], v1\n\
             store a[0], 5\n",
        )
        .unwrap();
        let mut ddg = DependenceDag::from_entry_block(&p);
        // Add a sequence edge so the red style appears.
        let a = ddg.dag().node(2);
        let b = ddg.dag().node(5);
        let _ = (a, b);
        ddg.add_sequence_edge(ddg.dag().node(3), ddg.dag().node(5));
        let dot = to_dot(&ddg, "t");
        assert!(dot.contains("digraph t {"));
        assert!(dot.contains("entry"));
        assert!(dot.contains("exit"));
        assert!(dot.contains("color=red"), "sequence edge styled");
        assert!(
            dot.contains("style=dashed, color=blue"),
            "memory edge styled"
        );
        let node_lines = dot.lines().filter(|l| l.contains("[label=")).count();
        assert_eq!(node_lines, ddg.dag().node_count());
    }

    #[test]
    fn annotations_fill_and_note_nodes() {
        let p = parse("v0 = const 1\nv1 = add v0, 2\nstore a[0], v1\n").unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let ann = vec![
            DotAnnotation {
                node: ddg.dag().node(2),
                color: "lightcoral".into(),
                note: "U0101 dead-value".into(),
            },
            DotAnnotation {
                node: ddg.dag().node(2),
                color: "yellow".into(),
                note: "excessive registers".into(),
            },
        ];
        let dot = to_dot_annotated(&ddg, "a", &ann);
        assert!(dot.contains("fillcolor=\"lightcoral\""), "{dot}");
        assert!(!dot.contains("yellow"), "first color wins");
        assert!(dot.contains("U0101 dead-value"));
        assert!(dot.contains("excessive registers"));
        // Plain export is the zero-annotation case.
        assert_eq!(to_dot(&ddg, "a"), to_dot_annotated(&ddg, "a", &[]));
    }

    #[test]
    fn quotes_are_escaped() {
        let p = parse("v0 = const 1\n").unwrap();
        let ddg = DependenceDag::from_entry_block(&p);
        let dot = to_dot(&ddg, "q");
        for line in dot.lines().filter(|l| l.contains("label")) {
            assert_eq!(line.matches('"').count() % 2, 0, "balanced quotes: {line}");
        }
    }
}
