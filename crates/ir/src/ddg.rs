//! Dependence DAG construction for traces (paper §2).
//!
//! The DAG has a synthetic single root (`Entry`) and single leaf
//! (`Exit`), making the whole graph a hammock. Edges record their
//! provenance:
//!
//! * `Data` — def → use of a value (after renaming, every value has a
//!   unique defining node, so anti/output register dependences vanish:
//!   URSA allocates *values*, not reused register names).
//! * `Memory` — ordering between possibly-aliasing memory operations.
//! * `Control` — sequencing that precludes illegal code motion across
//!   branches, and the Entry/Exit anchoring edges.
//! * `Sequence` — edges URSA's transformations add later.
//!
//! Values that are live on an off-trace edge of a branch gain a
//! `Control` edge to that branch (the value must exist if the branch
//! leaves the trace), and values live out of the trace are marked so the
//! exit node kills them (paper §3.2's "killed by the last use").

use crate::instr::{Instr, Terminator};
use crate::program::Program;
use crate::trace::{liveness, Trace};
use crate::value::{MemRef, Operand, SymbolId, VirtualReg};
use std::collections::HashMap;
use ursa_graph::dag::{Dag, EdgeKind, NodeId};

/// What a DAG node represents.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// The synthetic single root.
    Entry,
    /// The synthetic single leaf.
    Exit,
    /// A value that is live into the trace; occupies a register but no
    /// functional unit.
    LiveIn {
        /// The (original) register carrying the value.
        reg: VirtualReg,
    },
    /// A real instruction (possibly rewritten by renaming or spilling).
    Op {
        /// The instruction, with renamed registers.
        instr: Instr,
        /// Index of the source block within the program, or `usize::MAX`
        /// for instructions synthesized by transformations (spill code).
        block: usize,
    },
    /// An on-trace conditional branch.
    Branch {
        /// Condition operand (renamed).
        cond: Operand,
        /// Index of the source block within the program.
        block: usize,
        /// Polarity of the trace exit: execution leaves the trace when
        /// `(cond != 0) == exit_on_true`. A branch whose on-trace
        /// successor is the `else` target exits on a *true* condition;
        /// one whose on-trace successor is the `then` target exits on
        /// *false*.
        exit_on_true: bool,
    },
}

impl NodeKind {
    /// `true` for nodes that occupy a functional unit when executed.
    pub fn needs_fu(&self) -> bool {
        matches!(self, NodeKind::Op { .. } | NodeKind::Branch { .. })
    }

    /// `true` for the synthetic entry/exit anchors.
    pub fn is_synthetic(&self) -> bool {
        matches!(self, NodeKind::Entry | NodeKind::Exit)
    }
}

/// Options controlling dependence construction.
#[derive(Clone, Copy, Debug)]
pub struct DdgOptions {
    /// Allow loads to move above branches (speculative execution).
    /// When `false`, loads are pinned to branches like stores.
    pub speculative_loads: bool,
    /// Rename register redefinitions so every value has a unique
    /// producer (URSA's model; the default). When `false`, redefining a
    /// register adds [`ursa_graph::dag::EdgeKind::Anti`] anti/output
    /// edges instead — modeling code that a prepass register allocator
    /// has already committed to a finite register file.
    pub rename: bool,
    /// Materialize the trace-final conditional branch as a DAG node
    /// instead of subsuming it under `Exit`. The whole-program driver
    /// needs the final branch executed so the runtime can pick the
    /// successor unit; single-trace callers keep the default (`false`),
    /// where falling off the end of the trace is the only exit.
    pub materialize_final_branch: bool,
}

impl Default for DdgOptions {
    fn default() -> Self {
        DdgOptions {
            speculative_loads: true,
            rename: true,
            materialize_final_branch: false,
        }
    }
}

/// The store/load pair created by [`DependenceDag::insert_spill`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpillPair {
    /// The inserted store ("spill") node.
    pub store: NodeId,
    /// The inserted load ("reload") node.
    pub load: NodeId,
}

/// A dependence DAG of one trace, with value and liveness bookkeeping.
///
/// # Examples
///
/// ```
/// use ursa_ir::ddg::DependenceDag;
/// use ursa_ir::parser::parse;
///
/// let p = parse("v0 = load a[0]\nv1 = mul v0, 2\nstore a[0], v1\n").unwrap();
/// let ddg = DependenceDag::from_entry_block(&p);
/// // 3 instructions + entry + exit.
/// assert_eq!(ddg.dag().node_count(), 5);
/// assert_eq!(ddg.fu_nodes().count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct DependenceDag {
    dag: Dag,
    kinds: Vec<NodeKind>,
    entry: NodeId,
    exit: NodeId,
    /// Register defined by each node (LiveIn nodes "define" their value).
    defs: Vec<Option<VirtualReg>>,
    /// Nodes that read each node's value (kept in sync by spilling).
    use_sites: Vec<Vec<NodeId>>,
    /// Whether each node's value survives the trace.
    live_out: Vec<bool>,
    symbols: Vec<String>,
    next_vreg: u32,
    spill_sym: Option<SymbolId>,
    next_spill_slot: i64,
}

impl DependenceDag {
    /// Builds the DAG of `trace` within `program` with default options.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or references out-of-range blocks.
    pub fn build(program: &Program, trace: &Trace) -> Self {
        Self::build_with(program, trace, DdgOptions::default())
    }

    /// Builds the DAG of the entry block alone — the common case for
    /// straight-line kernels.
    pub fn from_entry_block(program: &Program) -> Self {
        Self::build(program, &Trace::entry())
    }

    /// Builds the DAG of `trace` with explicit options.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or references out-of-range blocks.
    pub fn build_with(program: &Program, trace: &Trace, options: DdgOptions) -> Self {
        assert!(!trace.is_empty(), "cannot build a DAG of an empty trace");
        for &b in &trace.blocks {
            assert!(b < program.blocks.len(), "trace block {b} out of range");
        }
        Builder::new(program, trace, options).run()
    }

    /// The underlying graph.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The synthetic entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The synthetic exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// What node `n` represents.
    pub fn kind(&self, n: NodeId) -> &NodeKind {
        &self.kinds[n.index()]
    }

    /// The instruction carried by node `n`, if it is an [`NodeKind::Op`].
    pub fn instr(&self, n: NodeId) -> Option<&Instr> {
        match &self.kinds[n.index()] {
            NodeKind::Op { instr, .. } => Some(instr),
            _ => None,
        }
    }

    /// The register whose value node `n` produces, if any.
    pub fn value_def(&self, n: NodeId) -> Option<VirtualReg> {
        self.defs[n.index()]
    }

    /// The nodes that read the value produced by `n` (real uses plus the
    /// branches that need the value live for an off-trace exit).
    pub fn uses_of(&self, n: NodeId) -> &[NodeId] {
        &self.use_sites[n.index()]
    }

    /// `true` if `n`'s value is needed after the trace, so the exit node
    /// acts as its final kill.
    pub fn is_live_out(&self, n: NodeId) -> bool {
        self.live_out[n.index()]
    }

    /// The nodes among which the kill of `n`'s value must be chosen
    /// (paper §3.2): its uses, plus the exit node when the value is
    /// live-out or entirely unused.
    pub fn kill_candidates(&self, n: NodeId) -> Vec<NodeId> {
        let mut c = self.use_sites[n.index()].clone();
        if self.live_out[n.index()] || c.is_empty() {
            c.push(self.exit);
        }
        c
    }

    /// Iterates over nodes that occupy a functional unit.
    pub fn fu_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dag
            .nodes()
            .filter(move |&n| self.kinds[n.index()].needs_fu())
    }

    /// Iterates over nodes that produce a register value (including
    /// live-in pseudo-nodes).
    pub fn value_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dag
            .nodes()
            .filter(move |&n| self.defs[n.index()].is_some())
    }

    /// Symbol names referenced by this DAG (a copy of the program's
    /// table, possibly extended with the spill area).
    pub fn symbols(&self) -> &[String] {
        &self.symbols
    }

    /// Name of a symbol.
    pub fn symbol_name(&self, sym: SymbolId) -> &str {
        &self.symbols[sym.index()]
    }

    /// One past the largest virtual register index in use.
    pub fn num_vregs(&self) -> u32 {
        self.next_vreg
    }

    /// Adds a URSA sequence edge. Returns `false` if the edge (of this
    /// kind) already existed. The caller is responsible for checking
    /// acyclicity first (see [`ursa_graph::reach::Reachability`]).
    pub fn add_sequence_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        self.dag.add_edge(from, to, EdgeKind::Sequence)
    }

    /// Removes a URSA sequence edge, if present. Only [`EdgeKind::Sequence`]
    /// edges may be removed — they carry no program semantics, so deleting
    /// one merely re-admits schedules. Returns whether the edge existed.
    pub fn remove_sequence_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        self.dag.remove_edge(from, to, EdgeKind::Sequence)
    }

    /// Inserts spill code for the value of `value_node` (paper §4.3):
    /// a store of the value right after its definition and a reload that
    /// the listed `reload_uses` are rewired to read.
    ///
    /// The caller adds the sequence edges that place the store before
    /// SD1's roots and the reload after SD1's leaves; this method only
    /// maintains data/memory correctness (def → store → load → uses).
    ///
    /// # Panics
    ///
    /// Panics if `value_node` defines no value, if any of `reload_uses`
    /// is not currently a use of it, or if `reload_uses` is empty.
    pub fn insert_spill(&mut self, value_node: NodeId, reload_uses: &[NodeId]) -> SpillPair {
        let reg = self.defs[value_node.index()]
            .unwrap_or_else(|| panic!("{value_node} defines no value to spill"));
        assert!(!reload_uses.is_empty(), "spill with no reloaded uses");
        for u in reload_uses {
            assert!(
                self.use_sites[value_node.index()].contains(u),
                "{u} is not a use of {value_node}"
            );
        }
        let slot = self.fresh_spill_slot();
        let spill_sym = self
            .spill_sym
            .expect("fresh_spill_slot interned the symbol");
        let mem = MemRef::new(spill_sym, slot);

        // Store node: reads the value.
        let store = self.push_node(
            NodeKind::Op {
                instr: Instr::Store {
                    mem,
                    src: Operand::Reg(reg),
                },
                block: usize::MAX,
            },
            None,
        );
        self.dag.add_edge(value_node, store, EdgeKind::Data);
        self.use_sites[value_node.index()].push(store);

        // Reload node: defines a fresh register.
        let reload_reg = self.fresh_reg();
        let load = self.push_node(
            NodeKind::Op {
                instr: Instr::Load {
                    dst: reload_reg,
                    mem,
                },
                block: usize::MAX,
            },
            Some(reload_reg),
        );
        // The reload truly depends on the store through memory.
        self.dag.add_edge(store, load, EdgeKind::Memory);

        // Rewire the chosen uses.
        for &u in reload_uses {
            let removed = self.dag.remove_edge(value_node, u, EdgeKind::Data)
                | self.dag.remove_edge(value_node, u, EdgeKind::Control);
            debug_assert!(removed, "use {u} had an edge from {value_node}");
            self.dag.add_edge(load, u, EdgeKind::Data);
            let sites = &mut self.use_sites[value_node.index()];
            sites.retain(|&s| s != u);
            self.use_sites[load.index()].push(u);
            match &mut self.kinds[u.index()] {
                NodeKind::Op { instr, .. } => instr.replace_uses(reg, reload_reg),
                NodeKind::Branch { cond, .. } => {
                    if *cond == Operand::Reg(reg) {
                        *cond = Operand::Reg(reload_reg);
                    }
                }
                other => panic!("cannot rewire use in {other:?}"),
            }
        }
        // A live-out value is now delivered by the reload instead.
        if self.live_out[value_node.index()] {
            self.live_out[value_node.index()] = false;
            self.live_out[load.index()] = true;
        }
        // Keep Entry/Exit anchoring intact for the new nodes.
        self.reanchor(store);
        self.reanchor(load);
        SpillPair { store, load }
    }

    fn reanchor(&mut self, n: NodeId) {
        if self.dag.preds(n).next().is_none() {
            self.dag.add_edge(self.entry, n, EdgeKind::Control);
        }
        if self.dag.succs(n).next().is_none() {
            self.dag.add_edge(n, self.exit, EdgeKind::Control);
        }
        // Exit must stay the single leaf.
        if n != self.exit && self.dag.succs(n).next().is_none() {
            self.dag.add_edge(n, self.exit, EdgeKind::Control);
        }
    }

    fn push_node(&mut self, kind: NodeKind, def: Option<VirtualReg>) -> NodeId {
        let n = self.dag.add_node();
        self.kinds.push(kind);
        self.defs.push(def);
        self.use_sites.push(Vec::new());
        self.live_out.push(false);
        n
    }

    fn fresh_reg(&mut self) -> VirtualReg {
        let r = VirtualReg(self.next_vreg);
        self.next_vreg += 1;
        r
    }

    fn fresh_spill_slot(&mut self) -> i64 {
        if self.spill_sym.is_none() {
            let id = SymbolId(self.symbols.len() as u32);
            self.symbols.push("__spill".to_string());
            self.spill_sym = Some(id);
        }
        let slot = self.next_spill_slot;
        self.next_spill_slot += 1;
        slot
    }

    /// A short human-readable description of node `n` for diagnostics.
    pub fn describe(&self, n: NodeId) -> String {
        match &self.kinds[n.index()] {
            NodeKind::Entry => "entry".to_string(),
            NodeKind::Exit => "exit".to_string(),
            NodeKind::LiveIn { reg } => format!("livein {reg}"),
            NodeKind::Op { instr, .. } => instr.to_string(),
            NodeKind::Branch { cond, .. } => format!("br {cond}"),
        }
    }
}

struct Builder<'a> {
    program: &'a Program,
    trace: &'a Trace,
    options: DdgOptions,
    ddg: DependenceDag,
    /// Original register → (defining node, renamed register).
    current: HashMap<VirtualReg, (NodeId, VirtualReg)>,
    /// Readers of the current value of each original register (tracked
    /// only in non-renaming mode, for anti dependences).
    readers: HashMap<VirtualReg, Vec<NodeId>>,
    /// Loads/stores seen so far, with their refs (for memory edges).
    mem_reads: Vec<(NodeId, MemRef)>,
    mem_writes: Vec<(NodeId, MemRef)>,
    /// Most recent branch node, and pinned ops since it.
    last_branch: Option<NodeId>,
    pinned_since_branch: Vec<NodeId>,
}

impl<'a> Builder<'a> {
    fn new(program: &'a Program, trace: &'a Trace, options: DdgOptions) -> Self {
        let dag = Dag::new(2);
        let entry = dag.node(0);
        let exit = dag.node(1);
        let ddg = DependenceDag {
            dag,
            kinds: vec![NodeKind::Entry, NodeKind::Exit],
            entry,
            exit,
            defs: vec![None, None],
            use_sites: vec![Vec::new(), Vec::new()],
            live_out: vec![false, false],
            symbols: program.symbols.clone(),
            next_vreg: program.num_vregs,
            spill_sym: None,
            next_spill_slot: 0,
        };
        Builder {
            program,
            trace,
            options,
            ddg,
            current: HashMap::new(),
            readers: HashMap::new(),
            mem_reads: Vec::new(),
            mem_writes: Vec::new(),
            last_branch: None,
            pinned_since_branch: Vec::new(),
        }
    }

    fn run(mut self) -> DependenceDag {
        let lv = liveness(self.program);
        for (ti, &b) in self.trace.blocks.iter().enumerate() {
            let block = &self.program.blocks[b];
            for instr in &block.instrs {
                self.add_instr(instr.clone(), b);
            }
            // On-trace conditional branches become nodes; the final
            // block's control transfer is subsumed by Exit unless the
            // caller asked for it (whole-program compilation). A branch
            // with identical targets is really a jump and needs no node.
            let on_trace_next = self.trace.blocks.get(ti + 1).copied();
            if let Terminator::Branch {
                cond,
                then_block,
                else_block,
            } = block.term
            {
                if then_block != else_block
                    && (on_trace_next.is_some() || self.options.materialize_final_branch)
                {
                    self.add_branch(cond, b, then_block, else_block, on_trace_next, &lv);
                }
            }
        }
        self.mark_trace_live_out(&lv);
        self.anchor();
        self.ddg
    }

    fn add_instr(&mut self, mut instr: Instr, block: usize) {
        // Rewrite uses to renamed registers, creating live-in nodes for
        // values defined before the trace.
        for orig in instr.uses() {
            let (def_node, renamed) = self.mapping_for(orig);
            if renamed != orig {
                instr.replace_uses(orig, renamed);
            }
            let _ = def_node; // edge added below, after node exists
        }
        // Rename the definition if the original register was already
        // defined on the trace (unless anti-dependence mode is on).
        let orig_def = instr.def();
        let renamed_def = orig_def.map(|r| {
            if self.options.rename && self.current.contains_key(&r) {
                let fresh = self.ddg.fresh_reg();
                instr.replace_def(fresh);
                fresh
            } else {
                r
            }
        });

        let reads: Vec<VirtualReg> = instr.uses();
        let mem_read = instr.mem_read();
        let mem_write = instr.mem_write();
        let is_store = instr.has_side_effect();
        let n = self
            .ddg
            .push_node(NodeKind::Op { instr, block }, renamed_def);

        // Data edges from each read value's definition.
        for r in &reads {
            let def_node = self.def_node_of(*r);
            self.ddg.dag.add_edge(def_node, n, EdgeKind::Data);
            if !self.ddg.use_sites[def_node.index()].contains(&n) {
                self.ddg.use_sites[def_node.index()].push(n);
            }
        }
        if !self.options.rename {
            for r in &reads {
                self.readers.entry(*r).or_default().push(n);
            }
            // Anti/output dependences: the previous value of this
            // register must be fully consumed before the redefinition.
            if let Some(d) = orig_def {
                if let Some(&(prev_def, _)) = self.current.get(&d) {
                    self.ddg.dag.add_edge(prev_def, n, EdgeKind::Anti);
                    for reader in self.readers.remove(&d).unwrap_or_default() {
                        if reader != n {
                            self.ddg.dag.add_edge(reader, n, EdgeKind::Anti);
                        }
                    }
                }
            }
        }
        // Memory edges.
        if let Some(w) = mem_write {
            for &(m, ref r) in &self.mem_reads {
                if r.may_alias(&w) {
                    self.ddg.dag.add_edge(m, n, EdgeKind::Memory);
                }
            }
            for &(m, ref r) in &self.mem_writes {
                if r.may_alias(&w) {
                    self.ddg.dag.add_edge(m, n, EdgeKind::Memory);
                }
            }
            self.mem_writes.push((n, w));
        }
        if let Some(r) = mem_read {
            for &(m, ref w) in &self.mem_writes {
                if w.may_alias(&r) {
                    self.ddg.dag.add_edge(m, n, EdgeKind::Memory);
                }
            }
            self.mem_reads.push((n, r));
        }
        // Branch pinning.
        let pinned = is_store || (mem_read.is_some() && !self.options.speculative_loads);
        if pinned {
            if let Some(b) = self.last_branch {
                self.ddg.dag.add_edge(b, n, EdgeKind::Control);
            }
            self.pinned_since_branch.push(n);
        }
        // Record the new definition.
        if let (Some(orig), Some(renamed)) = (orig_def, renamed_def) {
            self.current.insert(orig, (n, renamed));
        }
    }

    fn add_branch(
        &mut self,
        cond: Operand,
        block: usize,
        then_block: usize,
        else_block: usize,
        on_trace_next: Option<usize>,
        lv: &crate::trace::Liveness,
    ) {
        let mut cond = cond;
        if let Operand::Reg(orig) = cond {
            let (_, renamed) = self.mapping_for(orig);
            cond = Operand::Reg(renamed);
        }
        // Staying on trace through the `else` target means a true
        // condition leaves the trace; a materialized final branch
        // (no on-trace successor) falls through to `then_block` and
        // exits to `else_block`, matching sequential semantics.
        let exit_on_true = on_trace_next == Some(else_block);
        let n = self.ddg.push_node(
            NodeKind::Branch {
                cond,
                block,
                exit_on_true,
            },
            None,
        );
        if let Operand::Reg(r) = cond {
            let def_node = self.def_node_of(r);
            self.ddg.dag.add_edge(def_node, n, EdgeKind::Data);
            if !self.ddg.use_sites[def_node.index()].contains(&n) {
                self.ddg.use_sites[def_node.index()].push(n);
            }
            if !self.options.rename {
                self.readers.entry(r).or_default().push(n);
            }
        }
        // Branches are ordered after every pinned op since the previous
        // branch, and after that branch itself.
        if let Some(b) = self.last_branch {
            self.ddg.dag.add_edge(b, n, EdgeKind::Control);
        }
        for p in std::mem::take(&mut self.pinned_since_branch) {
            self.ddg.dag.add_edge(p, n, EdgeKind::Control);
        }
        self.last_branch = Some(n);

        // Any value live on the off-trace edge must be computed before
        // this branch; the branch is then a kill candidate for it.
        for off in [then_block, else_block] {
            if Some(off) == on_trace_next {
                continue;
            }
            for (orig, &(def_node, _)) in &self.current {
                if lv.live_into(off, *orig) {
                    self.ddg.dag.add_edge(def_node, n, EdgeKind::Control);
                    if !self.ddg.use_sites[def_node.index()].contains(&n) {
                        self.ddg.use_sites[def_node.index()].push(n);
                    }
                }
            }
        }
    }

    /// The renamed mapping for an original register, creating a live-in
    /// pseudo-node on first touch of a value defined before the trace.
    fn mapping_for(&mut self, orig: VirtualReg) -> (NodeId, VirtualReg) {
        if let Some(&m) = self.current.get(&orig) {
            return m;
        }
        let n = self
            .ddg
            .push_node(NodeKind::LiveIn { reg: orig }, Some(orig));
        self.current.insert(orig, (n, orig));
        (n, orig)
    }

    fn def_node_of(&self, renamed: VirtualReg) -> NodeId {
        self.current
            .values()
            .find(|&&(_, r)| r == renamed)
            .map(|&(n, _)| n)
            .expect("renamed register has a defining node")
    }

    fn mark_trace_live_out(&mut self, lv: &crate::trace::Liveness) {
        let last = *self.trace.blocks.last().expect("nonempty trace");
        for (orig, &(def_node, _)) in &self.current {
            if lv.live_out_of(last, *orig) {
                self.ddg.live_out[def_node.index()] = true;
            }
        }
        // Unused values are also killed at exit; kill_candidates handles
        // that dynamically, no flag needed.
    }

    fn anchor(&mut self) {
        let entry = self.ddg.entry;
        let exit = self.ddg.exit;
        let nodes: Vec<NodeId> = self.ddg.dag.nodes().collect();
        for n in nodes {
            if n == entry || n == exit {
                continue;
            }
            if self.ddg.dag.preds(n).next().is_none() {
                self.ddg.dag.add_edge(entry, n, EdgeKind::Control);
            }
            if self.ddg.dag.succs(n).next().is_none() {
                self.ddg.dag.add_edge(n, exit, EdgeKind::Control);
            }
        }
        // Degenerate single-instruction traces still need entry→exit
        // connectivity for hammock analysis.
        if self.ddg.dag.succs(entry).next().is_none() {
            self.ddg.dag.add_edge(entry, exit, EdgeKind::Control);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use ursa_graph::reach::Reachability;

    fn ddg_of(src: &str) -> DependenceDag {
        let p = parse(src).unwrap();
        DependenceDag::from_entry_block(&p)
    }

    #[test]
    fn straight_line_data_edges() {
        let d = ddg_of("v0 = load a[0]\nv1 = mul v0, 2\nstore a[0], v1\n");
        assert!(d.dag().is_acyclic());
        // entry, exit + 3 ops.
        assert_eq!(d.dag().node_count(), 5);
        let load = d.dag().node(2);
        let mul = d.dag().node(3);
        let store = d.dag().node(4);
        assert!(d.dag().has_edge_kind(load, mul, EdgeKind::Data));
        assert!(d.dag().has_edge_kind(mul, store, EdgeKind::Data));
        assert_eq!(d.uses_of(load), &[mul]);
        assert_eq!(d.value_def(load), Some(VirtualReg(0)));
        assert_eq!(d.value_def(store), None);
    }

    #[test]
    fn single_root_single_leaf() {
        let d = ddg_of("v0 = const 1\nv1 = const 2\nv2 = add v0, v1\n");
        assert_eq!(d.dag().roots(), vec![d.entry()]);
        assert_eq!(d.dag().leaves(), vec![d.exit()]);
    }

    #[test]
    fn renaming_removes_output_dependences() {
        // v0 redefined: the two definitions become independent values.
        let d = ddg_of("v0 = const 1\nstore a[0], v0\nv0 = const 2\nstore a[1], v0\n");
        let first = d.dag().node(2);
        let second = d.dag().node(4);
        assert_eq!(d.value_def(first), Some(VirtualReg(0)));
        let renamed = d.value_def(second).unwrap();
        assert_ne!(renamed, VirtualReg(0), "second def renamed");
        let r = Reachability::of(d.dag());
        assert!(r.independent(first, second));
    }

    #[test]
    fn aliasing_stores_are_ordered() {
        let d = ddg_of("store a[v9], 1\nstore a[v9], 2\n");
        // Nodes: entry, exit, livein v9, store1, store2.
        let s1 = d.dag().node(3);
        let s2 = d.dag().node(4);
        assert!(d.dag().has_edge_kind(s1, s2, EdgeKind::Memory));
    }

    #[test]
    fn distinct_constant_indices_not_ordered() {
        let d = ddg_of("store a[0], 1\nstore a[1], 2\n");
        let s1 = d.dag().node(2);
        let s2 = d.dag().node(3);
        assert!(!d.dag().has_edge(s1, s2));
        let r = Reachability::of(d.dag());
        assert!(r.independent(s1, s2));
    }

    #[test]
    fn load_after_aliasing_store_is_ordered() {
        let d = ddg_of("store a[0], 7\nv0 = load a[0]\nstore b[0], v0\n");
        let st = d.dag().node(2);
        let ld = d.dag().node(3);
        assert!(d.dag().has_edge_kind(st, ld, EdgeKind::Memory));
    }

    #[test]
    fn live_in_values_get_pseudo_nodes() {
        let d = ddg_of("v1 = add v0, 1\nstore a[0], v1\n");
        let livein = d.dag().node(2);
        assert_eq!(d.kind(livein), &NodeKind::LiveIn { reg: VirtualReg(0) });
        assert_eq!(d.value_def(livein), Some(VirtualReg(0)));
        assert!(!d.kind(livein).needs_fu());
        assert_eq!(d.fu_nodes().count(), 2);
    }

    #[test]
    fn unused_value_killed_at_exit() {
        let d = ddg_of("v0 = const 1\n");
        let n = d.dag().node(2);
        assert!(d.uses_of(n).is_empty());
        assert_eq!(d.kill_candidates(n), vec![d.exit()]);
    }

    #[test]
    fn multi_block_trace_branch_node_and_off_trace_liveness() {
        let p = parse(
            "block entry:\n\
             v0 = load a[0]\n\
             v1 = add v0, 1\n\
             br v1, hot, cold\n\
             block hot @ 0.9:\n\
             store a[1], v1\n\
             ret\n\
             block cold @ 0.1:\n\
             store a[2], v0\n\
             ret\n",
        )
        .unwrap();
        let trace = Trace { blocks: vec![0, 1] };
        let d = DependenceDag::build(&p, &trace);
        // Find the branch node.
        let branch = d
            .dag()
            .nodes()
            .find(|&n| matches!(d.kind(n), NodeKind::Branch { .. }))
            .expect("branch node exists");
        // v0 is live into `cold` (off-trace), so its def is control-tied
        // to the branch and the branch is a kill candidate of v0.
        let v0_def = d
            .dag()
            .nodes()
            .find(|&n| d.value_def(n) == Some(VirtualReg(0)))
            .unwrap();
        assert!(d.dag().has_edge(v0_def, branch));
        assert!(d.uses_of(v0_def).contains(&branch));
        // The on-trace store is pinned after the branch.
        let store = d
            .dag()
            .nodes()
            .find(|&n| d.instr(n).is_some_and(Instr::has_side_effect))
            .unwrap();
        assert!(d.dag().has_edge_kind(branch, store, EdgeKind::Control));
    }

    #[test]
    fn speculative_loads_float_above_branches() {
        let p = parse(
            "block entry:\n\
             v0 = const 1\n\
             br v0, next, other\n\
             block next:\n\
             v1 = load a[0]\n\
             store b[0], v1\n\
             ret\n\
             block other:\n\
             ret\n",
        )
        .unwrap();
        let trace = Trace { blocks: vec![0, 1] };
        let spec = DependenceDag::build(&p, &trace);
        let branch = spec
            .dag()
            .nodes()
            .find(|&n| matches!(spec.kind(n), NodeKind::Branch { .. }))
            .unwrap();
        let load = spec
            .dag()
            .nodes()
            .find(|&n| spec.instr(n).is_some_and(|i| i.mem_read().is_some()))
            .unwrap();
        let r = Reachability::of(spec.dag());
        assert!(
            r.independent(branch, load),
            "speculative load may move above the branch"
        );

        let pinned = DependenceDag::build_with(
            &p,
            &trace,
            DdgOptions {
                speculative_loads: false,
                ..DdgOptions::default()
            },
        );
        let branch = pinned
            .dag()
            .nodes()
            .find(|&n| matches!(pinned.kind(n), NodeKind::Branch { .. }))
            .unwrap();
        let load = pinned
            .dag()
            .nodes()
            .find(|&n| pinned.instr(n).is_some_and(|i| i.mem_read().is_some()))
            .unwrap();
        let r = Reachability::of(pinned.dag());
        assert!(
            r.reaches(branch, load),
            "pinned load stays below the branch"
        );
    }

    #[test]
    fn insert_spill_rewires_uses() {
        let mut d = ddg_of(
            "v0 = const 1\nv1 = add v0, 2\nv2 = mul v0, 3\nstore a[0], v1\nstore a[1], v2\n",
        );
        let def = d.dag().node(2);
        let add = d.dag().node(3);
        let mul = d.dag().node(4);
        assert_eq!(d.uses_of(def), &[add, mul]);
        let pair = d.insert_spill(def, &[mul]);
        assert!(d.dag().is_acyclic());
        // def feeds the store; reload feeds mul; add still reads def.
        assert!(d.dag().has_edge_kind(def, pair.store, EdgeKind::Data));
        assert!(d
            .dag()
            .has_edge_kind(pair.store, pair.load, EdgeKind::Memory));
        assert!(d.dag().has_edge_kind(pair.load, mul, EdgeKind::Data));
        assert!(!d.dag().has_edge(def, mul));
        assert!(d.uses_of(def).contains(&add));
        assert!(d.uses_of(def).contains(&pair.store));
        assert_eq!(d.uses_of(pair.load), &[mul]);
        // mul's instruction now reads the reload register.
        let reload_reg = d.value_def(pair.load).unwrap();
        assert!(d.instr(mul).unwrap().uses().contains(&reload_reg));
        // The spill symbol was interned.
        assert!(d.symbols().iter().any(|s| s == "__spill"));
    }

    #[test]
    #[should_panic(expected = "is not a use")]
    fn spill_of_non_use_panics() {
        let mut d = ddg_of("v0 = const 1\nv1 = const 2\nstore a[0], v0\nstore a[1], v1\n");
        let def = d.dag().node(2);
        let other_store = d.dag().node(5);
        d.insert_spill(def, &[other_store]);
    }

    #[test]
    fn live_out_transfers_to_reload() {
        let p = parse(
            "block entry:\n\
             v0 = const 5\n\
             v1 = add v0, 1\n\
             jmp next\n\
             block next:\n\
             store a[0], v0\n\
             ret\n",
        )
        .unwrap();
        let trace = Trace { blocks: vec![0] };
        let mut d = DependenceDag::build(&p, &trace);
        let def = d
            .dag()
            .nodes()
            .find(|&n| d.value_def(n) == Some(VirtualReg(0)))
            .unwrap();
        assert!(d.is_live_out(def), "v0 used by the next block");
        let use_node = d.uses_of(def)[0];
        let pair = d.insert_spill(def, &[use_node]);
        assert!(!d.is_live_out(def));
        assert!(d.is_live_out(pair.load));
    }

    #[test]
    fn anti_dependences_without_renaming() {
        let p = parse("v0 = const 1\nstore a[0], v0\nv0 = const 2\nstore a[1], v0\n").unwrap();
        let d = DependenceDag::build_with(
            &p,
            &Trace::single(0),
            DdgOptions {
                rename: false,
                ..DdgOptions::default()
            },
        );
        let def1 = d.dag().node(2);
        let use1 = d.dag().node(3);
        let def2 = d.dag().node(4);
        // Same register kept; output and anti edges serialize the reuse.
        assert_eq!(d.value_def(def2), Some(VirtualReg(0)));
        assert!(d.dag().has_edge_kind(def1, def2, EdgeKind::Anti));
        assert!(d.dag().has_edge_kind(use1, def2, EdgeKind::Anti));
        let r = Reachability::of(d.dag());
        assert!(r.reaches(def1, def2), "reuse is ordered");
    }

    #[test]
    fn describe_is_nonempty_for_all_kinds() {
        let d = ddg_of("v1 = add v0, 1\n");
        for n in d.dag().nodes() {
            assert!(!d.describe(n).is_empty());
        }
    }
}
