//! Trace selection and register liveness.
//!
//! URSA consumes dependence DAGs of *traces* — sequences of basic blocks
//! along a likely execution path (paper §2, citing Fisher's trace
//! scheduling [Fis81]). This module implements profile-guided trace
//! selection ("mutual most likely" growing from the hottest unvisited
//! seed) and the block-level register liveness needed to know which
//! values escape a trace.

use crate::program::Program;
use crate::value::VirtualReg;
use ursa_graph::bitset::BitSet;

/// A trace: a cycle-free sequence of distinct block indices such that
/// each block is a CFG successor of the previous one.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trace {
    /// Block indices in execution order.
    pub blocks: Vec<usize>,
}

impl Trace {
    /// A single-block trace.
    pub fn single(block: usize) -> Self {
        Trace {
            blocks: vec![block],
        }
    }

    /// The trace covering only the program entry block. The canonical
    /// spelling for "compile the entry block" — every hard-coded
    /// `Trace::single(0)` call site routes through this.
    pub fn entry() -> Self {
        Trace::single(0)
    }

    /// Number of blocks on the trace.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if the trace covers no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Partitions all blocks of `program` into traces, hottest first.
///
/// Growing follows the highest-weight unvisited successor/predecessor,
/// stopping at visited blocks (which also breaks loops). Every block ends
/// up in exactly one trace.
///
/// # Examples
///
/// ```
/// let src = "
/// block entry:
/// v0 = const 1
/// br v0, hot, cold
/// block hot @ 0.9:
/// jmp out
/// block cold @ 0.1:
/// jmp out
/// block out:
/// ret
/// ";
/// let p = ursa_ir::parser::parse(src).unwrap();
/// let traces = ursa_ir::trace::select_traces(&p);
/// // entry -> hot -> out is the main trace; cold is left over.
/// assert_eq!(traces[0].blocks, vec![0, 1, 3]);
/// assert_eq!(traces[1].blocks, vec![2]);
/// ```
pub fn select_traces(program: &Program) -> Vec<Trace> {
    let n = program.blocks.len();
    let mut visited = vec![false; n];
    let mut traces = Vec::new();
    // Seed each trace with the hottest unvisited block (ties to the
    // lowest index, which keeps the entry block first on equal weights).
    let hottest_unvisited = |visited: &[bool]| {
        (0..n).filter(|&b| !visited[b]).max_by(|&a, &b| {
            program.blocks[a]
                .weight
                .partial_cmp(&program.blocks[b].weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a))
        })
    };
    while let Some(seed) = hottest_unvisited(&visited) {
        visited[seed] = true;
        let mut blocks = vec![seed];
        // Grow forward.
        loop {
            let last = *blocks.last().expect("nonempty");
            let Some(next) = best_neighbor(program, &visited, program.successors(last)) else {
                break;
            };
            visited[next] = true;
            blocks.push(next);
        }
        // Grow backward.
        loop {
            let first = blocks[0];
            let Some(prev) = best_neighbor(program, &visited, program.predecessors(first)) else {
                break;
            };
            visited[prev] = true;
            blocks.insert(0, prev);
        }
        traces.push(Trace { blocks });
    }
    traces
}

/// Partitions all blocks of `program` into *units*: traces restricted so
/// a block joins one only when its on-trace predecessor is its **sole**
/// CFG predecessor. The restriction buys whole-program compilation a
/// strong invariant — every CFG edge that *leaves* a unit targets a
/// unit head, and every value reaching a unit head arrives via the
/// head's live-in set — so cross-unit values can be handed off through
/// memory at heads alone.
///
/// Seeds are chosen hottest-first with the same tie rule as
/// [`select_traces`], but growth is forward-only (backward growth would
/// move the head, invalidating the head-handoff contract). The entry
/// block is never appended mid-unit: control can start there.
pub fn select_units(program: &Program) -> Vec<Trace> {
    let n = program.blocks.len();
    let mut visited = vec![false; n];
    let mut units = Vec::new();
    let hottest_unvisited = |visited: &[bool]| {
        (0..n).filter(|&b| !visited[b]).max_by(|&a, &b| {
            program.blocks[a]
                .weight
                .partial_cmp(&program.blocks[b].weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a))
        })
    };
    while let Some(seed) = hottest_unvisited(&visited) {
        visited[seed] = true;
        let mut blocks = vec![seed];
        loop {
            let last = *blocks.last().expect("nonempty");
            let next = best_neighbor(program, &visited, program.successors(last)).filter(|&s| {
                let preds = program.predecessors(s);
                s != 0 && !preds.is_empty() && preds.iter().all(|&p| p == last)
            });
            let Some(next) = next else {
                break;
            };
            visited[next] = true;
            blocks.push(next);
        }
        units.push(Trace { blocks });
    }
    units
}

fn best_neighbor(program: &Program, visited: &[bool], candidates: Vec<usize>) -> Option<usize> {
    candidates
        .into_iter()
        .filter(|&b| !visited[b])
        .max_by(|&a, &b| {
            program.blocks[a]
                .weight
                .partial_cmp(&program.blocks[b].weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a))
        })
}

/// Per-block liveness of virtual registers.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// `live_in[b]` — registers live on entry to block `b`.
    pub live_in: Vec<BitSet>,
    /// `live_out[b]` — registers live on exit from block `b`.
    pub live_out: Vec<BitSet>,
}

impl Liveness {
    /// `true` if `reg` is live on entry to block `b`.
    pub fn live_into(&self, b: usize, reg: VirtualReg) -> bool {
        self.live_in[b].contains(reg.index())
    }

    /// `true` if `reg` is live on exit from block `b`.
    pub fn live_out_of(&self, b: usize, reg: VirtualReg) -> bool {
        self.live_out[b].contains(reg.index())
    }
}

/// Standard backward iterative liveness over the CFG.
pub fn liveness(program: &Program) -> Liveness {
    let n = program.blocks.len();
    let nv = program.num_vregs as usize;
    // Per-block gen (upward-exposed uses) and kill (defs).
    let mut gen = vec![BitSet::new(nv); n];
    let mut kill = vec![BitSet::new(nv); n];
    for (b, block) in program.blocks.iter().enumerate() {
        for instr in &block.instrs {
            for u in instr.uses() {
                if !kill[b].contains(u.index()) {
                    gen[b].insert(u.index());
                }
            }
            if let Some(d) = instr.def() {
                kill[b].insert(d.index());
            }
        }
        for u in block.term.uses() {
            if !kill[b].contains(u.index()) {
                gen[b].insert(u.index());
            }
        }
    }
    let mut live_in = vec![BitSet::new(nv); n];
    let mut live_out = vec![BitSet::new(nv); n];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            let mut out = BitSet::new(nv);
            for s in program.successors(b) {
                out.union_with(&live_in[s]);
            }
            let mut inn = out.clone();
            inn.difference_with(&kill[b]);
            inn.union_with(&gen[b]);
            if out != live_out[b] || inn != live_in[b] {
                live_out[b] = out;
                live_in[b] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn diamond() -> Program {
        parse(
            "block entry:\n\
             v0 = load a[0]\n\
             br v0, hot, cold\n\
             block hot @ 0.8:\n\
             v1 = add v0, 1\n\
             jmp out\n\
             block cold @ 0.2:\n\
             v1 = sub v0, 1\n\
             jmp out\n\
             block out:\n\
             store a[0], v1\n\
             ret\n",
        )
        .unwrap()
    }

    #[test]
    fn traces_cover_all_blocks_once() {
        let p = diamond();
        let traces = select_traces(&p);
        let mut seen: Vec<usize> = traces.iter().flat_map(|t| t.blocks.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn hottest_path_forms_main_trace() {
        let p = diamond();
        let traces = select_traces(&p);
        assert_eq!(traces[0].blocks, vec![0, 1, 3], "entry→hot→out");
        assert_eq!(traces[1].blocks, vec![2]);
    }

    #[test]
    fn loop_does_not_trap_trace_growth() {
        let p = parse(
            "block head:\n\
             v0 = const 1\n\
             br v0, head, done\n\
             block done:\n\
             ret\n",
        )
        .unwrap();
        let traces = select_traces(&p);
        assert!(traces.iter().all(|t| {
            let mut b = t.blocks.clone();
            b.dedup();
            b.len() == t.blocks.len()
        }));
    }

    #[test]
    fn single_block_trace_helper() {
        let t = Trace::single(2);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.blocks, vec![2]);
        assert_eq!(Trace::entry(), Trace::single(0));
    }

    #[test]
    fn units_cover_all_blocks_once() {
        let p = diamond();
        let units = select_units(&p);
        let mut seen: Vec<usize> = units.iter().flat_map(|u| u.blocks.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unit_growth_requires_a_unique_predecessor() {
        let p = diamond();
        let units = select_units(&p);
        // `hot` has the sole predecessor `entry`, so it joins entry's
        // unit; `out` has two predecessors and must head its own unit.
        assert!(units.contains(&Trace { blocks: vec![0, 1] }));
        assert!(units.contains(&Trace::single(2)));
        assert!(units.contains(&Trace::single(3)));
    }

    #[test]
    fn every_cross_unit_edge_targets_a_unit_head() {
        for p in [
            diamond(),
            parse(
                "block entry:\n\
                 v0 = const 0\n\
                 jmp head\n\
                 block head @ 24:\n\
                 v1 = add v0, 1\n\
                 v2 = cmplt v1, 24\n\
                 br v2, head, done\n\
                 block done:\n\
                 ret\n",
            )
            .unwrap(),
        ] {
            let units = select_units(&p);
            let heads: Vec<usize> = units.iter().map(|u| u.blocks[0]).collect();
            assert!(heads.contains(&0), "entry block must head a unit");
            for u in &units {
                for (i, &b) in u.blocks.iter().enumerate() {
                    let internal_next = u.blocks.get(i + 1).copied();
                    for t in p.successors(b) {
                        if Some(t) == internal_next {
                            continue;
                        }
                        assert!(heads.contains(&t), "edge {b}→{t} targets a non-head");
                    }
                }
            }
        }
    }

    #[test]
    fn loop_body_units_grow_into_straightline_successors() {
        let p = parse(
            "block entry:\n\
             v0 = const 0\n\
             jmp head\n\
             block head @ 24:\n\
             v1 = add v0, 1\n\
             v2 = cmplt v1, 24\n\
             br v2, head, done\n\
             block done:\n\
             ret\n",
        )
        .unwrap();
        let units = select_units(&p);
        // The hot loop head seeds first and grows into `done` (its only
        // predecessor); `entry` stands alone (block 0 is never appended).
        assert_eq!(units[0].blocks, vec![1, 2]);
        assert_eq!(units[1].blocks, vec![0]);
    }

    #[test]
    fn liveness_through_diamond() {
        let p = diamond();
        let lv = liveness(&p);
        // v0 (reg 0) is live into both arms; v1 (reg 1) live into `out`.
        assert!(lv.live_into(1, VirtualReg(0)));
        assert!(lv.live_into(2, VirtualReg(0)));
        assert!(lv.live_into(3, VirtualReg(1)));
        // v1 not live into entry.
        assert!(!lv.live_into(0, VirtualReg(1)));
        // Nothing is live out of the exit block.
        assert!(lv.live_out[3].is_empty());
        // v0 is live out of entry.
        assert!(lv.live_out_of(0, VirtualReg(0)));
    }

    #[test]
    fn liveness_kill_blocks_upward_exposure() {
        // v0 defined then used in same block: not upward exposed.
        let p = parse("v0 = const 1\nv1 = add v0, 1\nstore a[0], v1\n").unwrap();
        let lv = liveness(&p);
        assert!(lv.live_in[0].is_empty());
    }

    #[test]
    fn branch_condition_is_live() {
        let p = parse(
            "block entry:\n\
             br v5, a, b\n\
             block a:\n\
             ret\n\
             block b:\n\
             ret\n",
        )
        .unwrap();
        let lv = liveness(&p);
        assert!(lv.live_into(0, VirtualReg(5)));
    }
}
