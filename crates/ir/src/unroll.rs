//! Loop unrolling (paper §6: "the techniques are being combined with
//! loop unrolling to create a new resource constrained software
//! pipelining technique").
//!
//! URSA operates on straight-line traces, so the lever for loops is to
//! unroll the body: a factor-`k` unroll turns one iteration's worth of
//! parallelism into `k` iterations' worth inside a single block, and
//! URSA's measurement then decides how much of it the machine can
//! actually host — the "resource constrained" part of the §6 plan.
//!
//! The transformation handles *self-loops*: a block whose conditional
//! terminator targets itself. The body (including the induction update
//! and the exit test, whose intermediate copies become dead code) is
//! replicated `k` times and the single exit test at the end is kept, so
//! the loop must execute a multiple of `k` iterations — the classic
//! restriction, which callers guarantee by choosing trip counts (or by
//! peeling, which composes with this transformation).

use crate::instr::Terminator;
use crate::program::Program;
use std::fmt;

/// Why a block could not be unrolled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnrollError {
    /// The block index is out of range.
    NoSuchBlock(usize),
    /// The block's terminator is not a conditional branch back to
    /// itself.
    NotASelfLoop(usize),
    /// A factor of zero was requested.
    ZeroFactor,
}

impl fmt::Display for UnrollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnrollError::NoSuchBlock(b) => write!(f, "block {b} does not exist"),
            UnrollError::NotASelfLoop(b) => {
                write!(f, "block {b} is not a conditional self-loop")
            }
            UnrollError::ZeroFactor => write!(f, "unroll factor must be at least 1"),
        }
    }
}

impl std::error::Error for UnrollError {}

/// Returns a copy of `program` with the self-loop at `block` unrolled
/// `factor` times.
///
/// The resulting loop executes `factor` source iterations per trip and
/// tests the exit condition once per trip; the program is semantically
/// identical whenever the original trip count is a (positive) multiple
/// of `factor`.
///
/// # Errors
///
/// See [`UnrollError`].
///
/// # Examples
///
/// ```
/// use ursa_ir::parser::parse;
/// use ursa_ir::unroll::unroll_self_loop;
///
/// let p = parse(
///     "block entry:\n\
///      v0 = const 0\n\
///      jmp head\n\
///      block head:\n\
///      v1 = load a[v0]\n\
///      store b[v0], v1\n\
///      v0 = add v0, 1\n\
///      v2 = cmplt v0, 8\n\
///      br v2, head, done\n\
///      block done:\n\
///      ret\n",
/// ).unwrap();
/// let u = unroll_self_loop(&p, 1, 4).unwrap();
/// assert_eq!(u.blocks[1].instrs.len(), 4 * p.blocks[1].instrs.len());
/// ```
pub fn unroll_self_loop(
    program: &Program,
    block: usize,
    factor: usize,
) -> Result<Program, UnrollError> {
    if factor == 0 {
        return Err(UnrollError::ZeroFactor);
    }
    let Some(b) = program.blocks.get(block) else {
        return Err(UnrollError::NoSuchBlock(block));
    };
    let is_self_loop = match b.term {
        Terminator::Branch {
            then_block,
            else_block,
            ..
        } => then_block == block || else_block == block,
        _ => false,
    };
    if !is_self_loop {
        return Err(UnrollError::NotASelfLoop(block));
    }
    let mut out = program.clone();
    let body = b.instrs.clone();
    let mut unrolled = Vec::with_capacity(body.len() * factor);
    for _ in 0..factor {
        unrolled.extend(body.iter().cloned());
    }
    out.blocks[block].instrs = unrolled;
    // Each trip now covers `factor` iterations.
    out.blocks[block].weight = b.weight / factor as f64;
    debug_assert!(out.validate().is_ok());
    Ok(out)
}

/// Peels `count` iterations off the front of the self-loop at `block`:
/// each peeled iteration is a fresh block containing one body copy with
/// the *same* exit test, inserted between the loop's outside
/// predecessors and the loop. Unlike unrolling, peeling is valid for
/// any trip count ≥ `count`... in fact for any trip count at all, since
/// every peeled copy keeps the conditional exit.
///
/// Combine with [`unroll_self_loop`] to handle non-dividing trip
/// counts: peel `trip % factor` iterations, then unroll by `factor`.
///
/// # Errors
///
/// See [`UnrollError`] (a zero `count` is the identity, not an error).
pub fn peel_self_loop(
    program: &Program,
    block: usize,
    count: usize,
) -> Result<Program, UnrollError> {
    let Some(b) = program.blocks.get(block) else {
        return Err(UnrollError::NoSuchBlock(block));
    };
    let Terminator::Branch {
        cond,
        then_block,
        else_block,
    } = b.term.clone()
    else {
        return Err(UnrollError::NotASelfLoop(block));
    };
    if then_block != block && else_block != block {
        return Err(UnrollError::NotASelfLoop(block));
    }
    let mut out = program.clone();
    let mut prev_peel: Option<usize> = None;
    for peel_idx in 0..count {
        // Each peeled copy keeps the loop's own exit test; its
        // "continue" side falls into the original loop block.
        let new_idx = out.blocks.len();
        let mut peeled = out.blocks[block].clone();
        peeled.label = format!("{}_peel{}", out.blocks[block].label, peel_idx);
        peeled.weight = 1.0;
        let (then_b, else_b) = if then_block == block {
            (block, else_block)
        } else {
            (then_block, block)
        };
        peeled.term = Terminator::Branch {
            cond,
            then_block: then_b,
            else_block: else_b,
        };
        out.blocks.push(peeled);
        match prev_peel {
            // First peel: every edge entering the loop from outside now
            // enters the peeled copy instead.
            None => {
                for (i, blk) in out.blocks.iter_mut().enumerate() {
                    if i != new_idx && i != block {
                        redirect(&mut blk.term, block, new_idx);
                    }
                }
            }
            // Later peels: only the previous peel's continue edge moves.
            Some(prev) => redirect(&mut out.blocks[prev].term, block, new_idx),
        }
        prev_peel = Some(new_idx);
    }
    debug_assert!(out.validate().is_ok());
    Ok(out)
}

fn redirect(term: &mut Terminator, from: usize, to: usize) {
    match term {
        Terminator::Jump(t) => {
            if *t == from {
                *t = to;
            }
        }
        Terminator::Branch {
            then_block,
            else_block,
            ..
        } => {
            if *then_block == from {
                *then_block = to;
            }
            if *else_block == from {
                *else_block = to;
            }
        }
        Terminator::Ret => {}
    }
}

/// Finds the first self-loop block of `program`, if any — convenience
/// for drivers that unroll "the loop" of a kernel.
pub fn find_self_loop(program: &Program) -> Option<usize> {
    (0..program.blocks.len()).find(|&b| {
        matches!(
            program.blocks[b].term,
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } if then_block == b || else_block == b
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn copy_loop(n: i64) -> Program {
        parse(&format!(
            "block entry:\n\
             v0 = const 0\n\
             jmp head\n\
             block head:\n\
             v1 = load a[v0]\n\
             v2 = mul v1, 3\n\
             store b[v0], v2\n\
             v0 = add v0, 1\n\
             v3 = cmplt v0, {n}\n\
             br v3, head, done\n\
             block done:\n\
             ret\n"
        ))
        .unwrap()
    }

    #[test]
    fn finds_the_loop() {
        let p = copy_loop(8);
        assert_eq!(find_self_loop(&p), Some(1));
        let straight = parse("v0 = const 1\n").unwrap();
        assert_eq!(find_self_loop(&straight), None);
    }

    #[test]
    fn body_is_replicated() {
        let p = copy_loop(8);
        let u = unroll_self_loop(&p, 1, 4).unwrap();
        assert_eq!(u.blocks[1].instrs.len(), 5 * 4);
        assert!(u.validate().is_ok());
        // Terminator unchanged.
        assert_eq!(u.blocks[1].term, p.blocks[1].term);
    }

    #[test]
    fn factor_one_is_identity_on_instrs() {
        let p = copy_loop(8);
        let u = unroll_self_loop(&p, 1, 1).unwrap();
        assert_eq!(u.blocks[1].instrs, p.blocks[1].instrs);
    }

    #[test]
    fn rejects_non_loops_and_zero() {
        let p = copy_loop(8);
        assert_eq!(
            unroll_self_loop(&p, 0, 2).unwrap_err(),
            UnrollError::NotASelfLoop(0)
        );
        assert_eq!(
            unroll_self_loop(&p, 9, 2).unwrap_err(),
            UnrollError::NoSuchBlock(9)
        );
        assert_eq!(
            unroll_self_loop(&p, 1, 0).unwrap_err(),
            UnrollError::ZeroFactor
        );
    }

    #[test]
    fn error_display() {
        assert!(UnrollError::NotASelfLoop(3)
            .to_string()
            .contains("self-loop"));
    }

    #[test]
    fn peel_then_unroll_composes() {
        // Trip count 7, factor 4: peel 3, unroll 4 → structure is valid
        // and the loop body quadruples.
        let p = copy_loop(7);
        let peeled = peel_self_loop(&p, 1, 3).unwrap();
        let unrolled = unroll_self_loop(&peeled, 1, 4).unwrap();
        assert!(unrolled.validate().is_ok());
        assert_eq!(
            unrolled.blocks[1].instrs.len(),
            4 * p.blocks[1].instrs.len()
        );
        assert_eq!(unrolled.blocks.len(), p.blocks.len() + 3);
    }

    #[test]
    fn peel_zero_is_identity() {
        let p = copy_loop(4);
        let q = peel_self_loop(&p, 1, 0).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn peel_rejects_non_loops() {
        let p = copy_loop(4);
        assert_eq!(
            peel_self_loop(&p, 0, 1).unwrap_err(),
            UnrollError::NotASelfLoop(0)
        );
    }
}
