//! Instructions of the three-address IR.

use crate::value::{MemRef, Operand, VirtualReg};
use std::fmt;

/// Binary arithmetic/logic operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (rounds toward zero; division by zero traps in
    /// the simulator).
    Div,
    /// Integer remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (modulo 64).
    Shl,
    /// Arithmetic right shift (modulo 64).
    Shr,
    /// 1 if equal else 0.
    CmpEq,
    /// 1 if strictly less else 0 (signed).
    CmpLt,
    /// 1 if less-or-equal else 0 (signed).
    CmpLe,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

impl BinOp {
    /// Evaluates the operator on concrete values (wrapping semantics).
    ///
    /// Division and remainder by zero return `None`.
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32),
            BinOp::Shr => a.wrapping_shr(b as u32),
            BinOp::CmpEq => i64::from(a == b),
            BinOp::CmpLt => i64::from(a < b),
            BinOp::CmpLe => i64::from(a <= b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        })
    }

    /// The textual mnemonic used by the parser and printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::CmpEq => "cmpeq",
            BinOp::CmpLt => "cmplt",
            BinOp::CmpLe => "cmple",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }

    /// All binary operators, for table-driven parsing and fuzzing.
    pub const ALL: [BinOp; 15] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::CmpEq,
        BinOp::CmpLt,
        BinOp::CmpLe,
        BinOp::Min,
        BinOp::Max,
    ];
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Identity move.
    Copy,
}

impl UnOp {
    /// Evaluates the operator on a concrete value.
    pub fn eval(self, a: i64) -> i64 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => !a,
            UnOp::Copy => a,
        }
    }

    /// The textual mnemonic used by the parser and printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Copy => "copy",
        }
    }
}

/// A non-terminator three-address instruction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// `dst = imm`.
    Const {
        /// Destination register.
        dst: VirtualReg,
        /// The constant materialized.
        value: i64,
    },
    /// `dst = a <op> b`.
    Bin {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: VirtualReg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = <op> a`.
    Un {
        /// The operator.
        op: UnOp,
        /// Destination register.
        dst: VirtualReg,
        /// Operand.
        a: Operand,
    },
    /// `dst = load base[index]`.
    Load {
        /// Destination register.
        dst: VirtualReg,
        /// Address read.
        mem: MemRef,
    },
    /// `store base[index], src`.
    Store {
        /// Address written.
        mem: MemRef,
        /// Value stored.
        src: Operand,
    },
}

impl Instr {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<VirtualReg> {
        match *self {
            Instr::Const { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Load { dst, .. } => Some(dst),
            Instr::Store { .. } => None,
        }
    }

    /// The registers read by this instruction, in operand order.
    pub fn uses(&self) -> Vec<VirtualReg> {
        let mut out = Vec::new();
        let mut push = |o: Operand| {
            if let Operand::Reg(r) = o {
                out.push(r);
            }
        };
        match *self {
            Instr::Const { .. } => {}
            Instr::Bin { a, b, .. } => {
                push(a);
                push(b);
            }
            Instr::Un { a, .. } => push(a),
            Instr::Load { mem, .. } => push(mem.index),
            Instr::Store { mem, src } => {
                push(mem.index);
                push(src);
            }
        }
        out
    }

    /// The memory reference read by this instruction, if it is a load.
    pub fn mem_read(&self) -> Option<MemRef> {
        match *self {
            Instr::Load { mem, .. } => Some(mem),
            _ => None,
        }
    }

    /// The memory reference written by this instruction, if it is a store.
    pub fn mem_write(&self) -> Option<MemRef> {
        match *self {
            Instr::Store { mem, .. } => Some(mem),
            _ => None,
        }
    }

    /// `true` for instructions with a side effect beyond defining a
    /// register (currently only stores).
    pub fn has_side_effect(&self) -> bool {
        matches!(self, Instr::Store { .. })
    }

    /// Rewrites every read of register `from` into a read of `to`.
    /// The definition is left untouched.
    pub fn replace_uses(&mut self, from: VirtualReg, to: VirtualReg) {
        let fix = |o: &mut Operand| {
            if *o == Operand::Reg(from) {
                *o = Operand::Reg(to);
            }
        };
        match self {
            Instr::Const { .. } => {}
            Instr::Bin { a, b, .. } => {
                fix(a);
                fix(b);
            }
            Instr::Un { a, .. } => fix(a),
            Instr::Load { mem, .. } => fix(&mut mem.index),
            Instr::Store { mem, src } => {
                fix(&mut mem.index);
                fix(src);
            }
        }
    }

    /// Rewrites every register (definition and uses) through `f`
    /// simultaneously — safe even when the mapping's range overlaps its
    /// domain (e.g. renaming virtual registers onto physical ones).
    pub fn map_registers(&mut self, mut f: impl FnMut(VirtualReg) -> VirtualReg) {
        let mut fix = |o: &mut Operand| {
            if let Operand::Reg(r) = o {
                *r = f(*r);
            }
        };
        match self {
            Instr::Const { dst, .. } => *dst = f(*dst),
            Instr::Bin { dst, a, b, .. } => {
                fix(a);
                fix(b);
                *dst = f(*dst);
            }
            Instr::Un { dst, a, .. } => {
                fix(a);
                *dst = f(*dst);
            }
            Instr::Load { dst, mem } => {
                fix(&mut mem.index);
                *dst = f(*dst);
            }
            Instr::Store { mem, src } => {
                fix(&mut mem.index);
                fix(src);
            }
        }
    }

    /// Rewrites the defined register, if any.
    pub fn replace_def(&mut self, to: VirtualReg) {
        match self {
            Instr::Const { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Load { dst, .. } => *dst = to,
            Instr::Store { .. } => {}
        }
    }
}

/// A block terminator.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Terminator {
    /// Unconditional jump to a block (by index into the program).
    Jump(usize),
    /// Conditional branch: nonzero `cond` goes to `then_block`, zero to
    /// `else_block`.
    Branch {
        /// Condition register.
        cond: Operand,
        /// Successor on nonzero.
        then_block: usize,
        /// Successor on zero.
        else_block: usize,
    },
    /// Function return.
    Ret,
}

impl Terminator {
    /// Successor block indices in branch order.
    pub fn successors(&self) -> Vec<usize> {
        match *self {
            Terminator::Jump(b) => vec![b],
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => vec![then_block, else_block],
            Terminator::Ret => Vec::new(),
        }
    }

    /// Registers read by the terminator.
    pub fn uses(&self) -> Vec<VirtualReg> {
        match *self {
            Terminator::Branch {
                cond: Operand::Reg(r),
                ..
            } => vec![r],
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Const { dst, value } => write!(f, "{dst} = const {value}"),
            Instr::Bin { op, dst, a, b } => {
                write!(f, "{dst} = {} {a}, {b}", op.mnemonic())
            }
            Instr::Un { op, dst, a } => write!(f, "{dst} = {} {a}", op.mnemonic()),
            Instr::Load { dst, mem } => {
                write!(f, "{dst} = load {:?}[{}]", mem.base, mem.index)
            }
            Instr::Store { mem, src } => {
                write!(f, "store {:?}[{}], {src}", mem.base, mem.index)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::SymbolId;

    #[test]
    fn binop_eval_basics() {
        assert_eq!(BinOp::Add.eval(2, 3), Some(5));
        assert_eq!(BinOp::Sub.eval(2, 3), Some(-1));
        assert_eq!(BinOp::Mul.eval(4, 3), Some(12));
        assert_eq!(BinOp::Div.eval(7, 2), Some(3));
        assert_eq!(BinOp::Div.eval(7, 0), None);
        assert_eq!(BinOp::Rem.eval(7, 0), None);
        assert_eq!(BinOp::CmpLt.eval(1, 2), Some(1));
        assert_eq!(BinOp::CmpEq.eval(2, 2), Some(1));
        assert_eq!(BinOp::Min.eval(-1, 4), Some(-1));
        assert_eq!(BinOp::Max.eval(-1, 4), Some(4));
    }

    #[test]
    fn binop_eval_wraps() {
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), Some(i64::MIN));
        assert_eq!(BinOp::Mul.eval(i64::MAX, 2), Some(-2));
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Neg.eval(5), -5);
        assert_eq!(UnOp::Not.eval(0), -1);
        assert_eq!(UnOp::Copy.eval(42), 42);
    }

    #[test]
    fn def_and_uses() {
        let i = Instr::Bin {
            op: BinOp::Add,
            dst: VirtualReg(2),
            a: Operand::Reg(VirtualReg(0)),
            b: Operand::Imm(1),
        };
        assert_eq!(i.def(), Some(VirtualReg(2)));
        assert_eq!(i.uses(), vec![VirtualReg(0)]);

        let s = Instr::Store {
            mem: MemRef::new(SymbolId(0), VirtualReg(3)),
            src: Operand::Reg(VirtualReg(4)),
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![VirtualReg(3), VirtualReg(4)]);
        assert!(s.has_side_effect());
    }

    #[test]
    fn replace_uses_rewrites_all_positions() {
        let mut i = Instr::Bin {
            op: BinOp::Mul,
            dst: VirtualReg(9),
            a: Operand::Reg(VirtualReg(1)),
            b: Operand::Reg(VirtualReg(1)),
        };
        i.replace_uses(VirtualReg(1), VirtualReg(7));
        assert_eq!(i.uses(), vec![VirtualReg(7), VirtualReg(7)]);
        assert_eq!(i.def(), Some(VirtualReg(9)), "def untouched");
    }

    #[test]
    fn replace_def_on_store_is_noop() {
        let mut s = Instr::Store {
            mem: MemRef::new(SymbolId(0), 0i64),
            src: Operand::Imm(1),
        };
        s.replace_def(VirtualReg(5));
        assert_eq!(s.def(), None);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(3).successors(), vec![3]);
        assert_eq!(
            Terminator::Branch {
                cond: Operand::Reg(VirtualReg(0)),
                then_block: 1,
                else_block: 2
            }
            .successors(),
            vec![1, 2]
        );
        assert!(Terminator::Ret.successors().is_empty());
    }

    #[test]
    fn terminator_uses_cond_register() {
        let t = Terminator::Branch {
            cond: Operand::Reg(VirtualReg(8)),
            then_block: 0,
            else_block: 1,
        };
        assert_eq!(t.uses(), vec![VirtualReg(8)]);
        assert!(Terminator::Ret.uses().is_empty());
    }

    #[test]
    fn display_round_trips_mnemonics() {
        for op in BinOp::ALL {
            assert!(!op.mnemonic().is_empty());
        }
        let i = Instr::Const {
            dst: VirtualReg(0),
            value: -7,
        };
        assert_eq!(i.to_string(), "v0 = const -7");
    }
}
