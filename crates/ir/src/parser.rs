//! A textual front end for the three-address IR.
//!
//! The paper's prototype consumed DAGs produced by an existing C
//! compiler front end (§6). This reproduction substitutes a small
//! textual IR so programs can be written, stored and round-tripped
//! directly; the rest of the pipeline is unchanged.
//!
//! # Grammar (line oriented; `#` starts a comment)
//!
//! ```text
//! block NAME:            block NAME @ WEIGHT:
//! vN = const INT
//! vN = <binop> OPND, OPND     binop ∈ add sub mul div rem and or xor shl
//!                                      shr cmpeq cmplt cmple min max
//! vN = <unop> OPND            unop ∈ neg not copy
//! vN = load SYM[OPND]
//! store SYM[OPND], OPND
//! jmp LABEL
//! br OPND, LABEL, LABEL
//! ret
//! ```
//!
//! An operand is `vN` or a signed integer. If the program does not open
//! with a `block` header, an implicit `entry` block is created.

use crate::instr::{BinOp, Instr, Terminator, UnOp};
use crate::program::{BasicBlock, Program};
use crate::value::{MemRef, Operand, SymbolId, VirtualReg};
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a textual program.
///
/// # Examples
///
/// ```
/// let src = "
/// v0 = load a[0]
/// v1 = mul v0, 2
/// store a[1], v1
/// ";
/// let program = ursa_ir::parser::parse(src).unwrap();
/// assert_eq!(program.blocks.len(), 1);
/// assert_eq!(program.instr_count(), 3);
/// ```
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first malformed line, an
/// undefined label, or a structural violation.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    Parser::new().run(src)
}

#[derive(Debug)]
enum PendingTerm {
    Jump(String),
    Branch(Operand, String, String),
    Ret,
    /// No explicit terminator written; defaults to `ret` (or a fall
    ///-through would be ambiguous, so we keep the explicit default).
    None,
}

struct Parser {
    blocks: Vec<(BasicBlock, PendingTerm, usize)>,
    symbols: Vec<String>,
    symbol_ids: HashMap<String, SymbolId>,
    max_vreg: u32,
}

impl Parser {
    fn new() -> Self {
        Parser {
            blocks: Vec::new(),
            symbols: Vec::new(),
            symbol_ids: HashMap::new(),
            max_vreg: 0,
        }
    }

    fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line,
            message: message.into(),
        })
    }

    fn run(mut self, src: &str) -> Result<Program, ParseError> {
        for (idx, raw) in src.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("block ") {
                self.start_block(rest, line_no)?;
                continue;
            }
            if self.blocks.is_empty() {
                self.blocks
                    .push((BasicBlock::new("entry"), PendingTerm::None, 0));
            }
            self.parse_line(line, line_no)?;
        }
        self.finish(src)
    }

    fn start_block(&mut self, rest: &str, line_no: usize) -> Result<(), ParseError> {
        let rest = rest.trim();
        let Some(rest) = rest.strip_suffix(':') else {
            return Self::err(line_no, "block header must end with ':'");
        };
        let (name, weight) = match rest.split_once('@') {
            Some((n, w)) => {
                let weight: f64 = w.trim().parse().map_err(|_| ParseError {
                    line: line_no,
                    message: format!("invalid block weight '{}'", w.trim()),
                })?;
                (n.trim(), weight)
            }
            None => (rest.trim(), 1.0),
        };
        if name.is_empty() {
            return Self::err(line_no, "empty block name");
        }
        if self.blocks.iter().any(|(b, _, _)| b.label == name) {
            return Self::err(line_no, format!("duplicate block label '{name}'"));
        }
        let mut block = BasicBlock::new(name);
        block.weight = weight;
        self.blocks.push((block, PendingTerm::None, line_no));
        Ok(())
    }

    fn parse_line(&mut self, line: &str, line_no: usize) -> Result<(), ParseError> {
        let (_, term, _) = self.blocks.last().expect("block exists");
        if !matches!(term, PendingTerm::None) {
            return Self::err(line_no, "instruction after block terminator");
        }
        if line == "ret" {
            self.blocks.last_mut().unwrap().1 = PendingTerm::Ret;
            return Ok(());
        }
        if let Some(rest) = line.strip_prefix("jmp ") {
            self.blocks.last_mut().unwrap().1 = PendingTerm::Jump(rest.trim().to_string());
            return Ok(());
        }
        if let Some(rest) = line.strip_prefix("br ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            let [cond, then_l, else_l] = parts[..] else {
                return Self::err(line_no, "br expects 'br cond, then, else'");
            };
            let cond = self.operand(cond, line_no)?;
            self.blocks.last_mut().unwrap().1 =
                PendingTerm::Branch(cond, then_l.to_string(), else_l.to_string());
            return Ok(());
        }
        if let Some(rest) = line.strip_prefix("store ") {
            let Some((mem, src)) = rest.rsplit_once(',') else {
                return Self::err(line_no, "store expects 'store sym[idx], src'");
            };
            let mem = self.memref(mem.trim(), line_no)?;
            let src = self.operand(src.trim(), line_no)?;
            self.emit(Instr::Store { mem, src });
            return Ok(());
        }
        // Assignment forms: "vN = ...".
        let Some((dst, rhs)) = line.split_once('=') else {
            return Self::err(line_no, format!("unrecognized statement '{line}'"));
        };
        let dst = self.vreg(dst.trim(), line_no)?;
        let rhs = rhs.trim();
        if let Some(value) = rhs.strip_prefix("const ") {
            let value: i64 = value.trim().parse().map_err(|_| ParseError {
                line: line_no,
                message: format!("invalid constant '{}'", value.trim()),
            })?;
            self.emit(Instr::Const { dst, value });
            return Ok(());
        }
        if let Some(mem) = rhs.strip_prefix("load ") {
            let mem = self.memref(mem.trim(), line_no)?;
            self.emit(Instr::Load { dst, mem });
            return Ok(());
        }
        let Some((mnemonic, args)) = rhs.split_once(' ') else {
            return Self::err(line_no, format!("unrecognized expression '{rhs}'"));
        };
        let args: Vec<&str> = args.split(',').map(str::trim).collect();
        if let Some(op) = BinOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
            let [a, b] = args[..] else {
                return Self::err(line_no, format!("{mnemonic} expects two operands"));
            };
            let (a, b) = (self.operand(a, line_no)?, self.operand(b, line_no)?);
            self.emit(Instr::Bin { op: *op, dst, a, b });
            return Ok(());
        }
        for op in [UnOp::Neg, UnOp::Not, UnOp::Copy] {
            if op.mnemonic() == mnemonic {
                let [a] = args[..] else {
                    return Self::err(line_no, format!("{mnemonic} expects one operand"));
                };
                let a = self.operand(a, line_no)?;
                self.emit(Instr::Un { op, dst, a });
                return Ok(());
            }
        }
        Self::err(line_no, format!("unknown mnemonic '{mnemonic}'"))
    }

    fn emit(&mut self, instr: Instr) {
        self.blocks.last_mut().unwrap().0.instrs.push(instr);
    }

    fn vreg(&mut self, text: &str, line_no: usize) -> Result<VirtualReg, ParseError> {
        let Some(num) = text.strip_prefix('v') else {
            return Self::err(line_no, format!("expected register 'vN', got '{text}'"));
        };
        let n: u32 = num.parse().map_err(|_| ParseError {
            line: line_no,
            message: format!("invalid register '{text}'"),
        })?;
        self.max_vreg = self.max_vreg.max(n + 1);
        Ok(VirtualReg(n))
    }

    fn operand(&mut self, text: &str, line_no: usize) -> Result<Operand, ParseError> {
        if text.starts_with('v') {
            return Ok(Operand::Reg(self.vreg(text, line_no)?));
        }
        let value: i64 = text.parse().map_err(|_| ParseError {
            line: line_no,
            message: format!("invalid operand '{text}'"),
        })?;
        Ok(Operand::Imm(value))
    }

    fn memref(&mut self, text: &str, line_no: usize) -> Result<MemRef, ParseError> {
        let Some((base, rest)) = text.split_once('[') else {
            return Self::err(line_no, format!("expected 'sym[index]', got '{text}'"));
        };
        let Some(index) = rest.strip_suffix(']') else {
            return Self::err(line_no, format!("missing ']' in '{text}'"));
        };
        let base = base.trim();
        if base.is_empty() || base.starts_with('v') || base.chars().next().unwrap().is_ascii_digit()
        {
            return Self::err(line_no, format!("invalid symbol name '{base}'"));
        }
        if base.starts_with("__") {
            return Self::err(
                line_no,
                format!("symbol '{base}' uses the reserved compiler spill prefix '__'"),
            );
        }
        let sym = self.intern(base);
        let index = self.operand(index.trim(), line_no)?;
        Ok(MemRef::new(sym, index))
    }

    fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.symbol_ids.get(name) {
            return id;
        }
        let id = SymbolId(self.symbols.len() as u32);
        self.symbols.push(name.to_string());
        self.symbol_ids.insert(name.to_string(), id);
        id
    }

    fn finish(mut self, _src: &str) -> Result<Program, ParseError> {
        if self.blocks.is_empty() {
            // An empty source is a valid (empty) program.
            self.blocks
                .push((BasicBlock::new("entry"), PendingTerm::Ret, 0));
        }
        let labels: HashMap<String, usize> = self
            .blocks
            .iter()
            .enumerate()
            .map(|(i, (b, _, _))| (b.label.clone(), i))
            .collect();
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (mut block, term, line) in self.blocks {
            let resolve = |l: &str| {
                labels.get(l).copied().ok_or_else(|| ParseError {
                    line,
                    message: format!("undefined label '{l}'"),
                })
            };
            block.term = match term {
                PendingTerm::Ret | PendingTerm::None => Terminator::Ret,
                PendingTerm::Jump(l) => Terminator::Jump(resolve(&l)?),
                PendingTerm::Branch(cond, t, e) => Terminator::Branch {
                    cond,
                    then_block: resolve(&t)?,
                    else_block: resolve(&e)?,
                },
            };
            blocks.push(block);
        }
        let program = Program {
            blocks,
            symbols: self.symbols,
            num_vregs: self.max_vreg,
        };
        program
            .validate()
            .map_err(|message| ParseError { line: 0, message })?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BinOp;

    #[test]
    fn parse_straight_line_block() {
        let p = parse(
            "v0 = load a[0]\n\
             v1 = mul v0, 2\n\
             v2 = add v1, v0\n\
             store a[1], v2\n",
        )
        .unwrap();
        assert_eq!(p.blocks.len(), 1);
        assert_eq!(p.blocks[0].label, "entry");
        assert_eq!(p.instr_count(), 4);
        assert_eq!(p.num_vregs, 3);
        assert_eq!(p.term(0), &Terminator::Ret);
    }

    impl Program {
        fn term(&self, b: usize) -> &Terminator {
            &self.blocks[b].term
        }
    }

    #[test]
    fn parse_cfg_with_weights() {
        let p = parse(
            "block entry:\n\
             v0 = const 1\n\
             br v0, hot, cold\n\
             block hot @ 0.9:\n\
             jmp out\n\
             block cold @ 0.1:\n\
             jmp out\n\
             block out:\n\
             ret\n",
        )
        .unwrap();
        assert_eq!(p.blocks.len(), 4);
        assert_eq!(p.blocks[1].weight, 0.9);
        assert_eq!(p.successors(0), vec![1, 2]);
        assert_eq!(p.successors(1), vec![3]);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = parse("# header\n\nv0 = const 1 # trailing\n").unwrap();
        assert_eq!(p.instr_count(), 1);
    }

    #[test]
    fn all_binops_parse() {
        for op in BinOp::ALL {
            let src = format!("v2 = {} v0, v1\n", op.mnemonic());
            let p = parse(&src).unwrap();
            assert_eq!(p.instr_count(), 1, "{}", op.mnemonic());
        }
    }

    #[test]
    fn unops_parse() {
        let p = parse("v1 = neg v0\nv2 = not v1\nv3 = copy v2\n").unwrap();
        assert_eq!(p.instr_count(), 3);
    }

    #[test]
    fn undefined_label_is_error() {
        let e = parse("jmp nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));
    }

    #[test]
    fn duplicate_label_is_error() {
        let e = parse("block a:\nret\nblock a:\nret\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn instruction_after_terminator_is_error() {
        let e = parse("ret\nv0 = const 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("after block terminator"));
    }

    #[test]
    fn bad_register_reports_line() {
        let e = parse("v0 = const 1\nvX = const 2\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn bad_memref_is_error() {
        assert!(parse("v0 = load a[\n").is_err());
        assert!(parse("v0 = load 3a[0]\n").is_err());
        assert!(parse("v0 = load v1[0]\n").is_err());
    }

    #[test]
    fn reserved_spill_prefix_is_rejected() {
        // "__" names compiler-private spill areas; letting users claim
        // it would exempt their memory ops from conservation checks.
        let e = parse("v0 = load __spill[0]\n").unwrap_err();
        assert!(e.to_string().contains("reserved"), "{e}");
        assert!(parse("store __x[0], 1\n").is_err());
        // A single underscore is an ordinary symbol.
        assert!(parse("v0 = load _x[0]\n").is_ok());
    }

    #[test]
    fn display_round_trip() {
        let src = "block entry:\n\
                   v0 = load a[0]\n\
                   v1 = add v0, 1\n\
                   store a[0], v1\n\
                   br v1, entry, done\n\
                   block done:\n\
                   ret\n";
        let p1 = parse(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse(&printed).unwrap();
        assert_eq!(p1, p2, "print→parse is the identity\n{printed}");
    }

    #[test]
    fn error_display_mentions_line() {
        let e = parse("bogus line\n").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }
}
