//! Three-address IR, control flow, traces and dependence DAGs for URSA.
//!
//! The paper's prototype sat on top of an existing C front end that
//! produced a Program Dependence Graph and per-trace dependence DAGs
//! (paper §6). This crate is that substrate, rebuilt:
//!
//! * [`value`] / [`instr`] — a small load/store three-address code with
//!   virtual registers, immediates and symbolic memory.
//! * [`program`] — basic blocks, a CFG, profile weights, and a builder.
//! * [`parser`] — a line-oriented textual syntax for writing programs.
//! * [`trace`] — Fisher-style profile-guided trace selection and
//!   register liveness.
//! * [`ddg`] — dependence-DAG construction for a trace, with data,
//!   memory and control edges, value renaming, live-in/live-out
//!   bookkeeping, and the spill-insertion primitive URSA's
//!   transformations use.
//!
//! # Examples
//!
//! ```
//! use ursa_ir::parser::parse;
//! use ursa_ir::ddg::DependenceDag;
//!
//! let program = parse(
//!     "v0 = load a[0]\n\
//!      v1 = mul v0, 2\n\
//!      v2 = mul v0, 3\n\
//!      store a[1], v1\n\
//!      store a[2], v2\n",
//! )?;
//! let ddg = DependenceDag::from_entry_block(&program);
//! assert!(ddg.dag().is_acyclic());
//! # Ok::<(), ursa_ir::parser::ParseError>(())
//! ```

pub mod ddg;
pub mod dot;
pub mod instr;
pub mod parser;
pub mod program;
pub mod trace;
pub mod unroll;
pub mod value;

pub use ddg::{DdgOptions, DependenceDag, NodeKind, SpillPair};
pub use instr::{BinOp, Instr, Terminator, UnOp};
pub use parser::{parse, ParseError};
pub use program::{BasicBlock, Program, ProgramBuilder};
pub use trace::{liveness, select_traces, Liveness, Trace};
pub use unroll::{find_self_loop, unroll_self_loop, UnrollError};
pub use value::{MemRef, Operand, SymbolId, VirtualReg};
