//! Values and operands of the three-address IR.

use std::fmt;

/// A virtual register — an unbounded, compiler-assigned value name.
///
/// URSA operates before register assignment, so programs use an unlimited
/// supply of virtual registers; the allocator's whole job is to guarantee
/// that they can later be mapped onto the machine's finite register file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualReg(pub u32);

impl VirtualReg {
    /// Dense index for table addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VirtualReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VirtualReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A named memory object (array or scalar cell) referenced by loads and
/// stores. Symbols are interned per [`crate::program::Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub u32);

impl SymbolId {
    /// Dense index for table addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// A source operand: a virtual register or an immediate constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// The value currently held by a virtual register.
    Reg(VirtualReg),
    /// A signed immediate constant.
    Imm(i64),
}

impl Operand {
    /// The register read by this operand, if it is not an immediate.
    pub fn as_reg(self) -> Option<VirtualReg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<VirtualReg> for Operand {
    fn from(r: VirtualReg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(i: i64) -> Self {
        Operand::Imm(i)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// The address of a memory access: a base symbol plus an index operand.
///
/// Two references *may alias* when their bases match and their indices are
/// not provably distinct constants; the dependence builder uses this
/// conservative test.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemRef {
    /// The memory object accessed.
    pub base: SymbolId,
    /// Element index into the object.
    pub index: Operand,
}

impl MemRef {
    /// Creates a reference to `base[index]`.
    pub fn new(base: SymbolId, index: impl Into<Operand>) -> Self {
        MemRef {
            base,
            index: index.into(),
        }
    }

    /// Conservative may-alias test: distinct bases never alias; equal
    /// bases alias unless both indices are constants with different
    /// values.
    pub fn may_alias(&self, other: &MemRef) -> bool {
        if self.base != other.base {
            return false;
        }
        match (self.index, other.index) {
            (Operand::Imm(a), Operand::Imm(b)) => a == b,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_reg_extraction() {
        assert_eq!(Operand::Reg(VirtualReg(3)).as_reg(), Some(VirtualReg(3)));
        assert_eq!(Operand::Imm(7).as_reg(), None);
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(VirtualReg(1)), Operand::Reg(VirtualReg(1)));
        assert_eq!(Operand::from(-9i64), Operand::Imm(-9));
    }

    #[test]
    fn alias_same_base_unknown_index() {
        let a = MemRef::new(SymbolId(0), VirtualReg(1));
        let b = MemRef::new(SymbolId(0), 4i64);
        assert!(a.may_alias(&b), "register index may equal any constant");
    }

    #[test]
    fn alias_distinct_constants_disambiguated() {
        let a = MemRef::new(SymbolId(0), 3i64);
        let b = MemRef::new(SymbolId(0), 4i64);
        assert!(!a.may_alias(&b));
        assert!(a.may_alias(&a));
    }

    #[test]
    fn alias_distinct_bases_never() {
        let a = MemRef::new(SymbolId(0), VirtualReg(1));
        let b = MemRef::new(SymbolId(1), VirtualReg(1));
        assert!(!a.may_alias(&b));
    }

    #[test]
    fn display_forms() {
        assert_eq!(VirtualReg(12).to_string(), "v12");
        assert_eq!(Operand::Imm(-3).to_string(), "-3");
        assert_eq!(Operand::Reg(VirtualReg(0)).to_string(), "v0");
    }
}
