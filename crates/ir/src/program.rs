//! Programs, basic blocks and a convenience builder.

use crate::instr::{Instr, Terminator};
use crate::value::{SymbolId, VirtualReg};
use std::collections::HashMap;
use std::fmt;

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, PartialEq, Debug)]
pub struct BasicBlock {
    /// Human-readable label.
    pub label: String,
    /// The block body, in program order.
    pub instrs: Vec<Instr>,
    /// Control transfer out of the block.
    pub term: Terminator,
    /// Profile weight: expected executions per entry of the function.
    /// Used by the trace selector; defaults to 1.0.
    pub weight: f64,
}

impl BasicBlock {
    /// Creates an empty block with the given label, terminated by `Ret`.
    pub fn new(label: impl Into<String>) -> Self {
        BasicBlock {
            label: label.into(),
            instrs: Vec::new(),
            term: Terminator::Ret,
            weight: 1.0,
        }
    }
}

/// A whole program: blocks (block 0 is the entry) and its symbol table.
///
/// # Examples
///
/// ```
/// use ursa_ir::program::ProgramBuilder;
/// use ursa_ir::instr::BinOp;
///
/// let mut b = ProgramBuilder::new();
/// let arr = b.symbol("a");
/// let v0 = b.load(arr, 0i64);
/// let v1 = b.bin(BinOp::Add, v0, 1i64);
/// b.store(arr, 0i64, v1);
/// let program = b.finish();
/// assert_eq!(program.blocks.len(), 1);
/// assert_eq!(program.blocks[0].instrs.len(), 3);
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Basic blocks; index 0 is the entry block.
    pub blocks: Vec<BasicBlock>,
    /// Symbol names, indexed by [`SymbolId`].
    pub symbols: Vec<String>,
    /// Number of virtual registers used (all `VirtualReg` indices are
    /// below this bound).
    pub num_vregs: u32,
}

impl Program {
    /// The name of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is not interned in this program.
    pub fn symbol_name(&self, sym: SymbolId) -> &str {
        &self.symbols[sym.index()]
    }

    /// Looks up a symbol by name.
    pub fn find_symbol(&self, name: &str) -> Option<SymbolId> {
        self.symbols
            .iter()
            .position(|s| s == name)
            .map(|i| SymbolId(i as u32))
    }

    /// Looks up a block by label.
    pub fn find_block(&self, label: &str) -> Option<usize> {
        self.blocks.iter().position(|b| b.label == label)
    }

    /// CFG successor edges of block `b`.
    pub fn successors(&self, b: usize) -> Vec<usize> {
        self.blocks[b].term.successors()
    }

    /// CFG predecessor blocks of block `b` (computed on demand).
    pub fn predecessors(&self, b: usize) -> Vec<usize> {
        (0..self.blocks.len())
            .filter(|&p| self.successors(p).contains(&b))
            .collect()
    }

    /// Total instruction count across blocks (terminators excluded).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Checks structural invariants: terminator targets in range, every
    /// vreg below `num_vregs`. Returns a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        for (i, b) in self.blocks.iter().enumerate() {
            for t in b.term.successors() {
                if t >= self.blocks.len() {
                    return Err(format!(
                        "block {i} ({}) jumps to out-of-range block {t}",
                        b.label
                    ));
                }
            }
            for instr in &b.instrs {
                for r in instr.uses().into_iter().chain(instr.def()) {
                    if r.0 >= self.num_vregs {
                        return Err(format!(
                            "block {i} uses register {r} >= num_vregs {}",
                            self.num_vregs
                        ));
                    }
                }
                if let Some(m) = instr.mem_read().or(instr.mem_write()) {
                    if m.base.index() >= self.symbols.len() {
                        return Err(format!("block {i} references unknown {:?}", m.base));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.blocks {
            if b.weight == 1.0 {
                writeln!(f, "block {}:", b.label)?;
            } else {
                writeln!(f, "block {} @ {}:", b.label, b.weight)?;
            }
            for i in &b.instrs {
                match i {
                    Instr::Load { dst, mem } => writeln!(
                        f,
                        "  {dst} = load {}[{}]",
                        self.symbol_name(mem.base),
                        mem.index
                    )?,
                    Instr::Store { mem, src } => writeln!(
                        f,
                        "  store {}[{}], {src}",
                        self.symbol_name(mem.base),
                        mem.index
                    )?,
                    other => writeln!(f, "  {other}")?,
                }
            }
            match &b.term {
                Terminator::Jump(t) => writeln!(f, "  jmp {}", self.blocks[*t].label)?,
                Terminator::Branch {
                    cond,
                    then_block,
                    else_block,
                } => writeln!(
                    f,
                    "  br {cond}, {}, {}",
                    self.blocks[*then_block].label, self.blocks[*else_block].label
                )?,
                Terminator::Ret => writeln!(f, "  ret")?,
            }
        }
        Ok(())
    }
}

/// Incremental construction of a [`Program`], allocating registers and
/// interning symbols automatically.
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    blocks: Vec<BasicBlock>,
    symbols: Vec<String>,
    symbol_ids: HashMap<String, SymbolId>,
    next_vreg: u32,
    current: usize,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Starts a program with a single entry block labeled `entry`.
    pub fn new() -> Self {
        ProgramBuilder {
            blocks: vec![BasicBlock::new("entry")],
            symbols: Vec::new(),
            symbol_ids: HashMap::new(),
            next_vreg: 0,
            current: 0,
        }
    }

    /// Interns (or retrieves) a symbol by name.
    pub fn symbol(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.symbol_ids.get(name) {
            return id;
        }
        let id = SymbolId(self.symbols.len() as u32);
        self.symbols.push(name.to_string());
        self.symbol_ids.insert(name.to_string(), id);
        id
    }

    /// Allocates a fresh virtual register.
    pub fn fresh_reg(&mut self) -> VirtualReg {
        let r = VirtualReg(self.next_vreg);
        self.next_vreg += 1;
        r
    }

    /// Appends a new block and returns its index. Emission continues in
    /// the *current* block until [`ProgramBuilder::switch_to`] is called.
    pub fn add_block(&mut self, label: impl Into<String>) -> usize {
        self.blocks.push(BasicBlock::new(label));
        self.blocks.len() - 1
    }

    /// Redirects emission to block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn switch_to(&mut self, b: usize) {
        assert!(b < self.blocks.len(), "block {b} out of range");
        self.current = b;
    }

    /// Index of the block currently being emitted into.
    pub fn current_block(&self) -> usize {
        self.current
    }

    /// Sets the profile weight of block `b`.
    pub fn set_weight(&mut self, b: usize, weight: f64) {
        self.blocks[b].weight = weight;
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) {
        self.blocks[self.current].instrs.push(instr);
    }

    /// Emits `dst = const value` into a fresh register.
    pub fn constant(&mut self, value: i64) -> VirtualReg {
        let dst = self.fresh_reg();
        self.emit(Instr::Const { dst, value });
        dst
    }

    /// Emits a binary operation into a fresh register.
    pub fn bin(
        &mut self,
        op: crate::instr::BinOp,
        a: impl Into<crate::value::Operand>,
        b: impl Into<crate::value::Operand>,
    ) -> VirtualReg {
        let dst = self.fresh_reg();
        self.emit(Instr::Bin {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Emits a unary operation into a fresh register.
    pub fn un(
        &mut self,
        op: crate::instr::UnOp,
        a: impl Into<crate::value::Operand>,
    ) -> VirtualReg {
        let dst = self.fresh_reg();
        self.emit(Instr::Un {
            op,
            dst,
            a: a.into(),
        });
        dst
    }

    /// Emits `dst = load base[index]` into a fresh register.
    pub fn load(&mut self, base: SymbolId, index: impl Into<crate::value::Operand>) -> VirtualReg {
        let dst = self.fresh_reg();
        self.emit(Instr::Load {
            dst,
            mem: crate::value::MemRef::new(base, index),
        });
        dst
    }

    /// Emits `store base[index], src`.
    pub fn store(
        &mut self,
        base: SymbolId,
        index: impl Into<crate::value::Operand>,
        src: impl Into<crate::value::Operand>,
    ) {
        self.emit(Instr::Store {
            mem: crate::value::MemRef::new(base, index),
            src: src.into(),
        });
    }

    /// Sets the current block's terminator.
    pub fn terminate(&mut self, term: Terminator) {
        self.blocks[self.current].term = term;
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if the built program fails [`Program::validate`].
    pub fn finish(self) -> Program {
        let p = Program {
            blocks: self.blocks,
            symbols: self.symbols,
            num_vregs: self.next_vreg,
        };
        if let Err(e) = p.validate() {
            panic!("ProgramBuilder produced an invalid program: {e}");
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BinOp;
    use crate::value::Operand;

    #[test]
    fn builder_single_block() {
        let mut b = ProgramBuilder::new();
        let a = b.symbol("a");
        let x = b.load(a, 0i64);
        let y = b.bin(BinOp::Mul, x, 3i64);
        b.store(a, 1i64, y);
        let p = b.finish();
        assert_eq!(p.num_vregs, 2);
        assert_eq!(p.instr_count(), 3);
        assert_eq!(p.symbol_name(a), "a");
        assert!(p.validate().is_ok());
    }

    #[test]
    fn symbols_are_interned_once() {
        let mut b = ProgramBuilder::new();
        let s1 = b.symbol("mem");
        let s2 = b.symbol("mem");
        assert_eq!(s1, s2);
        let p = b.finish();
        assert_eq!(p.symbols.len(), 1);
        assert_eq!(p.find_symbol("mem"), Some(s1));
        assert_eq!(p.find_symbol("nope"), None);
    }

    #[test]
    fn cfg_edges() {
        let mut b = ProgramBuilder::new();
        let cond = b.constant(1);
        let then_b = b.add_block("then");
        let else_b = b.add_block("else");
        let join = b.add_block("join");
        b.terminate(Terminator::Branch {
            cond: Operand::Reg(cond),
            then_block: then_b,
            else_block: else_b,
        });
        b.switch_to(then_b);
        b.terminate(Terminator::Jump(join));
        b.switch_to(else_b);
        b.terminate(Terminator::Jump(join));
        let p = b.finish();
        assert_eq!(p.successors(0), vec![then_b, else_b]);
        assert_eq!(p.predecessors(join), vec![then_b, else_b]);
        assert_eq!(p.find_block("join"), Some(join));
    }

    #[test]
    fn validate_rejects_bad_target() {
        let mut p = Program {
            blocks: vec![BasicBlock::new("entry")],
            symbols: vec![],
            num_vregs: 0,
        };
        p.blocks[0].term = Terminator::Jump(7);
        assert!(p.validate().unwrap_err().contains("out-of-range"));
    }

    #[test]
    fn validate_rejects_unbounded_vreg() {
        let mut b = ProgramBuilder::new();
        let x = b.constant(1);
        let mut p = b.finish();
        p.num_vregs = 0;
        let err = p.validate().unwrap_err();
        assert!(
            err.contains("num_vregs"),
            "{err} mentions the bound (reg {x})"
        );
    }

    #[test]
    fn display_includes_labels_and_symbols() {
        let mut b = ProgramBuilder::new();
        let a = b.symbol("buf");
        let x = b.load(a, 2i64);
        b.store(a, 3i64, x);
        let p = b.finish();
        let text = p.to_string();
        assert!(text.contains("block entry"));
        assert!(text.contains("load buf[2]"));
        assert!(text.contains("store buf[3], v0"));
        assert!(text.contains("ret"));
    }
}
