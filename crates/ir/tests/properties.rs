//! Property-based tests for the IR: printing and parsing are inverse,
//! and dependence DAG construction maintains its invariants on
//! arbitrary straight-line programs.

// The proptest dependency is unavailable in hermetic builds; this whole
// suite only compiles under `--features proptest` after the crate is
// added back (see CONTRIBUTING.md "Hermetic builds").
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use ursa_ir::ddg::{DdgOptions, DependenceDag};
use ursa_ir::instr::{BinOp, Instr, UnOp};
use ursa_ir::parser::parse;
use ursa_ir::program::{Program, ProgramBuilder};
use ursa_ir::trace::Trace;
use ursa_ir::value::{Operand, VirtualReg};

/// An arbitrary straight-line program built through the public builder.
fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<i8>()), 1..40).prop_map(
        |ops| {
            let mut b = ProgramBuilder::new();
            let sym_a = b.symbol("a");
            let sym_b = b.symbol("b");
            let mut defined: Vec<VirtualReg> = vec![b.constant(1)];
            for (sel, x, y, imm) in ops {
                let pick = |k: u8, pool: &[VirtualReg]| pool[k as usize % pool.len()];
                match sel % 6 {
                    0 => defined.push(b.constant(imm as i64)),
                    1 => {
                        let op = BinOp::ALL[(x as usize) % BinOp::ALL.len()];
                        // Avoid div/rem so execution never faults.
                        let op = match op {
                            BinOp::Div | BinOp::Rem => BinOp::Add,
                            other => other,
                        };
                        let lhs = pick(x, &defined);
                        let rhs = pick(y, &defined);
                        defined.push(b.bin(op, lhs, rhs));
                    }
                    2 => {
                        let a = pick(x, &defined);
                        defined.push(b.un(UnOp::Neg, a));
                    }
                    3 => {
                        defined.push(b.load(sym_a, imm as i64));
                    }
                    4 => {
                        let src = pick(x, &defined);
                        b.store(sym_b, imm as i64, src);
                    }
                    _ => {
                        let idx = pick(x, &defined);
                        defined.push(b.load(sym_a, idx));
                    }
                }
            }
            let last = *defined.last().expect("nonempty");
            b.store(sym_b, 127, last);
            b.finish()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// print → parse canonicalizes: the printed form reparses, behaves
    /// identically, and a second round trip is the exact identity
    /// (the only freedom is dropping symbols the program never uses).
    #[test]
    fn print_parse_round_trip(p in arb_program()) {
        use std::collections::HashMap;
        let printed = p.to_string();
        let reparsed = parse(&printed).expect("printed program parses");
        prop_assert_eq!(p.instr_count(), reparsed.instr_count());
        let again = parse(&reparsed.to_string()).expect("reparses");
        prop_assert_eq!(&reparsed, &again, "second round trip is exact");
        // Same behavior: compare final stores on the output symbol.
        // Memory is seeded by symbol *name* so differing intern orders
        // between the two programs see identical contents.
        let seed_by_name = |prog: &Program| {
            let mut m = ursa_vm::Memory::new();
            for (i, name) in prog.symbols.iter().enumerate() {
                let tag = name.bytes().fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
                m.fill_pattern(ursa_ir::value::SymbolId(i as u32), 256, tag);
            }
            m
        };
        let r1 = ursa_vm::seq::run_sequential(&p, &seed_by_name(&p), &HashMap::new(), 100_000)
            .expect("original executes");
        let r2 = ursa_vm::seq::run_sequential(&reparsed, &seed_by_name(&reparsed), &HashMap::new(), 100_000)
            .expect("reparsed executes");
        let out1 = p.find_symbol("b").expect("output symbol");
        let out2 = reparsed.find_symbol("b").expect("output symbol");
        prop_assert_eq!(
            r1.memory.load(out1, 127),
            r2.memory.load(out2, 127),
            "observable behavior preserved"
        );
    }

    /// The dependence DAG is acyclic with a unique root and leaf, and
    /// every recorded use is backed by an edge.
    #[test]
    fn ddg_invariants(p in arb_program()) {
        let ddg = DependenceDag::from_entry_block(&p);
        prop_assert!(ddg.dag().is_acyclic());
        prop_assert_eq!(ddg.dag().roots(), vec![ddg.entry()]);
        prop_assert_eq!(ddg.dag().leaves(), vec![ddg.exit()]);
        for v in ddg.value_nodes() {
            for &u in ddg.uses_of(v) {
                prop_assert!(ddg.dag().has_edge(v, u));
            }
        }
    }

    /// Renaming makes every defined register unique across the trace.
    #[test]
    fn renaming_gives_unique_defs(p in arb_program()) {
        let ddg = DependenceDag::from_entry_block(&p);
        let mut defs: Vec<VirtualReg> = ddg
            .value_nodes()
            .filter_map(|v| ddg.value_def(v))
            .collect();
        let before = defs.len();
        defs.sort_unstable();
        defs.dedup();
        prop_assert_eq!(defs.len(), before, "duplicate value register");
    }

    /// Non-renaming mode orders register reuse: any two nodes defining
    /// the same register are reachability-ordered.
    #[test]
    fn anti_mode_orders_redefinitions(p in arb_program()) {
        let ddg = DependenceDag::build_with(
            &p,
            &Trace::single(0),
            DdgOptions { rename: false, ..DdgOptions::default() },
        );
        let reach = ursa_graph::reach::Reachability::of(ddg.dag());
        let defs: Vec<_> = ddg
            .value_nodes()
            .filter_map(|v| ddg.value_def(v).map(|r| (v, r)))
            .collect();
        for (i, &(v1, r1)) in defs.iter().enumerate() {
            for &(v2, r2) in &defs[i + 1..] {
                if r1 == r2 {
                    prop_assert!(
                        reach.reaches(v1, v2) || reach.reaches(v2, v1),
                        "redefinitions of {} unordered", r1
                    );
                }
            }
        }
    }

    /// Executing the program never faults (the generator avoids division)
    /// and the DAG's op count matches the block's instruction count.
    #[test]
    fn generated_programs_execute(p in arb_program()) {
        use std::collections::HashMap;
        let m = ursa_vm::equiv::seeded_memory(&p, 256, 0);
        let r = ursa_vm::seq::run_sequential(&p, &m, &HashMap::new(), 100_000);
        prop_assert!(r.is_ok(), "{:?}", r.err());
        let ddg = DependenceDag::from_entry_block(&p);
        let real_ops = ddg
            .dag()
            .nodes()
            .filter(|&n| matches!(ddg.kind(n), ursa_ir::ddg::NodeKind::Op { .. }))
            .count();
        prop_assert_eq!(real_ops, p.instr_count());
    }
}

/// Negative-index loads must round-trip through the printer too.
#[test]
fn negative_indices_round_trip() {
    let p = parse("v0 = load a[-3]\nstore b[-1], v0\n").unwrap();
    let q = parse(&p.to_string()).unwrap();
    assert_eq!(p, q);
}

/// `Instr::map_registers` applies a simultaneous substitution.
#[test]
fn map_registers_is_simultaneous() {
    let mut i = Instr::Bin {
        op: BinOp::Add,
        dst: VirtualReg(0),
        a: Operand::Reg(VirtualReg(1)),
        b: Operand::Reg(VirtualReg(0)),
    };
    // Swap 0 <-> 1: a sequential substitution would collapse them.
    i.map_registers(|r| VirtualReg(1 - r.0));
    assert_eq!(i.def(), Some(VirtualReg(1)));
    assert_eq!(i.uses(), vec![VirtualReg(0), VirtualReg(1)]);
}
