//! Execution-level tests of loop peeling and unrolling (these live in
//! the integration tree so the simulator and the IR share one crate
//! universe — `ursa-vm` depends on `ursa-ir`, so unit tests inside
//! `ursa-ir` would see two distinct `Program` types).

use ursa_ir::parser::parse;
use ursa_ir::program::Program;
use ursa_ir::unroll::{peel_self_loop, unroll_self_loop};

fn copy_loop(n: i64) -> Program {
    parse(&format!(
        "block entry:\n\
         v0 = const 0\n\
         jmp head\n\
         block head:\n\
         v1 = load a[v0]\n\
         v2 = mul v1, 3\n\
         store b[v0], v2\n\
         v0 = add v0, 1\n\
         v3 = cmplt v0, {n}\n\
         br v3, head, done\n\
         block done:\n\
         ret\n"
    ))
    .unwrap()
}

#[test]
fn peel_preserves_semantics_for_any_trip_count() {
    use std::collections::HashMap;
    for n in [1i64, 2, 3, 5, 7, 8] {
        let p = copy_loop(n);
        let memory = ursa_vm::equiv::seeded_memory(&p, 32, n as u64);
        let reference =
            ursa_vm::seq::run_sequential(&p, &memory, &HashMap::new(), 100_000).unwrap();
        // Peeling is valid even when count exceeds the trip count:
        // every peeled copy keeps the exit test.
        for count in [0usize, 1, 2, 3] {
            let peeled = peel_self_loop(&p, 1, count).unwrap();
            assert!(peeled.validate().is_ok());
            assert_eq!(peeled.blocks.len(), p.blocks.len() + count);
            let got = ursa_vm::seq::run_sequential(&peeled, &memory, &HashMap::new(), 100_000)
                .unwrap_or_else(|e| panic!("trip {n} peel {count}: {e}"));
            assert_eq!(
                reference.memory, got.memory,
                "trip {n} peel {count} diverged"
            );
        }
    }
}

#[test]
fn peel_then_unroll_preserves_semantics_for_non_dividing_trips() {
    use std::collections::HashMap;
    // Trip 7 with factor 4: peel 3, then the remaining 4 trips
    // unroll exactly once around.
    let p = copy_loop(7);
    let memory = ursa_vm::equiv::seeded_memory(&p, 32, 7);
    let reference = ursa_vm::seq::run_sequential(&p, &memory, &HashMap::new(), 100_000).unwrap();
    let transformed = unroll_self_loop(&peel_self_loop(&p, 1, 3).unwrap(), 1, 4).unwrap();
    let got =
        ursa_vm::seq::run_sequential(&transformed, &memory, &HashMap::new(), 100_000).unwrap();
    assert_eq!(reference.memory, got.memory);
}
