//! Property-based tests for the graph substrate: the data structures
//! must agree with simple reference models on arbitrary inputs.

// The proptest dependency is unavailable in hermetic builds; this whole
// suite only compiles under `--features proptest` after the crate is
// added back (see CONTRIBUTING.md "Hermetic builds").
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use std::collections::HashSet;
use ursa_graph::bitset::BitSet;
use ursa_graph::chains::{decompose, decompose_prioritized, max_antichain};
use ursa_graph::dag::{Dag, EdgeKind, NodeId};
use ursa_graph::matching::{hopcroft_karp, staged_matching};
use ursa_graph::order::Levels;
use ursa_graph::reach::Reachability;

/// A random DAG given by upward edges `(i, j)` with `i < j`.
fn arb_dag(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 2).prop_map(move |raw| {
            raw.into_iter()
                .filter(|&(a, b)| a != b)
                .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
                .collect::<Vec<_>>()
        });
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(usize, usize)]) -> Dag {
    let mut g = Dag::new(n);
    for &(a, b) in edges {
        g.add_edge(NodeId::from(a), NodeId::from(b), EdgeKind::Data);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BitSet agrees with a HashSet model under inserts and removes.
    #[test]
    fn bitset_models_hashset(ops in proptest::collection::vec((0usize..128, any::<bool>()), 0..200)) {
        let mut bs = BitSet::new(128);
        let mut hs: HashSet<usize> = HashSet::new();
        for (v, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(v), hs.insert(v));
            } else {
                prop_assert_eq!(bs.remove(v), hs.remove(&v));
            }
        }
        prop_assert_eq!(bs.len(), hs.len());
        let mut from_bs: Vec<usize> = bs.iter().collect();
        let mut from_hs: Vec<usize> = hs.into_iter().collect();
        from_bs.sort_unstable();
        from_hs.sort_unstable();
        prop_assert_eq!(from_bs, from_hs);
    }

    /// Incremental reachability after edge insertions equals a fresh
    /// recomputation.
    #[test]
    fn incremental_reachability_is_exact(
        (n, edges) in arb_dag(16),
        extra in proptest::collection::vec((0usize..16, 0usize..16), 0..8),
    ) {
        let mut g = build(n, &edges);
        let mut r = Reachability::of(&g);
        for (a, b) in extra {
            let (a, b) = (a % n, b % n);
            if a == b {
                continue;
            }
            let (u, v) = (NodeId::from(a.min(b)), NodeId::from(a.max(b)));
            if !r.would_cycle(u, v) {
                g.add_edge(u, v, EdgeKind::Sequence);
                r.add_edge(u, v);
            }
        }
        let fresh = Reachability::of(&g);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(
                    r.reaches(NodeId::from(i), NodeId::from(j)),
                    fresh.reaches(NodeId::from(i), NodeId::from(j)),
                    "({}, {})", i, j
                );
            }
        }
    }

    /// Dilworth: minimum chain count equals maximum antichain size, and
    /// both staged and plain matchings agree on it.
    #[test]
    fn dilworth_equality_and_matching_agreement((n, edges) in arb_dag(12)) {
        let g = build(n, &edges);
        let r = Reachability::of(&g);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let d = decompose(&nodes, |a, b| r.reaches(a, b));
        let mut rel = |a: NodeId, b: NodeId| r.reaches(a, b);
        let dp = decompose_prioritized(&nodes, &mut rel, |a, b| (a.0 + b.0) % 3);
        let anti = max_antichain(&nodes, |a, b| r.reaches(a, b));
        prop_assert_eq!(d.num_chains(), anti.len());
        prop_assert_eq!(dp.num_chains(), anti.len());
        prop_assert!(d.is_valid_under(|a, b| r.reaches(a, b)));
        prop_assert!(dp.is_valid_under(|a, b| r.reaches(a, b)));
        // Chains partition the nodes.
        prop_assert_eq!(d.node_count(), n);
    }

    /// Staged matching cardinality equals Hopcroft–Karp's for any
    /// priority assignment.
    #[test]
    fn staged_matching_is_maximum(
        n_left in 1usize..8,
        n_right in 1usize..8,
        raw in proptest::collection::vec((0usize..8, 0usize..8, 0u32..4), 0..24),
    ) {
        let edges: Vec<(usize, usize, u32)> = raw
            .into_iter()
            .map(|(l, r, p)| (l % n_left, r % n_right, p))
            .collect();
        let staged = staged_matching(n_left, n_right, &edges);
        let mut adj = vec![Vec::new(); n_left];
        for &(l, r, _) in &edges {
            if !adj[l].contains(&r) {
                adj[l].push(r);
            }
        }
        let hk = hopcroft_karp(n_left, n_right, &adj);
        prop_assert_eq!(staged.len(), hk.len());
        prop_assert!(staged.is_consistent());
    }

    /// ASAP ≤ ALAP everywhere, critical nodes exist, and slack is
    /// consistent with the critical path.
    #[test]
    fn levels_invariants((n, edges) in arb_dag(14), weights in proptest::collection::vec(1u64..5, 14)) {
        let g = build(n, &edges);
        let w = &weights[..n];
        let levels = Levels::weighted(&g, w);
        let mut found_critical = false;
        for v in g.nodes() {
            prop_assert!(levels.asap(v) <= levels.alap(v));
            prop_assert!(levels.alap(v) + w[v.index()] <= levels.critical_path());
            found_critical |= levels.is_critical(v);
        }
        prop_assert!(found_critical || n == 0);
    }

    /// The transitive closure is, in fact, transitive and antisymmetric.
    #[test]
    fn closure_is_a_strict_partial_order((n, edges) in arb_dag(12)) {
        let g = build(n, &edges);
        let r = Reachability::of(&g);
        for i in 0..n {
            let a = NodeId::from(i);
            prop_assert!(!r.reaches(a, a), "irreflexive");
            for j in 0..n {
                let b = NodeId::from(j);
                if r.reaches(a, b) {
                    prop_assert!(!r.reaches(b, a), "antisymmetric");
                    for k in 0..n {
                        let c = NodeId::from(k);
                        if r.reaches(b, c) {
                            prop_assert!(r.reaches(a, c), "transitive");
                        }
                    }
                }
            }
        }
    }
}
