//! Cooperative work metering.
//!
//! Long-running graph algorithms (matching augmentation, chain
//! decomposition) accept a [`WorkMeter`] and *charge* it at natural
//! checkpoint boundaries — once per augmentation phase, once per tier,
//! never inside an inner loop. When the meter reports exhaustion the
//! algorithm stops early and returns whatever partial result it holds;
//! every caller in this workspace is written so that a partial result is
//! *conservative* (a sub-maximum matching measures a higher resource
//! requirement, never a lower one), so early exit degrades precision but
//! never correctness.
//!
//! The meter takes `&self` so one meter can be threaded through deep call
//! chains and closures without mutable-borrow gymnastics; implementations
//! use interior mutability (`ursa-core`'s `CompileBudget` is the real
//! one, built on `Cell`s).

use std::cell::Cell;

/// A cooperative budget consulted at algorithm checkpoints.
pub trait WorkMeter {
    /// Charges `units` of abstract work. Returns `false` once the meter
    /// is exhausted — the caller must stop starting new work and unwind
    /// with its current partial state. Exhaustion is sticky: after the
    /// first `false`, every later call returns `false` too.
    ///
    /// Charging zero units is a pure exhaustion query.
    fn charge(&self, units: u64) -> bool;

    /// Marks the meter exhausted without doing work. This is the
    /// budget-starvation hook for fault injection; meters that cannot be
    /// exhausted ignore it.
    fn starve(&self) {}
}

/// The meter that never runs out (the default for callers without a
/// budget, and for tests).
///
/// # Examples
///
/// ```
/// use ursa_graph::meter::{Unmetered, WorkMeter};
/// assert!(Unmetered.charge(u64::MAX));
/// Unmetered.starve(); // ignored
/// assert!(Unmetered.charge(0));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Unmetered;

impl WorkMeter for Unmetered {
    fn charge(&self, _units: u64) -> bool {
        true
    }
}

/// A meter holding a fixed number of units. Exists so tests (here and in
/// dependent crates) can exercise early-exit paths deterministically
/// without constructing a full compile budget.
///
/// # Examples
///
/// ```
/// use ursa_graph::meter::{FixedMeter, WorkMeter};
/// let m = FixedMeter::new(2);
/// assert!(m.charge(2));
/// assert!(!m.charge(1));
/// assert!(!m.charge(0), "exhaustion is sticky");
/// ```
#[derive(Debug)]
pub struct FixedMeter {
    left: Cell<i64>,
}

impl FixedMeter {
    /// A meter with `units` of work available.
    pub fn new(units: u64) -> Self {
        FixedMeter {
            left: Cell::new(units.min(i64::MAX as u64) as i64),
        }
    }
}

impl WorkMeter for FixedMeter {
    fn charge(&self, units: u64) -> bool {
        if self.left.get() < 0 {
            return false;
        }
        let left = self
            .left
            .get()
            .saturating_sub(units.min(i64::MAX as u64) as i64);
        self.left.set(left);
        left >= 0
    }

    fn starve(&self) {
        self.left.set(-1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_meter_exhausts_and_sticks() {
        let m = FixedMeter::new(2);
        assert!(m.charge(1));
        assert!(m.charge(1));
        assert!(!m.charge(1));
        assert!(!m.charge(0), "exhaustion is sticky");
    }

    #[test]
    fn starve_exhausts_immediately() {
        let m = FixedMeter::new(100);
        m.starve();
        assert!(!m.charge(0));
    }

    #[test]
    fn zero_charge_queries_without_spending() {
        let m = FixedMeter::new(1);
        assert!(m.charge(0));
        assert!(m.charge(1));
        assert!(!m.charge(1));
    }
}
