//! Minimum chain decomposition of a partial order (paper §3.1).
//!
//! A *chain* is a set of mutually related nodes (Definition 1); a
//! *decomposition* partitions the nodes into chains (Definition 2). By
//! Dilworth's theorem (Theorem 1, [Dil50]) the number of chains in a
//! minimum decomposition equals the maximum number of pairwise-independent
//! nodes — which for URSA is exactly the worst-case number of resource
//! instances any schedule can demand. The decomposition is computed by
//! Ford and Fulkerson's reduction to maximum bipartite matching [FoF65],
//! optionally with the paper's hammock-priority staging.

use crate::dag::NodeId;
use crate::matching::{staged_matching_metered, IncrementalMatcher};
use crate::meter::{Unmetered, WorkMeter};

/// A decomposition of a node subset into chains, each ordered head → tail.
///
/// # Examples
///
/// ```
/// use ursa_graph::chains::decompose;
/// use ursa_graph::dag::NodeId;
///
/// // Partial order: 0 < 1 < 2, node 3 incomparable to everything.
/// let nodes: Vec<NodeId> = (0..4).map(NodeId::from).collect();
/// let d = decompose(&nodes, |a, b| a.0 < b.0 && b.0 != 3 && a.0 != 3);
/// assert_eq!(d.num_chains(), 2); // {0,1,2} and {3}
/// ```
#[derive(Clone, Debug)]
pub struct ChainDecomposition {
    chains: Vec<Vec<NodeId>>,
}

impl ChainDecomposition {
    /// The trivial decomposition with every node its own chain. Always a
    /// valid chain partition, but a *minimum* witness only when the
    /// nodes are pairwise independent — callers that skip the matching
    /// (a resource already known to fit) use it as a placeholder whose
    /// chains are never consulted.
    pub fn singletons(nodes: &[NodeId]) -> Self {
        ChainDecomposition {
            chains: nodes.iter().map(|&v| vec![v]).collect(),
        }
    }

    /// Number of chains — the measured resource requirement.
    pub fn num_chains(&self) -> usize {
        self.chains.len()
    }

    /// The chains, each ordered head → tail.
    pub fn chains(&self) -> &[Vec<NodeId>] {
        &self.chains
    }

    /// Consumes the decomposition, yielding the chains.
    pub fn into_chains(self) -> Vec<Vec<NodeId>> {
        self.chains
    }

    /// Index of the chain containing `v`, if `v` was part of the
    /// decomposed node set.
    pub fn chain_of(&self, v: NodeId) -> Option<usize> {
        self.chains.iter().position(|c| c.contains(&v))
    }

    /// Total number of nodes across all chains.
    pub fn node_count(&self) -> usize {
        self.chains.iter().map(Vec::len).sum()
    }

    /// Verifies that every consecutive pair in every chain satisfies
    /// `related`; used by tests and debug assertions.
    pub fn is_valid_under(&self, mut related: impl FnMut(NodeId, NodeId) -> bool) -> bool {
        self.chains
            .iter()
            .all(|c| c.windows(2).all(|w| related(w[0], w[1])))
    }
}

/// Decomposes `nodes` into a minimum number of chains of the strict
/// partial order `can_reuse` (edges `(a, b)` with `can_reuse(a, b)` true
/// mean `b` may follow `a` in a chain).
///
/// `can_reuse` must be a strict order on `nodes` (irreflexive and
/// transitive); pairs with `a == b` are never queried.
pub fn decompose(
    nodes: &[NodeId],
    mut can_reuse: impl FnMut(NodeId, NodeId) -> bool,
) -> ChainDecomposition {
    decompose_prioritized(nodes, &mut can_reuse, |_, _| 0)
}

/// Like [`decompose`], but edges are offered to the matcher in ascending
/// `priority` tiers (the paper's modification for hammock-local
/// minimality, §3.1): an edge that stays inside one hammock gets priority
/// 0 and is preferred over edges crossing nesting levels.
pub fn decompose_prioritized(
    nodes: &[NodeId],
    can_reuse: &mut impl FnMut(NodeId, NodeId) -> bool,
    priority: impl FnMut(NodeId, NodeId) -> u32,
) -> ChainDecomposition {
    decompose_prioritized_metered(nodes, can_reuse, priority, &Unmetered)
}

/// [`decompose_prioritized`] with a cooperative [`WorkMeter`]. If the
/// meter exhausts mid-matching the decomposition is still a valid chain
/// partition, just possibly not minimum — it *over-counts* the
/// requirement, which is the conservative direction for URSA (a resource
/// is never reported to fit when some schedule could exceed it).
pub fn decompose_prioritized_metered(
    nodes: &[NodeId],
    can_reuse: &mut impl FnMut(NodeId, NodeId) -> bool,
    mut priority: impl FnMut(NodeId, NodeId) -> u32,
    meter: &dyn WorkMeter,
) -> ChainDecomposition {
    let k = nodes.len();
    let mut edges: Vec<(usize, usize, u32)> = Vec::new();
    for (i, &a) in nodes.iter().enumerate() {
        // Relation rows are O(k) probes each; on exhaustion the
        // remaining rows are dropped, which can only shrink the
        // matching and thus over-state the requirement (conservative).
        if !meter.charge(k as u64) {
            break;
        }
        for (j, &b) in nodes.iter().enumerate() {
            if i != j && can_reuse(a, b) {
                edges.push((i, j, priority(a, b)));
            }
        }
    }
    let m = staged_matching_metered(k, k, &edges, meter);

    // Chain heads are the nodes never matched on the right side.
    let mut chains = Vec::with_capacity(k - m.len());
    for (j, &pred) in m.right_to_left.iter().enumerate() {
        if pred.is_none() {
            let mut chain = Vec::new();
            let mut cur = Some(j);
            while let Some(i) = cur {
                chain.push(nodes[i]);
                cur = m.left_to_right[i];
            }
            chains.push(chain);
        }
    }
    debug_assert_eq!(
        chains.iter().map(Vec::len).sum::<usize>(),
        k,
        "chains partition the node set"
    );
    ChainDecomposition { chains }
}

/// Extracts a maximum antichain — a largest set of pairwise-independent
/// nodes — witnessing Dilworth's equality (Theorem 1): its size equals
/// the chain count of [`decompose`].
///
/// Uses König's theorem on the Ford–Fulkerson bipartite graph: from a
/// maximum matching, the minimum vertex cover is computed via alternating
/// paths, and the antichain consists of the nodes neither of whose copies
/// is in the cover.
pub fn max_antichain(
    nodes: &[NodeId],
    mut related: impl FnMut(NodeId, NodeId) -> bool,
) -> Vec<NodeId> {
    let k = nodes.len();
    let mut matcher = IncrementalMatcher::new(k, k);
    for (i, &a) in nodes.iter().enumerate() {
        for (j, &b) in nodes.iter().enumerate() {
            if i != j && related(a, b) {
                // Distinct (i, j) pairs by enumeration.
                matcher.add_edge_unchecked(i, j);
            }
        }
    }
    let matched = matcher.maximize();
    // Minimum vertex cover = (L \ Z) ∪ (R ∩ Z); antichain = nodes with
    // neither copy in the cover.
    let antichain: Vec<NodeId> = matcher
        .konig_independent_set()
        .into_iter()
        .map(|i| nodes[i])
        .collect();
    debug_assert_eq!(
        antichain.len(),
        k - matched,
        "antichain size equals minimum chain count"
    );
    antichain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{Dag, EdgeKind};
    use crate::reach::Reachability;

    fn ids(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::from).collect()
    }

    /// Largest antichain by brute force (exponential; tiny inputs only).
    fn brute_force_width(nodes: &[NodeId], related: impl Fn(NodeId, NodeId) -> bool) -> usize {
        let n = nodes.len();
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let subset: Vec<NodeId> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| nodes[i])
                .collect();
            let antichain = subset.iter().enumerate().all(|(x, &a)| {
                subset
                    .iter()
                    .skip(x + 1)
                    .all(|&b| !related(a, b) && !related(b, a))
            });
            if antichain {
                best = best.max(subset.len());
            }
        }
        best
    }

    #[test]
    fn total_order_is_one_chain() {
        let nodes = ids(5);
        let d = decompose(&nodes, |a, b| a.0 < b.0);
        assert_eq!(d.num_chains(), 1);
        assert_eq!(d.chains()[0].len(), 5);
        assert!(d.is_valid_under(|a, b| a.0 < b.0));
    }

    #[test]
    fn antichain_is_singleton_chains() {
        let nodes = ids(4);
        let d = decompose(&nodes, |_, _| false);
        assert_eq!(d.num_chains(), 4);
        assert!(d.chains().iter().all(|c| c.len() == 1));
    }

    #[test]
    fn paper_figure2_dag_width_is_four() {
        // Figure 2(b): A=0 B=1 C=2 D=3 E=4 F=5 G=6 H=7 I=8 J=9 K=10.
        let mut g = Dag::new(11);
        let e = [
            (0, 1),
            (0, 2),
            (0, 3), // A -> B, C, D
            (1, 4),
            (1, 5),
            (2, 4),
            (2, 5), // B,C -> E,F
            (3, 6),
            (3, 7), // D -> G, H
            (4, 8),
            (5, 8), // E,F -> I
            (6, 9),
            (7, 9), // G,H -> J
            (8, 10),
            (9, 10), // I,J -> K
        ];
        for (a, b) in e {
            g.add_edge(NodeId(a), NodeId(b), EdgeKind::Data);
        }
        let r = Reachability::of(&g);
        let nodes = ids(11);
        let d = decompose(&nodes, |a, b| r.reaches(a, b));
        assert_eq!(
            d.num_chains(),
            4,
            "paper: minimal decomposition has 4 chains"
        );
        assert!(d.is_valid_under(|a, b| r.reaches(a, b)));
    }

    #[test]
    fn chain_count_equals_brute_force_width() {
        // Random small DAG partial orders.
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let n = (next() % 7 + 1) as usize;
            let mut g = Dag::new(n);
            for i in 0..n {
                for j in i + 1..n {
                    if next() % 3 == 0 {
                        g.add_edge(NodeId::from(i), NodeId::from(j), EdgeKind::Data);
                    }
                }
            }
            let r = Reachability::of(&g);
            let nodes = ids(n);
            let d = decompose(&nodes, |a, b| r.reaches(a, b));
            let width = brute_force_width(&nodes, |a, b| r.reaches(a, b));
            assert_eq!(d.num_chains(), width, "Dilworth equality violated");
            assert!(d.is_valid_under(|a, b| r.reaches(a, b)));
        }
    }

    #[test]
    fn subset_decomposition_only_touches_subset() {
        let nodes = vec![NodeId(2), NodeId(5), NodeId(9)];
        let d = decompose(&nodes, |a, b| a.0 < b.0);
        assert_eq!(d.node_count(), 3);
        assert_eq!(d.num_chains(), 1);
        assert_eq!(d.chain_of(NodeId(5)), Some(0));
        assert_eq!(d.chain_of(NodeId(3)), None);
    }

    #[test]
    fn prioritized_decomposition_still_minimum() {
        let nodes = ids(6);
        let rel = |a: NodeId, b: NodeId| a.0 < b.0 && (b.0 - a.0) % 2 == 1;
        let d0 = decompose(&nodes, rel);
        let mut rel2 = rel;
        let dp = decompose_prioritized(&nodes, &mut rel2, |a, b| b.0 - a.0);
        assert_eq!(d0.num_chains(), dp.num_chains());
        assert!(dp.is_valid_under(rel));
    }

    #[test]
    fn exhausted_meter_overcounts_but_partitions() {
        use crate::meter::FixedMeter;
        let nodes = ids(6);
        let rel = |a: NodeId, b: NodeId| a.0 < b.0;
        let full = decompose(&nodes, rel);
        assert_eq!(full.num_chains(), 1);
        for units in 0..40 {
            let mut r = rel;
            let d =
                decompose_prioritized_metered(&nodes, &mut r, |_, _| 0, &FixedMeter::new(units));
            // Always a valid chain partition of all six nodes...
            assert_eq!(d.node_count(), 6);
            assert!(d.is_valid_under(rel));
            // ...that never under-counts the requirement.
            assert!(d.num_chains() >= full.num_chains());
        }
    }

    #[test]
    fn empty_node_set() {
        let d = decompose(&[], |_, _| true);
        assert_eq!(d.num_chains(), 0);
        assert_eq!(d.node_count(), 0);
    }

    #[test]
    fn antichain_members_are_pairwise_independent() {
        let mut state = 0xABCDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let n = (next() % 8 + 1) as usize;
            let mut g = Dag::new(n);
            for i in 0..n {
                for j in i + 1..n {
                    if next() % 3 == 0 {
                        g.add_edge(NodeId::from(i), NodeId::from(j), EdgeKind::Data);
                    }
                }
            }
            let r = Reachability::of(&g);
            let nodes = ids(n);
            let a = max_antichain(&nodes, |x, y| r.reaches(x, y));
            for (i, &x) in a.iter().enumerate() {
                for &y in &a[i + 1..] {
                    assert!(r.independent(x, y), "{x} and {y} must be independent");
                }
            }
            let d = decompose(&nodes, |x, y| r.reaches(x, y));
            assert_eq!(a.len(), d.num_chains(), "Dilworth equality");
        }
    }

    #[test]
    fn antichain_of_total_order_is_singleton() {
        let nodes = ids(5);
        let a = max_antichain(&nodes, |x, y| x.0 < y.0);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn antichain_of_empty_relation_is_everything() {
        let nodes = ids(4);
        let a = max_antichain(&nodes, |_, _| false);
        assert_eq!(a.len(), 4);
    }
}
