//! Maximum bipartite matching.
//!
//! Ford and Fulkerson's transformation (paper §3.1, [FoF65]) reduces
//! minimum chain decomposition of a partial order to maximum matching in a
//! bipartite graph whose left and right vertex classes are both copies of
//! the node set and whose edges are the pairs of the `CanReuse` relation.
//! Each matched pair `(a, b)` links `a`'s chain to continue at `b`; with a
//! maximum matching the number of chains `n − |M|` is minimal.
//!
//! Two engines are provided:
//!
//! * [`hopcroft_karp`] — the O(E·√V) algorithm, used when any maximum
//!   matching will do.
//! * [`IncrementalMatcher`] — Kuhn's augmenting-path algorithm that
//!   accepts edges in batches while preserving the matching found so far.
//!   This implements the paper's *modified* algorithm: edges are added in
//!   priority tiers (by hammock-nesting-level difference) and augmentation
//!   is re-run after each tier, so earlier tiers are preferred. Worst case
//!   O(V·E) ⊆ O(N³) for dense relations, matching the paper's bound.

/// A matching between `n_left` left vertices and `n_right` right vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// `left_to_right[l]` is the right partner of `l`, if matched.
    pub left_to_right: Vec<Option<usize>>,
    /// `right_to_left[r]` is the left partner of `r`, if matched.
    pub right_to_left: Vec<Option<usize>>,
}

impl Matching {
    /// An empty matching over the given class sizes.
    pub fn empty(n_left: usize, n_right: usize) -> Self {
        Matching {
            left_to_right: vec![None; n_left],
            right_to_left: vec![None; n_right],
        }
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.left_to_right.iter().filter(|p| p.is_some()).count()
    }

    /// `true` if nothing is matched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks internal consistency: the two direction maps must mirror
    /// each other exactly. Used by tests and debug assertions.
    pub fn is_consistent(&self) -> bool {
        self.left_to_right
            .iter()
            .enumerate()
            .all(|(l, &r)| match r {
                Some(r) => self.right_to_left.get(r).copied().flatten() == Some(l),
                None => true,
            })
            && self
                .right_to_left
                .iter()
                .enumerate()
                .all(|(r, &l)| match l {
                    Some(l) => self.left_to_right.get(l).copied().flatten() == Some(r),
                    None => true,
                })
    }
}

/// Computes a maximum matching with the Hopcroft–Karp algorithm.
///
/// `adj[l]` lists the right-vertices adjacent to left-vertex `l`.
///
/// # Examples
///
/// ```
/// use ursa_graph::matching::hopcroft_karp;
///
/// // A perfect matching on a 2x2 crown.
/// let adj = vec![vec![0, 1], vec![0]];
/// let m = hopcroft_karp(2, 2, &adj);
/// assert_eq!(m.len(), 2);
/// ```
///
/// # Panics
///
/// Panics if any adjacency entry is out of range.
pub fn hopcroft_karp(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> Matching {
    assert_eq!(adj.len(), n_left, "one adjacency list per left vertex");
    for (l, row) in adj.iter().enumerate() {
        for &r in row {
            assert!(r < n_right, "right vertex {r} out of range (edge from {l})");
        }
    }
    const INF: u32 = u32::MAX;
    let mut m = Matching::empty(n_left, n_right);
    let mut dist = vec![INF; n_left];
    let mut queue = Vec::with_capacity(n_left);

    loop {
        // BFS phase: layer the free left vertices.
        queue.clear();
        for (l, d) in dist.iter_mut().enumerate() {
            if m.left_to_right[l].is_none() {
                *d = 0;
                queue.push(l);
            } else {
                *d = INF;
            }
        }
        let mut found_augmenting = false;
        let mut head = 0;
        while head < queue.len() {
            let l = queue[head];
            head += 1;
            for &r in &adj[l] {
                match m.right_to_left[r] {
                    None => found_augmenting = true,
                    Some(l2) => {
                        if dist[l2] == INF {
                            dist[l2] = dist[l] + 1;
                            queue.push(l2);
                        }
                    }
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: find a maximal set of vertex-disjoint shortest
        // augmenting paths.
        fn dfs(l: usize, adj: &[Vec<usize>], m: &mut Matching, dist: &mut [u32]) -> bool {
            for i in 0..adj[l].len() {
                let r = adj[l][i];
                let advance = match m.right_to_left[r] {
                    None => true,
                    Some(l2) => dist[l2] == dist[l] + 1 && dfs(l2, adj, m, dist),
                };
                if advance {
                    m.left_to_right[l] = Some(r);
                    m.right_to_left[r] = Some(l);
                    return true;
                }
            }
            dist[l] = u32::MAX;
            false
        }
        for l in 0..n_left {
            if m.left_to_right[l].is_none() && dist[l] == 0 {
                dfs(l, adj, &mut m, &mut dist);
            }
        }
    }
    debug_assert!(m.is_consistent());
    m
}

/// Kuhn's algorithm with incremental edge insertion.
///
/// The paper's hammock-aware decomposition (§3.1) adds bipartite edges in
/// sets of decreasing priority and re-runs the "normal augmenting path
/// matching algorithm" after each set, so that the final maximum matching
/// prefers high-priority edges wherever possible. `IncrementalMatcher`
/// keeps the matching across [`IncrementalMatcher::add_edge`] /
/// [`IncrementalMatcher::maximize`] rounds to realize exactly that.
///
/// # Examples
///
/// ```
/// use ursa_graph::matching::IncrementalMatcher;
///
/// let mut m = IncrementalMatcher::new(2, 2);
/// m.add_edge(0, 0);
/// assert_eq!(m.maximize(), 1);
/// m.add_edge(0, 1);
/// m.add_edge(1, 0);
/// assert_eq!(m.maximize(), 2);
/// // Vertex 0's original high-priority partner may move, but the first
/// // tier's cardinality is never sacrificed.
/// assert_eq!(m.matching().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalMatcher {
    n_right: usize,
    adj: Vec<Vec<usize>>,
    matching: Matching,
}

impl IncrementalMatcher {
    /// Creates a matcher over empty vertex classes of the given sizes.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        IncrementalMatcher {
            n_right,
            adj: vec![Vec::new(); n_left],
            matching: Matching::empty(n_left, n_right),
        }
    }

    /// Inserts the edge `(l, r)`. Duplicates are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.adj.len(), "left vertex {l} out of range");
        assert!(r < self.n_right, "right vertex {r} out of range");
        if !self.adj[l].contains(&r) {
            self.adj[l].push(r);
        }
    }

    /// Augments until maximum over the edges inserted so far; returns the
    /// matching cardinality. Previously matched pairs may be re-routed but
    /// cardinality never decreases.
    pub fn maximize(&mut self) -> usize {
        let n_left = self.adj.len();
        let mut visited = vec![false; n_left];
        for l in 0..n_left {
            if self.matching.left_to_right[l].is_none() {
                for v in visited.iter_mut() {
                    *v = false;
                }
                self.try_augment(l, &mut visited);
            }
        }
        debug_assert!(self.matching.is_consistent());
        self.matching.len()
    }

    fn try_augment(&mut self, l: usize, visited: &mut [bool]) -> bool {
        if visited[l] {
            return false;
        }
        visited[l] = true;
        for i in 0..self.adj[l].len() {
            let r = self.adj[l][i];
            let free = match self.matching.right_to_left[r] {
                None => true,
                Some(l2) => self.try_augment(l2, visited),
            };
            if free {
                self.matching.left_to_right[l] = Some(r);
                self.matching.right_to_left[r] = Some(l);
                return true;
            }
        }
        false
    }

    /// The matching accumulated so far.
    pub fn matching(&self) -> &Matching {
        &self.matching
    }

    /// Consumes the matcher, returning the matching.
    pub fn into_matching(self) -> Matching {
        self.matching
    }
}

/// Runs the paper's staged matching: edges are grouped by ascending
/// `priority`, each group is inserted, and the matching is maximized
/// before the next group is admitted.
///
/// Lower priority values are preferred (priority 0 = edges that do not
/// cross a hammock boundary). The result is a maximum matching of the
/// whole edge set that maximizes use of lower-priority edges tier by tier.
///
/// # Examples
///
/// ```
/// use ursa_graph::matching::staged_matching;
///
/// // Edge (0,0) has priority 0, (1,0) priority 1: the tier-0 edge wins
/// // the shared right vertex and (1,0) stays unmatched.
/// let m = staged_matching(2, 1, &[(0, 0, 0), (1, 0, 1)]);
/// assert_eq!(m.left_to_right[0], Some(0));
/// assert_eq!(m.left_to_right[1], None);
/// ```
pub fn staged_matching(n_left: usize, n_right: usize, edges: &[(usize, usize, u32)]) -> Matching {
    let mut tiers: Vec<u32> = edges.iter().map(|&(_, _, p)| p).collect();
    tiers.sort_unstable();
    tiers.dedup();
    let mut matcher = IncrementalMatcher::new(n_left, n_right);
    for tier in tiers {
        for &(l, r, p) in edges {
            if p == tier {
                matcher.add_edge(l, r);
            }
        }
        matcher.maximize();
    }
    matcher.into_matching()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force maximum matching by trying all subsets (tiny inputs).
    fn brute_force_max(n_left: usize, n_right: usize, edges: &[(usize, usize)]) -> usize {
        fn rec(edges: &[(usize, usize)], used_l: &mut Vec<bool>, used_r: &mut Vec<bool>) -> usize {
            if edges.is_empty() {
                return 0;
            }
            let (l, r) = edges[0];
            let skip = rec(&edges[1..], used_l, used_r);
            if !used_l[l] && !used_r[r] {
                used_l[l] = true;
                used_r[r] = true;
                let take = 1 + rec(&edges[1..], used_l, used_r);
                used_l[l] = false;
                used_r[r] = false;
                skip.max(take)
            } else {
                skip
            }
        }
        rec(edges, &mut vec![false; n_left], &mut vec![false; n_right])
    }

    fn to_adj(n_left: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); n_left];
        for &(l, r) in edges {
            adj[l].push(r);
        }
        adj
    }

    #[test]
    fn perfect_matching_found() {
        let edges = [(0, 1), (1, 0), (2, 2)];
        let m = hopcroft_karp(3, 3, &to_adj(3, &edges));
        assert_eq!(m.len(), 3);
        assert!(m.is_consistent());
    }

    #[test]
    fn empty_graph_matches_nothing() {
        let m = hopcroft_karp(3, 3, &vec![Vec::new(); 3]);
        assert_eq!(m.len(), 0);
        assert!(m.is_empty());
    }

    #[test]
    fn hopcroft_karp_agrees_with_brute_force() {
        // Deterministic pseudo-random small graphs.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..60 {
            let n_left = (next() % 5 + 1) as usize;
            let n_right = (next() % 5 + 1) as usize;
            let n_edges = (next() % 10) as usize;
            let mut edges = Vec::new();
            for _ in 0..n_edges {
                edges.push(((next() as usize) % n_left, (next() as usize) % n_right));
            }
            edges.sort_unstable();
            edges.dedup();
            let expect = brute_force_max(n_left, n_right, &edges);
            let got = hopcroft_karp(n_left, n_right, &to_adj(n_left, &edges)).len();
            assert_eq!(got, expect, "edges {edges:?}");
        }
    }

    #[test]
    fn incremental_matches_hopcroft_karp_cardinality() {
        let edges = [(0, 0), (0, 1), (1, 1), (2, 1), (2, 2), (3, 3)];
        let mut inc = IncrementalMatcher::new(4, 4);
        for &(l, r) in &edges {
            inc.add_edge(l, r);
        }
        let hk = hopcroft_karp(4, 4, &to_adj(4, &edges));
        assert_eq!(inc.maximize(), hk.len());
    }

    #[test]
    fn incremental_addition_preserves_cardinality_growth() {
        let mut m = IncrementalMatcher::new(3, 3);
        m.add_edge(0, 0);
        m.add_edge(1, 0);
        assert_eq!(m.maximize(), 1);
        m.add_edge(1, 1);
        assert_eq!(m.maximize(), 2);
        m.add_edge(2, 2);
        assert_eq!(m.maximize(), 3);
    }

    #[test]
    fn staged_prefers_low_priority_tier() {
        // Both left vertices want right 0; the tier-0 edge is kept matched
        // to r0 even after tier 1 arrives with an alternative for l0.
        let m = staged_matching(2, 2, &[(0, 0, 0), (0, 1, 1), (1, 0, 1)]);
        assert_eq!(m.len(), 2);
        // Maximum cardinality requires l0-r1 OR l0-r0/l1 unmatched; the
        // staged algorithm re-routes l0 to r1 so l1 can use r0 — but only
        // because that keeps every tier-0 edge's cardinality intact.
        assert!(m.is_consistent());
    }

    #[test]
    fn staged_total_cardinality_is_maximum() {
        let edges = [(0usize, 0usize, 2u32), (0, 1, 0), (1, 1, 1), (2, 0, 1)];
        let m = staged_matching(3, 2, &edges);
        let plain: Vec<(usize, usize)> = edges.iter().map(|&(l, r, _)| (l, r)).collect();
        let expect = brute_force_max(3, 2, &plain);
        assert_eq!(m.len(), expect);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        IncrementalMatcher::new(1, 1).add_edge(0, 5);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut m = IncrementalMatcher::new(1, 1);
        m.add_edge(0, 0);
        m.add_edge(0, 0);
        assert_eq!(m.maximize(), 1);
    }
}
